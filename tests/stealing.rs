//! Determinism and scheduling tests for work-stealing chunked generation.
//!
//! The contract under test: chunk `c` is always generated from
//! `rng_from_seed(chunk_seed(seed, c))`, so the *content* of a chunked
//! batch is a pure function of `(seed, chunk range, chunk size)` — never
//! of the thread count, the scheduler's claim order, or how a range was
//! sliced across calls. The scheduler may only change *which worker* runs
//! a chunk and *when*, which is exactly what the telemetry fields
//! (`chunk_workers`, `chunk_costs`) expose and what the straggler
//! regression test checks.

use proptest::prelude::*;
use subsim::diffusion::pool::WorkerPool;
use subsim::diffusion::{par_generate_chunks, par_generate_chunks_static, RrSampler, RrStrategy};
use subsim::prelude::*;
use subsim_graph::generators::{barabasi_albert, star_graph};

/// Asserts two collections are bit-identical, set by set.
fn assert_same_sets(a: &RrCollection, b: &RrCollection, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: set counts differ");
    for i in 0..a.len() {
        assert_eq!(a.get(i), b.get(i), "{label}: set {i} differs");
    }
}

/// Strategy: a skewed scale-free graph (hub-rooted RR sets make chunk
/// costs uneven — the scheduler's hard case) plus a star graph control.
fn arb_skewed_graph() -> impl Strategy<Value = Graph> {
    (20usize..120, 2usize..4, 0u64..1000, any::<bool>()).prop_map(|(n, m, seed, star)| {
        if star {
            star_graph(n, WeightModel::UniformIc { p: 0.4 })
        } else {
            barabasi_albert(n, m, WeightModel::Wc, seed)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stealing output equals the 1-thread reference for every thread
    /// count, on arbitrary graphs, strategies, ranges, and chunk sizes.
    #[test]
    fn stealing_is_thread_count_invariant(
        g in arb_skewed_graph(),
        seed in 0u64..u64::MAX,
        start in 0u64..16,
        len in 1u64..10,
        chunk_size in 1usize..48,
        subsim_rr in any::<bool>(),
    ) {
        let strategy = if subsim_rr { RrStrategy::SubsimIc } else { RrStrategy::VanillaIc };
        let sampler = RrSampler::new(&g, strategy);
        let range = start..start + len;
        let reference = par_generate_chunks(&sampler, None, range.clone(), chunk_size, 1, seed);
        prop_assert_eq!(reference.rr.len(), len as usize * chunk_size);
        for threads in [2usize, 3, 5, 8] {
            let batch = par_generate_chunks(&sampler, None, range.clone(), chunk_size, threads, seed);
            prop_assert_eq!(batch.rr.len(), reference.rr.len());
            for i in 0..batch.rr.len() {
                prop_assert_eq!(
                    batch.rr.get(i),
                    reference.rr.get(i),
                    "threads={} set {}", threads, i
                );
            }
            prop_assert_eq!(batch.cost, reference.cost, "threads={}", threads);
        }
    }

    /// Slicing a range across calls (with differing thread counts per
    /// slice) concatenates to the same pool as one whole-range call —
    /// the invariant `subsim-index` growth rounds rely on.
    #[test]
    fn interleaved_ranges_splice_to_whole(
        g in arb_skewed_graph(),
        seed in 0u64..u64::MAX,
        cut in 1u64..7,
    ) {
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let whole = par_generate_chunks(&sampler, None, 0..8, 32, 4, seed);
        let mut spliced = par_generate_chunks(&sampler, None, 0..cut, 32, 3, seed).rr;
        spliced.extend_from(&par_generate_chunks(&sampler, None, cut..8, 32, 5, seed).rr);
        prop_assert_eq!(whole.rr.len(), spliced.len());
        for i in 0..whole.rr.len() {
            prop_assert_eq!(whole.rr.get(i), spliced.get(i), "cut={} set {}", cut, i);
        }
    }

    /// The stealing and retired-static schedulers are differential twins.
    #[test]
    fn stealing_matches_static_reference(
        g in arb_skewed_graph(),
        seed in 0u64..u64::MAX,
        threads in 1usize..6,
    ) {
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let stealing = par_generate_chunks(&sampler, None, 1..9, 24, threads, seed);
        let fixed = par_generate_chunks_static(&sampler, None, 1..9, 24, threads, seed);
        prop_assert_eq!(stealing.rr.len(), fixed.rr.len());
        for i in 0..stealing.rr.len() {
            prop_assert_eq!(stealing.rr.get(i), fixed.rr.get(i), "set {}", i);
        }
    }
}

/// A persistent pool reused across top-ups produces the same stream as
/// fresh per-batch pools — worker scratch carries no state between
/// batches that could leak into set content.
#[test]
fn persistent_pool_reused_across_top_ups_matches_fresh_pools() {
    let g = barabasi_albert(200, 3, WeightModel::Wc, 77);
    let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
    let pool = WorkerPool::new(3);

    let mut grown = RrCollection::new(g.n());
    for (start, end) in [(0u64, 3u64), (3, 5), (5, 11)] {
        let batch = pool.generate_chunks(&sampler, None, start..end, 40, 78);
        grown.extend_from(&batch.rr);
    }
    let reference = par_generate_chunks(&sampler, None, 0..11, 40, 1, 78);
    assert_same_sets(&grown, &reference.rr, "persistent pool top-ups");
}

/// Sentinel truncation composes with stealing: installed for the batch,
/// cleared afterwards, and the output still thread-count invariant.
#[test]
fn sentinel_batches_are_thread_count_invariant() {
    let g = barabasi_albert(250, 4, WeightModel::WcVariant { theta: 4.0 }, 79);
    let hub = (0..g.n() as u32).max_by_key(|&v| g.out_degree(v)).unwrap();
    let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
    let sentinel = [hub];
    let reference = par_generate_chunks(&sampler, Some(&sentinel), 0..6, 50, 1, 80);
    for threads in [2, 4, 7] {
        let batch = par_generate_chunks(&sampler, Some(&sentinel), 0..6, 50, threads, 80);
        assert_same_sets(&batch.rr, &reference.rr, "sentinel batch");
        assert_eq!(
            batch.sentinel_hits, reference.sentinel_hits,
            "threads={threads}"
        );
    }
    // The same pool with no sentinel right after must not truncate.
    let plain = par_generate_chunks(&sampler, None, 0..6, 50, 4, 80);
    assert!(plain.rr.avg_size() >= reference.rr.avg_size());
}

/// Straggler regression: on a skewed-cost batch, the expensive tail must
/// not all land on one worker. The static split assigns contiguous blocks
/// up front, so a cost-sorted adversarial range serializes behind one
/// thread; the claim counter hands a free worker the next chunk instead.
///
/// Scheduling depends on OS timing, so the test is `#[ignore]`d for
/// regular runs (CI runs it with `--include-ignored` in release mode) and
/// passes if *any* seed shows the top-cost-quartile chunks spread across
/// at least two workers.
#[test]
#[ignore = "timing-sensitive scheduler telemetry; run with --include-ignored"]
fn expensive_tail_chunks_spread_across_workers() {
    let g = barabasi_albert(400, 5, WeightModel::Wc, 81);
    let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
    let threads = 4;
    let chunks = 32u64;

    for seed in [82u64, 183, 912] {
        let batch = par_generate_chunks(&sampler, None, 0..chunks, 64, threads, seed);
        assert_eq!(batch.chunk_workers.len(), chunks as usize);
        assert_eq!(batch.chunk_costs.len(), chunks as usize);
        assert_eq!(batch.chunk_costs.iter().sum::<u64>(), batch.cost);

        // Rank chunks by cost; the top quartile is the straggler tail.
        let mut by_cost: Vec<usize> = (0..chunks as usize).collect();
        by_cost.sort_by_key(|&c| std::cmp::Reverse(batch.chunk_costs[c]));
        let tail = &by_cost[..chunks as usize / 4];
        let mut owners: Vec<u32> = tail.iter().map(|&c| batch.chunk_workers[c]).collect();
        owners.sort_unstable();
        owners.dedup();
        if owners.len() >= 2 {
            return; // some seed demonstrated a spread tail — pass
        }
    }
    panic!("every seed put the whole expensive tail on one worker");
}
