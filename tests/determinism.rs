//! Reproducibility: every public entry point is a pure function of its
//! seed. This is what makes EXPERIMENTS.md re-runnable.

use subsim::prelude::*;
use subsim_diffusion::forward::{mc_influence, CascadeModel};

#[test]
fn full_pipeline_identical_across_runs() {
    let build = || generators::barabasi_albert(500, 4, WeightModel::WcVariant { theta: 3.0 }, 11);
    let run = || {
        let g = build();
        let res = Hist::with_subsim()
            .run(&g, &ImOptions::new(10).seed(13))
            .unwrap();
        let inf = mc_influence(&g, &res.seeds, CascadeModel::Ic, 500, 17);
        (
            res.seeds,
            res.stats.rr_generated,
            res.stats.sentinel_size,
            inf,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_usually_differ() {
    let g = generators::barabasi_albert(500, 4, WeightModel::Wc, 19);
    let a = OpimC::subsim().run(&g, &ImOptions::new(5).seed(1)).unwrap();
    let b = OpimC::subsim().run(&g, &ImOptions::new(5).seed(2)).unwrap();
    // Not a hard guarantee, but RR counts almost surely differ between
    // seeds; equality of everything would indicate a seeding bug.
    assert!(
        a.seeds != b.seeds || a.stats.rr_total_nodes != b.stats.rr_total_nodes,
        "independent seeds produced byte-identical runs"
    );
}

#[test]
fn weight_models_are_deterministic_per_seed() {
    for model in [
        WeightModel::Wc,
        WeightModel::Exponential { lambda: 1.0 },
        WeightModel::Weibull,
        WeightModel::Trivalency,
    ] {
        let a = generators::erdos_renyi_gnm(100, 400, model, 23);
        let b = generators::erdos_renyi_gnm(100, 400, model, 23);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea.len(), eb.len());
        for ((u1, v1, p1), (u2, v2, p2)) in ea.iter().zip(&eb) {
            assert_eq!((u1, v1), (u2, v2));
            assert_eq!(p1, p2, "weights differ under {model:?}");
        }
    }
}
