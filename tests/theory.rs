//! Empirical validation of the paper's theoretical claims.
//!
//! These tests exercise the *theorems*, not just the code: cost scalings
//! (Lemma 3 / Theorem 1), the unbiasedness identity (Lemma 1, covered in
//! crate tests), and the coverage probability of the concentration bounds
//! (Eqs 1–2).

use subsim::core::bounds::{opim_lower_bound, opim_upper_bound};
use subsim::diffusion::{RrContext, RrSampler, RrStrategy};
use subsim::prelude::*;
use subsim::sampling::rng_from_seed;

/// Average generation cost (cost-counter units) per *activated node* —
/// the per-node expansion cost the theorems bound (RR-set sizes themselves
/// vary with density, so per-set cost would conflate the two).
fn cost_per_activation(g: &Graph, strategy: RrStrategy, count: usize, seed: u64) -> f64 {
    let sampler = RrSampler::new(g, strategy);
    let mut ctx = RrContext::new(g.n());
    let mut rng = rng_from_seed(seed);
    let mut nodes = 0usize;
    for _ in 0..count {
        nodes += sampler.generate(&mut ctx, &mut rng);
    }
    ctx.cost as f64 / nodes as f64
}

#[test]
fn theorem1_subsim_cost_independent_of_density_under_wc() {
    // Theorem 1, Case 1: under WC the per-RR cost of SUBSIM is O(𝕀(v*)),
    // with no m/n factor. Densify an Erdős–Rényi graph 8x: vanilla's cost
    // must grow roughly with density, SUBSIM's must stay within a small
    // constant.
    let n = 3_000;
    let mut vanilla = Vec::new();
    let mut subsim = Vec::new();
    for &mult in &[2usize, 4, 8, 16] {
        let g = generators::erdos_renyi_gnm(n, n * mult, WeightModel::Wc, 7);
        vanilla.push(cost_per_activation(&g, RrStrategy::VanillaIc, 20_000, 8));
        subsim.push(cost_per_activation(&g, RrStrategy::SubsimIc, 20_000, 8));
    }
    let vanilla_growth = vanilla.last().unwrap() / vanilla.first().unwrap();
    let subsim_growth = subsim.last().unwrap() / subsim.first().unwrap();
    assert!(
        vanilla_growth > 3.0,
        "vanilla per-activation cost should track density: {vanilla:?}"
    );
    assert!(
        subsim_growth < 1.5,
        "SUBSIM per-activation cost should be density-free: {subsim:?}"
    );
}

#[test]
fn lemma3_uniform_subset_cost_tracks_mu() {
    // Expected draws to sample an h-element subset at rate p is ~1 + h·p,
    // independent of h for fixed μ.
    use subsim::sampling::uniform_subset;
    let mut rng = rng_from_seed(9);
    for &(h, p) in &[(100usize, 0.02f64), (1_000, 0.002), (10_000, 0.0002)] {
        // μ = 2 in all cases; count landed elements as a draw proxy.
        let trials = 5_000;
        let mut landed = 0usize;
        for _ in 0..trials {
            uniform_subset(&mut rng, h, p, |_| landed += 1);
        }
        let mu = h as f64 * p;
        let avg = landed as f64 / trials as f64;
        assert!(
            (avg - mu).abs() < 0.1 * mu,
            "h={h}: avg landings {avg} vs μ={mu}"
        );
    }
}

#[test]
fn eq1_lower_bound_holds_with_high_probability() {
    // Run many independent estimations of a fixed seed set's influence;
    // Eq 1 with δ_l = 0.05 must fail (exceed the true influence) in well
    // under 5% + MC-noise of the trials.
    use subsim::diffusion::{mc_influence, CascadeModel};
    let g = generators::barabasi_albert(300, 4, WeightModel::Wc, 10);
    let seeds = [0u32, 3];
    let truth = mc_influence(&g, &seeds, CascadeModel::Ic, 300_000, 11);
    let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
    let trials = 400;
    let theta = 400u64;
    let mut failures = 0usize;
    let mut rng = rng_from_seed(12);
    let mut ctx = RrContext::new(g.n());
    let mut seed_mask = vec![false; g.n()];
    for &s in &seeds {
        seed_mask[s as usize] = true;
    }
    for _ in 0..trials {
        let mut cov = 0usize;
        for _ in 0..theta {
            sampler.generate(&mut ctx, &mut rng);
            if ctx.last().iter().any(|&v| seed_mask[v as usize]) {
                cov += 1;
            }
        }
        let lb = opim_lower_bound(cov as f64, theta, g.n(), 0.05);
        if lb > truth * 1.001 {
            failures += 1;
        }
    }
    assert!(
        (failures as f64) < 0.08 * trials as f64,
        "Eq 1 failed {failures}/{trials} times at δ = 0.05"
    );
}

#[test]
fn eq2_upper_bound_holds_with_high_probability() {
    // Symmetric check for Eq 2: the certified upper bound on OPT_k must
    // dominate the influence of any concrete k-set (here: the best of a
    // few strong candidates) in all but ~δ of trials.
    use subsim::core::coverage::{greedy_max_coverage, GreedyConfig};
    use subsim::diffusion::{mc_influence, CascadeModel, RrCollection};
    let g = generators::barabasi_albert(300, 4, WeightModel::Wc, 13);
    let k = 3;
    // A strong concrete k-set: MC-greedy's pick (close to optimal).
    let strong = McGreedy::ic(2_000)
        .run(&g, &ImOptions::new(k).seed(14))
        .unwrap()
        .seeds;
    let strong_inf = mc_influence(&g, &strong, CascadeModel::Ic, 300_000, 15);
    let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
    let trials = 300;
    let theta = 400usize;
    let mut rng = rng_from_seed(16);
    let mut ctx = RrContext::new(g.n());
    let mut failures = 0usize;
    for _ in 0..trials {
        let mut rr = RrCollection::new(g.n());
        rr.generate(&sampler, &mut ctx, &mut rng, theta);
        let out = greedy_max_coverage(&rr, &GreedyConfig::standard(k));
        let ub = opim_upper_bound(out.coverage_upper, theta as u64, g.n(), 0.05);
        if ub < strong_inf * 0.999 {
            failures += 1;
        }
    }
    assert!(
        (failures as f64) < 0.08 * trials as f64,
        "Eq 2 failed {failures}/{trials} times at δ = 0.05"
    );
}

#[test]
fn sentinel_cost_drops_with_sentinel_influence() {
    // Section 4 intuition: the more influential the sentinel set, the more
    // RR generations it truncates, and average size falls monotonically
    // (statistically) with sentinel quality.
    let g = generators::barabasi_albert(2_000, 5, WeightModel::WcVariant { theta: 6.0 }, 17);
    let mut by_outdeg: Vec<u32> = (0..g.n() as u32).collect();
    by_outdeg.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v)));
    let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
    let avg_size = |sentinel: &[u32]| {
        let mut ctx = RrContext::new(g.n());
        if !sentinel.is_empty() {
            ctx.set_sentinel(sentinel);
        }
        let mut rng = rng_from_seed(18);
        let mut total = 0usize;
        for _ in 0..3_000 {
            total += sampler.generate(&mut ctx, &mut rng);
        }
        total as f64 / 3_000.0
    };
    let none = avg_size(&[]);
    let weak = avg_size(&by_outdeg[g.n() - 4..]); // low out-degree sentinels
    let strong = avg_size(&by_outdeg[..4]); // hubs
    assert!(
        strong < 0.5 * none,
        "hubs should truncate: {strong} vs {none}"
    );
    assert!(
        strong < weak,
        "hubs {strong} should beat weak sentinels {weak}"
    );
}

#[test]
fn theorem1_case2_log_degree_cost_grows_logarithmically() {
    // Theorem 1, Case 2: with Σp = Θ(log d_in), SUBSIM's per-activation
    // cost grows like log(m/n) while vanilla's grows linearly in m/n.
    let n = 3_000;
    let mut vanilla = Vec::new();
    let mut subsim = Vec::new();
    for &mult in &[4usize, 16] {
        let g = generators::erdos_renyi_gnm(n, n * mult, WeightModel::LogDegree, 19);
        vanilla.push(cost_per_activation(&g, RrStrategy::VanillaIc, 10_000, 20));
        subsim.push(cost_per_activation(&g, RrStrategy::SubsimIc, 10_000, 20));
    }
    // Density quadrupled: vanilla ~4x, SUBSIM should grow far slower
    // (log 16 / log 4 = 2, plus the Σp growth — well under 3x).
    let vg = vanilla[1] / vanilla[0];
    let sg = subsim[1] / subsim[0];
    assert!(vg > 3.0, "vanilla growth {vg} ({vanilla:?})");
    assert!(sg < 3.0, "SUBSIM growth {sg} ({subsim:?})");
    assert!(sg < vg, "SUBSIM must scale better than vanilla");
}

#[test]
fn concurrent_answers_meet_approximation_bound_on_erdos_renyi() {
    // Statistical conformance of the concurrent serving path: a certified
    // answer guarantees 𝕀(S) ≥ (1 - 1/e - ε)·OPT w.h.p. Since the Eq. 2
    // upper bound dominates OPT w.h.p., the checkable form is
    //   𝕀̂(S) ≥ (1 - 1/e - ε) · upper_bound,
    // with 𝕀̂ a Monte-Carlo estimate and a small slack for MC noise.
    use subsim::diffusion::{mc_influence, CascadeModel};
    use subsim::index::{ConcurrentRrIndex, IndexConfig};

    let g = generators::erdos_renyi_gnm(500, 2_000, WeightModel::Wc, 31);
    let index = ConcurrentRrIndex::new(&g, IndexConfig::new(RrStrategy::SubsimIc).seed(32));
    let queries = [(1usize, 0.1f64), (3, 0.1), (5, 0.15), (10, 0.2)];
    let answers: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|&(k, eps)| {
                let index = &index;
                scope.spawn(move || index.query(k, eps, 0.01).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for ans in &answers {
        let spread = mc_influence(&g, &ans.seeds, CascadeModel::Ic, 20_000, 33);
        let target = ans.stats.target_ratio;
        assert!(
            ans.stats.certified_by_bounds,
            "k={} should certify by bounds on this fixture",
            ans.stats.k
        );
        // Eq. 1 validity: the certified lower bound must not overshoot the
        // true spread (5% slack for MC noise).
        assert!(
            spread >= ans.stats.lower_bound * 0.95,
            "k={}: MC spread {spread:.1} below certified lower bound {:.1}",
            ans.stats.k,
            ans.stats.lower_bound
        );
        // The end-to-end guarantee against the OPT-dominating upper bound.
        assert!(
            spread >= target * ans.stats.upper_bound * 0.95,
            "k={}: MC spread {spread:.1} misses (1-1/e-ε)·upper = {:.1}",
            ans.stats.k,
            target * ans.stats.upper_bound
        );
    }
}

#[test]
fn concurrent_answer_meets_known_opt_on_star_graph() {
    // On a hub→leaves star under uniform IC, OPT for k = 1 is exactly the
    // hub's spread 1 + (n-1)·p, so the (1 - 1/e - ε) guarantee is
    // checkable against ground truth rather than a bound.
    use subsim::diffusion::{mc_influence, CascadeModel};
    use subsim::index::{ConcurrentRrIndex, IndexConfig};

    let (n, p, eps) = (200usize, 0.2f64, 0.1f64);
    let g = generators::star_graph(n, WeightModel::UniformIc { p });
    let opt = 1.0 + (n as f64 - 1.0) * p;
    let index = ConcurrentRrIndex::new(&g, IndexConfig::new(RrStrategy::SubsimIc).seed(34));

    // Four threads race the same query on the cold index (acceptance
    // setup); all must select the hub, whose true spread is OPT itself.
    let answers: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let index = &index;
                scope.spawn(move || index.query(1, eps, 0.01).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let target = 1.0 - 1.0 / std::f64::consts::E - eps;
    for ans in &answers {
        assert_eq!(ans.seeds, vec![0], "must pick the hub");
        let spread = mc_influence(&g, &ans.seeds, CascadeModel::Ic, 50_000, 35);
        assert!(
            spread >= target * opt,
            "spread {spread:.1} misses (1-1/e-ε)·OPT = {:.1}",
            target * opt
        );
        // With the hub chosen the guarantee is tight against ground truth:
        // the certificate's lower bound must also respect OPT.
        assert!(
            ans.stats.lower_bound <= opt * 1.05,
            "lower bound {:.1} exceeds true OPT {opt:.1}",
            ans.stats.lower_bound
        );
    }
}
