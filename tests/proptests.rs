//! Property-based tests over the full pipeline.
//!
//! Structural invariants that must hold for *any* random graph, weight
//! model, and seed — complementing the statistical checks in the unit
//! tests.

use proptest::prelude::*;
use subsim::diffusion::{RrContext, RrSampler, RrStrategy};
use subsim::prelude::*;
use subsim::sampling::rng_from_seed;
use subsim_graph::NodeId;

/// Strategy: a random simple directed graph with 2..=40 nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40, 0u64..u64::MAX, 0usize..4).prop_map(|(n, seed, model_idx)| {
        let m = (n * 3).min(n * (n - 1));
        let model = match model_idx {
            0 => WeightModel::Wc,
            1 => WeightModel::WcVariant { theta: 2.5 },
            2 => WeightModel::UniformIc { p: 0.3 },
            _ => WeightModel::Exponential { lambda: 1.0 },
        };
        generators::erdos_renyi_gnm(n, m, model, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_invariants(g in arb_graph()) {
        // Degree sums both equal m.
        let out_sum: usize = (0..g.n() as NodeId).map(|v| g.out_degree(v)).sum();
        let in_sum: usize = (0..g.n() as NodeId).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.m());
        prop_assert_eq!(in_sum, g.m());
        // Every edge appears in both directions of the CSR.
        for (u, v, p) in g.edges() {
            prop_assert!(g.out_neighbors(u).contains(&v));
            prop_assert!(g.in_neighbors(v).contains(&u));
            prop_assert!((0.0..=1.0).contains(&p));
        }
        g.validate().unwrap();
    }

    #[test]
    fn rr_sets_well_formed(g in arb_graph(), seed in 0u64..u64::MAX) {
        for strategy in [RrStrategy::VanillaIc, RrStrategy::SubsimIc, RrStrategy::SubsimBucketIc] {
            let sampler = RrSampler::new(&g, strategy);
            let mut ctx = RrContext::new(g.n());
            let mut rng = rng_from_seed(seed);
            for _ in 0..20 {
                let size = sampler.generate(&mut ctx, &mut rng);
                let set = ctx.last();
                prop_assert_eq!(size, set.len());
                prop_assert!(!set.is_empty());
                prop_assert!(set.iter().all(|&v| (v as usize) < g.n()));
                // No duplicates.
                let mut sorted = set.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), set.len());
            }
        }
    }

    #[test]
    fn sentinel_sets_end_at_sentinel(g in arb_graph(), seed in 0u64..u64::MAX) {
        let sentinel: Vec<NodeId> = vec![0, 1.min(g.n() as NodeId - 1)];
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = RrContext::new(g.n());
        ctx.set_sentinel(&sentinel);
        let mut rng = rng_from_seed(seed);
        for _ in 0..20 {
            sampler.generate(&mut ctx, &mut rng);
            let set = ctx.last();
            // If the set contains a sentinel node, the traversal stopped
            // there: the sentinel member must be the final activation
            // (or the root itself).
            if let Some(pos) = set.iter().position(|v| sentinel.contains(v)) {
                prop_assert!(
                    pos + 1 == set.len() || pos == 0,
                    "sentinel at {pos} inside set of len {}", set.len()
                );
            }
        }
    }

    #[test]
    fn opim_seeds_valid_on_arbitrary_graphs(g in arb_graph(), seed in 0u64..1000) {
        let k = (g.n() / 2).max(1);
        let res = OpimC::subsim().run(&g, &ImOptions::new(k).seed(seed)).unwrap();
        prop_assert_eq!(res.k(), k);
        let mut s = res.seeds.clone();
        s.sort_unstable();
        s.dedup();
        prop_assert_eq!(s.len(), k);
        prop_assert!(res.stats.lower_bound <= res.stats.upper_bound * (1.0 + 1e-9));
    }

    #[test]
    fn hist_sentinel_is_prefix_of_final_seeds(g in arb_graph(), seed in 0u64..1000) {
        let k = (g.n() / 3).max(1);
        let res = Hist::with_subsim().run(&g, &ImOptions::new(k).seed(seed)).unwrap();
        prop_assert_eq!(res.k(), k);
        let b = res.stats.sentinel_size;
        prop_assert!(b >= 1 && b <= k);
    }

    #[test]
    fn coverage_is_monotone_in_seed_set(g in arb_graph(), seed in 0u64..u64::MAX) {
        use subsim::diffusion::RrCollection;
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = RrContext::new(g.n());
        let mut rng = rng_from_seed(seed);
        let mut rr = RrCollection::new(g.n());
        rr.generate(&sampler, &mut ctx, &mut rng, 50);
        let nodes: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let mut prev = 0;
        for end in 1..=nodes.len().min(8) {
            let cov = rr.coverage_of(&nodes[..end]);
            prop_assert!(cov >= prev, "coverage shrank: {cov} < {prev}");
            prev = cov;
        }
        prop_assert!(prev <= rr.len());
    }
}
