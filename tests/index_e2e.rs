//! End-to-end: the RR-sketch index through the `subsim` facade — amortized
//! serving, agreement with one-shot OPIM-C, and snapshot persistence.

use subsim::prelude::*;

fn test_graph(seed: u64) -> Graph {
    generators::barabasi_albert(400, 4, WeightModel::Wc, seed)
}

#[test]
fn warm_queries_reuse_the_pool_across_k() {
    let g = test_graph(1);
    let mut index = RrIndex::new(&g, IndexConfig::new(RrStrategy::SubsimIc).seed(3));
    // Ascending k at fixed ε: the pool grows monotonically, so once the
    // largest k has certified, every repeat is served without generation.
    for &k in &[10, 25, 50] {
        index.query(k, 0.1, 0.01).unwrap();
    }
    for &k in &[10, 25, 50] {
        let ans = index.query(k, 0.1, 0.01).unwrap();
        assert_eq!(ans.stats.fresh_sets, 0, "k={k} should be fully warm");
        assert_eq!(ans.seeds.len(), k);
        assert!(ans.stats.certified_by_bounds, "k={k} lost its certificate");
    }
    let c = index.counters();
    assert_eq!(c.queries, 6);
    assert!(
        c.cache_hit_ratio() > 0.5,
        "most consumed sets should be reused, got {:.3}",
        c.cache_hit_ratio()
    );
}

#[test]
fn index_certificate_matches_opim_quality() {
    let g = test_graph(2);
    let (k, eps, delta) = (20, 0.1, 0.01);
    let mut index = RrIndex::new(&g, IndexConfig::new(RrStrategy::SubsimIc).seed(4));
    let ans = index.query(k, eps, delta).unwrap();
    assert!(ans.stats.ratio() > 1.0 - (-1.0f64).exp() - eps);

    // One-shot OPIM-C on the same instance certifies the same target; both
    // seed sets should be high-quality (similar certified lower bounds).
    let opts = ImOptions::new(k).epsilon(eps).delta(delta).seed(4);
    let result = OpimC::subsim().run(&g, &opts).unwrap();
    let opim_lb = result.stats.lower_bound;
    assert!(
        ans.stats.lower_bound > 0.5 * opim_lb,
        "index lower bound {} vs OPIM-C {}",
        ans.stats.lower_bound,
        opim_lb
    );
}

#[test]
fn snapshot_survives_restart_via_file() {
    let g = test_graph(3);
    let path = std::env::temp_dir().join(format!("subsim_e2e_idx_{}.bin", std::process::id()));
    let first = {
        let mut index = RrIndex::new(&g, IndexConfig::new(RrStrategy::SubsimIc).seed(5));
        let ans = index.query(15, 0.1, 0.01).unwrap();
        index.save_to_path(&path).unwrap();
        ans
    };
    let mut restored = RrIndex::load_from_path(&g, &path).unwrap();
    let again = restored.query(15, 0.1, 0.01).unwrap();
    assert_eq!(
        again.seeds, first.seeds,
        "snapshot must reproduce identical seeds"
    );
    assert_eq!(again.stats.fresh_sets, 0);
    std::fs::remove_file(path).ok();
}
