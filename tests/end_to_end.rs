//! Cross-crate integration tests: every algorithm against ground truth.

use subsim::prelude::*;
use subsim_diffusion::forward::{mc_influence, CascadeModel};
use subsim_graph::{GraphBuilder, NodeId};

/// Brute-force the optimal size-k seed set by exhaustive forward MC.
fn brute_force_opt(g: &Graph, k: usize, runs: usize) -> f64 {
    let nodes: Vec<NodeId> = (0..g.n() as NodeId).collect();
    let mut best = 0.0f64;
    let mut stack: Vec<NodeId> = Vec::new();
    fn recurse(
        g: &Graph,
        nodes: &[NodeId],
        start: usize,
        k: usize,
        stack: &mut Vec<NodeId>,
        runs: usize,
        best: &mut f64,
    ) {
        if stack.len() == k {
            let inf = mc_influence(g, stack, CascadeModel::Ic, runs, 7);
            if inf > *best {
                *best = inf;
            }
            return;
        }
        for i in start..nodes.len() {
            stack.push(nodes[i]);
            recurse(g, nodes, i + 1, k, stack, runs, best);
            stack.pop();
        }
    }
    recurse(g, &nodes, 0, k, &mut stack, runs, &mut best);
    best
}

#[test]
fn all_algorithms_approximate_the_brute_force_optimum() {
    // Tiny graph (12 nodes) where the optimum is exactly computable.
    let g = generators::erdos_renyi_gnm(12, 40, WeightModel::WcVariant { theta: 2.0 }, 71);
    let k = 2;
    let opt = brute_force_opt(&g, k, 4_000);
    let target = (1.0 - (-1.0f64).exp() - 0.1) * opt;

    let algorithms: Vec<(&str, Box<dyn ImAlgorithm>)> = vec![
        ("mc-greedy", Box::new(McGreedy::ic(2_000))),
        ("imm", Box::new(Imm::vanilla())),
        ("ssa", Box::new(Ssa::vanilla())),
        ("opim-c", Box::new(OpimC::vanilla())),
        ("subsim", Box::new(OpimC::subsim())),
        ("hist", Box::new(Hist::with_subsim())),
    ];
    for (name, alg) in algorithms {
        let res = alg.run(&g, &ImOptions::new(k).seed(73)).unwrap();
        let inf = mc_influence(&g, &res.seeds, CascadeModel::Ic, 20_000, 79);
        assert!(
            inf >= target - 0.35, // MC noise allowance
            "{name}: influence {inf:.2} below (1-1/e-ε)·OPT = {target:.2} (OPT {opt:.2})"
        );
    }
}

#[test]
fn rr_algorithms_match_mc_greedy_quality_on_midsize_graph() {
    let g = generators::barabasi_albert(200, 4, WeightModel::Wc, 83);
    let k = 3;
    let reference = McGreedy::ic(1_500)
        .run(&g, &ImOptions::new(k).seed(89))
        .unwrap();
    let ref_inf = mc_influence(&g, &reference.seeds, CascadeModel::Ic, 30_000, 97);
    for alg in [OpimC::subsim(), OpimC::vanilla()] {
        let res = alg.run(&g, &ImOptions::new(k).seed(89)).unwrap();
        let inf = mc_influence(&g, &res.seeds, CascadeModel::Ic, 30_000, 97);
        assert!(
            inf >= 0.9 * ref_inf,
            "{}: {inf:.2} vs mc-greedy {ref_inf:.2}",
            alg.name()
        );
    }
}

#[test]
fn hist_matches_opim_across_influence_regimes() {
    for theta in [1.0, 3.0, 6.0] {
        let g = generators::barabasi_albert(600, 5, WeightModel::WcVariant { theta }, 101);
        let opts = ImOptions::new(15).seed(103);
        let hist = Hist::with_subsim().run(&g, &opts).unwrap();
        let opim = OpimC::subsim().run(&g, &opts).unwrap();
        let ih = mc_influence(&g, &hist.seeds, CascadeModel::Ic, 4_000, 107);
        let io = mc_influence(&g, &opim.seeds, CascadeModel::Ic, 4_000, 107);
        assert!(ih >= 0.85 * io, "θ={theta}: HIST {ih:.1} vs OPIM {io:.1}");
    }
}

#[test]
fn lt_pipeline_end_to_end() {
    let g = generators::barabasi_albert(400, 5, WeightModel::Lt, 109);
    let res = OpimC::lt().run(&g, &ImOptions::new(10).seed(113)).unwrap();
    assert_eq!(res.k(), 10);
    let inf = mc_influence(&g, &res.seeds, CascadeModel::Lt, 5_000, 127);
    // Ten seeds must reach well beyond themselves on a connected graph.
    assert!(inf > 15.0, "LT influence {inf}");
    // And beat a random seed set decisively.
    let random: Vec<NodeId> = (100..110).collect();
    let base = mc_influence(&g, &random, CascadeModel::Lt, 5_000, 127);
    assert!(inf > base, "selected {inf} vs random {base}");
}

#[test]
fn seeds_are_valid_nodes_and_distinct() {
    let g = generators::rmat(9, 6_000, WeightModel::Wc, 131);
    let algorithms: Vec<Box<dyn ImAlgorithm>> = vec![
        Box::new(Imm::vanilla()),
        Box::new(Ssa::vanilla()),
        Box::new(OpimC::subsim()),
        Box::new(Hist::with_subsim()),
    ];
    for alg in algorithms {
        let res = alg.run(&g, &ImOptions::new(25).seed(137)).unwrap();
        assert_eq!(res.k(), 25, "{}", alg.name());
        let mut s = res.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 25, "{}: duplicate seeds", alg.name());
        assert!(s.iter().all(|&v| (v as usize) < g.n()));
    }
}

#[test]
fn k_equals_n_selects_everything() {
    let g = generators::cycle_graph(6, WeightModel::Wc);
    let res = OpimC::subsim()
        .run(&g, &ImOptions::new(6).seed(139))
        .unwrap();
    let mut s = res.seeds.clone();
    s.sort_unstable();
    assert_eq!(s, (0..6).collect::<Vec<_>>());
}

#[test]
fn hist_under_lt_model() {
    // Sentinel truncation composes with LT reverse paths too: the
    // truncated path still contains the sentinel node, so coverage of
    // supersets of the sentinel stays exact.
    use subsim::diffusion::RrStrategy;
    let g = generators::barabasi_albert(400, 5, WeightModel::Lt, 141);
    let res = Hist::with_strategy(RrStrategy::Lt)
        .run(&g, &ImOptions::new(10).seed(142))
        .unwrap();
    assert_eq!(res.k(), 10);
    let inf = mc_influence(&g, &res.seeds, CascadeModel::Lt, 5_000, 143);
    let opim = OpimC::lt().run(&g, &ImOptions::new(10).seed(142)).unwrap();
    let inf_opim = mc_influence(&g, &opim.seeds, CascadeModel::Lt, 5_000, 143);
    assert!(inf > 0.85 * inf_opim, "HIST-LT {inf} vs OPIM-LT {inf_opim}");
}

#[test]
fn dssa_and_tim_select_reasonable_seeds() {
    let g = generators::barabasi_albert(300, 4, WeightModel::Wc, 144);
    let opts = ImOptions::new(5).epsilon(0.4).delta(0.1).seed(145);
    let reference = OpimC::subsim().run(&g, &opts).unwrap();
    let ref_inf = mc_influence(&g, &reference.seeds, CascadeModel::Ic, 10_000, 146);
    for alg in [
        Box::new(Dssa::vanilla()) as Box<dyn ImAlgorithm>,
        Box::new(TimPlus::vanilla()),
        Box::new(Celf::ic(400)),
    ] {
        let res = alg.run(&g, &opts).unwrap();
        let inf = mc_influence(&g, &res.seeds, CascadeModel::Ic, 10_000, 146);
        assert!(
            inf > 0.85 * ref_inf,
            "{}: {inf:.1} vs reference {ref_inf:.1}",
            alg.name()
        );
    }
}

#[test]
fn preprocessing_pipeline_composes() {
    // Realistic pipeline: load -> largest WCC -> seed -> map ids back.
    use subsim::graph::transform::largest_wcc;
    let g = GraphBuilder::new(50)
        .edges((0..30u32).flat_map(|v| [(v, (v + 1) % 30), (v, (v + 7) % 30)]))
        .edges([(40, 41), (41, 42)])
        .weights(WeightModel::Wc)
        .build()
        .unwrap();
    let (sub, map) = largest_wcc(&g);
    assert_eq!(sub.n(), 30);
    let res = OpimC::subsim()
        .run(&sub, &ImOptions::new(3).seed(147))
        .unwrap();
    let original_ids: Vec<u32> = res.seeds.iter().map(|&v| map[v as usize]).collect();
    assert!(original_ids.iter().all(|&v| v < 30));
}
