//! End-to-end tests of the `subsim` CLI binary.

use std::io::Write;
use std::process::Command;

fn write_temp_graph(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("subsim_cli_{name}_{}.txt", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_subsim"))
}

#[test]
fn help_exits_nonzero_with_usage() {
    let out = cli().arg("--help").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn missing_required_flags_fail() {
    let out = cli().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--graph"));
}

#[test]
fn unknown_flag_fails() {
    let out = cli().args(["--bogus", "1"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn selects_seeds_from_edge_list() {
    // Star: hub 0 feeds 9 leaves; any sane algorithm picks 0 first.
    let mut edges = String::new();
    for leaf in 1..10 {
        edges.push_str(&format!("0 {leaf}\n"));
    }
    let path = write_temp_graph("star", &edges);
    let out = cli()
        .args([
            "--graph",
            path.to_str().unwrap(),
            "--k",
            "1",
            "--model",
            "uniform",
            "--p",
            "0.9",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let seeds: Vec<&str> = std::str::from_utf8(&out.stdout)
        .unwrap()
        .split_whitespace()
        .collect();
    assert_eq!(seeds, vec!["0"]);
    std::fs::remove_file(path).ok();
}

#[test]
fn respects_explicit_probabilities_and_evaluate() {
    let path = write_temp_graph("weighted", "0 1 1.0\n1 2 1.0\n2 3 1.0\n");
    let out = cli()
        .args([
            "--graph",
            path.to_str().unwrap(),
            "--k",
            "1",
            "--evaluate",
            "200",
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    // Seeding the chain head influences all 4 nodes deterministically.
    assert!(err.contains("estimated influence: 4.0"), "stderr: {err}");
    std::fs::remove_file(path).ok();
}

#[test]
fn rejects_malformed_graph_file() {
    let path = write_temp_graph("bad", "0 not_a_node\n");
    let out = cli()
        .args(["--graph", path.to_str().unwrap(), "--k", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));
    std::fs::remove_file(path).ok();
}

#[test]
fn rr_out_then_rr_in_round_trips() {
    let mut edges = String::new();
    for leaf in 1..10 {
        edges.push_str(&format!("0 {leaf}\n"));
    }
    let graph = write_temp_graph("rr_roundtrip", &edges);
    let rr_file = std::env::temp_dir().join(format!("subsim_cli_rr_{}.bin", std::process::id()));
    let base = [
        "--graph",
        graph.to_str().unwrap(),
        "--k",
        "1",
        "--model",
        "uniform",
        "--p",
        "0.9",
        "--rr-count",
        "2000",
    ];

    let out = cli()
        .args(base)
        .args(["--rr-out", rr_file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let seeds: Vec<&str> = std::str::from_utf8(&out.stdout)
        .unwrap()
        .split_whitespace()
        .collect();
    assert_eq!(seeds, vec!["0"], "hub must win on the saved pool");
    assert!(String::from_utf8_lossy(&out.stderr).contains("wrote 2000 RR sets"));

    let out = cli()
        .args(base)
        .args(["--rr-in", rr_file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let seeds: Vec<&str> = std::str::from_utf8(&out.stdout)
        .unwrap()
        .split_whitespace()
        .collect();
    assert_eq!(seeds, vec!["0"], "hub must win on the reloaded pool");
    assert!(String::from_utf8_lossy(&out.stderr).contains("loaded 2000 RR sets"));

    // The saved pool is bound to the node count: a different graph refuses it.
    let bigger = write_temp_graph("rr_roundtrip_bigger", &format!("{edges}0 10\n"));
    let out = cli()
        .args(["--graph", bigger.to_str().unwrap(), "--k", "1"])
        .args(["--rr-in", rr_file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("nodes"));

    std::fs::remove_file(graph).ok();
    std::fs::remove_file(bigger).ok();
    std::fs::remove_file(rr_file).ok();
}

#[test]
fn query_server_answers_stdin_queries() {
    let mut edges = String::new();
    for leaf in 1..10 {
        edges.push_str(&format!("0 {leaf}\n"));
    }
    let graph = write_temp_graph("server", &edges);
    let idx_file = std::env::temp_dir().join(format!("subsim_cli_idx_{}.bin", std::process::id()));
    let args = [
        "query-server",
        "--graph",
        graph.to_str().unwrap(),
        "--model",
        "uniform",
        "--p",
        "0.9",
        "--index-file",
        idx_file.to_str().unwrap(),
    ];

    let run = |stdin: &str| {
        let mut child = cli()
            .args(args)
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        child
            .stdin
            .take()
            .unwrap()
            .write_all(stdin.as_bytes())
            .unwrap();
        child.wait_with_output().unwrap()
    };

    // First run: two queries; the second reuses the pool the first built.
    let out = run("1 0.1\n# a comment\n\n1\n");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(lines, vec!["0", "0"], "hub answers both queries");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("0 fresh"), "second query must be warm: {err}");
    assert!(err.contains("served 2 queries"), "stderr: {err}");
    assert!(idx_file.exists(), "--index-file must persist the pool");

    // Second run: the snapshot serves the query with no generation at all.
    let out = run("1 0.1\n");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("index: loaded"), "stderr: {err}");
    assert!(
        err.contains("0 fresh"),
        "loaded pool must serve warm: {err}"
    );
    assert_eq!(std::str::from_utf8(&out.stdout).unwrap().trim(), "0");

    std::fs::remove_file(graph).ok();
    std::fs::remove_file(idx_file).ok();
}

#[test]
fn lt_model_routes_to_lt_algorithm() {
    let mut edges = String::new();
    for leaf in 1..8 {
        edges.push_str(&format!("0 {leaf}\n"));
    }
    let path = write_temp_graph("lt", &edges);
    let out = cli()
        .args([
            "--graph",
            path.to_str().unwrap(),
            "--k",
            "1",
            "--model",
            "lt",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("OPIM-C(LT)"));
    std::fs::remove_file(path).ok();
}

#[test]
fn query_server_reports_per_line_errors_and_keeps_serving() {
    let mut edges = String::new();
    for leaf in 1..10 {
        edges.push_str(&format!("0 {leaf}\n"));
    }
    let graph = write_temp_graph("server_robust", &edges);
    let mut child = cli()
        .args([
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--model",
            "uniform",
            "--p",
            "0.9",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // k = 0, non-numeric k, ε ≤ 0: each is a per-line error; the valid
    // query between and after them must still be answered.
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"0 0.1\n1 0.1\nabc\n2 -0.5\n1 0.1\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "malformed lines must not kill the server: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(lines, vec!["0", "0"], "valid queries still answered");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("\"0 0.1\" failed") && err.contains('k'),
        "k = 0 must fail per-line: {err}"
    );
    assert!(err.contains("bad query \"abc\""), "stderr: {err}");
    assert!(
        err.contains("\"2 -0.5\" failed") && err.contains("epsilon"),
        "ε ≤ 0 must fail per-line: {err}"
    );
    assert!(err.contains("served 2 queries"), "stderr: {err}");
    std::fs::remove_file(graph).ok();
}

#[test]
fn query_server_threaded_keeps_input_order_and_dumps_stats() {
    let mut edges = String::new();
    for leaf in 1..10 {
        edges.push_str(&format!("0 {leaf}\n"));
    }
    let graph = write_temp_graph("server_threads", &edges);
    let stats = std::env::temp_dir().join(format!("subsim_cli_stats_{}.json", std::process::id()));
    let mut child = cli()
        .args([
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--model",
            "uniform",
            "--p",
            "0.9",
            "--threads",
            "4",
            "--stats-out",
            stats.to_str().unwrap(),
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // k alternates so answers differ in shape; order must match input.
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"1 0.1\n2 0.1\n1 0.1\n2 0.1\n1 0.1\n2 0.1\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(lines.len(), 6);
    for (i, line) in lines.iter().enumerate() {
        let want_k = if i % 2 == 0 { 1 } else { 2 };
        assert_eq!(
            line.split_whitespace().count(),
            want_k,
            "line {i} out of order: {lines:?}"
        );
        assert!(line.starts_with('0'), "hub first on every line: {line}");
    }
    let json = std::fs::read_to_string(&stats).expect("--stats-out must write the file");
    for key in [
        "\"queries\":6",
        "\"cache_hit_ratio\":",
        "\"latency_p50_ns\":",
        "\"latency_buckets\":[",
        "\"snapshot_publishes\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    std::fs::remove_file(graph).ok();
    std::fs::remove_file(stats).ok();
}

#[test]
fn query_server_rejects_truncated_index_file_by_name() {
    let mut edges = String::new();
    for leaf in 1..10 {
        edges.push_str(&format!("0 {leaf}\n"));
    }
    let graph = write_temp_graph("server_trunc", &edges);
    let idx_file =
        std::env::temp_dir().join(format!("subsim_cli_trunc_{}.bin", std::process::id()));
    let args = [
        "query-server",
        "--graph",
        graph.to_str().unwrap(),
        "--model",
        "uniform",
        "--p",
        "0.9",
        "--index-file",
        idx_file.to_str().unwrap(),
    ];
    let run = |stdin: &str| {
        let mut child = cli()
            .args(args)
            .args(["--threads", "4"])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        // The refusing run exits before reading stdin; EPIPE here is fine.
        child.stdin.take().unwrap().write_all(stdin.as_bytes()).ok();
        child.wait_with_output().unwrap()
    };

    let out = run("1 0.1\n");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&idx_file).unwrap();
    assert!(bytes.len() > 64, "index file suspiciously small");
    // Chop mid-blob: the snapshot reader must name the damage rather than
    // panic or serve a half pool.
    std::fs::write(&idx_file, &bytes[..bytes.len() * 3 / 4]).unwrap();

    let out = run("1 0.1\n");
    assert!(!out.status.success(), "truncated snapshot must be refused");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("snapshot rejected") && err.contains("truncated"),
        "want a named snapshot error, got: {err}"
    );
    std::fs::remove_file(graph).ok();
    std::fs::remove_file(idx_file).ok();
}

#[test]
fn query_server_serves_unix_socket_until_shutdown() {
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;

    let mut edges = String::new();
    for leaf in 1..10 {
        edges.push_str(&format!("0 {leaf}\n"));
    }
    let graph = write_temp_graph("server_socket", &edges);
    let sock = std::env::temp_dir().join(format!("subsim_cli_sock_{}.s", std::process::id()));
    let child = cli()
        .args([
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--model",
            "uniform",
            "--p",
            "0.9",
            "--threads",
            "2",
            "--socket",
            sock.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();

    // Wait for the listener to come up (bounded poll, no fixed sleep).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let stream = loop {
        match UnixStream::connect(&sock) {
            Ok(s) => break s,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) => panic!("server socket never came up: {e}"),
        }
    };
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    stream.write_all(b"1 0.1\n1 0.1\n").unwrap();
    let mut line = String::new();
    for _ in 0..2 {
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "0", "hub answers over the socket");
    }
    stream.write_all(b"shutdown\n").unwrap();
    drop(stream);

    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("served 2 queries"), "stderr: {err}");
    assert!(!sock.exists(), "socket file must be cleaned up at exit");
    std::fs::remove_file(graph).ok();
}

#[test]
fn apply_delta_mutates_graph_and_repairs_index() {
    let graph = write_temp_graph(
        "delta_batch",
        "0 1 0.5\n1 2 0.5\n2 3 0.5\n3 0 0.5\n0 2 0.3\n",
    );
    let delta = write_temp_graph("delta_ops", "+ 1 3 0.9\n~ 0 1 0.2\n- 2 3\n");
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let idx = tmp.join(format!("subsim_cli_delta_idx_{pid}.bin"));
    let idx2 = tmp.join(format!("subsim_cli_delta_idx2_{pid}.bin"));
    let out_graph = tmp.join(format!("subsim_cli_delta_out_{pid}.txt"));

    // Build a pool snapshot with the static server, then repair it.
    let mut child = cli()
        .args([
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--warm",
            "64",
            "--seed",
            "7",
            "--index-file",
            idx.to_str().unwrap(),
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    drop(child.stdin.take());
    assert!(child.wait_with_output().unwrap().status.success());

    let out = cli()
        .args([
            "apply-delta",
            "--graph",
            graph.to_str().unwrap(),
            "--delta",
            delta.to_str().unwrap(),
            "--index-in",
            idx.to_str().unwrap(),
            "--index-out",
            idx2.to_str().unwrap(),
            "--out",
            out_graph.to_str().unwrap(),
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("repair: version 1"), "stderr: {err}");
    assert!(idx2.exists(), "--index-out must write the repaired pool");
    let written = std::fs::read_to_string(&out_graph).unwrap();
    assert!(written.contains("1 3 0.9"), "insert missing: {written}");
    assert!(written.contains("0 1 0.2"), "reweight missing: {written}");
    assert!(!written.contains("2 3 0.5"), "delete survived: {written}");

    // A delta file with no ops is a hard error, not a silent no-op.
    let empty = write_temp_graph("delta_empty", "# nothing\n");
    let out = cli()
        .args([
            "apply-delta",
            "--graph",
            graph.to_str().unwrap(),
            "--delta",
            empty.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    for p in [&graph, &delta, &idx, &idx2, &out_graph, &empty] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn query_server_delta_stream_applies_ops_between_queries() {
    let graph = write_temp_graph("delta_stream", "0 1 0.5\n1 2 0.5\n2 3 0.5\n3 0 0.5\n");
    let idx = std::env::temp_dir().join(format!(
        "subsim_cli_delta_stream_idx_{}.bin",
        std::process::id()
    ));
    let mut child = cli()
        .args([
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--delta-stream",
            "--warm",
            "64",
            "--seed",
            "7",
            "--index-file",
            idx.to_str().unwrap(),
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"2\ndelta + 1 3 0.9\n2\ndelta oops\nshutdown\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(lines.len(), 2, "both queries must answer: {lines:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("delta applied: version 1"), "stderr: {err}");
    assert!(err.contains("rejected"), "bad op must be rejected: {err}");
    assert!(err.contains("applied 1 deltas"), "stderr: {err}");
    assert!(err.contains("graph version 1"), "stderr: {err}");

    // The saved snapshot belongs to the *mutated* graph: reloading against
    // the original edge list is a typed fingerprint rejection.
    let out = cli()
        .args([
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--delta-stream",
            "--index-file",
            idx.to_str().unwrap(),
        ])
        .stdin(std::process::Stdio::null())
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("fingerprint"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_file(graph).ok();
    std::fs::remove_file(idx).ok();
}

#[test]
fn query_server_delta_stream_stale_pins_fail_per_line_and_serving_continues() {
    let graph = write_temp_graph("delta_stale", "0 1 0.5\n1 2 0.5\n2 3 0.5\n3 0 0.5\n");
    let mut child = cli()
        .args([
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--delta-stream",
            "--warm",
            "64",
            "--seed",
            "11",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // A pin at the live version answers; after the delta bumps to 1 the
    // same pin is stale (typed, per-line); the new pin and an unpinned
    // query keep serving.
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"2 0.2 @0\ndelta ~ 0 1 0.9\n2 0.2 @0\n2 0.2 @1\n2 0.2\nshutdown\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(lines.len(), 3, "three live queries must answer: {lines:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("delta applied: version 1"), "stderr: {err}");
    assert!(
        err.contains("stale version: requested 0, index is at 1"),
        "stale pin must fail with the typed per-line error: {err}"
    );
    assert!(err.contains("served 3 queries"), "stderr: {err}");
    std::fs::remove_file(graph).ok();
}

#[test]
fn query_server_delta_stream_survives_eof_without_shutdown() {
    let graph = write_temp_graph("delta_eof", "0 1 0.5\n1 2 0.5\n2 3 0.5\n3 0 0.5\n");
    let mut child = cli()
        .args([
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--delta-stream",
            "--warm",
            "64",
            "--seed",
            "13",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // The stream dies mid-session: a query, a delta, then a final query
    // with no trailing newline and no `shutdown` before stdin closes.
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"2 0.2\ndelta + 1 3 0.9\n2 0.2")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "EOF must end the session cleanly: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(lines.len(), 2, "both queries answer before EOF: {lines:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("delta applied: version 1"), "stderr: {err}");
    assert!(err.contains("served 2 queries"), "stderr: {err}");
    std::fs::remove_file(graph).ok();
}

#[test]
fn query_server_delta_stream_malformed_ops_are_per_line_and_typed() {
    let graph = write_temp_graph("delta_malformed", "0 1 0.5\n1 2 0.5\n2 3 0.5\n3 0 0.5\n");
    let mut child = cli()
        .args([
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--delta-stream",
            "--warm",
            "64",
            "--seed",
            "17",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // Three distinct bad shapes — an unknown op, an op against a missing
    // edge, and an empty op — interleaved with queries that must all
    // still answer.
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"2 0.2\ndelta ? 0 1\ndelta - 0 2\ndelta \n2 0.2\n1 @zzz\nshutdown\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(lines.len(), 2, "good queries must answer: {lines:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    // Every failure is its own line naming the offending input.
    assert!(
        err.contains("\"delta ? 0 1\" rejected") || err.contains("\"? 0 1\" rejected"),
        "stderr: {err}"
    );
    assert!(err.contains("does not exist"), "missing-edge delete: {err}");
    assert!(err.contains("bad query"), "bad pin token: {err}");
    assert!(
        !err.contains("delta applied:"),
        "no malformed op may mutate the graph: {err}"
    );
    std::fs::remove_file(graph).ok();
}

#[test]
fn query_server_without_delta_stream_rejects_delta_lines() {
    let graph = write_temp_graph("delta_frozen", "0 1 0.5\n1 2 0.5\n");
    let mut child = cli()
        .args([
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--model",
            "uniform",
            "--p",
            "0.9",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"delta + 0 1 0.5\n1\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--delta-stream"), "stderr: {err}");
    assert!(err.contains("served 1 queries"), "stderr: {err}");
    std::fs::remove_file(graph).ok();
}

/// `--shards N` is a pure parallelization knob: the stdout of a
/// delta-stream session is byte-identical to the single-shard run.
#[test]
fn query_server_sharded_stdout_matches_single_shard() {
    let graph = write_temp_graph("sharded_lockstep", "0 1 0.5\n1 2 0.5\n2 3 0.5\n3 0 0.5\n");
    let script = b"2\n3\ndelta + 1 3 0.9\n2\nshutdown\n";
    let run = |shards: &str| {
        let mut child = cli()
            .args([
                "query-server",
                "--graph",
                graph.to_str().unwrap(),
                "--delta-stream",
                "--warm",
                "64",
                "--seed",
                "7",
                "--shards",
                shards,
            ])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        child.stdin.take().unwrap().write_all(script).unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "shards={shards} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };
    let single = run("1");
    let sharded = run("3");
    assert_eq!(
        single.stdout, sharded.stdout,
        "sharded answers diverge from single-shard"
    );
    let err = String::from_utf8_lossy(&sharded.stderr);
    assert!(err.contains("3 shards"), "stderr: {err}");
    assert!(err.contains("applied 1 deltas"), "stderr: {err}");
    std::fs::remove_file(graph).ok();
}

/// `--framed --socket` serves the length-prefixed protocol: pipelined
/// frames answer in order, malformed lines get typed error frames, and
/// the socket file is removed on graceful shutdown.
#[test]
fn query_server_framed_socket_answers_pipelined_frames() {
    use std::io::Read;
    use std::os::unix::net::UnixStream;

    let mut edges = String::new();
    for leaf in 1..10 {
        edges.push_str(&format!("0 {leaf}\n"));
    }
    let graph = write_temp_graph("framed_socket", &edges);
    let sock = std::env::temp_dir().join(format!("subsim_cli_framed_{}.s", std::process::id()));
    let child = cli()
        .args([
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--model",
            "uniform",
            "--p",
            "0.9",
            "--shards",
            "2",
            "--framed",
            "--socket",
            sock.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let mut stream = loop {
        match UnixStream::connect(&sock) {
            Ok(s) => break s,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) => panic!("framed socket never came up: {e}"),
        }
    };
    let send = |stream: &mut UnixStream, line: &str| {
        let mut buf = (line.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(line.as_bytes());
        stream.write_all(&buf).unwrap();
    };
    let recv = |stream: &mut UnixStream| {
        let mut header = [0u8; 4];
        stream.read_exact(&mut header).unwrap();
        let mut payload = vec![0u8; u32::from_be_bytes(header) as usize];
        stream.read_exact(&mut payload).unwrap();
        String::from_utf8(payload).unwrap()
    };
    // Pipeline everything before reading anything.
    send(&mut stream, "1 0.1");
    send(&mut stream, "bogus");
    send(&mut stream, "1 0.1");
    assert_eq!(recv(&mut stream), "0", "hub answers over the framed socket");
    assert!(recv(&mut stream).starts_with("err malformed line:"));
    assert_eq!(recv(&mut stream), "0");
    send(&mut stream, "shutdown");
    assert_eq!(recv(&mut stream), "ok shutdown");
    drop(stream);

    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("framed server:"), "stderr: {err}");
    assert!(err.contains("graceful shutdown"), "stderr: {err}");
    assert!(!sock.exists(), "socket file must be cleaned up at exit");
    std::fs::remove_file(graph).ok();
}

/// A regular file squatting on the socket path is refused, not deleted;
/// a stale socket left by a dead server is unlinked and reused.
#[test]
fn query_server_socket_startup_handles_stale_and_foreign_paths() {
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;

    let graph = write_temp_graph("socket_stale", "0 1\n0 2\n0 3\n");
    let sock = std::env::temp_dir().join(format!("subsim_cli_stale_{}.s", std::process::id()));

    // A non-socket file at the path is an error and survives the attempt.
    std::fs::write(&sock, b"precious").unwrap();
    let out = cli()
        .args([
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--socket",
            sock.to_str().unwrap(),
        ])
        .stdin(std::process::Stdio::null())
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("refusing to unlink"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(&sock).unwrap(), b"precious");
    std::fs::remove_file(&sock).unwrap();

    // A stale socket (crashed server) is unlinked and the bind succeeds.
    drop(std::os::unix::net::UnixListener::bind(&sock).unwrap());
    assert!(sock.exists(), "stale socket file left behind");
    let child = cli()
        .args([
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--model",
            "uniform",
            "--p",
            "0.9",
            "--socket",
            sock.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let stream = loop {
        match UnixStream::connect(&sock) {
            Ok(s) => break s,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) => panic!("server never rebound over the stale socket: {e}"),
        }
    };
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    stream.write_all(b"1 0.1\nshutdown\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "0");
    drop(stream);
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!sock.exists(), "socket file must be cleaned up at exit");
    std::fs::remove_file(graph).ok();
}

/// `--index-file` round-trips through any shard count: a pool saved by a
/// 3-shard sentinel server reloads into 2-shard and single-shard servers
/// and serves warm with identical answers.
#[test]
fn query_server_sharded_index_file_round_trips() {
    let mut edges = String::new();
    for leaf in 1..10 {
        edges.push_str(&format!("0 {leaf}\n"));
    }
    let graph = write_temp_graph("sharded_idx", &edges);
    let idx_file =
        std::env::temp_dir().join(format!("subsim_cli_sharded_idx_{}.bin", std::process::id()));
    let run = |shards: &str, warm: &str| {
        let mut child = cli()
            .args([
                "query-server",
                "--graph",
                graph.to_str().unwrap(),
                "--model",
                "uniform",
                "--p",
                "0.9",
                "--seed",
                "5",
                "--sentinels",
                "1",
                "--shards",
                shards,
                "--warm",
                warm,
                "--index-file",
                idx_file.to_str().unwrap(),
            ])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        child.stdin.take().unwrap().write_all(b"1 0.1\n").unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "shards={shards} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };

    // Past the 4-chunk warmup prefix, so the sentinel tier is active in
    // the persisted pool.
    let first = run("3", "2048");
    assert!(idx_file.exists(), "--index-file must persist the pool");
    let err = String::from_utf8_lossy(&first.stderr);
    assert!(err.contains("3 shards"), "stderr: {err}");

    for shards in ["2", "1"] {
        let out = run(shards, "0");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("index: loaded"), "shards={shards}: {err}");
        assert!(
            err.contains("0 fresh"),
            "loaded pool must serve warm at shards={shards}: {err}"
        );
        assert_eq!(
            out.stdout, first.stdout,
            "answers diverge after reload at shards={shards}"
        );
    }

    std::fs::remove_file(graph).ok();
    std::fs::remove_file(idx_file).ok();
}

/// `--lt --index-file` round-trips through shard counts: an LT pool saved
/// by a 3-shard server reloads into 2-shard and single-shard LT servers
/// and serves warm with identical answers.
#[test]
fn query_server_lt_index_file_round_trips_across_shard_counts() {
    let mut edges = String::new();
    for leaf in 1..10 {
        edges.push_str(&format!("0 {leaf}\n"));
    }
    let graph = write_temp_graph("lt_sharded_idx", &edges);
    let idx_file = std::env::temp_dir().join(format!(
        "subsim_cli_lt_sharded_idx_{}.bin",
        std::process::id()
    ));
    let run = |shards: &str, warm: &str| {
        let mut child = cli()
            .args([
                "query-server",
                "--graph",
                graph.to_str().unwrap(),
                "--lt",
                "--seed",
                "5",
                "--shards",
                shards,
                "--warm",
                warm,
                "--index-file",
                idx_file.to_str().unwrap(),
            ])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        child.stdin.take().unwrap().write_all(b"1 0.1\n").unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "shards={shards} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };

    let first = run("3", "512");
    assert!(idx_file.exists(), "--index-file must persist the LT pool");
    let err = String::from_utf8_lossy(&first.stderr);
    assert!(err.contains("3 shards"), "stderr: {err}");

    for shards in ["2", "1"] {
        let out = run(shards, "0");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("index: loaded"), "shards={shards}: {err}");
        assert!(
            err.contains("0 fresh"),
            "loaded LT pool must serve warm at shards={shards}: {err}"
        );
        assert_eq!(
            out.stdout, first.stdout,
            "LT answers diverge after reload at shards={shards}"
        );
    }

    std::fs::remove_file(graph).ok();
    std::fs::remove_file(idx_file).ok();
}

/// Loading an LT snapshot into an IC-configured server fails with the
/// typed snapshot-mismatch refusal, naming both strategies — never a
/// silent model swap.
#[test]
fn query_server_refuses_lt_snapshot_under_ic_config() {
    let mut edges = String::new();
    for leaf in 1..8 {
        edges.push_str(&format!("0 {leaf}\n"));
    }
    let graph = write_temp_graph("lt_mismatch_idx", &edges);
    let idx_file =
        std::env::temp_dir().join(format!("subsim_cli_lt_mismatch_{}.bin", std::process::id()));

    // Save an LT pool from the static server path.
    let mut child = cli()
        .args([
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--lt",
            "--warm",
            "128",
            "--index-file",
            idx_file.to_str().unwrap(),
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(b"1 0.1\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(idx_file.exists());

    // Reload without --lt: the WC-configured server must refuse the LT
    // pool on every serving path, typed, naming both strategies.
    for extra in [&[][..], &["--shards", "2"][..], &["--delta-stream"][..]] {
        let mut args = vec![
            "query-server",
            "--graph",
            graph.to_str().unwrap(),
            "--index-file",
            idx_file.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        let out = cli()
            .args(&args)
            .stdin(std::process::Stdio::null())
            .output()
            .unwrap();
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(!out.status.success(), "{extra:?} must refuse: {err}");
        assert!(err.contains("snapshot rejected"), "{extra:?}: {err}");
        assert!(
            err.contains("Lt") && err.contains("SubsimIc"),
            "{extra:?}: {err}"
        );
    }

    std::fs::remove_file(graph).ok();
    std::fs::remove_file(idx_file).ok();
}
