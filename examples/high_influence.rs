//! High-influence networks: where HIST earns its name.
//!
//! When propagation probabilities are high (here: the WC variant
//! `min(1, θ/d_in)` with θ = 8), a single random RR set drags in a huge
//! chunk of the graph, and every RR-based algorithm chokes on generation
//! cost. HIST selects a small *sentinel set* first, then stops every
//! subsequent RR traversal the moment it hits a sentinel — this example
//! makes the average-RR-size collapse and the resulting speedup visible
//! (the mechanism behind the paper's Figures 3, 4 and 6).
//!
//! ```text
//! cargo run --release --example high_influence
//! ```

use std::time::Instant;
use subsim::prelude::*;
use subsim_diffusion::forward::{mc_influence, CascadeModel};

fn main() {
    let g = generators::barabasi_albert(20_000, 6, WeightModel::WcVariant { theta: 8.0 }, 17);
    println!(
        "network: {} nodes, {} edges, WC-variant θ=8 (high influence)\n",
        g.n(),
        g.m()
    );

    let opts = ImOptions::new(100).seed(23);
    let contenders: Vec<(&str, Box<dyn ImAlgorithm>)> = vec![
        ("OPIM-C", Box::new(OpimC::vanilla())),
        ("HIST", Box::new(Hist::vanilla())),
        ("HIST+SUBSIM", Box::new(Hist::with_subsim())),
    ];

    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>6} {:>12}",
        "algo", "time", "avg|R|", "#RR sets", "b", "influence"
    );
    for (name, alg) in &contenders {
        let start = Instant::now();
        let res = alg.run(&g, &opts).expect("valid options");
        let elapsed = start.elapsed();
        let influence = mc_influence(&g, &res.seeds, CascadeModel::Ic, 1_000, 29);
        println!(
            "{:<12} {:>9.3}s {:>10.1} {:>12} {:>6} {:>12.0}",
            name,
            elapsed.as_secs_f64(),
            res.stats.avg_rr_size(),
            res.stats.rr_generated,
            res.stats.sentinel_size,
            influence
        );
    }

    println!();
    println!("HIST's sentinel truncation shrinks the average RR set by an order");
    println!("of magnitude or more while the selected seeds stay equally good.");
}
