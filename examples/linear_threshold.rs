//! Linear Threshold end-to-end.
//!
//! Under LT, each node activates when the summed weight of its activated
//! in-neighbors crosses a uniform random threshold. RR sets become
//! reverse random *paths* (live-edge characterization), each step O(1)
//! via per-node alias tables — which is how the paper gets the
//! `O(k·n·log n/ε²)` LT bound without changing the generator.
//!
//! ```text
//! cargo run --release --example linear_threshold
//! ```

use subsim::prelude::*;
use subsim_diffusion::forward::{mc_influence, CascadeModel};

fn main() {
    // LT weights: 1/d_in per edge, summing to exactly 1 per node.
    let g = generators::barabasi_albert(10_000, 8, WeightModel::Lt, 53);
    println!("network: {} nodes, {} edges (LT model)\n", g.n(), g.m());

    let opts = ImOptions::new(30).seed(59);
    let res = OpimC::lt().run(&g, &opts).expect("valid options");

    println!("seeds: {:?}", &res.seeds[..10.min(res.seeds.len())]);
    println!(
        "{} RR paths generated, average length {:.2}",
        res.stats.rr_generated,
        res.stats.avg_rr_size()
    );

    let influence = mc_influence(&g, &res.seeds, CascadeModel::Lt, 5_000, 61);
    println!(
        "forward-simulated LT influence: {:.0} nodes ({:.1}% of the graph)",
        influence,
        100.0 * influence / g.n() as f64
    );
    if let Some(ratio) = res.stats.certified_ratio() {
        println!("certified approximation ratio: {ratio:.3}");
    }
}
