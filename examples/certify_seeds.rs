//! Auditing someone else's seed set.
//!
//! Marketing teams often come with a seed list already — top spenders,
//! celebrities, whoever replied to the last campaign. The OPIM bounds
//! (paper Eqs 1–2) certify *post hoc* how close any such list is to the
//! optimal seed set, without rerunning selection: a lower bound on the
//! list's influence against an upper bound on `OPT_k`.
//!
//! ```text
//! cargo run --release --example certify_seeds
//! ```

use subsim::core::certificate::certify_seed_set;
use subsim::diffusion::RrStrategy;
use subsim::prelude::*;
use subsim_graph::NodeId;

fn main() {
    let g = generators::barabasi_albert(20_000, 6, WeightModel::Wc, 77);
    let k = 20;
    let opts = ImOptions::new(k).seed(78);
    println!("network: {} nodes, {} edges\n", g.n(), g.m());

    // Three candidate strategies a practitioner might bring:
    let mut by_outdeg: Vec<NodeId> = (0..g.n() as NodeId).collect();
    by_outdeg.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v)));
    let degree_seeds: Vec<NodeId> = by_outdeg[..k].to_vec();

    let random_seeds: Vec<NodeId> = (1000..1000 + k as NodeId).collect();

    let hist_seeds = Hist::with_subsim().run(&g, &opts).expect("hist").seeds;

    println!(
        "{:<18} {:>12} {:>12} {:>14} {:>10}",
        "seed strategy", "est. 𝕀(S)", "𝕀⁻(S)", "𝕀⁺(OPT_k)", "ratio"
    );
    for (label, seeds) in [
        ("top out-degree", &degree_seeds),
        ("random", &random_seeds),
        ("HIST+SUBSIM", &hist_seeds),
    ] {
        let cert =
            certify_seed_set(&g, seeds, RrStrategy::SubsimIc, 200_000, &opts).expect("valid seeds");
        println!(
            "{:<18} {:>12.0} {:>12.0} {:>14.0} {:>9.1}%",
            label,
            cert.estimate,
            cert.lower,
            cert.optimal_upper,
            100.0 * cert.ratio()
        );
    }
    println!(
        "\nWith probability 1 - δ each row's influence is at least `ratio` of the\n\
         best any {k} seeds could achieve. Degree heuristics are decent here;\n\
         random seeds are provably far from optimal."
    );
}
