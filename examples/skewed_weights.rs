//! General IC: skewed edge probabilities (exponential / Weibull).
//!
//! The plain geometric trick needs equal probabilities; for skewed
//! weights the paper sorts each node's in-edges by probability and uses
//! the index-free bucketed sampler (Section 3.3), optionally with a
//! precomputed bucket-jump index. This example measures raw RR-set
//! generation across the three strategies — the paper's Figure 2.
//!
//! ```text
//! cargo run --release --example skewed_weights
//! ```

use std::time::Instant;
use subsim::diffusion::{RrContext, RrSampler, RrStrategy};
use subsim::prelude::*;
use subsim::sampling::rng_from_seed;

fn main() {
    let count = 200_000;
    for (label, model) in [
        ("exponential(λ=1)", WeightModel::Exponential { lambda: 1.0 }),
        ("weibull(a,b~U(0,10])", WeightModel::Weibull),
    ] {
        let g = generators::barabasi_albert(20_000, 10, model, 31);
        println!(
            "\n{label}: {} nodes, {} edges — generating {count} RR sets",
            g.n(),
            g.m()
        );
        println!(
            "{:<22} {:>10} {:>14} {:>10}",
            "strategy", "time", "edges examined", "speedup"
        );
        let mut vanilla_time = None;
        for (name, strategy) in [
            ("vanilla (Alg 2)", RrStrategy::VanillaIc),
            ("subsim index-free", RrStrategy::SubsimIc),
            ("subsim bucket-jump", RrStrategy::SubsimBucketIc),
        ] {
            let sampler = RrSampler::new(&g, strategy);
            let mut ctx = RrContext::new(g.n());
            let mut rng = rng_from_seed(37);
            let start = Instant::now();
            for _ in 0..count {
                sampler.generate(&mut ctx, &mut rng);
            }
            let elapsed = start.elapsed().as_secs_f64();
            let speedup = vanilla_time.get_or_insert(elapsed);
            println!(
                "{:<22} {:>9.3}s {:>14} {:>9.1}x",
                name,
                elapsed,
                ctx.cost,
                *speedup / elapsed
            );
        }
    }
    println!("\nThe sampled RR sets are statistically identical across strategies");
    println!("(asserted by the test suite); only the cost per set changes.");
}
