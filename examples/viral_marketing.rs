//! Viral marketing: the paper's motivating scenario.
//!
//! A company gives its product to `k` influencers and wants the
//! word-of-mouth cascade to reach as many users as possible. This example
//! sweeps the budget `k`, compares all four algorithms' running time and
//! seed quality, and shows why SUBSIM is the one you'd ship.
//!
//! ```text
//! cargo run --release --example viral_marketing
//! ```

use std::time::Instant;
use subsim::prelude::*;
use subsim_diffusion::forward::{mc_influence, CascadeModel};

fn main() {
    let g = generators::rmat(13, 8192 * 16, WeightModel::Wc, 99);
    println!(
        "network: {} nodes, {} edges (R-MAT, weighted cascade)\n",
        g.n(),
        g.m()
    );

    let algorithms: Vec<(&str, Box<dyn ImAlgorithm>)> = vec![
        ("IMM", Box::new(Imm::vanilla())),
        ("SSA", Box::new(Ssa::vanilla())),
        ("OPIM-C", Box::new(OpimC::vanilla())),
        ("SUBSIM", Box::new(OpimC::subsim())),
    ];

    println!(
        "{:>4} {:<8} {:>10} {:>12} {:>12}",
        "k", "algo", "time", "#RR sets", "influence"
    );
    for k in [5usize, 20, 50] {
        let opts = ImOptions::new(k).seed(3);
        for (name, alg) in &algorithms {
            let start = Instant::now();
            let res = alg.run(&g, &opts).expect("valid options");
            let elapsed = start.elapsed();
            let influence = mc_influence(&g, &res.seeds, CascadeModel::Ic, 2_000, 5);
            println!(
                "{:>4} {:<8} {:>9.3}s {:>12} {:>12.0}",
                k,
                name,
                elapsed.as_secs_f64(),
                res.stats.rr_generated,
                influence
            );
        }
        println!();
    }
    println!("All four land on near-identical influence; the RR-set counts and");
    println!("times differ — that is the entire story of the paper's Figure 1.");
}
