//! Quickstart: build a social network, pick seeds, estimate their reach.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use subsim::prelude::*;
use subsim_diffusion::forward::{mc_influence, CascadeModel};

fn main() {
    // A scale-free network of 5 000 users under the weighted-cascade
    // model (every edge (u, v) succeeds with probability 1/d_in(v)).
    let g = generators::barabasi_albert(5_000, 8, WeightModel::Wc, 42);
    println!(
        "network: {} nodes, {} edges, avg degree {:.1}",
        g.n(),
        g.m(),
        g.m() as f64 / g.n() as f64
    );

    // Pick 20 seeds with HIST+SUBSIM — the paper's fastest configuration.
    // ε = 0.1 and δ = 1/n match the paper's experimental defaults.
    let opts = ImOptions::new(20).seed(7);
    let result = Hist::with_subsim().run(&g, &opts).expect("valid options");

    println!("selected seeds: {:?}", result.seeds);
    println!(
        "stats: {} RR sets (avg size {:.1}), sentinel size b = {}, {:?}",
        result.stats.rr_generated,
        result.stats.avg_rr_size(),
        result.stats.sentinel_size,
        result.stats.elapsed,
    );
    if let Some(ratio) = result.stats.certified_ratio() {
        println!(
            "certified approximation ratio: {ratio:.3} (target {:.3})",
            1.0 - (-1.0f64).exp() - opts.epsilon
        );
    }

    // Ground-truth the expected influence with forward Monte-Carlo.
    let influence = mc_influence(&g, &result.seeds, CascadeModel::Ic, 10_000, 1);
    println!(
        "estimated influence: {:.0} of {} nodes ({:.1}%)",
        influence,
        g.n(),
        100.0 * influence / g.n() as f64
    );
}
