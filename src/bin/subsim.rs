//! Command-line influence maximization over edge-list files.
//!
//! ```text
//! subsim --graph edges.txt --k 50 [--algorithm hist] [--model wc]
//!        [--epsilon 0.1] [--seed 0] [--undirected] [--evaluate 10000]
//!        [--rr-out sets.rr | --rr-in sets.rr]
//! subsim query-server --graph edges.txt [--index-file warm.idx] [...]
//! ```
//!
//! The graph file holds one `u v` (or `u v p`) pair per line; `#`/`%`
//! comment lines are ignored. With a third column the explicit per-edge
//! probabilities are used and `--model` is ignored.
//!
//! `query-server` keeps an [`RrIndex`] alive and answers `k [epsilon]`
//! queries from stdin, one per line: seeds go to stdout (one
//! space-separated line per query), per-query stats to stderr. With
//! `--index-file` the warmed pool is loaded at startup (if the file
//! exists) and saved back at EOF, so the pool survives restarts.

use std::io::{BufRead, Write as _};
use std::process::ExitCode;
use subsim::core::coverage::{greedy_max_coverage, GreedyConfig};
use subsim::diffusion::serialize::{read_rr_collection, write_rr_collection};
use subsim::diffusion::{mc_influence, par_generate, CascadeModel};
use subsim::prelude::*;
use subsim_graph::io::read_edge_list_file;
use subsim_graph::Graph;

struct Args {
    graph: String,
    k: usize,
    algorithm: String,
    model: String,
    theta: f64,
    p: f64,
    epsilon: f64,
    seed: u64,
    undirected: bool,
    evaluate: usize,
    rr_out: Option<String>,
    rr_in: Option<String>,
    rr_count: usize,
}

struct ServerArgs {
    graph: String,
    model: String,
    theta: f64,
    p: f64,
    seed: u64,
    delta: f64,
    threads: usize,
    undirected: bool,
    index_file: Option<String>,
    warm: usize,
    max_nodes: Option<usize>,
}

fn usage() -> &'static str {
    "usage: subsim --graph <edge-list> --k <seeds>\n\
     \t[--algorithm mc|tim+|imm|ssa|opim|subsim|hist|hist+subsim]  (default hist+subsim)\n\
     \t[--model wc|wc-variant|uniform|exponential|weibull|trivalency|lt]  (default wc)\n\
     \t[--theta <f64>]      WC-variant boost (default 4.0)\n\
     \t[--p <f64>]          uniform-IC probability (default 0.01)\n\
     \t[--epsilon <f64>]    accuracy (default 0.1)\n\
     \t[--seed <u64>]       RNG seed (default 0)\n\
     \t[--undirected]       treat edges as undirected\n\
     \t[--evaluate <runs>]  forward-MC influence estimate of the result\n\
     \t[--rr-out <file>]    generate RR sets, save them, greedy-select k (skips the IM run)\n\
     \t[--rr-count <n>]     how many RR sets --rr-out generates (default 50000)\n\
     \t[--rr-in <file>]     load saved RR sets and greedy-select k (skips the IM run)\n\
     \n\
     usage: subsim query-server --graph <edge-list>\n\
     \t[--model ...] [--theta ...] [--p ...] [--undirected] as above\n\
     \t[--seed <u64>]       RNG seed for the pool's chunk stream (default 0)\n\
     \t[--delta <f64>]      per-query failure probability (default 0.01)\n\
     \t[--threads <n>]      pool top-up workers (default 1)\n\
     \t[--index-file <f>]   load the pool from <f> if present, save it back at EOF\n\
     \t[--warm <sets>]      pre-grow the pool before serving\n\
     \t[--max-nodes <n>]    refuse pool growth past n arena node entries\n\
     then one query per stdin line: `k [epsilon]` (epsilon defaults to 0.1)"
}

fn parse_args(mut it: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        graph: String::new(),
        k: 0,
        algorithm: "hist+subsim".into(),
        model: "wc".into(),
        theta: 4.0,
        p: 0.01,
        epsilon: 0.1,
        seed: 0,
        undirected: false,
        evaluate: 0,
        rr_out: None,
        rr_in: None,
        rr_count: 50_000,
    };
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--graph" => args.graph = val("--graph")?,
            "--k" => args.k = val("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--algorithm" => args.algorithm = val("--algorithm")?,
            "--model" => args.model = val("--model")?,
            "--theta" => {
                args.theta = val("--theta")?
                    .parse()
                    .map_err(|e| format!("--theta: {e}"))?
            }
            "--p" => args.p = val("--p")?.parse().map_err(|e| format!("--p: {e}"))?,
            "--epsilon" => {
                args.epsilon = val("--epsilon")?
                    .parse()
                    .map_err(|e| format!("--epsilon: {e}"))?
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--undirected" => args.undirected = true,
            "--evaluate" => {
                args.evaluate = val("--evaluate")?
                    .parse()
                    .map_err(|e| format!("--evaluate: {e}"))?
            }
            "--rr-out" => args.rr_out = Some(val("--rr-out")?),
            "--rr-in" => args.rr_in = Some(val("--rr-in")?),
            "--rr-count" => {
                args.rr_count = val("--rr-count")?
                    .parse()
                    .map_err(|e| format!("--rr-count: {e}"))?
            }
            "--help" | "-h" => return Err(usage().into()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if args.graph.is_empty() || args.k == 0 {
        return Err(format!("--graph and --k are required\n{}", usage()));
    }
    if args.rr_out.is_some() && args.rr_in.is_some() {
        return Err("--rr-out and --rr-in are mutually exclusive".into());
    }
    if args.rr_count == 0 {
        return Err("--rr-count must be positive".into());
    }
    Ok(args)
}

fn parse_server_args(mut it: impl Iterator<Item = String>) -> Result<ServerArgs, String> {
    let mut args = ServerArgs {
        graph: String::new(),
        model: "wc".into(),
        theta: 4.0,
        p: 0.01,
        seed: 0,
        delta: 0.01,
        threads: 1,
        undirected: false,
        index_file: None,
        warm: 0,
        max_nodes: None,
    };
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--graph" => args.graph = val("--graph")?,
            "--model" => args.model = val("--model")?,
            "--theta" => {
                args.theta = val("--theta")?
                    .parse()
                    .map_err(|e| format!("--theta: {e}"))?
            }
            "--p" => args.p = val("--p")?.parse().map_err(|e| format!("--p: {e}"))?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--delta" => {
                args.delta = val("--delta")?
                    .parse()
                    .map_err(|e| format!("--delta: {e}"))?
            }
            "--threads" => {
                args.threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--undirected" => args.undirected = true,
            "--index-file" => args.index_file = Some(val("--index-file")?),
            "--warm" => args.warm = val("--warm")?.parse().map_err(|e| format!("--warm: {e}"))?,
            "--max-nodes" => {
                args.max_nodes = Some(
                    val("--max-nodes")?
                        .parse()
                        .map_err(|e| format!("--max-nodes: {e}"))?,
                )
            }
            "--help" | "-h" => return Err(usage().into()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if args.graph.is_empty() {
        return Err(format!("--graph is required\n{}", usage()));
    }
    if args.threads == 0 {
        return Err("--threads must be positive".into());
    }
    Ok(args)
}

fn parse_model(model: &str, theta: f64, p: f64) -> Result<WeightModel, String> {
    Ok(match model {
        "wc" => WeightModel::Wc,
        "wc-variant" => WeightModel::WcVariant { theta },
        "uniform" => WeightModel::UniformIc { p },
        "exponential" => WeightModel::Exponential { lambda: 1.0 },
        "weibull" => WeightModel::Weibull,
        "trivalency" => WeightModel::Trivalency,
        "lt" => WeightModel::Lt,
        other => return Err(format!("unknown model {other}")),
    })
}

fn load_graph(path: &str, model: WeightModel, undirected: bool) -> Result<Graph, String> {
    let el = read_edge_list_file(path).map_err(|e| format!("reading graph: {e}"))?;
    if undirected && el.probs.is_some() {
        return Err(
            "--undirected cannot be combined with a weighted edge list; \
             list both directions explicitly instead"
                .into(),
        );
    }
    let g = if undirected && el.probs.is_none() {
        GraphBuilder::new(el.n)
            .edges(el.edges.clone())
            .undirected(true)
            .weights(model)
            .build()
            .map_err(|e| format!("building graph: {e}"))?
    } else {
        el.into_graph(model)
            .map_err(|e| format!("building graph: {e}"))?
    };
    eprintln!(
        "graph: {} nodes, {} edges ({})",
        g.n(),
        g.m(),
        GraphStats::compute(&g)
    );
    Ok(g)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = if argv.first().map(String::as_str) == Some("query-server") {
        parse_server_args(argv.into_iter().skip(1)).and_then(run_server)
    } else {
        parse_args(argv.into_iter()).and_then(run)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Args) -> Result<(), String> {
    let model = parse_model(&args.model, args.theta, args.p)?;
    let lt = args.model == "lt";
    let g = load_graph(&args.graph, model, args.undirected)?;

    // RR-collection round-trip modes bypass the IM algorithms entirely:
    // both just greedy-select over a materialized pool.
    if let Some(path) = &args.rr_out {
        let strategy = if lt {
            RrStrategy::Lt
        } else {
            RrStrategy::SubsimIc
        };
        let sampler = RrSampler::new(&g, strategy);
        let batch = par_generate(&sampler, None, args.rr_count, 1, args.seed);
        let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        write_rr_collection(&batch.rr, file).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "wrote {} RR sets ({} node entries) to {path}",
            batch.rr.len(),
            batch.rr.total_nodes()
        );
        return greedy_over(&batch.rr, args.k, args.evaluate, &g, lt, args.seed);
    }
    if let Some(path) = &args.rr_in {
        let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
        let rr = read_rr_collection(file).map_err(|e| format!("reading {path}: {e}"))?;
        if rr.graph_n() != g.n() {
            return Err(format!(
                "{path} stores RR sets over {} nodes but the graph has {}",
                rr.graph_n(),
                g.n()
            ));
        }
        eprintln!("loaded {} RR sets from {path}", rr.len());
        return greedy_over(&rr, args.k, args.evaluate, &g, lt, args.seed);
    }

    let alg: Box<dyn ImAlgorithm> = match (args.algorithm.as_str(), lt) {
        ("mc", false) => Box::new(McGreedy::ic(10_000)),
        ("mc", true) => Box::new(McGreedy::lt(10_000)),
        ("tim+", _) => Box::new(TimPlus::vanilla()),
        ("imm", _) => Box::new(Imm::vanilla()),
        ("ssa", _) => Box::new(Ssa::vanilla()),
        ("opim", false) => Box::new(OpimC::vanilla()),
        ("opim", true) | ("subsim", true) | ("hist+subsim", true) | ("hist", true) => {
            Box::new(OpimC::lt())
        }
        ("subsim", false) => Box::new(OpimC::subsim()),
        ("hist", false) => Box::new(Hist::vanilla()),
        ("hist+subsim", false) => Box::new(Hist::with_subsim()),
        (other, _) => return Err(format!("unknown algorithm {other}\n{}", usage())),
    };

    let opts = ImOptions::new(args.k).epsilon(args.epsilon).seed(args.seed);
    let result = alg.run(&g, &opts).map_err(|e| e.to_string())?;

    eprintln!(
        "{}: {} RR sets (avg size {:.1}), {:?}",
        alg.name(),
        result.stats.rr_generated,
        result.stats.avg_rr_size(),
        result.stats.elapsed
    );
    if let Some(ratio) = result.stats.certified_ratio() {
        eprintln!("certified approximation ratio: {ratio:.4}");
    }
    for &s in &result.seeds {
        println!("{s}");
    }
    evaluate_seeds(&g, &result.seeds, lt, args.evaluate, args.seed);
    Ok(())
}

/// Greedy-selects `k` seeds from `rr` and prints them (the `--rr-out` /
/// `--rr-in` paths).
fn greedy_over(
    rr: &RrCollection,
    k: usize,
    evaluate: usize,
    g: &Graph,
    lt: bool,
    seed: u64,
) -> Result<(), String> {
    if rr.is_empty() {
        return Err("the RR collection is empty".into());
    }
    let out = greedy_max_coverage(rr, &GreedyConfig::standard(k));
    eprintln!(
        "greedy over {} sets: coverage {} ({:.1}% of sets)",
        rr.len(),
        out.coverage(),
        100.0 * out.coverage() as f64 / rr.len() as f64
    );
    for &s in &out.seeds {
        println!("{s}");
    }
    evaluate_seeds(g, &out.seeds, lt, evaluate, seed);
    Ok(())
}

fn evaluate_seeds(g: &Graph, seeds: &[NodeId], lt: bool, runs: usize, seed: u64) {
    if runs > 0 {
        let cascade = if lt {
            CascadeModel::Lt
        } else {
            CascadeModel::Ic
        };
        let inf = mc_influence(g, seeds, cascade, runs, seed ^ 1);
        eprintln!(
            "estimated influence: {inf:.1} nodes ({:.2}% of graph)",
            100.0 * inf / g.n() as f64
        );
    }
}

fn run_server(args: ServerArgs) -> Result<(), String> {
    let model = parse_model(&args.model, args.theta, args.p)?;
    let lt = args.model == "lt";
    let g = load_graph(&args.graph, model, args.undirected)?;
    let strategy = if lt {
        RrStrategy::Lt
    } else {
        RrStrategy::SubsimIc
    };

    let mut config = IndexConfig::new(strategy)
        .seed(args.seed)
        .threads(args.threads);
    if let Some(cap) = args.max_nodes {
        config = config.max_nodes(cap);
    }
    let mut index = match &args.index_file {
        Some(path) if std::path::Path::new(path).exists() => {
            let mut loaded =
                RrIndex::load_from_path(&g, path).map_err(|e| format!("loading {path}: {e}"))?;
            eprintln!(
                "index: loaded {} sets/half from {path} (cursor {})",
                loaded.pool_len(),
                loaded.chunk_cursor()
            );
            loaded.set_threads(args.threads);
            loaded.set_max_nodes(args.max_nodes);
            loaded
        }
        _ => RrIndex::new(&g, config),
    };
    if args.warm > 0 {
        index.warm(args.warm).map_err(|e| e.to_string())?;
        eprintln!("index: warmed to {} sets/half", index.pool_len());
    }

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let k: usize = match tokens.next().unwrap().parse() {
            Ok(k) => k,
            Err(e) => {
                eprintln!("bad query {line:?}: k: {e}");
                continue;
            }
        };
        let epsilon = match tokens.next() {
            None => 0.1,
            Some(tok) => match tok.parse::<f64>() {
                Ok(eps) => eps,
                Err(e) => {
                    eprintln!("bad query {line:?}: epsilon: {e}");
                    continue;
                }
            },
        };
        match index.query(k, epsilon, args.delta) {
            Ok(ans) => {
                let seeds: Vec<String> = ans.seeds.iter().map(|s| s.to_string()).collect();
                writeln!(stdout, "{}", seeds.join(" ")).map_err(|e| e.to_string())?;
                stdout.flush().map_err(|e| e.to_string())?;
                let s = &ans.stats;
                eprintln!(
                    "query k={} eps={}: pool {}→{} sets/half ({} fresh, {} reused), \
                     {} rounds, ratio {:.4}{}, {:?}",
                    s.k,
                    s.epsilon,
                    s.pool_before,
                    s.pool_after,
                    s.fresh_sets,
                    s.reused_sets(),
                    s.rounds,
                    s.ratio(),
                    if s.certified_by_bounds {
                        ""
                    } else {
                        " (theta_max cap)"
                    },
                    s.elapsed
                );
            }
            Err(e) => eprintln!("query {line:?} failed: {e}"),
        }
    }

    let c = index.counters();
    eprintln!(
        "served {} queries ({} bound-certified): {} sets / {} node entries generated, \
         cache hit ratio {:.3}, total query time {:?}",
        c.queries,
        c.certified_queries,
        c.rr_sets_generated,
        c.rr_nodes_generated,
        c.cache_hit_ratio(),
        c.query_time
    );
    if let Some(path) = &args.index_file {
        index
            .save_to_path(path)
            .map_err(|e| format!("saving {path}: {e}"))?;
        eprintln!("index: saved {} sets/half to {path}", index.pool_len());
    }
    Ok(())
}
