//! Command-line influence maximization over edge-list files.
//!
//! ```text
//! subsim --graph edges.txt --k 50 [--algorithm hist] [--model wc]
//!        [--epsilon 0.1] [--seed 0] [--undirected] [--evaluate 10000]
//!        [--rr-out sets.rr | --rr-in sets.rr]
//! subsim query-server --graph edges.txt [--index-file warm.idx] [--delta-stream] [...]
//! subsim apply-delta --graph edges.txt --delta updates.txt [--out new.txt]
//!        [--index-in warm.idx [--index-out repaired.idx]] [...]
//! ```
//!
//! The graph file holds one `u v` (or `u v p`) pair per line; `#`/`%`
//! comment lines are ignored. With a third column the explicit per-edge
//! probabilities are used and `--model` is ignored.
//!
//! `query-server` keeps a [`ConcurrentRrIndex`] alive and answers
//! `k [epsilon] [@version]` queries, one per line, from stdin or a Unix socket
//! (`--socket`): seeds go back to the query source (one space-separated
//! line per query, in input order), per-query stats to stderr. Queries
//! fan out over `--threads` worker threads, which all read lock-free
//! snapshots of one shared pool; growth is serialized through the index's
//! writer, so pool content stays a pure function of its size no matter
//! how queries interleave. With `--index-file` the warmed pool is loaded
//! at startup (if the file exists) and saved back at exit, so the pool
//! survives restarts; `--stats-out` dumps serving metrics (per-query
//! latency histogram + quantiles, cache hits, snapshot publishes) as JSON.
//!
//! With `--delta-stream` the server runs a [`ConcurrentDeltaIndex`]
//! instead and additionally accepts `delta + u v p` / `delta - u v` /
//! `delta ~ u v p` lines interleaved with queries: each mutation applies
//! atomically, the RR pool is repaired incrementally (only chunks holding
//! a set that contains a mutated edge target regenerate), and an ack with
//! the repair stats goes to stderr. Queries answer against the latest
//! published graph version unless pinned with a trailing `@version`
//! token, which fails with a typed stale-version error if the graph has
//! moved past it. Delta lines are a barrier: they apply only after every
//! earlier query line has answered.
//!
//! `apply-delta` is the batch form: it reads a delta file (same op lines,
//! `#` comments ignored), applies it to the graph, optionally writes the
//! updated edge list (`--out`) and incrementally repairs an on-disk index
//! snapshot (`--index-in` → `--index-out`, default in place) instead of
//! regenerating it from scratch.

use std::process::ExitCode;
use subsim::core::coverage::{greedy_max_coverage, GreedyConfig};
use subsim::delta::{
    serve_queries, DeltaError, LineError, RepairReport, ServeError, ServeEvent, ServeIndex,
};
use subsim::diffusion::serialize::{read_rr_collection, write_rr_collection};
use subsim::diffusion::{chunk_seed, mc_influence, par_generate_chunks, CascadeModel};
use subsim::prelude::*;
use subsim::sampling::rng_from_seed;
use subsim::serve::{serve_framed, Listener, ServerConfig, ShardedDeltaIndex};
use subsim_graph::io::{read_edge_list_file, write_edge_list};
use subsim_graph::Graph;
use subsim_index::TenantMetrics;

struct Args {
    graph: String,
    k: usize,
    algorithm: String,
    model: String,
    theta: f64,
    p: f64,
    epsilon: f64,
    seed: u64,
    undirected: bool,
    evaluate: usize,
    rr_out: Option<String>,
    rr_in: Option<String>,
    rr_count: usize,
    threads: usize,
}

struct ServerArgs {
    graph: String,
    model: String,
    theta: f64,
    p: f64,
    seed: u64,
    delta: f64,
    threads: usize,
    undirected: bool,
    index_file: Option<String>,
    warm: usize,
    max_nodes: Option<usize>,
    socket: Option<String>,
    stats_out: Option<String>,
    delta_stream: bool,
    shards: usize,
    sentinels: usize,
    sketch: usize,
    framed: bool,
    listen: Option<String>,
}

struct ApplyDeltaArgs {
    graph: String,
    delta: String,
    out: Option<String>,
    index_in: Option<String>,
    index_out: Option<String>,
    model: String,
    theta: f64,
    p: f64,
    seed: u64,
    threads: usize,
    undirected: bool,
}

fn usage() -> &'static str {
    "usage: subsim --graph <edge-list> --k <seeds>\n\
     \t[--algorithm mc|tim+|imm|ssa|opim|subsim|hist|hist+subsim]  (default hist+subsim)\n\
     \t[--model wc|wc-variant|uniform|exponential|weibull|trivalency|lt]  (default wc)\n\
     \t[--lt]               shorthand for --model lt (Linear Threshold diffusion;\n\
     \t                     works for the IM run, query-server, and apply-delta)\n\
     \t[--theta <f64>]      WC-variant boost (default 4.0)\n\
     \t[--p <f64>]          uniform-IC probability (default 0.01)\n\
     \t[--epsilon <f64>]    accuracy (default 0.1)\n\
     \t[--seed <u64>]       RNG seed (default 0)\n\
     \t[--undirected]       treat edges as undirected\n\
     \t[--evaluate <runs>]  forward-MC influence estimate of the result\n\
     \t[--rr-out <file>]    generate RR sets, save them, greedy-select k (skips the IM run)\n\
     \t[--rr-count <n>]     how many RR sets --rr-out generates (default 50000)\n\
     \t[--rr-in <file>]     load saved RR sets and greedy-select k (skips the IM run)\n\
     \t[--threads <n>]      worker threads for --rr-out generation and greedy\n\
     \t                     selection (default 1; output is thread-count invariant)\n\
     \n\
     usage: subsim query-server --graph <edge-list>\n\
     \t[--model ...] [--theta ...] [--p ...] [--undirected] as above\n\
     \t[--seed <u64>]       RNG seed for the pool's chunk stream (default 0)\n\
     \t[--delta <f64>]      per-query failure probability (default 0.01)\n\
     \t[--threads <n>]      query workers and pool top-up workers (default 1)\n\
     \t[--index-file <f>]   load the pool from <f> if present, save it back at exit\n\
     \t[--warm <sets>]      pre-grow the pool before serving\n\
     \t[--max-nodes <n>]    refuse pool growth past n arena node entries\n\
     \t[--socket <path>]    serve a Unix socket instead of stdin (one\n\
     \t                     connection at a time unless --framed; a stale\n\
     \t                     socket file is unlinked at startup, the live one\n\
     \t                     removed at exit; `shutdown` stops the server)\n\
     \t[--stats-out <f>]    write serving metrics (latency histogram, cache\n\
     \t                     hits, snapshot publishes) as JSON to <f> at exit\n\
     \t[--delta-stream]     also accept `delta + u v p` / `delta - u v` /\n\
     \t                     `delta ~ u v p` lines: apply the edge mutation and\n\
     \t                     incrementally repair the RR pool (acks on stderr)\n\
     \t[--shards <n>]       partition the RR pool across n shards with merged\n\
     \t                     selection (answers are bit-identical to --shards 1;\n\
     \t                     --index-file round-trips through any shard count)\n\
     \t[--sentinels <b>]    select b sentinel nodes after a warmup prefix and\n\
     \t                     truncate later RR generation at the first sentinel\n\
     \t                     hit (HIST Alg 5); answers keep the full (epsilon,\n\
     \t                     delta) certificate, re-proved per query. Choose\n\
     \t                     b <= the smallest k you will serve: a k < b query\n\
     \t                     certifies conservatively and may grow the pool to\n\
     \t                     its theta_max fallback before answering\n\
     \t[--sketch <p>]       compress the validation pool into per-node HLL\n\
     \t                     count-distinct sketches at register precision p\n\
     \t                     (4..=10; ~2^p bytes per touched node per chunk).\n\
     \t                     Certificates subtract the sketch error bound, so\n\
     \t                     answers stay (epsilon, delta)-sound; precision\n\
     \t                     auto-promotes when the slack blocks certification.\n\
     \t                     Mutually exclusive with --sentinels\n\
     \t[--framed]           async multi-connection server over --socket and/or\n\
     \t                     --listen: 4-byte big-endian length-prefixed frames,\n\
     \t                     one reply frame per request frame, in order\n\
     \t[--listen <addr>]    also accept framed TCP connections on <addr>\n\
     \t                     (implies --framed)\n\
     then one query per line: `k [epsilon]` (epsilon defaults to 0.1)\n\
     \n\
     usage: subsim apply-delta --graph <edge-list> --delta <delta-file>\n\
     \t[--model ...] [--theta ...] [--p ...] [--undirected] as above\n\
     \t[--out <file>]       write the updated edge list to <file>\n\
     \t[--index-in <f>]     repair the RR-pool snapshot <f> incrementally\n\
     \t[--index-out <f>]    where to save the repaired snapshot (default: --index-in)\n\
     \t[--seed <u64>] [--threads <n>] as above\n\
     delta file: one `+ u v p` (insert), `- u v` (delete), or `~ u v p`\n\
     (reweight) per line; `#` comments and blank lines ignored"
}

fn parse_args(mut it: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        graph: String::new(),
        k: 0,
        algorithm: "hist+subsim".into(),
        model: "wc".into(),
        theta: 4.0,
        p: 0.01,
        epsilon: 0.1,
        seed: 0,
        undirected: false,
        evaluate: 0,
        rr_out: None,
        rr_in: None,
        rr_count: 50_000,
        threads: 1,
    };
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--graph" => args.graph = val("--graph")?,
            "--k" => args.k = val("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--algorithm" => args.algorithm = val("--algorithm")?,
            "--model" => args.model = val("--model")?,
            "--lt" => args.model = "lt".into(),
            "--theta" => {
                args.theta = val("--theta")?
                    .parse()
                    .map_err(|e| format!("--theta: {e}"))?
            }
            "--p" => args.p = val("--p")?.parse().map_err(|e| format!("--p: {e}"))?,
            "--epsilon" => {
                args.epsilon = val("--epsilon")?
                    .parse()
                    .map_err(|e| format!("--epsilon: {e}"))?
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--undirected" => args.undirected = true,
            "--evaluate" => {
                args.evaluate = val("--evaluate")?
                    .parse()
                    .map_err(|e| format!("--evaluate: {e}"))?
            }
            "--rr-out" => args.rr_out = Some(val("--rr-out")?),
            "--rr-in" => args.rr_in = Some(val("--rr-in")?),
            "--rr-count" => {
                args.rr_count = val("--rr-count")?
                    .parse()
                    .map_err(|e| format!("--rr-count: {e}"))?
            }
            "--threads" => {
                args.threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--help" | "-h" => return Err(usage().into()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if args.graph.is_empty() || args.k == 0 {
        return Err(format!("--graph and --k are required\n{}", usage()));
    }
    if args.rr_out.is_some() && args.rr_in.is_some() {
        return Err("--rr-out and --rr-in are mutually exclusive".into());
    }
    if args.rr_count == 0 {
        return Err("--rr-count must be positive".into());
    }
    if args.threads == 0 {
        return Err("--threads must be positive".into());
    }
    Ok(args)
}

fn parse_server_args(mut it: impl Iterator<Item = String>) -> Result<ServerArgs, String> {
    let mut args = ServerArgs {
        graph: String::new(),
        model: "wc".into(),
        theta: 4.0,
        p: 0.01,
        seed: 0,
        delta: 0.01,
        threads: 1,
        undirected: false,
        index_file: None,
        warm: 0,
        max_nodes: None,
        socket: None,
        stats_out: None,
        delta_stream: false,
        shards: 1,
        sentinels: 0,
        sketch: 0,
        framed: false,
        listen: None,
    };
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--graph" => args.graph = val("--graph")?,
            "--model" => args.model = val("--model")?,
            "--lt" => args.model = "lt".into(),
            "--theta" => {
                args.theta = val("--theta")?
                    .parse()
                    .map_err(|e| format!("--theta: {e}"))?
            }
            "--p" => args.p = val("--p")?.parse().map_err(|e| format!("--p: {e}"))?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--delta" => {
                args.delta = val("--delta")?
                    .parse()
                    .map_err(|e| format!("--delta: {e}"))?
            }
            "--threads" => {
                args.threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--undirected" => args.undirected = true,
            "--index-file" => args.index_file = Some(val("--index-file")?),
            "--delta-stream" => args.delta_stream = true,
            "--socket" => args.socket = Some(val("--socket")?),
            "--stats-out" => args.stats_out = Some(val("--stats-out")?),
            "--shards" => {
                args.shards = val("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--sentinels" => {
                args.sentinels = val("--sentinels")?
                    .parse()
                    .map_err(|e| format!("--sentinels: {e}"))?
            }
            "--sketch" => {
                args.sketch = val("--sketch")?
                    .parse()
                    .map_err(|e| format!("--sketch: {e}"))?
            }
            "--framed" => args.framed = true,
            "--listen" => args.listen = Some(val("--listen")?),
            "--warm" => args.warm = val("--warm")?.parse().map_err(|e| format!("--warm: {e}"))?,
            "--max-nodes" => {
                args.max_nodes = Some(
                    val("--max-nodes")?
                        .parse()
                        .map_err(|e| format!("--max-nodes: {e}"))?,
                )
            }
            "--help" | "-h" => return Err(usage().into()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if args.graph.is_empty() {
        return Err(format!("--graph is required\n{}", usage()));
    }
    if args.threads == 0 {
        return Err("--threads must be positive".into());
    }
    if args.shards == 0 {
        return Err("--shards must be positive".into());
    }
    if args.sketch != 0 && !(4..=10).contains(&args.sketch) {
        return Err("--sketch precision must be in 4..=10".into());
    }
    if args.sketch != 0 && args.sentinels != 0 {
        return Err(
            "--sketch and --sentinels are mutually exclusive: truncated RR sets \
             would poison the count-distinct estimates"
                .into(),
        );
    }
    if args.listen.is_some() {
        args.framed = true;
    }
    if args.framed && args.socket.is_none() && args.listen.is_none() {
        return Err("--framed needs --socket and/or --listen".into());
    }
    Ok(args)
}

fn parse_apply_delta_args(mut it: impl Iterator<Item = String>) -> Result<ApplyDeltaArgs, String> {
    let mut args = ApplyDeltaArgs {
        graph: String::new(),
        delta: String::new(),
        out: None,
        index_in: None,
        index_out: None,
        model: "wc".into(),
        theta: 4.0,
        p: 0.01,
        seed: 0,
        threads: 1,
        undirected: false,
    };
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--graph" => args.graph = val("--graph")?,
            "--delta" => args.delta = val("--delta")?,
            "--out" => args.out = Some(val("--out")?),
            "--index-in" => args.index_in = Some(val("--index-in")?),
            "--index-out" => args.index_out = Some(val("--index-out")?),
            "--model" => args.model = val("--model")?,
            "--lt" => args.model = "lt".into(),
            "--theta" => {
                args.theta = val("--theta")?
                    .parse()
                    .map_err(|e| format!("--theta: {e}"))?
            }
            "--p" => args.p = val("--p")?.parse().map_err(|e| format!("--p: {e}"))?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--threads" => {
                args.threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--undirected" => args.undirected = true,
            "--help" | "-h" => return Err(usage().into()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if args.graph.is_empty() || args.delta.is_empty() {
        return Err(format!("--graph and --delta are required\n{}", usage()));
    }
    if args.threads == 0 {
        return Err("--threads must be positive".into());
    }
    if args.index_out.is_some() && args.index_in.is_none() {
        return Err("--index-out requires --index-in".into());
    }
    Ok(args)
}

fn parse_model(model: &str, theta: f64, p: f64) -> Result<WeightModel, String> {
    Ok(match model {
        "wc" => WeightModel::Wc,
        "wc-variant" => WeightModel::WcVariant { theta },
        "uniform" => WeightModel::UniformIc { p },
        "exponential" => WeightModel::Exponential { lambda: 1.0 },
        "weibull" => WeightModel::Weibull,
        "trivalency" => WeightModel::Trivalency,
        "lt" => WeightModel::Lt,
        other => return Err(format!("unknown model {other}")),
    })
}

fn load_graph(path: &str, model: WeightModel, undirected: bool) -> Result<Graph, String> {
    let el = read_edge_list_file(path).map_err(|e| format!("reading graph: {e}"))?;
    if undirected && el.probs.is_some() {
        return Err(
            "--undirected cannot be combined with a weighted edge list; \
             list both directions explicitly instead"
                .into(),
        );
    }
    let g = if undirected && el.probs.is_none() {
        GraphBuilder::new(el.n)
            .edges(el.edges.clone())
            .undirected(true)
            .weights(model)
            .build()
            .map_err(|e| format!("building graph: {e}"))?
    } else {
        el.into_graph(model)
            .map_err(|e| format!("building graph: {e}"))?
    };
    eprintln!(
        "graph: {} nodes, {} edges ({})",
        g.n(),
        g.m(),
        GraphStats::compute(&g)
    );
    Ok(g)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("query-server") => parse_server_args(argv.into_iter().skip(1)).and_then(run_server),
        Some("apply-delta") => {
            parse_apply_delta_args(argv.into_iter().skip(1)).and_then(run_apply_delta)
        }
        _ => parse_args(argv.into_iter()).and_then(run),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Args) -> Result<(), String> {
    let model = parse_model(&args.model, args.theta, args.p)?;
    let lt = args.model == "lt";
    let g = load_graph(&args.graph, model, args.undirected)?;

    // RR-collection round-trip modes bypass the IM algorithms entirely:
    // both just greedy-select over a materialized pool.
    if let Some(path) = &args.rr_out {
        let strategy = if lt {
            RrStrategy::Lt
        } else {
            RrStrategy::SubsimIc
        };
        let sampler = RrSampler::new(&g, strategy);
        // Chunk-deterministic generation: full chunks through the
        // work-stealing pool, the sub-chunk tail sequentially from the
        // next chunk's RNG — exact count, thread-count invariant output.
        const CHUNK: usize = 256;
        let full = (args.rr_count / CHUNK) as u64;
        let mut rr =
            par_generate_chunks(&sampler, None, 0..full, CHUNK, args.threads, args.seed).rr;
        let tail = args.rr_count % CHUNK;
        if tail > 0 {
            let mut ctx = RrContext::new(g.n());
            let mut rng = rng_from_seed(chunk_seed(args.seed, full));
            rr.generate(&sampler, &mut ctx, &mut rng, tail);
        }
        let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        write_rr_collection(&rr, file).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "wrote {} RR sets ({} node entries) to {path}",
            rr.len(),
            rr.total_nodes()
        );
        return greedy_over(&rr, args.k, args.threads, args.evaluate, &g, lt, args.seed);
    }
    if let Some(path) = &args.rr_in {
        let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
        let rr = read_rr_collection(file).map_err(|e| format!("reading {path}: {e}"))?;
        if rr.graph_n() != g.n() {
            return Err(format!(
                "{path} stores RR sets over {} nodes but the graph has {}",
                rr.graph_n(),
                g.n()
            ));
        }
        eprintln!("loaded {} RR sets from {path}", rr.len());
        return greedy_over(&rr, args.k, args.threads, args.evaluate, &g, lt, args.seed);
    }

    let alg: Box<dyn ImAlgorithm> = match (args.algorithm.as_str(), lt) {
        ("mc", false) => Box::new(McGreedy::ic(10_000)),
        ("mc", true) => Box::new(McGreedy::lt(10_000)),
        ("tim+", _) => Box::new(TimPlus::vanilla()),
        ("imm", _) => Box::new(Imm::vanilla()),
        ("ssa", _) => Box::new(Ssa::vanilla()),
        ("opim", false) => Box::new(OpimC::vanilla()),
        ("opim", true) | ("subsim", true) | ("hist+subsim", true) | ("hist", true) => {
            Box::new(OpimC::lt())
        }
        ("subsim", false) => Box::new(OpimC::subsim()),
        ("hist", false) => Box::new(Hist::vanilla()),
        ("hist+subsim", false) => Box::new(Hist::with_subsim()),
        (other, _) => return Err(format!("unknown algorithm {other}\n{}", usage())),
    };

    let opts = ImOptions::new(args.k).epsilon(args.epsilon).seed(args.seed);
    let result = alg.run(&g, &opts).map_err(|e| e.to_string())?;

    eprintln!(
        "{}: {} RR sets (avg size {:.1}), {:?}",
        alg.name(),
        result.stats.rr_generated,
        result.stats.avg_rr_size(),
        result.stats.elapsed
    );
    if let Some(ratio) = result.stats.certified_ratio() {
        eprintln!("certified approximation ratio: {ratio:.4}");
    }
    for &s in &result.seeds {
        println!("{s}");
    }
    evaluate_seeds(&g, &result.seeds, lt, args.evaluate, args.seed);
    Ok(())
}

/// Greedy-selects `k` seeds from `rr` and prints them (the `--rr-out` /
/// `--rr-in` paths).
fn greedy_over(
    rr: &RrCollection,
    k: usize,
    threads: usize,
    evaluate: usize,
    g: &Graph,
    lt: bool,
    seed: u64,
) -> Result<(), String> {
    if rr.is_empty() {
        return Err("the RR collection is empty".into());
    }
    let out = greedy_max_coverage(rr, &GreedyConfig::standard(k).with_threads(threads));
    eprintln!(
        "greedy over {} sets: coverage {} ({:.1}% of sets)",
        rr.len(),
        out.coverage(),
        100.0 * out.coverage() as f64 / rr.len() as f64
    );
    for &s in &out.seeds {
        println!("{s}");
    }
    evaluate_seeds(g, &out.seeds, lt, evaluate, seed);
    Ok(())
}

fn evaluate_seeds(g: &Graph, seeds: &[NodeId], lt: bool, runs: usize, seed: u64) {
    if runs > 0 {
        let cascade = if lt {
            CascadeModel::Lt
        } else {
            CascadeModel::Ic
        };
        let inf = mc_influence(g, seeds, cascade, runs, seed ^ 1);
        eprintln!(
            "estimated influence: {inf:.1} nodes ({:.2}% of graph)",
            100.0 * inf / g.n() as f64
        );
    }
}

fn run_server(args: ServerArgs) -> Result<(), String> {
    let model = parse_model(&args.model, args.theta, args.p)?;
    let lt = args.model == "lt";
    let g = load_graph(&args.graph, model, args.undirected)?;
    let strategy = if lt {
        RrStrategy::Lt
    } else {
        RrStrategy::SubsimIc
    };

    let mut config = IndexConfig::new(strategy)
        .seed(args.seed)
        .threads(args.threads)
        .sentinels(args.sentinels)
        .sketch(args.sketch);
    if let Some(cap) = args.max_nodes {
        config = config.max_nodes(cap);
    }
    if args.shards > 1 {
        run_sharded_server(args, g, config)
    } else if args.delta_stream {
        run_delta_server(args, g, config)
    } else {
        run_static_server(args, g, config)
    }
}

/// `--shards N` serving: a [`ShardedDeltaIndex`] partitions chunk
/// generation and coverage counting across N shards; selection merges
/// the per-shard counts, so answers stay bit-identical to `--shards 1`.
/// Without `--delta-stream` the index serves frozen: `delta` lines are
/// rejected exactly like the static server.
fn run_sharded_server(args: ServerArgs, g: Graph, config: IndexConfig) -> Result<(), String> {
    let index = match &args.index_file {
        Some(path) if std::path::Path::new(path).exists() => {
            let loaded = ShardedDeltaIndex::load_snapshot(g, config, args.shards, path)
                .map_err(|e| format!("loading {path}: {e}"))?;
            eprintln!(
                "index: loaded {} sets/half from {path} (cursor {}, re-split across {} shards)",
                loaded.load().pool_len(),
                loaded.load().chunk_cursor(),
                loaded.shard_count()
            );
            loaded
        }
        _ => ShardedDeltaIndex::new(g, config, args.shards).map_err(|e| e.to_string())?,
    };
    eprintln!("index: {} shards", index.shard_count());
    if args.warm > 0 {
        index.warm(args.warm).map_err(|e| e.to_string())?;
        eprintln!("index: warmed to {} sets/half", index.load().pool_len());
    }
    if args.delta_stream {
        serve_transport(&index, &args)?;
    } else {
        serve_transport(&FrozenSharded(&index), &args)?;
    }
    let m = index.metrics();
    report_metrics(&m, &args)?;
    if m.deltas_applied > 0 {
        eprintln!(
            "applied {} deltas: {} sets / {} chunks regenerated, total repair time {:?}",
            m.deltas_applied,
            m.sets_repaired,
            m.chunks_repaired,
            std::time::Duration::from_nanos(m.repair_time_ns),
        );
    }
    if let Some(path) = &args.index_file {
        index
            .save_snapshot(path)
            .map_err(|e| format!("saving {path}: {e}"))?;
        eprintln!(
            "index: saved {} sets/half to {path}",
            index.load().pool_len()
        );
    }
    Ok(())
}

/// A sharded index serving without `--delta-stream`: queries (including
/// version pins, which are trivially satisfied at version 0) pass
/// through; `delta` lines are rejected as on a frozen index.
struct FrozenSharded<'a>(&'a ShardedDeltaIndex);

impl ServeIndex for FrozenSharded<'_> {
    fn run_query(
        &self,
        k: usize,
        epsilon: f64,
        delta: f64,
        pin: Option<u64>,
    ) -> Result<QueryAnswer, ServeError> {
        self.0.run_query(k, epsilon, delta, pin)
    }

    fn apply_delta_line(&self, _op: &str) -> Result<RepairReport, ServeError> {
        Err(ServeError::Frozen)
    }

    fn version(&self) -> Option<u64> {
        ServeIndex::version(self.0)
    }
}

/// The original serving mode: a [`ConcurrentRrIndex`] over a frozen
/// graph; `delta` lines are rejected with a pointer to `--delta-stream`.
fn run_static_server(args: ServerArgs, g: Graph, config: IndexConfig) -> Result<(), String> {
    let mut index = match &args.index_file {
        Some(path) if std::path::Path::new(path).exists() => {
            let mut loaded =
                RrIndex::load_from_path(&g, path).map_err(|e| format!("loading {path}: {e}"))?;
            // A pool generated under another diffusion model must not be
            // adopted silently — same refusal the delta/sharded loaders
            // make.
            loaded
                .ensure_strategy(config.strategy)
                .map_err(|e| format!("loading {path}: {e}"))?;
            eprintln!(
                "index: loaded {} sets/half from {path} (cursor {})",
                loaded.pool_len(),
                loaded.chunk_cursor()
            );
            loaded.set_threads(args.threads);
            loaded.set_max_nodes(args.max_nodes);
            loaded
        }
        _ => RrIndex::new(&g, config),
    };
    if args.warm > 0 {
        index.warm(args.warm).map_err(|e| e.to_string())?;
        eprintln!("index: warmed to {} sets/half", index.pool_len());
    }

    let index = ConcurrentRrIndex::from_index(index);
    serve_transport(&index, &args)?;
    report_metrics(&index.metrics(), &args)?;
    if let Some(path) = &args.index_file {
        let index = index.into_index();
        index
            .save_to_path(path)
            .map_err(|e| format!("saving {path}: {e}"))?;
        eprintln!("index: saved {} sets/half to {path}", index.pool_len());
    }
    Ok(())
}

/// `--delta-stream` serving: a [`ConcurrentDeltaIndex`] owning a
/// versioned graph, with `delta` op lines applied atomically between
/// queries and the pool repaired incrementally.
fn run_delta_server(args: ServerArgs, g: Graph, config: IndexConfig) -> Result<(), String> {
    let mut index = match &args.index_file {
        Some(path) if std::path::Path::new(path).exists() => {
            let loaded = DeltaIndex::load_snapshot(g, config, path)
                .map_err(|e| format!("loading {path}: {e}"))?;
            eprintln!(
                "index: loaded {} sets/half from {path} (cursor {})",
                loaded.pool_len(),
                loaded.chunk_cursor()
            );
            loaded
        }
        _ => DeltaIndex::new(g, config).map_err(|e| e.to_string())?,
    };
    if args.warm > 0 {
        index.warm(args.warm).map_err(|e| e.to_string())?;
        eprintln!("index: warmed to {} sets/half", index.pool_len());
    }

    let index = ConcurrentDeltaIndex::from_index(index);
    serve_transport(&index, &args)?;
    let m = index.metrics();
    report_metrics(&m, &args)?;
    if m.deltas_applied > 0 {
        eprintln!(
            "applied {} deltas: {} sets / {} chunks regenerated, total repair time {:?}",
            m.deltas_applied,
            m.sets_repaired,
            m.chunks_repaired,
            std::time::Duration::from_nanos(m.repair_time_ns),
        );
    }
    if let Some(path) = &args.index_file {
        let version = index.version();
        let index = index.into_index();
        index
            .save_snapshot(path)
            .map_err(|e| format!("saving {path}: {e}"))?;
        eprintln!(
            "index: saved {} sets/half to {path} (graph version {version})",
            index.pool_len()
        );
    }
    Ok(())
}

/// Runs the query loop over stdin, the `--socket` transport, or — with
/// `--framed` — the async multi-connection server.
fn serve_transport<I: ServeIndex>(index: &I, args: &ServerArgs) -> Result<(), String> {
    if args.framed {
        return serve_framed_transport(index, args);
    }
    match &args.socket {
        None => {
            let stdin = std::io::stdin();
            serve_queries(
                index,
                args.delta,
                args.threads,
                stdin.lock(),
                std::io::stdout(),
                &log_serve_event,
            )?;
        }
        Some(path) => {
            // Unlinks a stale socket left by a dead server, refuses to
            // unlink anything that is not a socket, and removes the
            // live socket on every exit path (the guard drops on `?`).
            let (listener, _guard) = Listener::bind_unix(std::path::Path::new(path))
                .map_err(|e| format!("binding {path}: {e}"))?;
            let Listener::Unix(listener) = listener else {
                unreachable!("bind_unix returns a unix listener");
            };
            eprintln!("listening on {path}");
            loop {
                let (stream, _) = listener
                    .accept()
                    .map_err(|e| format!("accepting on {path}: {e}"))?;
                let reader = std::io::BufReader::new(
                    stream.try_clone().map_err(|e| format!("socket: {e}"))?,
                );
                let shutdown = serve_queries(
                    index,
                    args.delta,
                    args.threads,
                    reader,
                    stream,
                    &log_serve_event,
                )?;
                if shutdown {
                    break;
                }
            }
        }
    }
    Ok(())
}

/// `--framed` serving: binds every requested transport, then runs the
/// epoll reactor until a `shutdown` frame drains the server.
fn serve_framed_transport<I: ServeIndex>(index: &I, args: &ServerArgs) -> Result<(), String> {
    let mut listeners = Vec::new();
    let mut _guard = None;
    if let Some(path) = &args.socket {
        let (listener, guard) = Listener::bind_unix(std::path::Path::new(path))
            .map_err(|e| format!("binding {path}: {e}"))?;
        eprintln!("listening on {path} (framed)");
        listeners.push(listener);
        _guard = Some(guard);
    }
    if let Some(addr) = &args.listen {
        listeners.push(Listener::bind_tcp(addr).map_err(|e| format!("binding {addr}: {e}"))?);
        eprintln!("listening on {addr} (framed)");
    }
    let config = ServerConfig {
        workers: args.threads,
        delta: args.delta,
        ..ServerConfig::default()
    };
    let tenants = TenantMetrics::new();
    let report = serve_framed(index, listeners, &config, &tenants, &log_serve_event)
        .map_err(|e| format!("framed server: {e}"))?;
    eprintln!(
        "framed server: {} connections, {} frames in, {} replies out{}",
        report.connections,
        report.frames,
        report.replies,
        if report.shutdown {
            ", graceful shutdown"
        } else {
            ""
        },
    );
    eprintln!("tenants: {}", tenants.to_json());
    Ok(())
}

fn report_metrics(m: &MetricsSnapshot, args: &ServerArgs) -> Result<(), String> {
    eprintln!(
        "served {} queries ({} bound-certified): {} sets / {} node entries generated, \
         cache hit ratio {:.3}, {} snapshot publishes, total query time {:?}",
        m.queries,
        m.certified_queries,
        m.rr_sets_generated,
        m.rr_nodes_generated,
        m.cache_hit_ratio,
        m.snapshot_publishes,
        std::time::Duration::from_nanos(m.query_time_ns),
    );
    if let Some(path) = &args.stats_out {
        std::fs::write(path, m.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("stats: wrote serving metrics to {path}");
    }
    Ok(())
}

/// Batch delta application: mutate the graph, optionally repairing an
/// on-disk pool snapshot and writing the updated edge list.
fn run_apply_delta(args: ApplyDeltaArgs) -> Result<(), String> {
    let model = parse_model(&args.model, args.theta, args.p)?;
    let lt = args.model == "lt";
    let g = load_graph(&args.graph, model, args.undirected)?;
    let text =
        std::fs::read_to_string(&args.delta).map_err(|e| format!("reading {}: {e}", args.delta))?;
    let delta = GraphDelta::parse(&text).map_err(|e| format!("parsing {}: {e}", args.delta))?;
    if delta.is_empty() {
        return Err(format!("{} holds no delta ops", args.delta));
    }
    eprintln!(
        "delta: {} ops touching {} distinct edge targets",
        delta.len(),
        delta.targets().len()
    );

    let final_graph: Graph = match &args.index_in {
        Some(path) => {
            let strategy = if lt {
                RrStrategy::Lt
            } else {
                RrStrategy::SubsimIc
            };
            let config = IndexConfig::new(strategy)
                .seed(args.seed)
                .threads(args.threads);
            let mut index = DeltaIndex::load_snapshot(g, config, path)
                .map_err(|e| format!("loading {path}: {e}"))?;
            eprintln!("index: loaded {} sets/half from {path}", index.pool_len());
            let report = index.apply_delta(&delta).map_err(|e| e.to_string())?;
            eprintln!(
                "repair: version {}, {} dirty sets (R1 {}, R2 {}), {}/{} sets regenerated \
                 ({:.1}% of pool, {} chunks), {:?}",
                report.version,
                report.dirty_sets_r1 + report.dirty_sets_r2,
                report.dirty_sets_r1,
                report.dirty_sets_r2,
                report.regenerated_sets,
                report.pool_sets,
                100.0 * report.repair_fraction(),
                report.dirty_chunks_r1 + report.dirty_chunks_r2,
                report.elapsed
            );
            let out_path = args.index_out.as_deref().unwrap_or(path);
            index
                .save_snapshot(out_path)
                .map_err(|e| format!("saving {out_path}: {e}"))?;
            eprintln!("index: saved repaired pool to {out_path}");
            index.graph().clone()
        }
        None => {
            let mut vg = VersionedGraph::new(g).map_err(|e: DeltaError| e.to_string())?;
            vg.apply(&delta).map_err(|e| e.to_string())?;
            eprintln!(
                "graph: version {}, fingerprint {:016x}",
                vg.version(),
                vg.fingerprint()
            );
            vg.graph().clone()
        }
    };
    if let Some(out) = &args.out {
        let file = std::fs::File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
        write_edge_list(&final_graph, file).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!(
            "graph: wrote {} nodes / {} edges to {out}",
            final_graph.n(),
            final_graph.m()
        );
    }
    Ok(())
}

/// Renders one serving-loop event in the CLI's stderr format. The loop
/// itself lives in [`subsim::delta::serve_queries`]; this sink is the
/// only CLI-specific part.
fn log_serve_event(event: ServeEvent) {
    match event {
        ServeEvent::Answered { stats, .. } => {
            let s = &*stats;
            eprintln!(
                "query k={} eps={}: pool {}→{} sets/half ({} fresh, {} reused), \
                 {} rounds, ratio {:.4}{}, {:?}",
                s.k,
                s.epsilon,
                s.pool_before,
                s.pool_after,
                s.fresh_sets,
                s.reused_sets(),
                s.rounds,
                s.ratio(),
                if s.certified_by_bounds {
                    ""
                } else {
                    " (theta_max cap)"
                },
                s.elapsed
            );
        }
        ServeEvent::DeltaApplied { report, .. } => {
            eprintln!(
                "delta applied: version {}, {}/{} sets regenerated ({:.1}% of pool, {} chunks), {:?}",
                report.version,
                report.regenerated_sets,
                report.pool_sets,
                100.0 * report.repair_fraction(),
                report.dirty_chunks_r1 + report.dirty_chunks_r2,
                report.elapsed
            );
        }
        ServeEvent::LineFailed { line, error } => match error {
            LineError::Malformed { reason } => eprintln!("bad query {line:?}: {reason}"),
            LineError::Frame(v) => eprintln!("bad frame on {line:?}: {v}"),
            LineError::Rejected(e) => {
                if let Some(op) = line.strip_prefix("delta ") {
                    eprintln!("delta {op:?} rejected: {e}");
                } else {
                    eprintln!("query {line:?} failed: {e}");
                }
            }
        },
        ServeEvent::InputError { message } => eprintln!("reading queries: {message}"),
    }
}
