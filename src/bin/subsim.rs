//! Command-line influence maximization over edge-list files.
//!
//! ```text
//! subsim --graph edges.txt --k 50 [--algorithm hist] [--model wc]
//!        [--epsilon 0.1] [--seed 0] [--undirected] [--evaluate 10000]
//! ```
//!
//! The graph file holds one `u v` (or `u v p`) pair per line; `#`/`%`
//! comment lines are ignored. With a third column the explicit per-edge
//! probabilities are used and `--model` is ignored.

use std::process::ExitCode;
use subsim::prelude::*;
use subsim::diffusion::{mc_influence, CascadeModel};
use subsim_graph::io::read_edge_list_file;

struct Args {
    graph: String,
    k: usize,
    algorithm: String,
    model: String,
    theta: f64,
    p: f64,
    epsilon: f64,
    seed: u64,
    undirected: bool,
    evaluate: usize,
}

fn usage() -> &'static str {
    "usage: subsim --graph <edge-list> --k <seeds>\n\
     \t[--algorithm mc|tim+|imm|ssa|opim|subsim|hist|hist+subsim]  (default hist+subsim)\n\
     \t[--model wc|wc-variant|uniform|exponential|weibull|trivalency|lt]  (default wc)\n\
     \t[--theta <f64>]      WC-variant boost (default 4.0)\n\
     \t[--p <f64>]          uniform-IC probability (default 0.01)\n\
     \t[--epsilon <f64>]    accuracy (default 0.1)\n\
     \t[--seed <u64>]       RNG seed (default 0)\n\
     \t[--undirected]       treat edges as undirected\n\
     \t[--evaluate <runs>]  forward-MC influence estimate of the result"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        graph: String::new(),
        k: 0,
        algorithm: "hist+subsim".into(),
        model: "wc".into(),
        theta: 4.0,
        p: 0.01,
        epsilon: 0.1,
        seed: 0,
        undirected: false,
        evaluate: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--graph" => args.graph = val("--graph")?,
            "--k" => args.k = val("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--algorithm" => args.algorithm = val("--algorithm")?,
            "--model" => args.model = val("--model")?,
            "--theta" => args.theta = val("--theta")?.parse().map_err(|e| format!("--theta: {e}"))?,
            "--p" => args.p = val("--p")?.parse().map_err(|e| format!("--p: {e}"))?,
            "--epsilon" => {
                args.epsilon = val("--epsilon")?.parse().map_err(|e| format!("--epsilon: {e}"))?
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--undirected" => args.undirected = true,
            "--evaluate" => {
                args.evaluate = val("--evaluate")?.parse().map_err(|e| format!("--evaluate: {e}"))?
            }
            "--help" | "-h" => return Err(usage().into()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if args.graph.is_empty() || args.k == 0 {
        return Err(format!("--graph and --k are required\n{}", usage()));
    }
    Ok(args)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    let model = match args.model.as_str() {
        "wc" => WeightModel::Wc,
        "wc-variant" => WeightModel::WcVariant { theta: args.theta },
        "uniform" => WeightModel::UniformIc { p: args.p },
        "exponential" => WeightModel::Exponential { lambda: 1.0 },
        "weibull" => WeightModel::Weibull,
        "trivalency" => WeightModel::Trivalency,
        "lt" => WeightModel::Lt,
        other => return Err(format!("unknown model {other}")),
    };
    let lt = args.model == "lt";

    let el = read_edge_list_file(&args.graph).map_err(|e| format!("reading graph: {e}"))?;
    if args.undirected && el.probs.is_some() {
        return Err(
            "--undirected cannot be combined with a weighted edge list; \
             list both directions explicitly instead"
                .into(),
        );
    }
    let g = if args.undirected && el.probs.is_none() {
        GraphBuilder::new(el.n)
            .edges(el.edges.clone())
            .undirected(true)
            .weights(model)
            .build()
            .map_err(|e| format!("building graph: {e}"))?
    } else {
        el.into_graph(model).map_err(|e| format!("building graph: {e}"))?
    };
    eprintln!(
        "graph: {} nodes, {} edges ({})",
        g.n(),
        g.m(),
        GraphStats::compute(&g)
    );

    let alg: Box<dyn ImAlgorithm> = match (args.algorithm.as_str(), lt) {
        ("mc", false) => Box::new(McGreedy::ic(10_000)),
        ("mc", true) => Box::new(McGreedy::lt(10_000)),
        ("tim+", _) => Box::new(TimPlus::vanilla()),
        ("imm", _) => Box::new(Imm::vanilla()),
        ("ssa", _) => Box::new(Ssa::vanilla()),
        ("opim", false) => Box::new(OpimC::vanilla()),
        ("opim", true) | ("subsim", true) | ("hist+subsim", true) | ("hist", true) => {
            Box::new(OpimC::lt())
        }
        ("subsim", false) => Box::new(OpimC::subsim()),
        ("hist", false) => Box::new(Hist::vanilla()),
        ("hist+subsim", false) => Box::new(Hist::with_subsim()),
        (other, _) => return Err(format!("unknown algorithm {other}\n{}", usage())),
    };

    let opts = ImOptions::new(args.k).epsilon(args.epsilon).seed(args.seed);
    let result = alg.run(&g, &opts).map_err(|e| e.to_string())?;

    eprintln!(
        "{}: {} RR sets (avg size {:.1}), {:?}",
        alg.name(),
        result.stats.rr_generated,
        result.stats.avg_rr_size(),
        result.stats.elapsed
    );
    if let Some(ratio) = result.stats.certified_ratio() {
        eprintln!("certified approximation ratio: {ratio:.4}");
    }
    for &s in &result.seeds {
        println!("{s}");
    }
    if args.evaluate > 0 {
        let cascade = if lt { CascadeModel::Lt } else { CascadeModel::Ic };
        let inf = mc_influence(&g, &result.seeds, cascade, args.evaluate, args.seed ^ 1);
        eprintln!(
            "estimated influence: {inf:.1} nodes ({:.2}% of graph)",
            100.0 * inf / g.n() as f64
        );
    }
    Ok(())
}
