//! Facade crate for the SUBSIM / HIST influence-maximization library.
//!
//! Re-exports the public API of the workspace crates:
//!
//! - [`sampling`] — subset-sampling primitives (geometric skips, alias
//!   tables, bucketed and index-free samplers).
//! - [`graph`] — the directed-graph substrate (CSR storage, IC/LT weight
//!   models, generators, edge-list I/O).
//! - [`diffusion`] — cascade simulation and reverse-reachable-set
//!   generation (vanilla, SUBSIM, general-IC, LT, sentinel-stopped).
//! - [`core`] — the influence-maximization algorithms (IMM, SSA, OPIM-C,
//!   SUBSIM, HIST) with their approximation guarantees.
//! - [`index`] — the amortized RR-sketch index for serving repeated IM
//!   queries over a fixed graph, with snapshot persistence and a
//!   concurrent serving layer ([`index::ConcurrentRrIndex`]).
//! - [`delta`] — versioned graph updates with incremental RR-sketch
//!   repair: batched edge mutations apply into epoch-stamped graph
//!   versions, and only the RR sets touching mutated edges regenerate
//!   ([`delta::DeltaIndex`], [`delta::ConcurrentDeltaIndex`]).
//! - [`serve`] — the sharded serving layer: RR pools partitioned by
//!   chunk ownership across shards with merged greedy selection
//!   ([`serve::ShardedDeltaIndex`]) behind a framed multi-connection
//!   server ([`serve::serve_framed`]); output is bit-identical to the
//!   sequential index for any shard count.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![warn(missing_docs)]

pub use subsim_core as core;
pub use subsim_delta as delta;
pub use subsim_diffusion as diffusion;
pub use subsim_graph as graph;
pub use subsim_index as index;
pub use subsim_sampling as sampling;
pub use subsim_serve as serve;

/// Commonly used items, collected for `use subsim::prelude::*;`.
pub mod prelude {
    pub use subsim_core::prelude::*;
    pub use subsim_delta::{ConcurrentDeltaIndex, DeltaIndex, GraphDelta, VersionedGraph};
    pub use subsim_diffusion::prelude::*;
    pub use subsim_graph::prelude::*;
    pub use subsim_index::{ConcurrentRrIndex, IndexConfig, MetricsSnapshot, QueryAnswer, RrIndex};
}
