#!/usr/bin/env bash
# Coverage gate for CI: measure workspace line coverage with cargo-llvm-cov
# and fail when it regresses more than the tolerance below the recorded
# baseline.
#
# Usage:
#   scripts/coverage_gate.sh           # measure and compare vs baseline
#   scripts/coverage_gate.sh --record  # measure and (re)write the baseline
#
# The baseline lives in ci/coverage-baseline.txt (one number, percent of
# lines covered). Refresh it deliberately with --record when a PR moves
# coverage up — the gate only defends the floor, it never ratchets itself.
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE_FILE="ci/coverage-baseline.txt"
TOLERANCE="${COVERAGE_TOLERANCE:-2.0}"

if ! cargo llvm-cov --version >/dev/null 2>&1; then
    echo "error: cargo-llvm-cov is not installed (CI installs it via taiki-e/install-action)" >&2
    exit 1
fi

echo "measuring workspace line coverage (this runs the full test suite instrumented)..."
current=$(cargo llvm-cov --workspace --summary-only --json \
    | python3 -c 'import json,sys; print(round(json.load(sys.stdin)["data"][0]["totals"]["lines"]["percent"], 2))')
echo "current line coverage: ${current}%"

if [[ "${1:-}" == "--record" ]]; then
    printf '%s\n' "$current" > "$BASELINE_FILE"
    echo "baseline recorded: ${current}% -> ${BASELINE_FILE}"
    exit 0
fi

if [[ ! -f "$BASELINE_FILE" ]]; then
    echo "error: no baseline at ${BASELINE_FILE}; run '$0 --record' once and commit it" >&2
    exit 1
fi

baseline=$(grep -oE '^[0-9]+([.][0-9]+)?' "$BASELINE_FILE" | head -1)
if [[ -z "$baseline" ]]; then
    echo "error: ${BASELINE_FILE} holds no number" >&2
    exit 1
fi

floor=$(python3 -c "print(${baseline} - ${TOLERANCE})")
echo "baseline ${baseline}%, tolerance ${TOLERANCE} -> floor ${floor}%"
if python3 -c "import sys; sys.exit(0 if ${current} >= ${floor} else 1)"; then
    echo "coverage gate passed"
else
    echo "error: coverage ${current}% fell more than ${TOLERANCE} points below the ${baseline}% baseline" >&2
    echo "       fix the lost coverage, or re-record deliberately with '$0 --record'" >&2
    exit 1
fi
