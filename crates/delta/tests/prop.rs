//! Property battery (satellite of PR 4): arbitrary random delta
//! sequences, applied with incremental repair, must be indistinguishable
//! from rebuilding everything from scratch on the final graph version —
//! pools bit-identical, selected seeds identical, certified bounds
//! identical.
//!
//! The default cases keep `cargo test` fast; the `#[ignore]`d heavy
//! variant (run in CI with `--include-ignored`) widens graphs, deepens
//! sequences, and crosses strategies and compaction cadences.

use proptest::prelude::*;
use subsim_delta::{DeltaIndex, GraphDelta, VersionedGraph};
use subsim_diffusion::RrStrategy;
use subsim_graph::generators::barabasi_albert;
use subsim_graph::WeightModel;
use subsim_index::IndexConfig;

/// Canonicalizes raw proptest tuples into a valid delta against the
/// running state: existing edges delete (flag even) or reweight (odd),
/// absent edges insert; at most one op per `(u, v)` per batch.
fn canonical_delta(vg: &VersionedGraph, raw: &[(u32, u32, u32, bool)]) -> GraphDelta {
    let n = vg.graph().n() as u32;
    let mut delta = GraphDelta::new();
    let mut touched = std::collections::HashSet::new();
    for &(ru, rv, rp, flag) in raw {
        let (u, v) = (ru % n, rv % n);
        if !touched.insert((u, v)) {
            continue;
        }
        let p = (rp % 1000 + 1) as f64 / 1001.0;
        delta = if vg.has_edge(u, v) {
            if flag {
                delta.delete_edge(u, v)
            } else {
                delta.reweight_edge(u, v, p)
            }
        } else {
            delta.insert_edge(u, v, p)
        };
    }
    delta
}

/// Applies `batches` incrementally (repair path) and from scratch
/// (rebuild path), then asserts both pools and a query are identical.
fn assert_repair_equals_rebuild(
    n: usize,
    graph_seed: u64,
    cfg: IndexConfig,
    compact_threshold: usize,
    warm_sets: usize,
    batches: &[Vec<(u32, u32, u32, bool)>],
    k: usize,
) -> Result<(), TestCaseError> {
    let g = barabasi_albert(n, 3, WeightModel::Wc, graph_seed);
    let vg = VersionedGraph::with_compaction_threshold(g.clone(), compact_threshold).unwrap();
    let mut index = DeltaIndex::from_versioned(vg, cfg);
    index.warm(warm_sets).unwrap();

    let mut deltas = Vec::new();
    for raw in batches {
        let d = canonical_delta(index.versioned(), raw);
        let report = index.apply_delta(&d).unwrap();
        prop_assert!(report.regenerated_sets <= report.pool_sets);
        deltas.push(d);
    }

    let mut fresh_vg = VersionedGraph::new(g).unwrap();
    for d in &deltas {
        fresh_vg.apply(d).unwrap();
    }
    prop_assert_eq!(fresh_vg.fingerprint(), index.fingerprint());
    let mut fresh = DeltaIndex::from_versioned(fresh_vg, cfg);
    fresh.warm(index.pool_len()).unwrap();

    prop_assert_eq!(fresh.pool_len(), index.pool_len());
    for i in 0..index.pool_len() {
        prop_assert_eq!(
            index.selection_pool().get(i),
            fresh.selection_pool().get(i),
            "r1 set {}",
            i
        );
        prop_assert_eq!(
            index.validation_pool().get(i),
            fresh.validation_pool().get(i),
            "r2 set {}",
            i
        );
    }
    let a = index.query(k, 0.3, 0.1).unwrap();
    let b = fresh.query(k, 0.3, 0.1).unwrap();
    prop_assert_eq!(a.seeds, b.seeds);
    prop_assert_eq!(a.stats.lower_bound, b.stats.lower_bound);
    prop_assert_eq!(a.stats.upper_bound, b.stats.upper_bound);
    prop_assert_eq!(a.stats.certified_by_bounds, b.stats.certified_by_bounds);
    Ok(())
}

fn op_batches(
    max_batches: usize,
    max_ops: usize,
) -> impl Strategy<Value = Vec<Vec<(u32, u32, u32, bool)>>> {
    prop::collection::vec(
        prop::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<bool>()),
            1..=max_ops,
        ),
        1..=max_batches,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Light battery: small graphs, short sequences, SUBSIM strategy.
    #[test]
    fn repaired_index_is_indistinguishable_from_rebuild(
        n in 60usize..140,
        graph_seed in 0u64..500,
        index_seed in 0u64..500,
        k in 1usize..5,
        batches in op_batches(3, 3),
    ) {
        let cfg = IndexConfig::new(RrStrategy::SubsimIc)
            .seed(index_seed)
            .chunk_size(16)
            .threads(2);
        assert_repair_equals_rebuild(n, graph_seed, cfg, 4096, 96, &batches, k)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Heavy battery (CI `--include-ignored`): bigger graphs, longer
    /// sequences, all IC strategies, and aggressive compaction so the
    /// overlay folds mid-sequence.
    #[test]
    #[ignore = "heavy differential battery; run with --include-ignored"]
    fn repaired_index_matches_rebuild_across_strategies(
        n in 120usize..300,
        graph_seed in 0u64..1000,
        index_seed in 0u64..1000,
        strategy_pick in 0u8..3,
        compact in prop_oneof![Just(1usize), Just(2), Just(4096)],
        k in 1usize..8,
        batches in op_batches(6, 5),
    ) {
        let strategy = match strategy_pick {
            0 => RrStrategy::VanillaIc,
            1 => RrStrategy::SubsimIc,
            _ => RrStrategy::SubsimBucketIc,
        };
        let cfg = IndexConfig::new(strategy)
            .seed(index_seed)
            .chunk_size(32)
            .threads(3);
        assert_repair_equals_rebuild(n, graph_seed, cfg, compact, 160, &batches, k)?;
    }
}
