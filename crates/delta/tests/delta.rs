//! Integration battery for the versioned-update subsystem: differential
//! repair-vs-rebuild checks over random delta sequences, fingerprint
//! evolution, and typed rejection of stale snapshots and versions.

use subsim_delta::{ConcurrentDeltaIndex, DeltaError, DeltaIndex, GraphDelta, VersionedGraph};
use subsim_diffusion::RrStrategy;
use subsim_graph::generators::barabasi_albert;
use subsim_graph::WeightModel;
use subsim_index::{IndexConfig, IndexError};

fn config(strategy: RrStrategy, seed: u64) -> IndexConfig {
    IndexConfig::new(strategy)
        .seed(seed)
        .chunk_size(32)
        .threads(2)
}

/// splitmix64 — a tiny deterministic PRNG for driving test delta
/// sequences without depending on the sampling crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn prob(&mut self) -> f64 {
        (self.below(1000) + 1) as f64 / 1001.0
    }
}

/// Generates one canonical random delta against the current graph state:
/// existing edges are deleted or reweighted, absent edges inserted, with
/// at most one op per (u, v) pair per batch so every batch validates.
fn random_delta(rng: &mut Rng, vg: &VersionedGraph, ops: usize) -> GraphDelta {
    let n = vg.graph().n() as u64;
    let mut delta = GraphDelta::new();
    let mut touched = std::collections::HashSet::new();
    while delta.len() < ops {
        let (u, v) = (rng.below(n) as u32, rng.below(n) as u32);
        if !touched.insert((u, v)) {
            continue;
        }
        delta = if vg.has_edge(u, v) {
            if rng.below(2) == 0 {
                delta.delete_edge(u, v)
            } else {
                delta.reweight_edge(u, v, rng.prob())
            }
        } else {
            delta.insert_edge(u, v, rng.prob())
        };
    }
    delta
}

/// The acceptance-criteria differential: for several random delta
/// sequences, applying them one by one with incremental repair must leave
/// the index byte-identical — pools, selected seeds, certified bounds —
/// to a fresh index built from scratch on the final graph version.
#[test]
fn incremental_repair_matches_full_rebuild_across_sequences() {
    for (case, (graph_seed, delta_seed)) in [(1u64, 0xaau64), (2, 0xbb), (3, 0xcc)]
        .into_iter()
        .enumerate()
    {
        let g = barabasi_albert(220, 3, WeightModel::Wc, graph_seed);
        let cfg = config(RrStrategy::SubsimIc, 100 + case as u64);
        let mut index = DeltaIndex::new(g.clone(), cfg).unwrap();
        index.warm(320).unwrap();

        let mut rng = Rng(delta_seed);
        let mut deltas = Vec::new();
        for step in 0..4 {
            let d = random_delta(&mut rng, index.versioned(), 1 + step % 3);
            let report = index.apply_delta(&d).unwrap();
            assert_eq!(report.version, step as u64 + 1);
            assert_eq!(report.pool_sets, 2 * index.pool_len());
            deltas.push(d);
        }

        // Rebuild from scratch: same ops onto a fresh versioned graph,
        // then a fresh pool grown to the same cursor.
        let mut fresh_vg = VersionedGraph::new(g).unwrap();
        for d in &deltas {
            fresh_vg.apply(d).unwrap();
        }
        assert_eq!(fresh_vg.fingerprint(), index.fingerprint(), "case {case}");
        let mut fresh = DeltaIndex::from_versioned(fresh_vg, cfg);
        fresh.warm(index.pool_len()).unwrap();

        assert_eq!(fresh.pool_len(), index.pool_len());
        for i in 0..index.pool_len() {
            assert_eq!(
                index.selection_pool().get(i),
                fresh.selection_pool().get(i),
                "case {case} r1 set {i}"
            );
            assert_eq!(
                index.validation_pool().get(i),
                fresh.validation_pool().get(i),
                "case {case} r2 set {i}"
            );
        }
        let a = index.query(5, 0.1, 0.01).unwrap();
        let b = fresh.query(5, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds, "case {case}");
        assert_eq!(a.stats.lower_bound, b.stats.lower_bound, "case {case}");
        assert_eq!(a.stats.upper_bound, b.stats.upper_bound, "case {case}");
        assert_eq!(a.stats.pool_after, b.stats.pool_after, "case {case}");
    }
}

/// Compaction cadence is an implementation detail: aggressive compaction
/// (every delta) and no compaction must serve identical pools.
#[test]
fn compaction_threshold_does_not_change_repaired_pools() {
    let g = barabasi_albert(180, 3, WeightModel::Wc, 9);
    let cfg = config(RrStrategy::SubsimIc, 55);
    let mut eager = DeltaIndex::from_versioned(
        VersionedGraph::with_compaction_threshold(g.clone(), 1).unwrap(),
        cfg,
    );
    let mut lazy = DeltaIndex::from_versioned(
        VersionedGraph::with_compaction_threshold(g, 1_000_000).unwrap(),
        cfg,
    );
    eager.warm(200).unwrap();
    lazy.warm(200).unwrap();
    let mut rng = Rng(0x5eed);
    for _ in 0..5 {
        // Same ops on both (canonicalized against eager; states agree).
        let d = random_delta(&mut rng, eager.versioned(), 2);
        eager.apply_delta(&d).unwrap();
        lazy.apply_delta(&d).unwrap();
    }
    assert!(eager.versioned().compactions() >= 5);
    assert_eq!(lazy.versioned().compactions(), 0);
    assert_eq!(eager.fingerprint(), lazy.fingerprint());
    for i in 0..eager.pool_len() {
        assert_eq!(eager.selection_pool().get(i), lazy.selection_pool().get(i));
        assert_eq!(
            eager.validation_pool().get(i),
            lazy.validation_pool().get(i)
        );
    }
}

/// First `(u, v)` pair absent from `g` — a safe target for inserts.
fn absent_edge(g: &subsim_graph::Graph) -> (u32, u32) {
    let n = g.n() as u32;
    for v in (0..n).rev() {
        for u in 0..n {
            if u != v && g.prob_of_edge(u, v).is_none() {
                return (u, v);
            }
        }
    }
    panic!("complete graph has no absent edge");
}

/// Satellite 3a: every applied delta must move the graph fingerprint, and
/// a net-no-op history must return to the original fingerprint.
#[test]
fn fingerprint_evolves_with_every_delta() {
    let g = barabasi_albert(150, 3, WeightModel::Wc, 10);
    let hub = (0..g.n() as u32).max_by_key(|&v| g.in_degree(v)).unwrap();
    let mut index = DeltaIndex::new(g, config(RrStrategy::SubsimIc, 1)).unwrap();
    index.warm(100).unwrap();
    let f0 = index.fingerprint();
    let u = index.graph().in_neighbors(hub)[0];
    let p_orig = index.graph().prob_of_edge(u, hub).unwrap();

    index
        .apply_delta(&GraphDelta::new().reweight_edge(u, hub, p_orig / 2.0))
        .unwrap();
    let f1 = index.fingerprint();
    assert_ne!(f1, f0, "reweight must change the fingerprint");

    index
        .apply_delta(&GraphDelta::new().delete_edge(u, hub))
        .unwrap();
    let f2 = index.fingerprint();
    assert_ne!(f2, f1, "delete must change the fingerprint");

    index
        .apply_delta(&GraphDelta::new().insert_edge(u, hub, p_orig))
        .unwrap();
    assert_eq!(
        index.fingerprint(),
        f0,
        "restoring the original edge set must restore the fingerprint"
    );
    assert_eq!(
        index.version(),
        3,
        "versions advance even when edges return"
    );
}

/// Satellite 3b: a pool snapshot taken at one version must refuse to load
/// against any other version — typed error, no panic, in both directions.
#[test]
fn stale_snapshots_are_rejected_with_typed_errors() {
    let dir = std::env::temp_dir().join("subsim_delta_stale_snapshot_test");
    std::fs::create_dir_all(&dir).unwrap();
    let v0_path = dir.join("v0.subsimix");
    let v1_path = dir.join("v1.subsimix");
    let g = barabasi_albert(120, 3, WeightModel::Wc, 11);
    let cfg = config(RrStrategy::SubsimIc, 2);
    let mut index = DeltaIndex::new(g.clone(), cfg).unwrap();
    index.warm(150).unwrap();
    index.save_snapshot(&v0_path).unwrap();

    let (iu, iv) = absent_edge(&g);
    let delta = GraphDelta::new().insert_edge(iu, iv, 0.25);
    index.apply_delta(&delta).unwrap();
    index.save_snapshot(&v1_path).unwrap();

    // v0 snapshot loads against the v0 graph...
    let reloaded = DeltaIndex::load_snapshot(g.clone(), cfg, &v0_path).unwrap();
    assert_eq!(reloaded.pool_len(), index.pool_len());

    // ...but the v1 snapshot against the v0 graph is refused, typed.
    let err = DeltaIndex::load_snapshot(g.clone(), cfg, &v1_path).unwrap_err();
    assert!(
        matches!(err, DeltaError::Index(IndexError::SnapshotMismatch { .. })),
        "got {err:?}"
    );

    // And the v0 snapshot against the v1 graph is refused too.
    let mut v1_graph = VersionedGraph::new(g).unwrap();
    v1_graph.apply(&delta).unwrap();
    let err = DeltaIndex::load_snapshot(v1_graph.graph().clone(), cfg, &v0_path).unwrap_err();
    assert!(
        matches!(err, DeltaError::Index(IndexError::SnapshotMismatch { .. })),
        "got {err:?}"
    );
    std::fs::remove_file(&v0_path).ok();
    std::fs::remove_file(&v1_path).ok();
}

/// An LT pool snapshot loaded into an IC-configured index (or vice
/// versa) is refused with a typed mismatch — never adopted silently as
/// the wrong diffusion model.
#[test]
fn cross_strategy_snapshots_are_rejected_with_typed_errors() {
    let dir = std::env::temp_dir().join("subsim_delta_cross_strategy_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lt.subsimix");
    let g = barabasi_albert(120, 3, WeightModel::Wc, 13);
    let mut index = DeltaIndex::new(g.clone(), config(RrStrategy::Lt, 2)).unwrap();
    index.warm(150).unwrap();
    index.save_snapshot(&path).unwrap();

    // Same strategy: loads and preserves the pool.
    let reloaded = DeltaIndex::load_snapshot(g.clone(), config(RrStrategy::Lt, 2), &path).unwrap();
    assert_eq!(reloaded.pool_len(), index.pool_len());

    // IC-configured server: typed refusal naming both strategies.
    let err = DeltaIndex::load_snapshot(g, config(RrStrategy::SubsimIc, 2), &path).unwrap_err();
    match &err {
        DeltaError::Index(IndexError::SnapshotMismatch { reason }) => {
            assert!(reason.contains("Lt"), "{reason}");
            assert!(reason.contains("SubsimIc"), "{reason}");
        }
        other => panic!("got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

/// Satellite 3c: concurrent serving surfaces version skew as a typed
/// [`DeltaError::StaleVersion`], never a panic or a silent wrong answer.
#[test]
fn pinned_concurrent_queries_fail_typed_after_delta() {
    let g = barabasi_albert(150, 3, WeightModel::Wc, 12);
    let (iu, iv) = absent_edge(&g);
    let index = ConcurrentDeltaIndex::new(g, config(RrStrategy::SubsimIc, 3)).unwrap();
    index.warm(150).unwrap();
    let pinned = index.version();
    index.query_at_version(pinned, 3, 0.15, 0.05).unwrap();
    index
        .apply_delta(&GraphDelta::new().insert_edge(iu, iv, 0.4))
        .unwrap();
    match index.query_at_version(pinned, 3, 0.15, 0.05) {
        Err(DeltaError::StaleVersion { requested, current }) => {
            assert_eq!(requested, pinned);
            assert_eq!(current, pinned + 1);
        }
        other => panic!("expected StaleVersion, got {other:?}"),
    }
}

/// Repair works identically across RR strategies — the dirtiness
/// criterion (set contains a mutated target) is strategy-independent.
#[test]
fn repair_is_exact_for_vanilla_and_bucket_strategies() {
    for strategy in [RrStrategy::VanillaIc, RrStrategy::SubsimBucketIc] {
        let g = barabasi_albert(160, 3, WeightModel::Wc, 13);
        let cfg = config(strategy, 7);
        let mut index = DeltaIndex::new(g.clone(), cfg).unwrap();
        index.warm(200).unwrap();
        let mut rng = Rng(0xfeed);
        let mut deltas = Vec::new();
        for _ in 0..3 {
            let d = random_delta(&mut rng, index.versioned(), 2);
            index.apply_delta(&d).unwrap();
            deltas.push(d);
        }
        let mut fresh_vg = VersionedGraph::new(g).unwrap();
        for d in &deltas {
            fresh_vg.apply(d).unwrap();
        }
        let mut fresh = DeltaIndex::from_versioned(fresh_vg, cfg);
        fresh.warm(index.pool_len()).unwrap();
        for i in 0..index.pool_len() {
            assert_eq!(
                index.selection_pool().get(i),
                fresh.selection_pool().get(i),
                "{strategy:?} r1 set {i}"
            );
            assert_eq!(
                index.validation_pool().get(i),
                fresh.validation_pool().get(i),
                "{strategy:?} r2 set {i}"
            );
        }
    }
}
