//! Batched edge mutations and their text format.

use crate::error::DeltaError;
use subsim_graph::NodeId;

/// One edge mutation.
///
/// Deltas mutate edges only — the node set is fixed when the
/// [`crate::VersionedGraph`] is built, so RR roots keep drawing from the
/// same `0..n` range and repaired pools stay on the original chunk-seed
/// stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaOp {
    /// Adds the edge `u -> v` with probability `p`; the edge must not
    /// exist in the current version.
    InsertEdge {
        /// Source endpoint.
        u: NodeId,
        /// Target endpoint.
        v: NodeId,
        /// Activation probability in `[0, 1]`.
        p: f64,
    },
    /// Removes the edge `u -> v`; the edge must exist.
    DeleteEdge {
        /// Source endpoint.
        u: NodeId,
        /// Target endpoint.
        v: NodeId,
    },
    /// Sets the probability of the existing edge `u -> v` to `p`.
    ReweightEdge {
        /// Source endpoint.
        u: NodeId,
        /// Target endpoint.
        v: NodeId,
        /// New activation probability in `[0, 1]`.
        p: f64,
    },
}

impl DeltaOp {
    /// The edge's target endpoint — the only node whose in-list (and
    /// therefore whose RR-generation randomness) the op can change.
    pub fn target(&self) -> NodeId {
        match *self {
            DeltaOp::InsertEdge { v, .. }
            | DeltaOp::DeleteEdge { v, .. }
            | DeltaOp::ReweightEdge { v, .. } => v,
        }
    }

    /// The edge's endpoints `(u, v)`.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            DeltaOp::InsertEdge { u, v, .. }
            | DeltaOp::DeleteEdge { u, v }
            | DeltaOp::ReweightEdge { u, v, .. } => (u, v),
        }
    }
}

impl std::fmt::Display for DeltaOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DeltaOp::InsertEdge { u, v, p } => write!(f, "+ {u} {v} {p}"),
            DeltaOp::DeleteEdge { u, v } => write!(f, "- {u} {v}"),
            DeltaOp::ReweightEdge { u, v, p } => write!(f, "~ {u} {v} {p}"),
        }
    }
}

/// An ordered batch of edge mutations, applied atomically by
/// [`crate::VersionedGraph::apply`] (all ops validate against the running
/// state or none commit).
///
/// Text format, one op per line (`#` comments and blank lines ignored):
///
/// ```text
/// + u v p    # insert edge u -> v with probability p
/// - u v      # delete edge u -> v
/// ~ u v p    # reweight edge u -> v to p
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphDelta {
    ops: Vec<DeltaOp>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Appends an edge insertion.
    pub fn insert_edge(mut self, u: NodeId, v: NodeId, p: f64) -> Self {
        self.ops.push(DeltaOp::InsertEdge { u, v, p });
        self
    }

    /// Appends an edge deletion.
    pub fn delete_edge(mut self, u: NodeId, v: NodeId) -> Self {
        self.ops.push(DeltaOp::DeleteEdge { u, v });
        self
    }

    /// Appends an edge reweight.
    pub fn reweight_edge(mut self, u: NodeId, v: NodeId, p: f64) -> Self {
        self.ops.push(DeltaOp::ReweightEdge { u, v, p });
        self
    }

    /// Appends one op.
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Sorted, deduplicated targets of all ops — the nodes whose in-lists
    /// the delta mutates. An RR set is dirty under this delta iff it
    /// contains one of these nodes (see [`crate::repair`]).
    pub fn targets(&self) -> Vec<NodeId> {
        let mut t: Vec<NodeId> = self.ops.iter().map(|op| op.target()).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Parses one op line of the text format; `Ok(None)` for blank and
    /// comment lines.
    pub fn parse_line(line: &str) -> Result<Option<DeltaOp>, DeltaError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut it = line.split_whitespace();
        let kind = it.next().expect("non-empty line has a first token");
        let mut node = |what: &str| -> Result<NodeId, DeltaError> {
            it.next()
                .ok_or_else(|| DeltaError::Parse {
                    message: format!("missing {what} in {line:?}"),
                })?
                .parse::<NodeId>()
                .map_err(|e| DeltaError::Parse {
                    message: format!("bad {what} in {line:?}: {e}"),
                })
        };
        let (u, v) = (node("source")?, node("target")?);
        let prob = |it: &mut std::str::SplitWhitespace<'_>| -> Result<f64, DeltaError> {
            it.next()
                .ok_or_else(|| DeltaError::Parse {
                    message: format!("missing probability in {line:?}"),
                })?
                .parse::<f64>()
                .map_err(|e| DeltaError::Parse {
                    message: format!("bad probability in {line:?}: {e}"),
                })
        };
        let op = match kind {
            "+" => DeltaOp::InsertEdge {
                u,
                v,
                p: prob(&mut it)?,
            },
            "-" => DeltaOp::DeleteEdge { u, v },
            "~" => DeltaOp::ReweightEdge {
                u,
                v,
                p: prob(&mut it)?,
            },
            other => {
                return Err(DeltaError::Parse {
                    message: format!("unknown op {other:?} (expected +, -, or ~)"),
                })
            }
        };
        if it.next().is_some() {
            return Err(DeltaError::Parse {
                message: format!("trailing tokens in {line:?}"),
            });
        }
        Ok(Some(op))
    }

    /// Parses a whole delta from the text format.
    pub fn parse(text: &str) -> Result<Self, DeltaError> {
        let mut delta = GraphDelta::new();
        for line in text.lines() {
            if let Some(op) = Self::parse_line(line)? {
                delta.push(op);
            }
        }
        Ok(delta)
    }
}

impl std::fmt::Display for GraphDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for op in &self.ops {
            writeln!(f, "{op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_ops() {
        let d = GraphDelta::new()
            .insert_edge(0, 1, 0.5)
            .delete_edge(2, 3)
            .reweight_edge(4, 5, 0.25);
        assert_eq!(d.len(), 3);
        assert_eq!(d.ops()[1], DeltaOp::DeleteEdge { u: 2, v: 3 });
    }

    #[test]
    fn targets_are_sorted_and_deduped() {
        let d = GraphDelta::new()
            .insert_edge(0, 9, 0.5)
            .delete_edge(1, 2)
            .reweight_edge(7, 9, 0.1)
            .insert_edge(3, 2, 0.4);
        assert_eq!(d.targets(), vec![2, 9]);
    }

    #[test]
    fn text_format_round_trips() {
        let d = GraphDelta::new()
            .insert_edge(0, 1, 0.5)
            .delete_edge(2, 3)
            .reweight_edge(4, 5, 0.125);
        let text = d.to_string();
        let parsed = GraphDelta::parse(&text).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let d = GraphDelta::parse("# updates\n\n+ 0 1 0.5\n  # trailing\n- 1 0\n").unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "* 0 1",
            "+ 0 1",
            "+ 0 x 0.5",
            "- 1",
            "~ 0 1 huh",
            "+ 0 1 0.5 extra",
        ] {
            assert!(
                matches!(GraphDelta::parse(bad), Err(DeltaError::Parse { .. })),
                "accepted {bad:?}"
            );
        }
    }
}
