//! Concurrent serving over a versioned graph: shared `&self` queries,
//! writer-serialized growth *and* delta application, version-pinned reads.
//!
//! [`ConcurrentDeltaIndex`] extends the `ConcurrentRrIndex` snapshot
//! pattern to a mutable graph. Each published [`DeltaSnapshot`] pins a
//! complete serving state — the graph `Arc` at one version, its
//! fingerprint, both pool halves, and the chunk cursor — so a reader's
//! view can never tear across a delta: it either sees the pool entirely
//! before a mutation or entirely after its repair, never a mix.
//!
//! Applying a delta invalidates every previously loaded snapshot in the
//! semantic sense (they describe an old graph version) without breaking
//! them in the memory sense: old `Arc`s stay readable, and a caller that
//! needs version stability pins it explicitly with
//! [`ConcurrentDeltaIndex::query_at_version`], which fails with a typed
//! [`DeltaError::StaleVersion`] instead of silently answering on a newer
//! graph.

use crate::delta::GraphDelta;
use crate::error::DeltaError;
use crate::index::DeltaIndex;
use crate::repair::{repair_pool, RepairReport};
use crate::versioned::VersionedGraph;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;
use subsim_core::bounds::{i_max, theta_max_opim, theta_zero};
use subsim_core::pool::evaluate_pool_timed_par;
use subsim_core::sentinel::{evaluate_pool_sentinel, SentinelSet};
use subsim_core::ImOptions;
use subsim_diffusion::pool::WorkerPool;
use subsim_diffusion::{RrCollection, RrSampler};
use subsim_graph::Graph;
use subsim_index::{
    IndexConfig, IndexError, IndexMetrics, MetricsSnapshot, QueryAnswer, QueryStats, SentinelState,
    R2_STREAM, SENTINEL_WARMUP_CHUNKS,
};
use subsim_sketch::{evaluate_pool_sketched, SketchedPool, MAX_PRECISION};

/// One immutable published serving state: the graph at one version plus
/// the pool generated (or repaired) against exactly that version.
#[derive(Debug)]
pub struct DeltaSnapshot {
    graph: Arc<Graph>,
    version: u64,
    fingerprint: u64,
    r1: RrCollection,
    r2: RrCollection,
    chunks: u64,
    /// Sentinel tier state at publish time; immutable like the halves.
    sentinel: Option<SentinelState>,
    /// Sketched validation tier at publish time: when active, `r2` stays
    /// empty and validation runs over per-node count-distinct sketches.
    sketch: Option<SketchedPool>,
}

impl DeltaSnapshot {
    /// The graph version this snapshot serves.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Structural fingerprint of [`DeltaSnapshot::graph`].
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The graph at this snapshot's version.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Sets per pool half.
    pub fn pool_len(&self) -> usize {
        self.r1.len()
    }

    /// The RNG cursor: complete chunks generated per half.
    pub fn chunk_cursor(&self) -> u64 {
        self.chunks
    }

    /// The selection half `R₁` (read-only).
    pub fn selection_pool(&self) -> &RrCollection {
        &self.r1
    }

    /// The validation half `R₂` (read-only).
    pub fn validation_pool(&self) -> &RrCollection {
        &self.r2
    }

    /// The sentinel tier state, if active.
    pub fn sentinel_state(&self) -> Option<&SentinelState> {
        self.sentinel.as_ref()
    }

    /// The sketched validation pool, if the sketch tier is active.
    pub fn sketch_state(&self) -> Option<&SketchedPool> {
        self.sketch.as_ref()
    }
}

/// The mutable side, serialized behind one mutex: the versioned graph
/// (authoritative for "current version") and the persistent generation
/// workers. Pool state lives only in published snapshots.
struct WriterState {
    vg: VersionedGraph,
    workers: WorkerPool,
}

/// A concurrently queryable [`DeltaIndex`]: `&self` queries from any
/// number of threads, pool growth and delta application serialized
/// through one writer, every state change published as an immutable
/// [`DeltaSnapshot`].
///
/// ```
/// use subsim_delta::{ConcurrentDeltaIndex, DeltaError, GraphDelta};
/// use subsim_diffusion::RrStrategy;
/// use subsim_graph::{generators, WeightModel};
/// use subsim_index::IndexConfig;
///
/// let g = generators::star_graph(50, WeightModel::UniformIc { p: 0.4 });
/// let index =
///     ConcurrentDeltaIndex::new(g, IndexConfig::new(RrStrategy::SubsimIc).seed(3)).unwrap();
/// let ans = index.query(1, 0.1, 0.01).unwrap();
/// assert_eq!(ans.seeds, vec![0]);
/// index.apply_delta(&GraphDelta::new().insert_edge(1, 2, 0.9)).unwrap();
/// // A reader pinned to version 0 now gets a typed error, not stale data.
/// assert!(matches!(
///     index.query_at_version(0, 1, 0.1, 0.01),
///     Err(DeltaError::StaleVersion { requested: 0, current: 1 })
/// ));
/// ```
pub struct ConcurrentDeltaIndex {
    config: IndexConfig,
    snapshot: RwLock<Arc<DeltaSnapshot>>,
    writer: Mutex<WriterState>,
    metrics: IndexMetrics,
}

impl std::fmt::Debug for ConcurrentDeltaIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.load();
        f.debug_struct("ConcurrentDeltaIndex")
            .field("config", &self.config)
            .field("version", &snap.version)
            .field("chunks", &snap.chunks)
            .field("pool_len", &snap.pool_len())
            .finish_non_exhaustive()
    }
}

impl ConcurrentDeltaIndex {
    /// An empty concurrent index over version 0 of `g`
    /// (storage-normalized; see [`VersionedGraph`]).
    pub fn new(g: Graph, config: IndexConfig) -> Result<Self, DeltaError> {
        Ok(Self::from_index(DeltaIndex::new(g, config)?))
    }

    /// Wraps a sequential [`DeltaIndex`] (possibly warmed or loaded from
    /// a snapshot file) for concurrent serving. The pool and version
    /// carry over unchanged; metrics restart.
    pub fn from_index(index: DeltaIndex) -> Self {
        let (vg, config, r1, r2, chunks, sentinel, sketch) = index.into_raw_parts();
        let snap = DeltaSnapshot {
            graph: vg.graph_arc(),
            version: vg.version(),
            fingerprint: vg.fingerprint(),
            r1,
            r2,
            chunks,
            sentinel,
            sketch,
        };
        ConcurrentDeltaIndex {
            config,
            snapshot: RwLock::new(Arc::new(snap)),
            writer: Mutex::new(WriterState {
                vg,
                workers: WorkerPool::new(config.threads),
            }),
            metrics: IndexMetrics::default(),
        }
    }

    /// Converts back into a sequential index over the current snapshot
    /// (e.g. to [`DeltaIndex::save_snapshot`] it). Requires exclusive
    /// ownership, so no reader can be left holding a stale view.
    pub fn into_index(self) -> DeltaIndex {
        let ws = self.writer.into_inner().expect("writer lock poisoned");
        let snap = self.snapshot.into_inner().expect("snapshot lock poisoned");
        let snap = Arc::try_unwrap(snap).unwrap_or_else(|arc| DeltaSnapshot {
            graph: Arc::clone(&arc.graph),
            version: arc.version,
            fingerprint: arc.fingerprint,
            r1: arc.r1.clone(),
            r2: arc.r2.clone(),
            chunks: arc.chunks,
            sentinel: arc.sentinel.clone(),
            sketch: arc.sketch.clone(),
        });
        let mut config = self.config;
        // The ladder may have promoted past the construction-time
        // precision; the live sketch is authoritative.
        if let Some(sk) = &snap.sketch {
            config.sketch = sk.precision() as usize;
        }
        DeltaIndex::from_raw_parts(
            ws.vg,
            config,
            snap.r1,
            snap.r2,
            snap.chunks,
            snap.sentinel,
            snap.sketch,
        )
    }

    /// The construction-time configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The currently served graph version.
    pub fn version(&self) -> u64 {
        self.load().version
    }

    /// Structural fingerprint of the currently served graph.
    pub fn fingerprint(&self) -> u64 {
        self.load().fingerprint
    }

    /// The current published snapshot. The returned `Arc` is a stable
    /// view: its content never changes, even while the writer publishes
    /// successors or applies deltas.
    pub fn load(&self) -> Arc<DeltaSnapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// A point-in-time copy of the serving metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Test-only fault injection: forwards a chunk hook to the writer's
    /// worker pool (see [`subsim_diffusion::WorkerPool::set_chunk_hook`]).
    #[doc(hidden)]
    pub fn set_chunk_hook(&self, hook: Option<subsim_diffusion::ChunkHook>) {
        self.writer
            .lock()
            .expect("writer lock poisoned")
            .workers
            .set_chunk_hook(hook);
    }

    /// Pre-grows the pool to at least `sets` per half on the current
    /// graph version.
    pub fn warm(&self, sets: usize) -> Result<(), DeltaError> {
        self.grow_to(sets)?;
        Ok(())
    }

    /// Answers one IM query against the latest published version;
    /// semantics per query match [`DeltaIndex::query`]. If a delta lands
    /// between certification rounds the query continues on the repaired
    /// (newer) snapshot — use [`ConcurrentDeltaIndex::query_at_version`]
    /// to demand version stability instead.
    pub fn query(&self, k: usize, epsilon: f64, delta: f64) -> Result<QueryAnswer, DeltaError> {
        self.query_inner(k, epsilon, delta, None)
    }

    /// Like [`ConcurrentDeltaIndex::query`], but pinned: fails with
    /// [`DeltaError::StaleVersion`] if the served version is not exactly
    /// `version` when the query starts or after any growth round — the
    /// certification itself always runs on one immutable snapshot, so a
    /// successful answer is entirely version-`version` data.
    pub fn query_at_version(
        &self,
        version: u64,
        k: usize,
        epsilon: f64,
        delta: f64,
    ) -> Result<QueryAnswer, DeltaError> {
        self.query_inner(k, epsilon, delta, Some(version))
    }

    fn query_inner(
        &self,
        k: usize,
        epsilon: f64,
        delta: f64,
        pin: Option<u64>,
    ) -> Result<QueryAnswer, DeltaError> {
        let mut snap = self.load();
        check_pin(pin, &snap)?;
        let opts = ImOptions::new(k).epsilon(epsilon).delta(delta);
        opts.validate(&snap.graph).map_err(IndexError::from)?;
        let start = Instant::now();
        let n = snap.graph.n();
        let target = 1.0 - (-1.0f64).exp() - epsilon;
        let theta_max = theta_max_opim(n, k, epsilon, delta);
        let theta0 = theta_zero(delta);
        let imax = i_max(theta_max, theta0);
        let delta_iter = delta / (3.0 * imax as f64);

        let pool_before = snap.pool_len();
        let mut fresh = 0usize;
        if snap.pool_len() < theta0 as usize {
            let (grown, added) = self.grow_to(theta0 as usize)?;
            snap = grown;
            check_pin(pin, &snap)?;
            fresh += added;
        }
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            // Sentinel snapshots re-certify through the HIST-style round
            // so the answer keeps the full (k, ε, δ) guarantee; sketched
            // snapshots run the slack-adjusted round; plain snapshots run
            // the standard OPIM round.
            let (seeds, lower, upper, slack_failed) = if let Some(sk) = &snap.sketch {
                let t = Instant::now();
                let eval = evaluate_pool_sketched(
                    &snap.r1,
                    sk,
                    k,
                    delta_iter,
                    delta_iter,
                    self.config.threads,
                );
                self.metrics.record_selection(t.elapsed());
                let slack = eval.failed_on_slack(target);
                (eval.seeds, eval.lower, eval.upper, slack)
            } else {
                let (eval, cert_time) = match snap.sentinel.as_ref().filter(|st| !st.set.is_empty())
                {
                    Some(st) => {
                        let t = Instant::now();
                        let eval = evaluate_pool_sentinel(
                            &snap.r1,
                            &snap.r2,
                            &st.set,
                            &snap.graph,
                            k,
                            delta_iter,
                            delta_iter,
                            self.config.threads,
                        );
                        (eval, t.elapsed())
                    }
                    None => evaluate_pool_timed_par(
                        &snap.r1,
                        &snap.r2,
                        k,
                        delta_iter,
                        delta_iter,
                        self.config.threads,
                    ),
                };
                self.metrics.record_selection(cert_time);
                (eval.seeds, eval.lower, eval.upper, false)
            };
            let certified = if upper <= 0.0 {
                false
            } else {
                lower / upper > target
            };
            if certified || snap.pool_len() as f64 >= theta_max {
                let stats = QueryStats {
                    k,
                    epsilon,
                    delta,
                    pool_before,
                    pool_after: snap.pool_len(),
                    fresh_sets: fresh,
                    rounds,
                    lower_bound: lower,
                    upper_bound: upper,
                    target_ratio: target,
                    certified_by_bounds: certified,
                    elapsed: start.elapsed(),
                };
                self.metrics.record_query(&stats);
                return Ok(QueryAnswer { seeds, stats });
            }
            // Error-adaptive ladder, as in the sequential index: a round
            // that failed on sketch slack promotes register precision
            // instead of growing the pool.
            if slack_failed {
                let observed = snap.sketch.as_ref().map(|sk| sk.precision());
                if observed.is_some_and(|p| p < MAX_PRECISION) {
                    let (grown, added) = self.promote_sketch(observed.unwrap())?;
                    snap = grown;
                    check_pin(pin, &snap)?;
                    fresh += added;
                    continue;
                }
            }
            let next = snap
                .pool_len()
                .saturating_mul(2)
                .min(theta_max.ceil() as usize);
            let (grown, added) = self.grow_to(next)?;
            snap = grown;
            check_pin(pin, &snap)?;
            fresh += added;
        }
    }

    /// Error-adaptive ladder step: regenerates the `R₂` chunk stream at
    /// the next register precision above `observed` and publishes the
    /// promoted snapshot, exactly as the sequential index does. If a
    /// racing thread already promoted (or a delta landed) past
    /// `observed`, the current snapshot is returned with no work done
    /// (the caller re-evaluates).
    fn promote_sketch(&self, observed: u8) -> Result<(Arc<DeltaSnapshot>, usize), DeltaError> {
        let ws = self.writer.lock().expect("writer lock poisoned");
        let base = self.load();
        let Some(old) = base.sketch.as_ref() else {
            return Ok((base, 0));
        };
        if old.precision() != observed {
            return Ok((base, 0));
        }
        let precision = observed + 1;
        let chunk = self.config.chunk_size;
        let slice = (self.config.threads as u64) * 4;
        let graph = ws.vg.graph_arc();
        let sampler = RrSampler::new(&graph, self.config.strategy);
        let mut fresh = SketchedPool::new(graph.n(), chunk, precision);
        let mut start = 0u64;
        let mut regenerated = 0usize;
        while start < base.chunks {
            let end = base.chunks.min(start + slice);
            let b = ws.workers.try_generate_chunks(
                &sampler,
                None,
                start..end,
                chunk,
                self.config.seed ^ R2_STREAM,
            )?;
            self.metrics.record_generation(
                b.rr.len() as u64,
                b.rr.total_nodes() as u64,
                b.cost,
                b.elapsed,
            );
            regenerated += b.rr.len();
            fresh.absorb_batch(start, &b.rr);
            start = end;
        }
        let snap = Arc::new(DeltaSnapshot {
            graph: Arc::clone(&base.graph),
            version: base.version,
            fingerprint: base.fingerprint,
            r1: base.r1.clone(),
            r2: base.r2.clone(),
            chunks: base.chunks,
            sentinel: base.sentinel.clone(),
            sketch: Some(fresh),
        });
        self.publish(Arc::clone(&snap));
        Ok((snap, regenerated))
    }

    /// Applies `delta` to the graph and publishes a repaired snapshot at
    /// the next version. Readers holding older snapshots keep them (their
    /// `Arc`s stay valid); pinned queries against the old version fail
    /// with [`DeltaError::StaleVersion`] from then on.
    ///
    /// On error (validation failure, or a worker panic during repair),
    /// nothing is published and the served version does not change: the
    /// mutation is staged on a copy of the versioned graph and committed
    /// only after both halves repaired, so `ws.vg` can never run ahead of
    /// the published pool.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<RepairReport, DeltaError> {
        let start = Instant::now();
        let mut ws = self.writer.lock().expect("writer lock poisoned");
        let mut staged = ws.vg.clone();
        staged.apply(delta)?;
        let base = self.load();
        let targets = delta.targets();
        let graph = staged.graph_arc();
        let sampler = RrSampler::new(&graph, self.config.strategy);
        let chunk = self.config.chunk_size;
        let threads = self.config.threads;
        let out = repair_pool(
            &base.r1,
            &base.r2,
            base.sentinel.as_ref(),
            base.sketch.as_ref(),
            base.chunks,
            delta,
            &graph,
            self.config.sentinels,
            &sampler,
            &ws.workers,
            chunk,
            self.config.seed,
            threads,
        )?;
        drop(sampler);
        ws.vg = staged;
        let snap = Arc::new(DeltaSnapshot {
            graph,
            version: ws.vg.version(),
            fingerprint: ws.vg.fingerprint(),
            r1: out.r1,
            r2: out.r2,
            chunks: base.chunks,
            sentinel: out.sentinel,
            sketch: out.sketch,
        });
        self.publish(Arc::clone(&snap));
        let dirty_chunks = out.dirty_chunks_r1 + out.dirty_chunks_r2;
        let regenerated = dirty_chunks * chunk;
        let report = RepairReport {
            version: snap.version,
            targets: targets.len(),
            dirty_sets_r1: out.dirty_sets_r1,
            dirty_sets_r2: out.dirty_sets_r2,
            dirty_chunks_r1: out.dirty_chunks_r1,
            dirty_chunks_r2: out.dirty_chunks_r2,
            regenerated_sets: regenerated,
            pool_sets: snap.r1.len()
                + snap
                    .sketch
                    .as_ref()
                    .map_or(snap.r2.len(), |sk| sk.len_sets()),
            sentinel_refreshed: out.sentinel_refreshed,
            elapsed: start.elapsed(),
        };
        self.metrics
            .record_repair(regenerated as u64, dirty_chunks as u64, report.elapsed);
        Ok(report)
    }

    /// Grows the pool to at least `target_sets` per half on the current
    /// graph version, continuing the deterministic chunk stream. Returns
    /// the snapshot to continue with plus how many sets this call freshly
    /// generated (both halves combined — `0` when another thread had
    /// already grown past the target).
    fn grow_to(&self, target_sets: usize) -> Result<(Arc<DeltaSnapshot>, usize), DeltaError> {
        let chunk = self.config.chunk_size;
        let needed_chunks = target_sets.div_ceil(chunk) as u64;
        {
            let snap = self.load();
            if snap.chunks >= needed_chunks {
                return Ok((snap, 0));
            }
        }
        let ws = self.writer.lock().expect("writer lock poisoned");
        // Re-check under the guard: the pool may have grown (or been
        // repaired onto a newer version) while this thread waited.
        let base = self.load();
        if base.chunks >= needed_chunks {
            return Ok((base, 0));
        }
        // Under the writer lock the published snapshot and `ws.vg` are in
        // step: every publish happens inside this critical section.
        debug_assert_eq!(base.version, ws.vg.version());
        let graph = ws.vg.graph_arc();
        let sampler = RrSampler::new(&graph, self.config.strategy);

        let slice = (self.config.threads as u64) * 4;
        let mut r1 = base.r1.clone();
        let mut r2 = base.r2.clone();
        let mut chunks = base.chunks;
        let mut sentinel = base.sentinel.clone();
        let mut sketch = base.sketch.clone();
        let mut added = 0usize;
        let mut budget_err = None;
        while chunks < needed_chunks {
            if let Some(cap) = self.config.max_nodes {
                // A sketched R₂ counts its resident bytes in 4-byte
                // node-entry equivalents, keeping the budget unit
                // consistent.
                let in_use = r1.total_nodes()
                    + r2.total_nodes()
                    + sketch
                        .as_ref()
                        .map_or(0, |sk| sk.resident_bytes() as usize / 4);
                if in_use >= cap {
                    budget_err = Some(IndexError::MemoryBudget {
                        max_nodes: cap,
                        in_use,
                        wanted_sets: needed_chunks as usize * chunk,
                    });
                    break;
                }
            }
            // Crossing the plain warmup prefix activates the sentinel
            // tier, exactly as the sequential index does.
            if self.config.sentinels > 0 && sentinel.is_none() && chunks >= SENTINEL_WARMUP_CHUNKS {
                sentinel = Some(SentinelState {
                    set: SentinelSet::select(&[&r1], &graph, self.config.sentinels),
                    from_chunk: chunks,
                    chunk_hits_r1: vec![0; chunks as usize],
                    chunk_hits_r2: vec![0; chunks as usize],
                });
            }
            let mut end = needed_chunks.min(chunks + slice);
            if self.config.sentinels > 0 && sentinel.is_none() {
                // Still inside the warmup prefix: stop this slice at the
                // boundary so the next iteration selects Z before any
                // truncated chunk is generated.
                end = end.min(SENTINEL_WARMUP_CHUNKS.max(chunks + 1));
            }
            let z = sentinel
                .as_ref()
                .filter(|st| !st.set.is_empty())
                .map(|st| st.set.nodes());
            let truncating = z.is_some();
            let b1 = ws.workers.try_generate_chunks(
                &sampler,
                z,
                chunks..end,
                chunk,
                self.config.seed,
            )?;
            let b2 = ws.workers.try_generate_chunks(
                &sampler,
                z,
                chunks..end,
                chunk,
                self.config.seed ^ R2_STREAM,
            )?;
            if let Some(st) = sentinel.as_mut() {
                st.chunk_hits_r1.extend_from_slice(&b1.chunk_hits);
                st.chunk_hits_r2.extend_from_slice(&b2.chunk_hits);
            }
            let sets = (b1.rr.len() + b2.rr.len()) as u64;
            let nodes = (b1.rr.total_nodes() + b2.rr.total_nodes()) as u64;
            self.metrics
                .record_generation(sets, nodes, b1.cost + b2.cost, b1.elapsed + b2.elapsed);
            if truncating {
                self.metrics
                    .record_sentinel(b1.sentinel_hits + b2.sentinel_hits, sets, nodes);
            }
            added += b1.rr.len() + b2.rr.len();
            r1.extend_from(&b1.rr);
            if let Some(sk) = sketch.as_mut() {
                sk.absorb_batch(chunks, &b2.rr);
            } else {
                r2.extend_from(&b2.rr);
            }
            chunks = end;
        }

        let snap = Arc::new(DeltaSnapshot {
            graph,
            version: base.version,
            fingerprint: base.fingerprint,
            r1,
            r2,
            chunks,
            sentinel,
            sketch,
        });
        if added > 0 {
            self.publish(Arc::clone(&snap));
        }
        match budget_err {
            Some(err) => Err(err.into()),
            None => Ok((snap, added)),
        }
    }

    fn publish(&self, snap: Arc<DeltaSnapshot>) {
        *self.snapshot.write().expect("snapshot lock poisoned") = snap;
        self.metrics
            .snapshot_publishes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

fn check_pin(pin: Option<u64>, snap: &DeltaSnapshot) -> Result<(), DeltaError> {
    match pin {
        Some(requested) if requested != snap.version => Err(DeltaError::StaleVersion {
            requested,
            current: snap.version,
        }),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_diffusion::RrStrategy;
    use subsim_graph::generators::barabasi_albert;
    use subsim_graph::WeightModel;

    fn config() -> IndexConfig {
        IndexConfig::new(RrStrategy::SubsimIc)
            .seed(11)
            .chunk_size(32)
            .threads(2)
    }

    #[test]
    fn matches_sequential_delta_index_when_unraced() {
        let g = barabasi_albert(250, 3, WeightModel::Wc, 41);
        let mut seq = DeltaIndex::new(g.clone(), config()).unwrap();
        let conc = ConcurrentDeltaIndex::new(g, config()).unwrap();
        let d = GraphDelta::new().insert_edge(7, 3, 0.6).delete_edge(1, 0);
        // Interleave: query, delta, query — both indexes step in lockstep.
        let a1 = seq.query(4, 0.1, 0.01).unwrap();
        let b1 = conc.query(4, 0.1, 0.01).unwrap();
        assert_eq!(a1.seeds, b1.seeds);
        let ra = seq.apply_delta(&d).unwrap();
        let rb = conc.apply_delta(&d).unwrap();
        assert_eq!(ra.dirty_chunks_r1, rb.dirty_chunks_r1);
        assert_eq!(ra.dirty_sets_r2, rb.dirty_sets_r2);
        assert_eq!(ra.regenerated_sets, rb.regenerated_sets);
        let a2 = seq.query(4, 0.1, 0.01).unwrap();
        let b2 = conc.query(4, 0.1, 0.01).unwrap();
        assert_eq!(a2.seeds, b2.seeds);
        assert_eq!(a2.stats.lower_bound, b2.stats.lower_bound);
        assert_eq!(a2.stats.upper_bound, b2.stats.upper_bound);
        assert_eq!(conc.version(), 1);
    }

    #[test]
    fn pinned_queries_reject_stale_versions() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 42);
        let conc = ConcurrentDeltaIndex::new(g, config()).unwrap();
        conc.warm(128).unwrap();
        let v0 = conc.version();
        conc.query_at_version(v0, 3, 0.1, 0.01).unwrap();
        conc.apply_delta(&GraphDelta::new().insert_edge(0, 199, 0.5))
            .unwrap();
        let err = conc.query_at_version(v0, 3, 0.1, 0.01).unwrap_err();
        assert!(
            matches!(
                err,
                DeltaError::StaleVersion {
                    requested: 0,
                    current: 1
                }
            ),
            "got {err:?}"
        );
        conc.query_at_version(1, 3, 0.1, 0.01).unwrap();
    }

    #[test]
    fn old_snapshots_stay_readable_after_delta() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 43);
        let conc = ConcurrentDeltaIndex::new(g, config()).unwrap();
        conc.warm(128).unwrap();
        let before = conc.load();
        let first: Vec<_> = (0..before.pool_len())
            .map(|i| before.selection_pool().get(i).to_vec())
            .collect();
        let hub = (0..before.graph().n() as u32)
            .max_by_key(|&v| before.graph().in_degree(v))
            .unwrap();
        let u = (0..before.graph().n() as u32)
            .find(|&u| before.graph().prob_of_edge(u, hub).is_none())
            .expect("some node lacks an edge to the hub");
        conc.apply_delta(&GraphDelta::new().insert_edge(u, hub, 0.7))
            .unwrap();
        // The old Arc still shows exactly the old pool and old graph.
        assert_eq!(before.version(), 0);
        for (i, rr) in first.iter().enumerate() {
            assert_eq!(before.selection_pool().get(i), rr.as_slice());
        }
        // The new snapshot is at version 1 with a changed fingerprint.
        let after = conc.load();
        assert_eq!(after.version(), 1);
        assert_ne!(after.fingerprint(), before.fingerprint());
        assert_eq!(after.pool_len(), before.pool_len());
    }

    #[test]
    fn concurrent_queries_race_deltas_without_tearing() {
        let g = barabasi_albert(300, 3, WeightModel::Wc, 44);
        let conc = ConcurrentDeltaIndex::new(g, config()).unwrap();
        conc.warm(256).unwrap();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..5 {
                        let ans = conc.query(4, 0.15, 0.05).unwrap();
                        assert_eq!(ans.seeds.len(), 4);
                    }
                });
            }
            s.spawn(|| {
                for i in 0..4u32 {
                    conc.apply_delta(&GraphDelta::new().insert_edge(i, 299 - i, 0.3))
                        .unwrap();
                }
            });
        });
        assert_eq!(conc.version(), 4);
        let m = conc.metrics();
        assert_eq!(m.deltas_applied, 4);
        assert_eq!(m.queries, 15);
    }

    #[test]
    fn sentinel_serving_matches_sequential_across_deltas() {
        let cfg = config().sentinels(2);
        let g = barabasi_albert(250, 3, WeightModel::Wc, 46);
        let mut seq = DeltaIndex::new(g.clone(), cfg).unwrap();
        let conc = ConcurrentDeltaIndex::new(g, cfg).unwrap();
        seq.warm(320).unwrap();
        conc.warm(320).unwrap();
        {
            let snap = conc.load();
            let a = seq.sentinel_state().expect("sequential sentinel active");
            let b = snap.sentinel_state().expect("concurrent sentinel active");
            assert_eq!(a.set.nodes(), b.set.nodes());
            assert_eq!(a.from_chunk, b.from_chunk);
            assert_eq!(a.chunk_hits_r1, b.chunk_hits_r1);
            assert_eq!(a.chunk_hits_r2, b.chunk_hits_r2);
        }
        // A non-stale delta: endpoints avoid Z, both indexes repair to
        // the same pool and keep the same Z.
        let z = seq.sentinel_state().unwrap().set.nodes().to_vec();
        let g_now = seq.graph();
        let hub = (0..g_now.n() as u32)
            .filter(|v| !z.contains(v))
            .max_by_key(|&v| g_now.in_degree(v))
            .unwrap();
        let u = (0..g_now.n() as u32)
            .find(|&u| !z.contains(&u) && u != hub && g_now.prob_of_edge(u, hub).is_none())
            .unwrap();
        let d = GraphDelta::new().insert_edge(u, hub, 0.5);
        let ra = seq.apply_delta(&d).unwrap();
        let rb = conc.apply_delta(&d).unwrap();
        assert!(!ra.sentinel_refreshed);
        assert!(!rb.sentinel_refreshed);
        assert_eq!(ra.regenerated_sets, rb.regenerated_sets);
        let snap = conc.load();
        for i in 0..seq.pool_len() {
            assert_eq!(seq.selection_pool().get(i), snap.selection_pool().get(i));
            assert_eq!(seq.validation_pool().get(i), snap.validation_pool().get(i));
        }
        let a = seq.query(3, 0.1, 0.01).unwrap();
        let b = conc.query(3, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.stats.lower_bound, b.stats.lower_bound);
        assert_eq!(a.stats.upper_bound, b.stats.upper_bound);
        assert!(a.stats.certified_by_bounds);
        // A stale delta: both refresh and stay in lockstep (same Z' —
        // selection is deterministic over the same repaired prefix).
        let z = seq.sentinel_state().unwrap().set.nodes().to_vec();
        let g_now = seq.graph();
        let u = (0..g_now.n() as u32)
            .find(|&u| !z.contains(&u) && g_now.prob_of_edge(u, z[0]).is_none())
            .unwrap();
        let d = GraphDelta::new().insert_edge(u, z[0], 0.9);
        let ra = seq.apply_delta(&d).unwrap();
        let rb = conc.apply_delta(&d).unwrap();
        assert!(ra.sentinel_refreshed);
        assert!(rb.sentinel_refreshed);
        let snap = conc.load();
        let a = seq.sentinel_state().unwrap();
        let b = snap.sentinel_state().unwrap();
        assert_eq!(a.set.nodes(), b.set.nodes());
        assert_eq!(a.chunk_hits_r1, b.chunk_hits_r1);
        for i in 0..seq.pool_len() {
            assert_eq!(seq.selection_pool().get(i), snap.selection_pool().get(i));
        }
        let a = seq.query(3, 0.1, 0.01).unwrap();
        let b = conc.query(3, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds);
    }

    #[test]
    fn sketched_serving_matches_sequential_across_deltas() {
        let cfg = config().sketch(6);
        let g = barabasi_albert(250, 3, WeightModel::Wc, 47);
        let mut seq = DeltaIndex::new(g.clone(), cfg).unwrap();
        let conc = ConcurrentDeltaIndex::new(g, cfg).unwrap();
        seq.warm(320).unwrap();
        conc.warm(320).unwrap();
        {
            let snap = conc.load();
            assert_eq!(snap.validation_pool().len(), 0, "sketched R2 stays empty");
            assert_eq!(seq.sketch_state(), snap.sketch_state());
        }
        let g_now = seq.graph();
        let hub = (0..g_now.n() as u32)
            .max_by_key(|&v| g_now.in_degree(v))
            .unwrap();
        let u = (0..g_now.n() as u32)
            .find(|&u| g_now.prob_of_edge(u, hub).is_none())
            .unwrap();
        let d = GraphDelta::new().insert_edge(u, hub, 0.5);
        let ra = seq.apply_delta(&d).unwrap();
        let rb = conc.apply_delta(&d).unwrap();
        assert_eq!(ra.dirty_chunks_r2, rb.dirty_chunks_r2);
        assert_eq!(ra.regenerated_sets, rb.regenerated_sets);
        let snap = conc.load();
        assert_eq!(seq.sketch_state(), snap.sketch_state());
        for i in 0..seq.pool_len() {
            assert_eq!(seq.selection_pool().get(i), snap.selection_pool().get(i));
        }
        let a = seq.query(4, 0.1, 0.01).unwrap();
        let b = conc.query(4, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.stats.lower_bound, b.stats.lower_bound);
        assert_eq!(a.stats.upper_bound, b.stats.upper_bound);
        // Whatever the ladder did during the queries, both stacks must
        // agree on it — including through into_index.
        let snap = conc.load();
        assert_eq!(seq.sketch_state(), snap.sketch_state());
        let back = conc.into_index();
        assert_eq!(back.config().sketch, seq.config().sketch);
        assert_eq!(back.sketch_state(), seq.sketch_state());
    }

    #[test]
    fn round_trips_through_sequential_index() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 45);
        let mut seq = DeltaIndex::new(g, config()).unwrap();
        seq.warm(128).unwrap();
        seq.apply_delta(&GraphDelta::new().insert_edge(2, 149, 0.4))
            .unwrap();
        let conc = ConcurrentDeltaIndex::from_index(seq);
        assert_eq!(conc.version(), 1);
        let pool_len = conc.load().pool_len();
        let back = conc.into_index();
        assert_eq!(back.version(), 1);
        assert_eq!(back.pool_len(), pool_len);
    }
}
