//! Error type for delta validation, application, and repair.

use std::fmt;
use subsim_graph::GraphError;
use subsim_index::IndexError;

/// Errors produced while parsing, validating, or applying a
/// [`crate::GraphDelta`], or while serving a versioned index.
#[derive(Debug)]
pub enum DeltaError {
    /// Graph-layer failure (invalid probability, rebuild error, I/O).
    Graph(GraphError),
    /// Index-layer failure (query options, memory budget, snapshots).
    Index(IndexError),
    /// A delete or reweight names an edge the current version does not
    /// have.
    UnknownEdge {
        /// Source endpoint.
        u: u32,
        /// Target endpoint.
        v: u32,
    },
    /// An insert names an edge the current version already has.
    DuplicateEdge {
        /// Source endpoint.
        u: u32,
        /// Target endpoint.
        v: u32,
    },
    /// An op references a node id `>= n` (the node set is fixed at
    /// construction; deltas mutate edges only).
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The graph's node count.
        n: usize,
    },
    /// A query pinned to a version the index has moved past.
    StaleVersion {
        /// Version the caller pinned.
        requested: u64,
        /// Version currently served.
        current: u64,
    },
    /// A delta-stream line could not be parsed.
    Parse {
        /// Description of what went wrong.
        message: String,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Graph(e) => write!(f, "graph: {e}"),
            DeltaError::Index(e) => write!(f, "index: {e}"),
            DeltaError::UnknownEdge { u, v } => {
                write!(f, "edge {u} -> {v} does not exist in the current version")
            }
            DeltaError::DuplicateEdge { u, v } => {
                write!(f, "edge {u} -> {v} already exists in the current version")
            }
            DeltaError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            DeltaError::StaleVersion { requested, current } => {
                write!(
                    f,
                    "stale version: requested {requested}, index is at {current}"
                )
            }
            DeltaError::Parse { message } => write!(f, "delta parse error: {message}"),
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::Graph(e) => Some(e),
            DeltaError::Index(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for DeltaError {
    fn from(e: GraphError) -> Self {
        DeltaError::Graph(e)
    }
}

impl From<IndexError> for DeltaError {
    fn from(e: IndexError) -> Self {
        DeltaError::Index(e)
    }
}

impl From<subsim_diffusion::PoolError> for DeltaError {
    fn from(e: subsim_diffusion::PoolError) -> Self {
        DeltaError::Index(IndexError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = DeltaError::UnknownEdge { u: 3, v: 9 };
        assert!(e.to_string().contains("3 -> 9"), "{e}");
        let e = DeltaError::StaleVersion {
            requested: 2,
            current: 7,
        };
        let msg = e.to_string();
        assert!(msg.contains("requested 2") && msg.contains("at 7"), "{msg}");
        let e = DeltaError::NodeOutOfRange { node: 99, n: 10 };
        assert!(e.to_string().contains("99"), "{e}");
    }
}
