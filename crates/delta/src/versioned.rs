//! An epoch-versioned edge-mutation overlay on the CSR substrate.

use crate::delta::{DeltaOp, GraphDelta};
use crate::error::DeltaError;
use std::collections::HashMap;
use std::sync::Arc;
use subsim_graph::{Graph, GraphBuilder, GraphError, NodeId};
use subsim_index::graph_fingerprint;

/// Overlay size (net mutated edges vs. the compacted base) at which
/// [`VersionedGraph`] folds the overlay into a fresh base CSR.
pub const DEFAULT_COMPACT_THRESHOLD: usize = 4096;

/// Net overlay entry for one `(u, v)` pair: `Some(p)` means the edge
/// exists with probability `p` (insert or reweight), `None` is a
/// tombstone over a base edge.
type Overlay = HashMap<(NodeId, NodeId), Option<f64>>;

/// A mutable graph built from a compacted base CSR plus a bounded overlay
/// of net edge mutations, rebuilt into a fresh CSR on every applied
/// delta.
///
/// Three invariants carry the determinism contract of the repair engine
/// (see [`crate::repair`]):
///
/// - **Fixed node set** — deltas mutate edges only, so RR roots keep
///   drawing from the same `0..n` range at every version.
/// - **Normalized storage** — the graph is rebuilt through explicit
///   per-edge weights at construction and after every delta, so RR
///   generation always takes the per-edge sampler path and consumes the
///   same RNG stream shape across versions. (Normalization preserves the
///   fingerprint: edge triples are unchanged, only the storage
///   representation is.)
/// - **Versioned fingerprint** — every applied delta bumps `version` and
///   recomputes the [`graph_fingerprint`], so stale snapshots are
///   detected structurally, not by timestamps.
///
/// Application is transactional: every op of a [`GraphDelta`] validates
/// against the running state (in op order) before anything commits, so a
/// failed delta leaves the graph untouched.
///
/// The overlay is compacted into a fresh base whenever it reaches the
/// compaction threshold, bounding validation-lookup cost; the rebuild of
/// the *current* CSR is `O(m + |overlay|)` per delta either way.
///
/// Note the LT diffusion model additionally requires each node's incoming
/// probabilities to sum to at most 1; deltas can violate that sum. The
/// overlay is strategy-agnostic and does not enforce it — LT callers must
/// keep their deltas row-stochastic themselves.
#[derive(Debug, Clone)]
pub struct VersionedGraph {
    /// Last compacted CSR; `current = base ⊕ pending`.
    base: Graph,
    /// The CSR serving reads at `version`.
    current: Arc<Graph>,
    /// Net mutations vs. `base`.
    pending: Overlay,
    version: u64,
    fingerprint: u64,
    compact_threshold: usize,
    compactions: u64,
}

/// Validates a probability the way [`GraphBuilder`] will.
fn check_prob(p: f64) -> Result<(), DeltaError> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(DeltaError::Graph(GraphError::InvalidProbability {
            value: p,
        }));
    }
    Ok(())
}

/// Rebuilds a CSR from `base` with `overlay` applied, through explicit
/// per-edge weights (the normalized storage form).
fn rebuild(base: &Graph, overlay: &Overlay) -> Result<Graph, GraphError> {
    let mut leftover = overlay.clone();
    let mut b = GraphBuilder::new(base.n()).keep_self_loops(true);
    for (u, v, p) in base.edges() {
        match leftover.remove(&(u, v)) {
            Some(Some(p2)) => b = b.add_weighted_edge(u, v, p2),
            Some(None) => {}
            None => b = b.add_weighted_edge(u, v, p),
        }
    }
    let mut inserts: Vec<(NodeId, NodeId, f64)> = leftover
        .into_iter()
        .filter_map(|((u, v), p)| p.map(|p| (u, v, p)))
        .collect();
    inserts.sort_unstable_by_key(|&(u, v, _)| (u, v));
    for (u, v, p) in inserts {
        b = b.add_weighted_edge(u, v, p);
    }
    b.build()
}

impl VersionedGraph {
    /// Wraps `g` as version 0, normalizing its weight storage (see the
    /// type docs). The fingerprint of version 0 equals `g`'s.
    pub fn new(g: Graph) -> Result<Self, DeltaError> {
        Self::with_compaction_threshold(g, DEFAULT_COMPACT_THRESHOLD)
    }

    /// [`VersionedGraph::new`] with an explicit compaction threshold
    /// (minimum 1: every delta compacts).
    pub fn with_compaction_threshold(g: Graph, threshold: usize) -> Result<Self, DeltaError> {
        assert!(threshold > 0, "compaction threshold must be at least 1");
        let base = rebuild(&g, &Overlay::new())?;
        debug_assert_eq!(
            graph_fingerprint(&base),
            graph_fingerprint(&g),
            "storage normalization must preserve the fingerprint"
        );
        let fingerprint = graph_fingerprint(&base);
        let current = Arc::new(base.clone());
        Ok(VersionedGraph {
            base,
            current,
            pending: Overlay::new(),
            version: 0,
            fingerprint,
            compact_threshold: threshold,
            compactions: 0,
        })
    }

    /// The CSR at the current version.
    pub fn graph(&self) -> &Graph {
        &self.current
    }

    /// A shared handle to the current CSR (what concurrent serving
    /// layers publish in their snapshots).
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(&self.current)
    }

    /// The epoch: number of deltas applied since construction.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Structural fingerprint of the current version.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Net mutated edges pending vs. the compacted base.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Compactions performed since construction.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Whether the edge `u -> v` exists at the current version.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.current.prob_of_edge(u, v).is_some()
    }

    /// Applies `delta` atomically: validates every op in order against
    /// the running state, then commits a rebuilt CSR, bumps the version,
    /// and recomputes the fingerprint. On error nothing changes.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<(), DeltaError> {
        let n = self.base.n();
        let mut staged = self.pending.clone();
        for op in delta.ops() {
            let (u, v) = op.endpoints();
            for node in [u, v] {
                if node as usize >= n {
                    return Err(DeltaError::NodeOutOfRange { node, n });
                }
            }
            let in_base = self.base.prob_of_edge(u, v).is_some();
            let exists = match staged.get(&(u, v)) {
                Some(entry) => entry.is_some(),
                None => in_base,
            };
            match *op {
                DeltaOp::InsertEdge { p, .. } => {
                    if exists {
                        return Err(DeltaError::DuplicateEdge { u, v });
                    }
                    check_prob(p)?;
                    staged.insert((u, v), Some(p));
                }
                DeltaOp::DeleteEdge { .. } => {
                    if !exists {
                        return Err(DeltaError::UnknownEdge { u, v });
                    }
                    if in_base {
                        staged.insert((u, v), None);
                    } else {
                        staged.remove(&(u, v));
                    }
                }
                DeltaOp::ReweightEdge { p, .. } => {
                    if !exists {
                        return Err(DeltaError::UnknownEdge { u, v });
                    }
                    check_prob(p)?;
                    staged.insert((u, v), Some(p));
                }
            }
        }
        let current = rebuild(&self.base, &staged)?;
        self.pending = staged;
        self.current = Arc::new(current);
        self.version += 1;
        self.fingerprint = graph_fingerprint(&self.current);
        if self.pending.len() >= self.compact_threshold {
            self.base = (*self.current).clone();
            self.pending.clear();
            self.compactions += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::cycle_graph;
    use subsim_graph::WeightModel;

    /// Edges are exactly `i -> (i+1) % 60`, so any other pair is known
    /// absent — deterministic fodder for insert/delete validation.
    fn sample() -> Graph {
        cycle_graph(60, WeightModel::Wc)
    }

    #[test]
    fn normalization_preserves_fingerprint() {
        let g = sample();
        let before = graph_fingerprint(&g);
        let vg = VersionedGraph::new(g).unwrap();
        assert_eq!(vg.fingerprint(), before);
        assert_eq!(vg.version(), 0);
        assert!(!vg.graph().has_uniform_in_probs(), "storage not normalized");
    }

    #[test]
    fn insert_delete_reweight_round_trip() {
        let g = sample();
        let mut vg = VersionedGraph::new(g).unwrap();
        let v0_fp = vg.fingerprint();
        assert!(!vg.has_edge(0, 59));
        vg.apply(&GraphDelta::new().insert_edge(0, 59, 0.25))
            .unwrap();
        assert!(vg.has_edge(0, 59));
        assert_eq!(vg.version(), 1);
        assert_ne!(vg.fingerprint(), v0_fp);
        vg.apply(&GraphDelta::new().reweight_edge(0, 59, 0.75))
            .unwrap();
        assert_eq!(vg.graph().prob_of_edge(0, 59), Some(0.75));
        vg.apply(&GraphDelta::new().delete_edge(0, 59)).unwrap();
        assert!(!vg.has_edge(0, 59));
        assert_eq!(vg.version(), 3);
        assert_eq!(
            vg.fingerprint(),
            v0_fp,
            "net no-op sequence must restore the original fingerprint"
        );
    }

    #[test]
    fn failed_delta_leaves_state_untouched() {
        let g = sample();
        let mut vg = VersionedGraph::new(g).unwrap();
        let fp = vg.fingerprint();
        let m = vg.graph().m();
        // Second op is invalid: the whole batch must roll back.
        let err = vg
            .apply(&GraphDelta::new().insert_edge(0, 59, 0.5).delete_edge(0, 58))
            .unwrap_err();
        assert!(matches!(err, DeltaError::UnknownEdge { u: 0, v: 58 }));
        assert_eq!(vg.version(), 0);
        assert_eq!(vg.fingerprint(), fp);
        assert_eq!(vg.graph().m(), m);
        assert!(!vg.has_edge(0, 59));
    }

    #[test]
    fn rejects_bad_ops() {
        let g = sample();
        let mut vg = VersionedGraph::new(g).unwrap();
        let (u, v, _) = vg.graph().edges().next().unwrap();
        assert!(matches!(
            vg.apply(&GraphDelta::new().insert_edge(u, v, 0.5)),
            Err(DeltaError::DuplicateEdge { .. })
        ));
        assert!(matches!(
            vg.apply(&GraphDelta::new().insert_edge(0, 600, 0.5)),
            Err(DeltaError::NodeOutOfRange { node: 600, .. })
        ));
        assert!(matches!(
            vg.apply(&GraphDelta::new().insert_edge(0, 59, 1.5)),
            Err(DeltaError::Graph(GraphError::InvalidProbability { .. }))
        ));
        assert!(matches!(
            vg.apply(&GraphDelta::new().reweight_edge(0, 59, 0.5)),
            Err(DeltaError::UnknownEdge { .. })
        ));
        assert_eq!(vg.version(), 0, "failed deltas must not bump the version");
    }

    #[test]
    fn within_batch_ops_see_earlier_ops() {
        let g = sample();
        let mut vg = VersionedGraph::new(g).unwrap();
        // Insert then reweight then delete the same edge, in one batch.
        vg.apply(
            &GraphDelta::new()
                .insert_edge(0, 59, 0.1)
                .reweight_edge(0, 59, 0.9)
                .delete_edge(0, 59),
        )
        .unwrap();
        assert!(!vg.has_edge(0, 59));
        assert_eq!(vg.version(), 1);
    }

    #[test]
    fn compaction_folds_overlay_and_preserves_graph() {
        let g = sample();
        let mut vg = VersionedGraph::with_compaction_threshold(g.clone(), 2).unwrap();
        let mut reference = VersionedGraph::new(g).unwrap();
        // One batch with a self-loop and a zero-weight edge; overlay size
        // 3 crosses the threshold, so the batch compacts them into base.
        let d1 = GraphDelta::new()
            .insert_edge(0, 59, 0.25)
            .insert_edge(5, 5, 0.5)
            .insert_edge(1, 58, 0.0);
        vg.apply(&d1).unwrap();
        reference.apply(&d1).unwrap();
        assert_eq!(vg.compactions(), 1);
        assert_eq!(vg.pending_len(), 0);
        assert_eq!(
            vg.fingerprint(),
            reference.fingerprint(),
            "compaction must not change the graph"
        );
        // The next rebuild enumerates the compacted base: the loop and
        // the zero-weight edge must survive it.
        let d2 = GraphDelta::new().insert_edge(2, 57, 0.1);
        vg.apply(&d2).unwrap();
        reference.apply(&d2).unwrap();
        assert_eq!(vg.fingerprint(), reference.fingerprint());
        assert_eq!(vg.graph().prob_of_edge(5, 5), Some(0.5));
        assert_eq!(vg.graph().prob_of_edge(1, 58), Some(0.0));
    }

    #[test]
    fn versions_with_same_edges_have_same_fingerprint_regardless_of_history() {
        let g = sample();
        let mut a = VersionedGraph::with_compaction_threshold(g.clone(), 1).unwrap();
        let mut b = VersionedGraph::with_compaction_threshold(g, 1000).unwrap();
        for d in [
            GraphDelta::new().insert_edge(0, 59, 0.3),
            GraphDelta::new().reweight_edge(0, 59, 0.6),
            GraphDelta::new().insert_edge(7, 52, 0.2).delete_edge(0, 59),
        ] {
            a.apply(&d).unwrap();
            b.apply(&d).unwrap();
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
        let ea: Vec<_> = a.graph().edges().collect();
        let eb: Vec<_> = b.graph().edges().collect();
        assert_eq!(ea, eb, "compaction cadence must not affect the CSR");
    }
}
