//! `subsim-delta` — versioned graph updates with incremental RR-sketch
//! repair.
//!
//! Every layer below this crate treats the graph as frozen: the CSR is
//! immutable, the RR pool is a pure function of `(graph, seed, strategy,
//! chunk_size, size)`, and snapshots pin the graph by fingerprint. Real
//! serving graphs mutate — edges appear, disappear, and reweight — and
//! the naive answer (rebuild the index per update) throws away almost all
//! of the pool for a delta that touches a handful of edges.
//!
//! This crate keeps the frozen-graph machinery *and* absorbs updates:
//!
//! - [`GraphDelta`] / [`DeltaOp`] — a batched edge mutation (insert,
//!   delete, reweight) with a one-line-per-op text format.
//! - [`VersionedGraph`] — an overlay over the CSR substrate: deltas apply
//!   atomically into an epoch-stamped current version (rebuilt CSR +
//!   fresh [`subsim_index::graph_fingerprint`]), with the overlay
//!   periodically compacted into a new base.
//! - [`repair_half`] / [`RepairReport`] — the repair engine: the inverted
//!   coverage index finds exactly the RR sets containing a mutated edge
//!   target, their chunks regenerate from their **original** chunk seeds
//!   on the new graph over the persistent worker pool, and clean chunks
//!   splice through untouched. The result is bit-identical to a full
//!   rebuild — `(seed, chunk, version)` fully determines pool content,
//!   independent of thread count and update history.
//! - [`DeltaIndex`] — the sequential serving surface: [`DeltaIndex::query`]
//!   matches [`subsim_index::RrIndex`] exactly at every version;
//!   [`DeltaIndex::apply_delta`] runs repair and re-certifies on the next
//!   query without discarding clean samples. Snapshots save/load behind
//!   the *versioned* fingerprint, so stale pools are rejected with a
//!   typed error.
//! - [`ConcurrentDeltaIndex`] — shared `&self` serving with deltas
//!   interleaved: every published [`DeltaSnapshot`] pins one complete
//!   `(graph version, pool)` state, and
//!   [`ConcurrentDeltaIndex::query_at_version`] turns concurrent updates
//!   into typed [`DeltaError::StaleVersion`] failures instead of silent
//!   cross-version reads.
//! - [`serve_queries`] / [`ServeIndex`] — the line-oriented serving loop
//!   shared by the CLI and the deterministic test simulator: interleaved
//!   query and `delta` lines with per-line typed failures surfaced
//!   through a [`ServeSink`].

#![warn(missing_docs)]

mod concurrent;
mod delta;
mod error;
mod index;
mod repair;
mod serve;
mod versioned;

pub use concurrent::{ConcurrentDeltaIndex, DeltaSnapshot};
pub use delta::{DeltaOp, GraphDelta};
pub use error::DeltaError;
pub use index::DeltaIndex;
pub use repair::{
    repair_half, repair_half_indexed, repair_half_mapped, repair_half_sentinel, repair_sketch,
    RepairReport, RepairedHalf, RepairedSentinelHalf, RepairedSketch,
};
pub use serve::{
    parse_query, serve_queries, FrameViolation, LineError, NullSink, ServeError, ServeEvent,
    ServeIndex, ServeSink,
};
pub use versioned::{VersionedGraph, DEFAULT_COMPACT_THRESHOLD};
