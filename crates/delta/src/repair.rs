//! Chunk-granular RR-pool repair after a graph mutation.
//!
//! # Why whole chunks, and why this is exact
//!
//! Reverse-reachable generation consumes randomness strictly per *visited*
//! node: root selection draws from the fixed `0..n` range, and every
//! traversal step reads only the in-list of a node already in the set
//! (one coin per in-edge, a geometric skip sequence, or a subset-sampler
//! draw — all functions of that node's in-list alone). A delta op on edge
//! `u -> v` changes only `v`'s in-list. Therefore a stored RR set is
//! affected by the delta **iff it contains a mutated target `v`**: a set
//! without `v` never read `v`'s in-list, so regenerating it on the new
//! graph replays the identical traversal and consumes the identical
//! randomness.
//!
//! Sets inside one generation chunk share a single sequential RNG stream,
//! so repair happens at chunk granularity: every chunk containing at
//! least one dirty set is regenerated from its **original** seed
//! `chunk_seed(seed, c)` on the new graph, and clean chunks are spliced
//! through untouched. Because clean chunks would regenerate bit-identical
//! anyway (previous paragraph, applied set by set through the shared
//! stream), the repaired pool equals a full rebuild of the same chunk
//! range on the new graph, bit for bit — `(seed, chunk, version)` fully
//! determines content, where the version pins the graph.
//!
//! Dirty sets are found through the same inverted coverage index the
//! greedy selection phase uses (`node -> containing set ids`), built over
//! the *old* pool: old-pool membership is exactly the right dirtiness
//! criterion, because a set that gains a mutated target under the new
//! graph can only do so by having read the target's in-list — impossible
//! for a set that didn't contain it.

use crate::delta::GraphDelta;
use std::time::Duration;
use subsim_core::SentinelSet;
use subsim_diffusion::pool::{PoolError, WorkerPool};
use subsim_diffusion::{InvertedIndex, RrCollection, RrSampler};
use subsim_graph::{Graph, NodeId};
use subsim_index::{SentinelState, R2_STREAM};
use subsim_sketch::SketchedPool;

/// What one repair (via [`repair_half`] on both halves, as
/// [`crate::DeltaIndex::apply_delta`] does) did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepairReport {
    /// Graph version the repair brought the pool to.
    pub version: u64,
    /// Mutated in-list targets the delta touched (deduplicated).
    pub targets: usize,
    /// Dirty sets found in the selection half `R₁`.
    pub dirty_sets_r1: usize,
    /// Dirty sets found in the validation half `R₂`.
    pub dirty_sets_r2: usize,
    /// Chunks regenerated in `R₁`.
    pub dirty_chunks_r1: usize,
    /// Chunks regenerated in `R₂`.
    pub dirty_chunks_r2: usize,
    /// Total sets regenerated (both halves; whole chunks).
    pub regenerated_sets: usize,
    /// Total sets stored (both halves) — the full-rebuild cost baseline.
    pub pool_sets: usize,
    /// Whether the delta touched a sentinel endpoint, forcing a fresh
    /// sentinel selection and a regeneration of the truncated suffix.
    pub sentinel_refreshed: bool,
    /// Repair wall-clock.
    pub elapsed: Duration,
}

impl RepairReport {
    /// Fraction of stored sets the repair regenerated (`0` on an empty
    /// pool) — the headline savings vs. a full rebuild.
    pub fn repair_fraction(&self) -> f64 {
        if self.pool_sets == 0 {
            0.0
        } else {
            self.regenerated_sets as f64 / self.pool_sets as f64
        }
    }
}

/// Outcome of repairing one pool half.
#[derive(Debug)]
pub struct RepairedHalf {
    /// The repaired collection (same length as the input).
    pub rr: RrCollection,
    /// Dirty sets detected.
    pub dirty_sets: usize,
    /// Chunks regenerated.
    pub dirty_chunks: usize,
}

/// Repairs one pool half against the new graph bound in `sampler`.
///
/// `pool` is the half as generated on the *previous* version with chunk
/// stream `seed` (every `chunk_size` consecutive sets form one chunk;
/// the half must be whole chunks). `targets` are the delta's mutated
/// in-list endpoints. The result is bit-identical to regenerating the
/// whole half on the new graph.
///
/// A worker panic during regeneration surfaces as
/// [`PoolError::WorkerPanicked`]; `pool` is untouched (the caller keeps
/// serving its pre-repair content) and `workers` stays usable.
pub fn repair_half(
    pool: &RrCollection,
    targets: &[NodeId],
    sampler: &RrSampler<'_>,
    workers: &WorkerPool,
    chunk_size: usize,
    seed: u64,
    threads: usize,
) -> Result<RepairedHalf, PoolError> {
    repair_half_mapped(
        pool,
        targets,
        sampler,
        workers,
        chunk_size,
        seed,
        threads,
        |c| c,
    )
}

/// [`repair_half`] for a pool half whose stored chunks are not the
/// contiguous prefix `0..len/chunk_size` of the chunk stream.
///
/// `chunk_id_of` maps the half's *local* chunk position (`0` = the first
/// `chunk_size` sets stored) to the global chunk id whose seed
/// `chunk_seed(seed, id)` generated it. A sharded pool stores shard `s`'s
/// owned chunks `s, s + N, s + 2N, …` in ascending order, so its map is
/// `|j| s + j * N`; the plain half is the identity. The map must be
/// strictly increasing over local positions (owned chunk ids stored in
/// stream order), which keeps regenerated chunks aligned with their
/// splice points.
#[allow(clippy::too_many_arguments)]
pub fn repair_half_mapped(
    pool: &RrCollection,
    targets: &[NodeId],
    sampler: &RrSampler<'_>,
    workers: &WorkerPool,
    chunk_size: usize,
    seed: u64,
    threads: usize,
    chunk_id_of: impl Fn(u64) -> u64,
) -> Result<RepairedHalf, PoolError> {
    assert!(chunk_size > 0, "chunks must hold at least one set");
    assert_eq!(
        pool.len() % chunk_size,
        0,
        "pool half must be a whole number of chunks"
    );
    let inv = InvertedIndex::build_parallel(pool, threads);
    repair_half_indexed(
        pool,
        &inv,
        targets,
        sampler,
        workers,
        chunk_size,
        seed,
        chunk_id_of,
    )
}

/// [`repair_half_mapped`] with a caller-owned inverted index over `pool`
/// — the sharded serving path keeps one index per published shard
/// snapshot and reuses it for dirtiness detection instead of rebuilding
/// it per delta.
#[allow(clippy::too_many_arguments)]
pub fn repair_half_indexed(
    pool: &RrCollection,
    inv: &InvertedIndex,
    targets: &[NodeId],
    sampler: &RrSampler<'_>,
    workers: &WorkerPool,
    chunk_size: usize,
    seed: u64,
    chunk_id_of: impl Fn(u64) -> u64,
) -> Result<RepairedHalf, PoolError> {
    assert!(chunk_size > 0, "chunks must hold at least one set");
    assert_eq!(
        pool.len() % chunk_size,
        0,
        "pool half must be a whole number of chunks"
    );
    let mut dirty_sets: Vec<u32> = targets
        .iter()
        .flat_map(|&t| inv.sets_containing(t))
        .copied()
        .collect();
    dirty_sets.sort_unstable();
    dirty_sets.dedup();
    let mut dirty_local: Vec<u64> = dirty_sets
        .iter()
        .map(|&s| s as u64 / chunk_size as u64)
        .collect();
    dirty_local.dedup(); // dirty_sets sorted => chunk positions sorted

    if dirty_local.is_empty() {
        return Ok(RepairedHalf {
            rr: pool.clone(),
            dirty_sets: dirty_sets.len(),
            dirty_chunks: 0,
        });
    }

    let dirty_ids: Vec<u64> = dirty_local.iter().map(|&c| chunk_id_of(c)).collect();
    let batch = workers.try_generate_chunk_ids(sampler, None, &dirty_ids, chunk_size, seed)?;
    let mut rr = RrCollection::new(pool.graph_n());
    let mut cursor = 0usize;
    for (k, &c) in dirty_local.iter().enumerate() {
        let lo = c as usize * chunk_size;
        rr.extend_from_range(pool, cursor..lo);
        rr.extend_from_range(&batch.rr, k * chunk_size..(k + 1) * chunk_size);
        cursor = lo + chunk_size;
    }
    rr.extend_from_range(pool, cursor..pool.len());
    debug_assert_eq!(rr.len(), pool.len());
    Ok(RepairedHalf {
        rr,
        dirty_sets: dirty_sets.len(),
        dirty_chunks: dirty_local.len(),
    })
}

/// Outcome of repairing one sentinel-tier pool half.
#[derive(Debug)]
pub struct RepairedSentinelHalf {
    /// The repaired collection (same length as the input).
    pub rr: RrCollection,
    /// Dirty sets detected.
    pub dirty_sets: usize,
    /// Chunks regenerated.
    pub dirty_chunks: usize,
    /// Per-chunk sentinel-hit counters after repair (same length as the
    /// input; only regenerated truncated chunks change).
    pub chunk_hits: Vec<u64>,
}

/// [`repair_half`] for a half whose chunks at positions `>= from_chunk`
/// were generated through the Alg 5 stopping wrapper with sentinel set
/// `z` (see [`subsim_index::SentinelState`]).
///
/// Dirtiness detection is unchanged: a truncated traversal also consumes
/// randomness strictly per *visited* node and stops at the sentinel
/// without ever reading the sentinel's in-list, so a truncated set not
/// containing a mutated target replays bit-identically on the new graph
/// as long as `z` itself is unchanged. Dirty chunks below `from_chunk`
/// regenerate plain; dirty chunks at or above regenerate under `z`, and
/// their recorded hit counters are replaced by the fresh counts.
#[allow(clippy::too_many_arguments)]
pub fn repair_half_sentinel(
    pool: &RrCollection,
    targets: &[NodeId],
    z: &[NodeId],
    from_chunk: u64,
    old_hits: &[u64],
    sampler: &RrSampler<'_>,
    workers: &WorkerPool,
    chunk_size: usize,
    seed: u64,
    threads: usize,
) -> Result<RepairedSentinelHalf, PoolError> {
    assert!(chunk_size > 0, "chunks must hold at least one set");
    assert_eq!(
        pool.len() % chunk_size,
        0,
        "pool half must be a whole number of chunks"
    );
    assert_eq!(
        old_hits.len(),
        pool.len() / chunk_size,
        "one hit counter per stored chunk"
    );
    let inv = InvertedIndex::build_parallel(pool, threads);
    let mut dirty_sets: Vec<u32> = targets
        .iter()
        .flat_map(|&t| inv.sets_containing(t))
        .copied()
        .collect();
    dirty_sets.sort_unstable();
    dirty_sets.dedup();
    let mut dirty_local: Vec<u64> = dirty_sets
        .iter()
        .map(|&s| s as u64 / chunk_size as u64)
        .collect();
    dirty_local.dedup(); // dirty_sets sorted => chunk positions sorted

    let mut chunk_hits = old_hits.to_vec();
    if dirty_local.is_empty() {
        return Ok(RepairedSentinelHalf {
            rr: pool.clone(),
            dirty_sets: dirty_sets.len(),
            dirty_chunks: 0,
            chunk_hits,
        });
    }

    let plain_ids: Vec<u64> = dirty_local
        .iter()
        .copied()
        .filter(|&c| c < from_chunk)
        .collect();
    let trunc_ids: Vec<u64> = dirty_local
        .iter()
        .copied()
        .filter(|&c| c >= from_chunk)
        .collect();
    let plain = if plain_ids.is_empty() {
        None
    } else {
        Some(workers.try_generate_chunk_ids(sampler, None, &plain_ids, chunk_size, seed)?)
    };
    let trunc = if trunc_ids.is_empty() {
        None
    } else {
        Some(workers.try_generate_chunk_ids(sampler, Some(z), &trunc_ids, chunk_size, seed)?)
    };
    if let Some(batch) = &trunc {
        for (j, &c) in trunc_ids.iter().enumerate() {
            chunk_hits[c as usize] = batch.chunk_hits[j];
        }
    }

    let mut rr = RrCollection::new(pool.graph_n());
    let mut cursor = 0usize;
    let (mut pi, mut ti) = (0usize, 0usize);
    for &c in &dirty_local {
        let lo = c as usize * chunk_size;
        rr.extend_from_range(pool, cursor..lo);
        if c < from_chunk {
            let b = plain.as_ref().expect("plain batch exists for plain chunk");
            rr.extend_from_range(&b.rr, pi * chunk_size..(pi + 1) * chunk_size);
            pi += 1;
        } else {
            let b = trunc
                .as_ref()
                .expect("truncated batch exists for truncated chunk");
            rr.extend_from_range(&b.rr, ti * chunk_size..(ti + 1) * chunk_size);
            ti += 1;
        }
        cursor = lo + chunk_size;
    }
    rr.extend_from_range(pool, cursor..pool.len());
    debug_assert_eq!(rr.len(), pool.len());
    Ok(RepairedSentinelHalf {
        rr,
        dirty_sets: dirty_sets.len(),
        dirty_chunks: dirty_local.len(),
        chunk_hits,
    })
}

/// Outcome of repairing a sketched validation pool.
#[derive(Debug)]
pub struct RepairedSketch {
    /// The repaired sketch (same chunk coverage as the input).
    pub sketch: SketchedPool,
    /// Chunks whose registers were rebuilt.
    pub dirty_chunks: usize,
}

/// Repairs a sketched validation pool against the new graph bound in
/// `sampler`.
///
/// Dirtiness uses the same membership predicate as the exact halves —
/// a chunk is dirty iff some stored set in it contains a mutated target,
/// and the sketch's per-chunk key set records exactly that old-pool
/// membership. Each dirty chunk regenerates from its **original** seed
/// on the new graph and its sub-sketch is rebuilt from the fresh
/// content, so the repaired sketch equals a fresh sketch over a fully
/// rebuilt half (clean chunks would regenerate bit-identical, hence
/// sketch identical).
pub fn repair_sketch(
    sketch: &SketchedPool,
    targets: &[NodeId],
    sampler: &RrSampler<'_>,
    workers: &WorkerPool,
    seed: u64,
) -> Result<RepairedSketch, PoolError> {
    let dirty = sketch.dirty_chunks(targets);
    let mut out = sketch.clone();
    if dirty.is_empty() {
        return Ok(RepairedSketch {
            sketch: out,
            dirty_chunks: 0,
        });
    }
    let chunk_size = sketch.chunk_size();
    let batch = workers.try_generate_chunk_ids(sampler, None, &dirty, chunk_size, seed)?;
    for (j, &c) in dirty.iter().enumerate() {
        out.replace_chunk(c, &batch.rr, j * chunk_size);
    }
    Ok(RepairedSketch {
        sketch: out,
        dirty_chunks: dirty.len(),
    })
}

/// Everything a delta commit needs back from [`repair_pool`].
pub(crate) struct PoolRepairOutcome {
    pub r1: RrCollection,
    pub r2: RrCollection,
    pub sentinel: Option<SentinelState>,
    pub sketch: Option<SketchedPool>,
    pub dirty_sets_r1: usize,
    pub dirty_sets_r2: usize,
    pub dirty_chunks_r1: usize,
    pub dirty_chunks_r2: usize,
    pub sentinel_refreshed: bool,
}

/// Repairs both pool halves — and the sentinel tier, if present —
/// against the new graph bound in `sampler`. The shared engine behind
/// [`crate::DeltaIndex::apply_delta`] and the concurrent wrapper.
///
/// Without a sentinel this is two [`repair_half`] calls (bit-exact
/// rebuild equivalence). With a sentinel whose set `Z` is untouched by
/// the delta (no op endpoint in `Z`), both halves repair through
/// [`repair_half_sentinel`]: the truncation boundary is preserved and
/// per-chunk hit counters refresh for regenerated truncated chunks.
/// When the delta rewires a sentinel's own edges, `Z`'s selection basis
/// is gone: the plain warmup prefix is repaired exactly, a new `Z'` is
/// re-selected over the repaired `R₁` prefix, and the whole truncated
/// suffix regenerates under `Z'`. The statistical certification
/// contract holds throughout — every stored set remains a valid sample
/// of the new graph and bounds re-derive per query — but bit-equivalence
/// to a fresh rebuild is not promised for a refreshed suffix.
#[allow(clippy::too_many_arguments)]
pub(crate) fn repair_pool(
    r1: &RrCollection,
    r2: &RrCollection,
    sentinel: Option<&SentinelState>,
    sketch: Option<&SketchedPool>,
    chunks: u64,
    delta: &GraphDelta,
    g_new: &Graph,
    sentinel_budget: usize,
    sampler: &RrSampler<'_>,
    workers: &WorkerPool,
    chunk_size: usize,
    seed: u64,
    threads: usize,
) -> Result<PoolRepairOutcome, PoolError> {
    let targets = delta.targets();
    // Sketched validation tier (mutually exclusive with sentinels): R₁
    // repairs exactly, the sketch repairs chunk-wise on the same
    // membership predicate. The sketch cannot count individual dirty
    // sets, so `dirty_sets_r2` reports the regenerated whole chunks'
    // set count (what was actually redrawn).
    if let Some(sk) = sketch {
        let h1 = repair_half(r1, &targets, sampler, workers, chunk_size, seed, threads)?;
        let rs = repair_sketch(sk, &targets, sampler, workers, seed ^ R2_STREAM)?;
        return Ok(PoolRepairOutcome {
            r1: h1.rr,
            r2: r2.clone(),
            sentinel: None,
            sketch: Some(rs.sketch),
            dirty_sets_r1: h1.dirty_sets,
            dirty_sets_r2: rs.dirty_chunks * chunk_size,
            dirty_chunks_r1: h1.dirty_chunks,
            dirty_chunks_r2: rs.dirty_chunks,
            sentinel_refreshed: false,
        });
    }
    let Some(st) = sentinel.filter(|st| !st.set.is_empty()) else {
        let h1 = repair_half(r1, &targets, sampler, workers, chunk_size, seed, threads)?;
        let h2 = repair_half(
            r2,
            &targets,
            sampler,
            workers,
            chunk_size,
            seed ^ R2_STREAM,
            threads,
        )?;
        return Ok(PoolRepairOutcome {
            r1: h1.rr,
            r2: h2.rr,
            sentinel: sentinel.cloned(),
            sketch: None,
            dirty_sets_r1: h1.dirty_sets,
            dirty_sets_r2: h2.dirty_sets,
            dirty_chunks_r1: h1.dirty_chunks,
            dirty_chunks_r2: h2.dirty_chunks,
            sentinel_refreshed: false,
        });
    };
    let stale = delta.ops().iter().any(|op| {
        let (u, v) = op.endpoints();
        st.set.contains(u) || st.set.contains(v)
    });
    if !stale {
        let h1 = repair_half_sentinel(
            r1,
            &targets,
            st.set.nodes(),
            st.from_chunk,
            &st.chunk_hits_r1,
            sampler,
            workers,
            chunk_size,
            seed,
            threads,
        )?;
        let h2 = repair_half_sentinel(
            r2,
            &targets,
            st.set.nodes(),
            st.from_chunk,
            &st.chunk_hits_r2,
            sampler,
            workers,
            chunk_size,
            seed ^ R2_STREAM,
            threads,
        )?;
        return Ok(PoolRepairOutcome {
            r1: h1.rr,
            r2: h2.rr,
            sentinel: Some(SentinelState {
                set: st.set.clone(),
                from_chunk: st.from_chunk,
                chunk_hits_r1: h1.chunk_hits,
                chunk_hits_r2: h2.chunk_hits,
            }),
            sketch: None,
            dirty_sets_r1: h1.dirty_sets,
            dirty_sets_r2: h2.dirty_sets,
            dirty_chunks_r1: h1.dirty_chunks,
            dirty_chunks_r2: h2.dirty_chunks,
            sentinel_refreshed: false,
        });
    }
    // Stale sentinel: repair the plain prefix exactly, re-select Z' over
    // it, then regenerate the whole truncated suffix under Z'.
    let n = r1.graph_n();
    let prefix_sets = (st.from_chunk as usize) * chunk_size;
    let mut p1 = RrCollection::new(n);
    p1.extend_from_range(r1, 0..prefix_sets);
    let mut p2 = RrCollection::new(n);
    p2.extend_from_range(r2, 0..prefix_sets);
    let h1 = repair_half(&p1, &targets, sampler, workers, chunk_size, seed, threads)?;
    let h2 = repair_half(
        &p2,
        &targets,
        sampler,
        workers,
        chunk_size,
        seed ^ R2_STREAM,
        threads,
    )?;
    let budget = if sentinel_budget > 0 {
        sentinel_budget
    } else {
        st.set.len()
    };
    let fresh = SentinelSet::select(&[&h1.rr], g_new, budget);
    let suffix_chunks = chunks.saturating_sub(st.from_chunk) as usize;
    let mut out1 = h1.rr;
    let mut out2 = h2.rr;
    let mut hits1 = vec![0u64; st.from_chunk as usize];
    let mut hits2 = vec![0u64; st.from_chunk as usize];
    if suffix_chunks > 0 {
        let z = (!fresh.is_empty()).then(|| fresh.nodes().to_vec());
        let b1 = workers.try_generate_chunks(
            sampler,
            z.as_deref(),
            st.from_chunk..chunks,
            chunk_size,
            seed,
        )?;
        let b2 = workers.try_generate_chunks(
            sampler,
            z.as_deref(),
            st.from_chunk..chunks,
            chunk_size,
            seed ^ R2_STREAM,
        )?;
        hits1.extend_from_slice(&b1.chunk_hits);
        hits2.extend_from_slice(&b2.chunk_hits);
        out1.extend_from(&b1.rr);
        out2.extend_from(&b2.rr);
    }
    Ok(PoolRepairOutcome {
        r1: out1,
        r2: out2,
        sentinel: Some(SentinelState {
            set: fresh,
            from_chunk: st.from_chunk,
            chunk_hits_r1: hits1,
            chunk_hits_r2: hits2,
        }),
        sketch: None,
        dirty_sets_r1: h1.dirty_sets,
        dirty_sets_r2: h2.dirty_sets,
        dirty_chunks_r1: h1.dirty_chunks + suffix_chunks,
        dirty_chunks_r2: h2.dirty_chunks + suffix_chunks,
        sentinel_refreshed: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_diffusion::RrStrategy;
    use subsim_graph::generators::barabasi_albert;
    use subsim_graph::{Graph, GraphBuilder, WeightModel};

    /// Regenerates a whole half from scratch — the reference repair.
    fn full_rebuild(
        g: &Graph,
        chunks: u64,
        chunk_size: usize,
        seed: u64,
        strategy: RrStrategy,
    ) -> RrCollection {
        let sampler = RrSampler::new(g, strategy);
        let pool = WorkerPool::new(1);
        pool.generate_chunks(&sampler, None, 0..chunks, chunk_size, seed)
            .rr
    }

    /// A per-edge-weight mutation of `g`: reweights the first edge into
    /// the highest-in-degree node.
    fn mutate(g: &Graph) -> (Graph, NodeId) {
        let hub = (0..g.n() as NodeId)
            .max_by_key(|&v| g.in_degree(v))
            .unwrap();
        let u = g.in_neighbors(hub)[0];
        let mut b = GraphBuilder::new(g.n()).keep_self_loops(true);
        for (a, c, p) in g.edges() {
            let p = if (a, c) == (u, hub) {
                (p * 0.5).min(1.0)
            } else {
                p
            };
            b = b.add_weighted_edge(a, c, p);
        }
        (b.build().unwrap(), hub)
    }

    #[test]
    fn repaired_half_matches_full_rebuild() {
        // Normalized (per-edge) storage on both versions, as the
        // versioned pipeline guarantees.
        let raw = barabasi_albert(300, 3, WeightModel::Wc, 21);
        let mut b = GraphBuilder::new(raw.n()).keep_self_loops(true);
        for (u, v, p) in raw.edges() {
            b = b.add_weighted_edge(u, v, p);
        }
        let old = b.build().unwrap();
        let (new, hub) = mutate(&old);
        let (chunks, chunk_size, seed) = (10u64, 32usize, 77u64);
        let old_pool = full_rebuild(&old, chunks, chunk_size, seed, RrStrategy::SubsimIc);
        let reference = full_rebuild(&new, chunks, chunk_size, seed, RrStrategy::SubsimIc);

        let sampler = RrSampler::new(&new, RrStrategy::SubsimIc);
        for threads in [1, 2, 4] {
            let workers = WorkerPool::new(threads);
            let repaired = repair_half(
                &old_pool,
                &[hub],
                &sampler,
                &workers,
                chunk_size,
                seed,
                threads,
            )
            .unwrap();
            assert_eq!(repaired.rr.len(), reference.len());
            for i in 0..reference.len() {
                assert_eq!(
                    repaired.rr.get(i),
                    reference.get(i),
                    "threads={threads} set {i}"
                );
            }
            assert!(repaired.dirty_sets > 0, "hub must appear in some set");
            assert!(
                repaired.dirty_chunks <= chunks as usize,
                "chunk count bounded"
            );
        }
    }

    /// Sketches a whole half the way `ensure_pool` would: one absorbed
    /// batch covering chunks `0..chunks`.
    fn sketch_of(g: &Graph, chunks: u64, chunk_size: usize, seed: u64, p: u8) -> SketchedPool {
        let rr = full_rebuild(g, chunks, chunk_size, seed, RrStrategy::SubsimIc);
        let mut sk = SketchedPool::new(g.n(), chunk_size, p);
        sk.absorb_batch(0, &rr);
        sk
    }

    #[test]
    fn repaired_sketch_matches_full_rebuild_sketch() {
        let raw = barabasi_albert(300, 3, WeightModel::Wc, 24);
        let mut b = GraphBuilder::new(raw.n()).keep_self_loops(true);
        for (u, v, p) in raw.edges() {
            b = b.add_weighted_edge(u, v, p);
        }
        let old = b.build().unwrap();
        let (new, hub) = mutate(&old);
        let (chunks, chunk_size, seed) = (10u64, 32usize, 78u64);
        let old_sketch = sketch_of(&old, chunks, chunk_size, seed, 6);
        let reference = sketch_of(&new, chunks, chunk_size, seed, 6);

        let sampler = RrSampler::new(&new, RrStrategy::SubsimIc);
        for threads in [1, 2, 4] {
            let workers = WorkerPool::new(threads);
            let repaired = repair_sketch(&old_sketch, &[hub], &sampler, &workers, seed).unwrap();
            assert!(repaired.dirty_chunks > 0, "hub must appear in some chunk");
            assert!(repaired.dirty_chunks <= chunks as usize);
            assert_eq!(repaired.sketch, reference, "threads={threads}");
        }

        // A target outside every sketched chunk leaves the sketch alone.
        let absent = (0..old.n() as NodeId).find(|&v| old_sketch.dirty_chunks(&[v]).is_empty());
        if let Some(v) = absent {
            let workers = WorkerPool::new(2);
            let repaired = repair_sketch(&old_sketch, &[v], &sampler, &workers, seed).unwrap();
            assert_eq!(repaired.dirty_chunks, 0);
            assert_eq!(repaired.sketch, old_sketch);
        }
    }

    #[test]
    fn untouched_target_repairs_nothing() {
        let raw = barabasi_albert(200, 3, WeightModel::Wc, 22);
        let mut b = GraphBuilder::new(raw.n()).keep_self_loops(true);
        for (u, v, p) in raw.edges() {
            b = b.add_weighted_edge(u, v, p);
        }
        let g = b.build().unwrap();
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let workers = WorkerPool::new(2);
        let pool = full_rebuild(&g, 6, 16, 5, RrStrategy::SubsimIc);
        // A target no set contains: impossible by id range, so find one
        // absent from the pool (or skip if the pool covers every node).
        let mut present = vec![false; g.n()];
        for set in pool.iter() {
            for &v in set {
                present[v as usize] = true;
            }
        }
        let Some(absent) = present.iter().position(|&p| !p) else {
            return;
        };
        let repaired =
            repair_half(&pool, &[absent as NodeId], &sampler, &workers, 16, 5, 2).unwrap();
        assert_eq!(repaired.dirty_sets, 0);
        assert_eq!(repaired.dirty_chunks, 0);
        for i in 0..pool.len() {
            assert_eq!(repaired.rr.get(i), pool.get(i));
        }
    }

    #[test]
    fn worker_panic_mid_repair_is_typed_and_pool_stays_usable() {
        let raw = barabasi_albert(200, 3, WeightModel::Wc, 23);
        let mut b = GraphBuilder::new(raw.n()).keep_self_loops(true);
        for (u, v, p) in raw.edges() {
            b = b.add_weighted_edge(u, v, p);
        }
        let g = b.build().unwrap();
        let hub = (0..g.n() as NodeId)
            .max_by_key(|&v| g.in_degree(v))
            .unwrap();
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let workers = WorkerPool::new(3);
        let pool = full_rebuild(&g, 8, 16, 9, RrStrategy::SubsimIc);
        workers.set_chunk_hook(Some(std::sync::Arc::new(|_, _| panic!("injected fault"))));
        let err = repair_half(&pool, &[hub], &sampler, &workers, 16, 9, 3).unwrap_err();
        assert_eq!(err, PoolError::WorkerPanicked);
        // Hook cleared: the same pool repairs normally afterwards.
        workers.set_chunk_hook(None);
        let repaired = repair_half(&pool, &[hub], &sampler, &workers, 16, 9, 3).unwrap();
        assert_eq!(repaired.rr.len(), pool.len());
    }

    #[test]
    fn repair_fraction_reads_the_report() {
        let r = RepairReport {
            regenerated_sets: 64,
            pool_sets: 256,
            ..RepairReport::default()
        };
        assert!((r.repair_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(RepairReport::default().repair_fraction(), 0.0);
    }
}
