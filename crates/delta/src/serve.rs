//! The query-serving loop, factored out of the CLI so it can be driven
//! (and fault-injected) in-process by tests and the deterministic
//! simulator in `subsim-testkit`.
//!
//! A serving session reads lines from any `BufRead`:
//!
//! - `k [epsilon] [@version]` — an IM query; `@version` pins it to an
//!   exact graph version (delta-stream servers only) and fails with a
//!   typed [`DeltaError::StaleVersion`] if the index has moved on.
//! - `delta <op>` — one `+ u v p` / `- u v` / `~ u v p` graph mutation.
//!   Delta lines are a **barrier**: the op applies only after every
//!   earlier query line has answered, so a pin in an earlier line can
//!   never go spuriously stale, and every later line sees the mutation.
//!   This makes a serving session's outcome a pure function of its input
//!   lines (given a deterministic index), which the simulator in
//!   `subsim-testkit` relies on.
//! - `shutdown` — ends the session and reports it to the caller.
//!
//! Every failure is **per line and typed** ([`LineError`]): a malformed
//! query, a rejected delta op, a stale version pin, or a mid-stream read
//! error produces a [`ServeEvent`] and the loop keeps serving subsequent
//! lines. Seeds for successful queries go to `output` one line per query
//! in **input order** (a reorder buffer holds early-finished answers);
//! everything else is surfaced through the [`ServeSink`] so callers
//! decide between stderr logging (the CLI) and structured assertions
//! (tests).

use crate::delta::GraphDelta;
use crate::error::DeltaError;
use crate::repair::RepairReport;
use crate::ConcurrentDeltaIndex;
use std::collections::BTreeMap;
use std::io::BufRead;
use std::sync::{mpsc, Mutex};
use subsim_index::{ConcurrentRrIndex, IndexError, QueryAnswer, QueryStats};

/// Why a serving index refused a query or delta line.
#[derive(Debug)]
pub enum ServeError {
    /// A `delta` line reached an index whose graph is frozen (a server
    /// started without `--delta-stream`).
    Frozen,
    /// A `@version` pin reached an index that serves exactly one version.
    PinUnsupported,
    /// The index layer failed the query.
    Index(IndexError),
    /// The delta layer failed the query or mutation (including
    /// [`DeltaError::StaleVersion`] for pins the index moved past).
    Delta(DeltaError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Frozen => write!(
                f,
                "graph is frozen; start the server with --delta-stream to accept delta lines"
            ),
            ServeError::PinUnsupported => write!(
                f,
                "version pins need a versioned index; start the server with --delta-stream"
            ),
            ServeError::Index(e) => write!(f, "{e}"),
            ServeError::Delta(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Index(e) => Some(e),
            ServeError::Delta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IndexError> for ServeError {
    fn from(e: IndexError) -> Self {
        ServeError::Index(e)
    }
}

impl From<DeltaError> for ServeError {
    fn from(e: DeltaError) -> Self {
        ServeError::Delta(e)
    }
}

/// Typed failure of one input line; the loop continues after every one.
#[derive(Debug)]
pub enum LineError {
    /// The line did not parse as `k [epsilon] [@version]`.
    Malformed {
        /// What failed to parse.
        reason: String,
    },
    /// The line parsed but the index rejected it.
    Rejected(ServeError),
    /// The line never materialized: its enclosing frame violated the
    /// length-framed transport (multi-connection server only).
    Frame(FrameViolation),
}

/// How a length-framed payload violated the wire protocol. Framing
/// faults are per-connection: the violating frame (or, for
/// [`FrameViolation::Truncated`], the connection) is rejected with a
/// typed error while every other connection keeps serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameViolation {
    /// The declared payload length exceeds the server's frame cap; the
    /// payload is skipped so the stream stays in sync.
    Oversized {
        /// Declared payload length.
        declared: usize,
        /// The server's cap.
        max: usize,
    },
    /// The stream ended mid-header or mid-payload.
    Truncated {
        /// Bytes still expected when the stream ended.
        missing: usize,
    },
    /// The payload was not valid UTF-8.
    NotUtf8,
}

impl std::fmt::Display for FrameViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameViolation::Oversized { declared, max } => {
                write!(f, "oversized frame: {declared} bytes exceeds cap {max}")
            }
            FrameViolation::Truncated { missing } => {
                write!(f, "truncated frame: stream ended {missing} bytes early")
            }
            FrameViolation::NotUtf8 => write!(f, "frame payload is not valid UTF-8"),
        }
    }
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineError::Malformed { reason } => write!(f, "malformed line: {reason}"),
            LineError::Rejected(e) => write!(f, "{e}"),
            LineError::Frame(v) => write!(f, "{v}"),
        }
    }
}

/// One observable outcome of the serving loop, in the order outcomes
/// happen (answers are emitted in input order; delta acks and line
/// failures in read order).
#[derive(Debug)]
pub enum ServeEvent {
    /// A query answered; its seeds line was written to the output.
    Answered {
        /// The input line, verbatim (trimmed).
        line: String,
        /// The answering query's statistics.
        stats: Box<QueryStats>,
    },
    /// A `delta` op applied and the repaired snapshot published.
    DeltaApplied {
        /// The op text after the `delta ` prefix.
        op: String,
        /// What the repair did.
        report: Box<RepairReport>,
    },
    /// A line failed; the loop moved on to the next line.
    LineFailed {
        /// The offending line, verbatim (including any `delta ` prefix).
        line: String,
        /// Why it failed.
        error: LineError,
    },
    /// The input stream itself errored mid-read (e.g. a dropped socket);
    /// the session ends after this event, already-submitted queries still
    /// answer.
    InputError {
        /// The I/O error, rendered.
        message: String,
    },
}

/// Receives [`ServeEvent`]s from the serving loop. Events arrive from the
/// reader and the collector thread, hence `Sync`.
pub trait ServeSink: Sync {
    /// Called once per event.
    fn event(&self, event: ServeEvent);
}

impl<F: Fn(ServeEvent) + Sync> ServeSink for F {
    fn event(&self, event: ServeEvent) {
        self(event)
    }
}

/// A sink that drops every event — for callers that only need the output
/// lines.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ServeSink for NullSink {
    fn event(&self, _event: ServeEvent) {}
}

/// What the serving loop needs from an index: concurrent queries
/// (optionally pinned to a graph version) and — for delta-stream servers
/// — in-band graph mutation.
pub trait ServeIndex: Sync {
    /// Answers one query; `pin` asks for an exact graph version.
    fn run_query(
        &self,
        k: usize,
        epsilon: f64,
        delta: f64,
        pin: Option<u64>,
    ) -> Result<QueryAnswer, ServeError>;

    /// Applies one `+ u v p` / `- u v` / `~ u v p` op line.
    fn apply_delta_line(&self, op: &str) -> Result<RepairReport, ServeError>;

    /// Currently served graph version; `None` for frozen single-version
    /// indexes.
    fn version(&self) -> Option<u64> {
        None
    }
}

impl ServeIndex for ConcurrentRrIndex<'_> {
    fn run_query(
        &self,
        k: usize,
        epsilon: f64,
        delta: f64,
        pin: Option<u64>,
    ) -> Result<QueryAnswer, ServeError> {
        if pin.is_some() {
            return Err(ServeError::PinUnsupported);
        }
        Ok(self.query(k, epsilon, delta)?)
    }

    fn apply_delta_line(&self, _op: &str) -> Result<RepairReport, ServeError> {
        Err(ServeError::Frozen)
    }
}

impl ServeIndex for ConcurrentDeltaIndex {
    fn run_query(
        &self,
        k: usize,
        epsilon: f64,
        delta: f64,
        pin: Option<u64>,
    ) -> Result<QueryAnswer, ServeError> {
        match pin {
            Some(version) => Ok(self.query_at_version(version, k, epsilon, delta)?),
            None => Ok(self.query(k, epsilon, delta)?),
        }
    }

    fn apply_delta_line(&self, op: &str) -> Result<RepairReport, ServeError> {
        let parsed = GraphDelta::parse_line(op)
            .map_err(ServeError::Delta)?
            .ok_or_else(|| {
                ServeError::Delta(DeltaError::Parse {
                    message: "empty delta line".into(),
                })
            })?;
        let mut delta = GraphDelta::new();
        delta.push(parsed);
        Ok(self.apply_delta(&delta)?)
    }

    fn version(&self) -> Option<u64> {
        Some(ConcurrentDeltaIndex::version(self))
    }
}

/// One parsed query line, tagged with its position in the input so
/// answers can be re-serialized in input order.
struct Job {
    id: u64,
    line: String,
    k: usize,
    epsilon: f64,
    pin: Option<u64>,
}

/// Parses a query line `k [epsilon] [@version]` into
/// `(k, epsilon, pin)`; `epsilon` defaults to `0.1`. Tokens may appear
/// in any order except that `k` precedes `epsilon`. Public so external
/// drivers (the test simulator) share the exact serving grammar.
pub fn parse_query(line: &str) -> Result<(usize, f64, Option<u64>), String> {
    let mut k = None;
    let mut epsilon = None;
    let mut pin = None;
    for tok in line.split_whitespace() {
        if let Some(v) = tok.strip_prefix('@') {
            if pin.is_some() {
                return Err("duplicate @version pin".into());
            }
            pin = Some(
                v.parse::<u64>()
                    .map_err(|e| format!("bad version pin {tok:?}: {e}"))?,
            );
        } else if k.is_none() {
            k = Some(tok.parse::<usize>().map_err(|e| format!("k: {e}"))?);
        } else if epsilon.is_none() {
            epsilon = Some(tok.parse::<f64>().map_err(|e| format!("epsilon: {e}"))?);
        } else {
            return Err(format!("unexpected token {tok:?}"));
        }
    }
    Ok((k.ok_or("missing k")?, epsilon.unwrap_or(0.1), pin))
}

/// Serves query and delta lines from `input` until EOF (or a `shutdown`
/// line), fanning queries out over `workers` threads that query `index`
/// concurrently. See the module docs for the line grammar and error
/// contract. Returns whether a `shutdown` line was seen; `Err` only for
/// failures writing `output` (per-line problems go to `sink` instead).
pub fn serve_queries<I, R, W, S>(
    index: &I,
    delta: f64,
    workers: usize,
    input: R,
    mut output: W,
    sink: &S,
) -> Result<bool, String>
where
    I: ServeIndex,
    R: BufRead,
    W: std::io::Write + Send,
    S: ServeSink + ?Sized,
{
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Mutex::new(job_rx);
    let (ans_tx, ans_rx) = mpsc::channel::<(Job, Result<QueryAnswer, ServeError>)>();
    // Queries completed by the collector, for the delta-line barrier.
    let done = (Mutex::new(0u64), std::sync::Condvar::new());

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            let ans_tx = ans_tx.clone();
            let job_rx = &job_rx;
            scope.spawn(move || loop {
                // Hold the receiver lock only to pull one job; the query
                // itself runs unlocked so workers overlap.
                let job = match job_rx.lock().expect("job queue poisoned").recv() {
                    Ok(job) => job,
                    Err(_) => break,
                };
                let result = index.run_query(job.k, job.epsilon, delta, job.pin);
                if ans_tx.send((job, result)).is_err() {
                    break;
                }
            });
        }
        drop(ans_tx); // the collector below must see EOF once workers finish

        let collector = scope.spawn({
            let output = &mut output;
            let done = &done;
            move || -> Result<(), String> {
                // Reorder buffer: answers surface in completion order but
                // must leave in input order.
                let mut pending: BTreeMap<u64, (Job, Result<QueryAnswer, ServeError>)> =
                    BTreeMap::new();
                let mut next_id = 0u64;
                for (job, result) in ans_rx {
                    pending.insert(job.id, (job, result));
                    while let Some((job, result)) = pending.remove(&next_id) {
                        next_id += 1;
                        match result {
                            Ok(ans) => {
                                let seeds: Vec<String> =
                                    ans.seeds.iter().map(|s| s.to_string()).collect();
                                writeln!(output, "{}", seeds.join(" "))
                                    .map_err(|e| e.to_string())?;
                                output.flush().map_err(|e| e.to_string())?;
                                sink.event(ServeEvent::Answered {
                                    line: job.line,
                                    stats: Box::new(ans.stats),
                                });
                            }
                            Err(e) => sink.event(ServeEvent::LineFailed {
                                line: job.line,
                                error: LineError::Rejected(e),
                            }),
                        }
                        *done.0.lock().expect("done counter poisoned") = next_id;
                        done.1.notify_all();
                    }
                }
                Ok(())
            }
        });

        let mut shutdown = false;
        let mut id = 0u64;
        for line in input.lines() {
            let line = match line {
                Ok(line) => line,
                Err(e) => {
                    sink.event(ServeEvent::InputError {
                        message: e.to_string(),
                    });
                    break;
                }
            };
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "shutdown" {
                shutdown = true;
                break;
            }
            if let Some(rest) = line.strip_prefix("delta ") {
                // Barrier: wait for every earlier query to answer, so
                // earlier pins never race the mutation and later lines
                // deterministically see it.
                let mut answered = done.0.lock().expect("done counter poisoned");
                while *answered < id {
                    answered = done.1.wait(answered).expect("done counter poisoned");
                }
                drop(answered);
                let op = rest.trim();
                match index.apply_delta_line(op) {
                    Ok(report) => sink.event(ServeEvent::DeltaApplied {
                        op: op.to_string(),
                        report: Box::new(report),
                    }),
                    Err(e) => sink.event(ServeEvent::LineFailed {
                        line: line.to_string(),
                        error: LineError::Rejected(e),
                    }),
                }
                continue;
            }
            let (k, epsilon, pin) = match parse_query(line) {
                Ok(parts) => parts,
                Err(reason) => {
                    sink.event(ServeEvent::LineFailed {
                        line: line.to_string(),
                        error: LineError::Malformed { reason },
                    });
                    continue;
                }
            };
            let job = Job {
                id,
                line: line.to_string(),
                k,
                epsilon,
                pin,
            };
            id += 1;
            if job_tx.send(job).is_err() {
                break; // all workers gone (collector error below reports why)
            }
        }
        drop(job_tx); // workers drain the queue, then ans_rx sees EOF
        collector.join().expect("collector panicked")?;
        Ok(shutdown)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;
    use subsim_diffusion::RrStrategy;
    use subsim_graph::generators::barabasi_albert;
    use subsim_graph::WeightModel;
    use subsim_index::IndexConfig;

    /// Collects every event for assertions.
    #[derive(Default)]
    struct Recorder(StdMutex<Vec<ServeEvent>>);

    impl ServeSink for Recorder {
        fn event(&self, event: ServeEvent) {
            self.0.lock().unwrap().push(event);
        }
    }

    fn delta_index() -> ConcurrentDeltaIndex {
        let g = barabasi_albert(120, 3, WeightModel::Wc, 7);
        let config = IndexConfig::new(RrStrategy::SubsimIc)
            .seed(3)
            .chunk_size(64)
            .threads(2);
        ConcurrentDeltaIndex::new(g, config).unwrap()
    }

    fn lines(out: &[u8]) -> Vec<String> {
        String::from_utf8(out.to_vec())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn parse_query_grammar() {
        assert_eq!(parse_query("5").unwrap(), (5, 0.1, None));
        assert_eq!(parse_query("5 0.2").unwrap(), (5, 0.2, None));
        assert_eq!(parse_query("5 0.2 @3").unwrap(), (5, 0.2, Some(3)));
        assert_eq!(parse_query("5 @0").unwrap(), (5, 0.1, Some(0)));
        assert_eq!(parse_query("@1 5").unwrap(), (5, 0.1, Some(1)));
        assert!(parse_query("x").is_err());
        assert!(parse_query("5 0.2 0.3").is_err());
        assert!(parse_query("5 @1 @2").is_err());
        assert!(parse_query("5 @x").is_err());
    }

    #[test]
    fn malformed_lines_are_typed_and_serving_continues() {
        let index = delta_index();
        let input = "2 0.2\nnot-a-query\ndelta bogus\n2 0.2\n";
        let mut out = Vec::new();
        let rec = Recorder::default();
        let shutdown = serve_queries(&index, 0.05, 2, input.as_bytes(), &mut out, &rec).unwrap();
        assert!(!shutdown);
        let answers = lines(&out);
        assert_eq!(answers.len(), 2, "both well-formed queries answered");
        assert_eq!(answers[0], answers[1], "same pool, same seeds");
        let events = rec.0.into_inner().unwrap();
        let failures: Vec<&ServeEvent> = events
            .iter()
            .filter(|e| matches!(e, ServeEvent::LineFailed { .. }))
            .collect();
        assert_eq!(failures.len(), 2, "{events:?}");
        assert!(matches!(
            failures[0],
            ServeEvent::LineFailed {
                error: LineError::Malformed { .. },
                ..
            }
        ));
        assert!(matches!(
            failures[1],
            ServeEvent::LineFailed {
                error: LineError::Rejected(ServeError::Delta(DeltaError::Parse { .. })),
                ..
            }
        ));
    }

    #[test]
    fn stale_pin_is_typed_and_serving_continues() {
        let index = delta_index();
        // Pin to version 0, mutate (version 1), pin to 0 again (stale),
        // pin to 1 (fresh), and query unpinned.
        let input = "2 0.2 @0\ndelta ~ 0 1 0.5\n2 0.2 @0\n2 0.2 @1\n2 0.2\n";
        let mut out = Vec::new();
        let rec = Recorder::default();
        serve_queries(&index, 0.05, 1, input.as_bytes(), &mut out, &rec).unwrap();
        assert_eq!(lines(&out).len(), 3, "three of four queries answered");
        let events = rec.0.into_inner().unwrap();
        let stale: Vec<_> = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    ServeEvent::LineFailed {
                        error: LineError::Rejected(ServeError::Delta(DeltaError::StaleVersion {
                            requested: 0,
                            current: 1
                        })),
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(stale.len(), 1, "{events:?}");
        assert!(events
            .iter()
            .any(|e| matches!(e, ServeEvent::DeltaApplied { .. })));
    }

    #[test]
    fn frozen_index_rejects_deltas_and_pins() {
        let g = barabasi_albert(100, 3, WeightModel::Wc, 11);
        let config = IndexConfig::new(RrStrategy::SubsimIc)
            .seed(5)
            .chunk_size(64);
        let index = ConcurrentRrIndex::new(&g, config);
        let input = "delta + 0 1 0.5\n2 0.2 @0\n2 0.2\n";
        let mut out = Vec::new();
        let rec = Recorder::default();
        serve_queries(&index, 0.05, 1, input.as_bytes(), &mut out, &rec).unwrap();
        assert_eq!(lines(&out).len(), 1, "only the unpinned query answers");
        let events = rec.0.into_inner().unwrap();
        assert!(events.iter().any(|e| matches!(
            e,
            ServeEvent::LineFailed {
                error: LineError::Rejected(ServeError::Frozen),
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            ServeEvent::LineFailed {
                error: LineError::Rejected(ServeError::PinUnsupported),
                ..
            }
        )));
    }

    #[test]
    fn shutdown_line_ends_the_session() {
        let index = delta_index();
        let input = "2 0.2\nshutdown\n2 0.2\n";
        let mut out = Vec::new();
        let shutdown =
            serve_queries(&index, 0.05, 1, input.as_bytes(), &mut out, &NullSink).unwrap();
        assert!(shutdown);
        assert_eq!(lines(&out).len(), 1, "lines after shutdown are not read");
    }

    #[test]
    fn mid_stream_read_error_surfaces_and_session_ends_cleanly() {
        struct FailingRead {
            data: &'static [u8],
            pos: usize,
        }
        impl std::io::Read for FailingRead {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos >= self.data.len() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionReset,
                        "injected mid-stream failure",
                    ));
                }
                let take = buf.len().min(self.data.len() - self.pos);
                buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
                self.pos += take;
                Ok(take)
            }
        }
        let index = delta_index();
        let reader = std::io::BufReader::new(FailingRead {
            data: b"2 0.2\n",
            pos: 0,
        });
        let mut out = Vec::new();
        let rec = Recorder::default();
        let shutdown = serve_queries(&index, 0.05, 1, reader, &mut out, &rec).unwrap();
        assert!(!shutdown);
        assert_eq!(lines(&out).len(), 1, "the query before the fault answers");
        let events = rec.0.into_inner().unwrap();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ServeEvent::InputError { .. })),
            "{events:?}"
        );
        // The index is still fully queryable after the failed session.
        assert!(index.query(2, 0.2, 0.05).is_ok());
    }
}
