//! A sequential RR-sketch index that owns its versioned graph.
//!
//! [`subsim_index::RrIndex`] borrows a frozen `&Graph`, which is exactly
//! wrong for a mutating graph: the borrow would freeze the thing deltas
//! must rewrite. [`DeltaIndex`] therefore *owns* a [`VersionedGraph`]
//! plus the two pool halves and re-binds a transient sampler to the
//! current CSR per operation. Query semantics mirror `RrIndex::query`
//! bit for bit (same bounds, same growth schedule, same chunk streams),
//! and [`DeltaIndex::apply_delta`] repairs the pool through
//! [`crate::repair`] so every query after a delta sees a pool identical
//! to a full rebuild on the new graph.

use crate::delta::GraphDelta;
use crate::error::DeltaError;
use crate::repair::{repair_pool, RepairReport};
use crate::versioned::VersionedGraph;
use std::path::Path;
use std::time::Instant;
use subsim_core::bounds::{i_max, theta_max_opim, theta_zero};
use subsim_core::pool::evaluate_pool_timed_par;
use subsim_core::sentinel::{evaluate_pool_sentinel, SentinelSet};
use subsim_core::ImOptions;
use subsim_diffusion::pool::WorkerPool;
use subsim_diffusion::{RrCollection, RrSampler};
use subsim_graph::Graph;
use subsim_index::QueryStats;
use subsim_index::{
    IndexConfig, IndexError, IndexMetrics, MetricsSnapshot, QueryAnswer, RrIndex, SentinelState,
    R2_STREAM, SENTINEL_WARMUP_CHUNKS,
};
use subsim_sketch::{evaluate_pool_sketched, SketchedPool, MAX_PRECISION};

/// An RR-sketch index over a [`VersionedGraph`]: answers certified IM
/// queries like [`RrIndex`] and absorbs graph deltas by incremental
/// chunk repair instead of re-indexing.
///
/// ```
/// use subsim_delta::{DeltaIndex, GraphDelta};
/// use subsim_diffusion::RrStrategy;
/// use subsim_graph::{generators, WeightModel};
/// use subsim_index::IndexConfig;
///
/// let g = generators::star_graph(50, WeightModel::UniformIc { p: 0.4 });
/// let mut index = DeltaIndex::new(g, IndexConfig::new(RrStrategy::SubsimIc).seed(3)).unwrap();
/// let before = index.query(1, 0.1, 0.01).unwrap();
/// assert_eq!(before.seeds, vec![0]);
/// let report = index
///     .apply_delta(&GraphDelta::new().insert_edge(1, 2, 0.9))
///     .unwrap();
/// assert_eq!(index.version(), 1);
/// assert!(report.regenerated_sets <= report.pool_sets);
/// ```
pub struct DeltaIndex {
    vg: VersionedGraph,
    config: IndexConfig,
    r1: RrCollection,
    r2: RrCollection,
    /// RNG cursor: complete chunks generated per half.
    chunks: u64,
    /// Sentinel tier state (see [`subsim_index::SentinelState`]).
    sentinel: Option<SentinelState>,
    /// Sketched validation tier: when active, `r2` stays empty and the
    /// validation half lives in per-node count-distinct sketches.
    sketch: Option<SketchedPool>,
    workers: WorkerPool,
    metrics: IndexMetrics,
}

impl std::fmt::Debug for DeltaIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaIndex")
            .field("version", &self.vg.version())
            .field("config", &self.config)
            .field("chunks", &self.chunks)
            .field("pool_len", &self.r1.len())
            .finish_non_exhaustive()
    }
}

impl DeltaIndex {
    /// An empty index over version 0 of `g` (storage-normalized; see
    /// [`VersionedGraph`]). The first query or [`DeltaIndex::warm`]
    /// populates the pool.
    pub fn new(g: Graph, config: IndexConfig) -> Result<Self, DeltaError> {
        let vg = VersionedGraph::new(g)?;
        Ok(Self::from_versioned(vg, config))
    }

    /// Wraps an existing [`VersionedGraph`] with an empty pool.
    pub fn from_versioned(vg: VersionedGraph, config: IndexConfig) -> Self {
        assert!(config.threads > 0, "need at least one worker");
        assert!(config.chunk_size > 0, "chunks must hold at least one set");
        assert!(
            config.sketch == 0 || config.sentinels == 0,
            "sketch and sentinel tiers are mutually exclusive: truncated \
             sets would poison the count-distinct estimates"
        );
        let n = vg.graph().n();
        DeltaIndex {
            vg,
            config,
            r1: RrCollection::new(n),
            r2: RrCollection::new(n),
            chunks: 0,
            sentinel: None,
            sketch: (config.sketch > 0)
                .then(|| SketchedPool::new(n, config.chunk_size, config.sketch as u8)),
            workers: WorkerPool::new(config.threads),
            metrics: IndexMetrics::default(),
        }
    }

    /// Rebuilds an index from raw parts (pool halves must already be
    /// whole chunks generated against `vg`'s current version).
    pub(crate) fn from_raw_parts(
        vg: VersionedGraph,
        config: IndexConfig,
        r1: RrCollection,
        r2: RrCollection,
        chunks: u64,
        sentinel: Option<SentinelState>,
        sketch: Option<SketchedPool>,
    ) -> Self {
        DeltaIndex {
            vg,
            config,
            r1,
            r2,
            chunks,
            sentinel,
            sketch,
            workers: WorkerPool::new(config.threads),
            metrics: IndexMetrics::default(),
        }
    }

    /// Decomposes into `(vg, config, r1, r2, chunks, sentinel, sketch)`,
    /// dropping workers and metrics — the conversion point into
    /// [`crate::ConcurrentDeltaIndex`].
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_raw_parts(
        self,
    ) -> (
        VersionedGraph,
        IndexConfig,
        RrCollection,
        RrCollection,
        u64,
        Option<SentinelState>,
        Option<SketchedPool>,
    ) {
        (
            self.vg,
            self.config,
            self.r1,
            self.r2,
            self.chunks,
            self.sentinel,
            self.sketch,
        )
    }

    /// The CSR at the current version.
    pub fn graph(&self) -> &Graph {
        self.vg.graph()
    }

    /// The versioned graph.
    pub fn versioned(&self) -> &VersionedGraph {
        &self.vg
    }

    /// The construction-time configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The epoch: deltas applied since construction.
    pub fn version(&self) -> u64 {
        self.vg.version()
    }

    /// Structural fingerprint of the current graph version.
    pub fn fingerprint(&self) -> u64 {
        self.vg.fingerprint()
    }

    /// Sets per pool half.
    pub fn pool_len(&self) -> usize {
        self.r1.len()
    }

    /// The RNG cursor: complete chunks generated per half.
    pub fn chunk_cursor(&self) -> u64 {
        self.chunks
    }

    /// Test-only fault injection: forwards a chunk hook to the worker
    /// pool (see [`subsim_diffusion::WorkerPool::set_chunk_hook`]).
    #[doc(hidden)]
    pub fn set_chunk_hook(&self, hook: Option<subsim_diffusion::ChunkHook>) {
        self.workers.set_chunk_hook(hook);
    }

    /// The selection half `R₁` (read-only).
    pub fn selection_pool(&self) -> &RrCollection {
        &self.r1
    }

    /// The validation half `R₂` (read-only).
    pub fn validation_pool(&self) -> &RrCollection {
        &self.r2
    }

    /// The sentinel tier state, if active.
    pub fn sentinel_state(&self) -> Option<&SentinelState> {
        self.sentinel.as_ref()
    }

    /// The sketched validation pool, if the sketch tier is active.
    pub fn sketch_state(&self) -> Option<&SketchedPool> {
        self.sketch.as_ref()
    }

    /// Serving metrics (queries, generation, repairs).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Pre-grows the pool to at least `sets` per half (whole chunks).
    pub fn warm(&mut self, sets: usize) -> Result<(), DeltaError> {
        let g = self.vg.graph();
        let sampler = RrSampler::new(g, self.config.strategy);
        ensure_pool(
            g,
            &sampler,
            &self.workers,
            &self.config,
            &self.metrics,
            &mut self.r1,
            &mut self.r2,
            &mut self.chunks,
            &mut self.sentinel,
            &mut self.sketch,
            sets,
        )?;
        Ok(())
    }

    /// Answers one certified IM query; semantics match
    /// [`RrIndex::query`] over the current graph version.
    pub fn query(&mut self, k: usize, epsilon: f64, delta: f64) -> Result<QueryAnswer, DeltaError> {
        let g = self.vg.graph();
        let opts = ImOptions::new(k).epsilon(epsilon).delta(delta);
        opts.validate(g).map_err(IndexError::from)?;
        let start = Instant::now();
        let n = g.n();
        let target = 1.0 - (-1.0f64).exp() - epsilon;
        let theta_max = theta_max_opim(n, k, epsilon, delta);
        let theta0 = theta_zero(delta);
        let imax = i_max(theta_max, theta0);
        let delta_iter = delta / (3.0 * imax as f64);

        let sampler = RrSampler::new(g, self.config.strategy);
        let pool_before = self.r1.len();
        let mut fresh = ensure_pool(
            g,
            &sampler,
            &self.workers,
            &self.config,
            &self.metrics,
            &mut self.r1,
            &mut self.r2,
            &mut self.chunks,
            &mut self.sentinel,
            &mut self.sketch,
            theta0 as usize,
        )?;
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            // Sentinel pools re-certify through the HIST-style round so
            // the answer keeps the full (k, ε, δ) guarantee; sketched
            // pools run the slack-adjusted round; plain pools run the
            // standard OPIM round. `slack_failed` is the error-adaptive
            // ladder trigger (sketched pools only).
            let t = Instant::now();
            let (seeds, lower, upper, slack_failed) = if let Some(sk) = &self.sketch {
                let eval = evaluate_pool_sketched(
                    &self.r1,
                    sk,
                    k,
                    delta_iter,
                    delta_iter,
                    self.config.threads,
                );
                let slack = eval.failed_on_slack(target);
                (eval.seeds, eval.lower, eval.upper, slack)
            } else {
                match self.sentinel.as_ref().filter(|st| !st.set.is_empty()) {
                    Some(st) => {
                        let eval = evaluate_pool_sentinel(
                            &self.r1,
                            &self.r2,
                            &st.set,
                            g,
                            k,
                            delta_iter,
                            delta_iter,
                            self.config.threads,
                        );
                        (eval.seeds, eval.lower, eval.upper, false)
                    }
                    None => {
                        let (eval, _) = evaluate_pool_timed_par(
                            &self.r1,
                            &self.r2,
                            k,
                            delta_iter,
                            delta_iter,
                            self.config.threads,
                        );
                        (eval.seeds, eval.lower, eval.upper, false)
                    }
                }
            };
            self.metrics.record_selection(t.elapsed());
            let certified = if upper <= 0.0 {
                false
            } else {
                lower / upper > target
            };
            if certified || self.r1.len() as f64 >= theta_max {
                let stats = QueryStats {
                    k,
                    epsilon,
                    delta,
                    pool_before,
                    pool_after: self.r1.len(),
                    fresh_sets: fresh,
                    rounds,
                    lower_bound: lower,
                    upper_bound: upper,
                    target_ratio: target,
                    certified_by_bounds: certified,
                    elapsed: start.elapsed(),
                };
                self.metrics.record_query(&stats);
                return Ok(QueryAnswer { seeds, stats });
            }
            // Failing on slack means more samples cannot close the gap —
            // promote register precision instead (bounded by
            // MAX_PRECISION; past it, fall through to doubling and let
            // theta_max terminate the loop).
            if slack_failed && self.config.sketch < MAX_PRECISION as usize {
                fresh += promote_sketch(
                    &sampler,
                    &self.workers,
                    &mut self.config,
                    &self.metrics,
                    &mut self.sketch,
                    self.chunks,
                )?;
                continue;
            }
            let next = self
                .r1
                .len()
                .saturating_mul(2)
                .min(theta_max.ceil() as usize);
            fresh += ensure_pool(
                g,
                &sampler,
                &self.workers,
                &self.config,
                &self.metrics,
                &mut self.r1,
                &mut self.r2,
                &mut self.chunks,
                &mut self.sentinel,
                &mut self.sketch,
                next,
            )?;
        }
    }

    /// Applies `delta` to the graph and repairs the pool incrementally.
    ///
    /// With no sentinel tier, both halves come out bit-identical to a
    /// full rebuild of the same chunk range on the new graph version —
    /// so subsequent queries (and their certified bounds) match a fresh
    /// index exactly. With a sentinel tier, truncated chunks whose set
    /// `Z` survived the delta repair with the same exactness; a delta
    /// touching a sentinel endpoint instead re-selects `Z'` over the
    /// repaired plain prefix and regenerates the truncated suffix under
    /// it (`RepairReport::sentinel_refreshed`), keeping the statistical
    /// certification contract without promising bit-equivalence. Either
    /// way the sample accounting is repair-aware: pool sizes are
    /// unchanged (`chunk_cursor` continues from where it was), every
    /// stored set is a valid i.i.d. RR sample of the *new* graph, and
    /// the OPIM certificates re-derive on the next query without
    /// discarding clean samples.
    ///
    /// On error (validation failure, or a worker panic during repair),
    /// neither the graph nor the pool changes: the mutation is staged on
    /// a copy of the versioned graph and committed only after both halves
    /// repaired, so the graph version can never run ahead of the pool.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<RepairReport, DeltaError> {
        let start = Instant::now();
        let mut staged = self.vg.clone();
        staged.apply(delta)?;
        let targets = delta.targets();
        let sampler = RrSampler::new(staged.graph(), self.config.strategy);
        let chunk = self.config.chunk_size;
        let threads = self.config.threads;
        let out = repair_pool(
            &self.r1,
            &self.r2,
            self.sentinel.as_ref(),
            self.sketch.as_ref(),
            self.chunks,
            delta,
            staged.graph(),
            self.config.sentinels,
            &sampler,
            &self.workers,
            chunk,
            self.config.seed,
            threads,
        )?;
        drop(sampler);
        self.vg = staged;
        self.r1 = out.r1;
        self.r2 = out.r2;
        self.sentinel = out.sentinel;
        self.sketch = out.sketch;
        let dirty_chunks = out.dirty_chunks_r1 + out.dirty_chunks_r2;
        let regenerated = dirty_chunks * chunk;
        let report = RepairReport {
            version: self.vg.version(),
            targets: targets.len(),
            dirty_sets_r1: out.dirty_sets_r1,
            dirty_sets_r2: out.dirty_sets_r2,
            dirty_chunks_r1: out.dirty_chunks_r1,
            dirty_chunks_r2: out.dirty_chunks_r2,
            regenerated_sets: regenerated,
            pool_sets: self.r1.len()
                + self
                    .sketch
                    .as_ref()
                    .map_or(self.r2.len(), |sk| sk.len_sets()),
            sentinel_refreshed: out.sentinel_refreshed,
            elapsed: start.elapsed(),
        };
        self.metrics
            .record_repair(regenerated as u64, dirty_chunks as u64, report.elapsed);
        Ok(report)
    }

    /// Writes the pool to the on-disk snapshot format, stamped with the
    /// **current version's** fingerprint — a snapshot taken at version
    /// `t` loads only against the graph at version `t`.
    pub fn save_snapshot<P: AsRef<Path>>(&self, path: P) -> Result<(), DeltaError> {
        let mut idx = match &self.sketch {
            Some(sk) => RrIndex::from_sketched_parts(
                self.vg.graph(),
                self.config,
                self.r1.clone(),
                sk.clone(),
                self.chunks,
            )?,
            None => RrIndex::from_pool_parts(
                self.vg.graph(),
                self.config,
                self.r1.clone(),
                self.r2.clone(),
                self.chunks,
            )?,
        };
        idx.set_sentinel_state(self.sentinel.clone())?;
        idx.save_to_path(path)?;
        Ok(())
    }

    /// Builds an index over version 0 of `g` with the pool loaded from a
    /// snapshot. Fails with a typed
    /// [`IndexError::SnapshotMismatch`] (wrapped in
    /// [`DeltaError::Index`]) when the snapshot was taken at a different
    /// graph version — the fingerprint pins the exact edge set — or was
    /// generated under a different RR strategy than `config` asks for
    /// (an LT pool must never silently serve an IC server, or vice
    /// versa).
    pub fn load_snapshot<P: AsRef<Path>>(
        g: Graph,
        config: IndexConfig,
        path: P,
    ) -> Result<Self, DeltaError> {
        let vg = VersionedGraph::new(g)?;
        let mut loaded = RrIndex::load_from_path(vg.graph(), path)?;
        loaded.ensure_strategy(config.strategy)?;
        let sentinel = loaded.take_sentinel_state();
        let sketch = loaded.take_sketch_state();
        let (loaded_config, r1, r2, chunks) = loaded.into_pool_parts();
        Ok(DeltaIndex {
            vg,
            config: IndexConfig {
                threads: config.threads,
                max_nodes: config.max_nodes,
                ..loaded_config
            },
            r1,
            r2,
            chunks,
            sentinel,
            sketch,
            workers: WorkerPool::new(config.threads),
            metrics: IndexMetrics::default(),
        })
    }
}

/// Grows both halves to at least `target_sets` each, continuing the chunk
/// stream on the graph bound in `sampler` — the split-borrow form of
/// [`RrIndex`]'s `ensure_pool`, shared by `warm` and the query loop.
/// Mirrors the sentinel activation logic exactly: crossing the plain
/// warmup prefix selects `Z` once over the plain chunks generated so
/// far, and every later chunk runs through the Alg 5 stopping wrapper.
#[allow(clippy::too_many_arguments)]
fn ensure_pool(
    g: &Graph,
    sampler: &RrSampler<'_>,
    workers: &WorkerPool,
    config: &IndexConfig,
    metrics: &IndexMetrics,
    r1: &mut RrCollection,
    r2: &mut RrCollection,
    chunks: &mut u64,
    sentinel: &mut Option<SentinelState>,
    sketch: &mut Option<SketchedPool>,
    target_sets: usize,
) -> Result<usize, DeltaError> {
    let chunk = config.chunk_size;
    let needed_chunks = target_sets.div_ceil(chunk) as u64;
    if needed_chunks <= *chunks {
        return Ok(0);
    }
    let slice = (config.threads as u64) * 4;
    let mut added = 0usize;
    while *chunks < needed_chunks {
        if let Some(cap) = config.max_nodes {
            // A sketched R₂ counts its resident bytes in 4-byte
            // node-entry equivalents, keeping the budget unit consistent.
            let in_use = r1.total_nodes()
                + r2.total_nodes()
                + sketch
                    .as_ref()
                    .map_or(0, |sk| sk.resident_bytes() as usize / 4);
            if in_use >= cap {
                return Err(DeltaError::Index(IndexError::MemoryBudget {
                    max_nodes: cap,
                    in_use,
                    wanted_sets: needed_chunks as usize * chunk,
                }));
            }
        }
        if config.sentinels > 0 && sentinel.is_none() && *chunks >= SENTINEL_WARMUP_CHUNKS {
            *sentinel = Some(SentinelState {
                set: SentinelSet::select(&[&*r1], g, config.sentinels),
                from_chunk: *chunks,
                chunk_hits_r1: vec![0; *chunks as usize],
                chunk_hits_r2: vec![0; *chunks as usize],
            });
        }
        let mut end = needed_chunks.min(*chunks + slice);
        if config.sentinels > 0 && sentinel.is_none() {
            // Still inside the warmup prefix: stop this slice at the
            // boundary so the next iteration selects Z before any
            // truncated chunk is generated.
            end = end.min(SENTINEL_WARMUP_CHUNKS.max(*chunks + 1));
        }
        let z = sentinel
            .as_ref()
            .filter(|st| !st.set.is_empty())
            .map(|st| st.set.nodes());
        let truncating = z.is_some();
        let b1 = workers.try_generate_chunks(sampler, z, *chunks..end, chunk, config.seed)?;
        let b2 = workers.try_generate_chunks(
            sampler,
            z,
            *chunks..end,
            chunk,
            config.seed ^ R2_STREAM,
        )?;
        if let Some(st) = sentinel.as_mut() {
            st.chunk_hits_r1.extend_from_slice(&b1.chunk_hits);
            st.chunk_hits_r2.extend_from_slice(&b2.chunk_hits);
        }
        let sets = (b1.rr.len() + b2.rr.len()) as u64;
        let nodes = (b1.rr.total_nodes() + b2.rr.total_nodes()) as u64;
        metrics.record_generation(sets, nodes, b1.cost + b2.cost, b1.elapsed + b2.elapsed);
        if truncating {
            metrics.record_sentinel(b1.sentinel_hits + b2.sentinel_hits, sets, nodes);
        }
        added += b1.rr.len() + b2.rr.len();
        r1.extend_from(&b1.rr);
        if let Some(sk) = sketch.as_mut() {
            sk.absorb_batch(*chunks, &b2.rr);
        } else {
            r2.extend_from(&b2.rr);
        }
        *chunks = end;
    }
    Ok(added)
}

/// Error-adaptive ladder step (the split-borrow form of `RrIndex`'s
/// promotion): regenerates the entire `R₂` chunk stream at the next
/// register precision and swaps the sketch. Chunk content is a pure
/// function of `(seed, chunk id)`, so the rebuilt sketch is exactly what
/// an index configured at the higher precision from the start would
/// hold. Returns the number of regenerated sets.
fn promote_sketch(
    sampler: &RrSampler<'_>,
    workers: &WorkerPool,
    config: &mut IndexConfig,
    metrics: &IndexMetrics,
    sketch: &mut Option<SketchedPool>,
    chunks: u64,
) -> Result<usize, DeltaError> {
    let old = sketch.as_ref().expect("promotion without a sketch");
    let precision = old.precision() + 1;
    assert!(precision <= MAX_PRECISION, "ladder past MAX_PRECISION");
    let chunk = config.chunk_size;
    let mut fresh = SketchedPool::new(old.graph_n(), chunk, precision);
    let slice = (config.threads as u64) * 4;
    let mut start = 0u64;
    let mut regenerated = 0usize;
    while start < chunks {
        let end = chunks.min(start + slice);
        let b = workers.try_generate_chunks(
            sampler,
            None,
            start..end,
            chunk,
            config.seed ^ R2_STREAM,
        )?;
        metrics.record_generation(
            b.rr.len() as u64,
            b.rr.total_nodes() as u64,
            b.cost,
            b.elapsed,
        );
        regenerated += b.rr.len();
        fresh.absorb_batch(start, &b.rr);
        start = end;
    }
    config.sketch = precision as usize;
    *sketch = Some(fresh);
    Ok(regenerated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_diffusion::RrStrategy;
    use subsim_graph::generators::barabasi_albert;
    use subsim_graph::WeightModel;

    fn config() -> IndexConfig {
        IndexConfig::new(RrStrategy::SubsimIc)
            .seed(9)
            .chunk_size(32)
            .threads(2)
    }

    #[test]
    fn queries_match_borrowing_index_before_any_delta() {
        let g = barabasi_albert(250, 3, WeightModel::Wc, 31);
        // Normalize exactly as DeltaIndex will, then compare against the
        // borrowing RrIndex on the normalized graph.
        let vg = VersionedGraph::new(g).unwrap();
        let norm = vg.graph().clone();
        let mut delta_index = DeltaIndex::from_versioned(vg, config());
        let mut plain = subsim_index::RrIndex::new(&norm, config());
        let a = delta_index.query(4, 0.1, 0.01).unwrap();
        let b = plain.query(4, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.stats.lower_bound, b.stats.lower_bound);
        assert_eq!(a.stats.upper_bound, b.stats.upper_bound);
        assert_eq!(delta_index.pool_len(), plain.pool_len());
    }

    #[test]
    fn apply_delta_repairs_to_full_rebuild_equivalence() {
        let g = barabasi_albert(250, 3, WeightModel::Wc, 32);
        let mut index = DeltaIndex::new(g.clone(), config()).unwrap();
        index.warm(400).unwrap();
        let hub = (0..g.n() as u32).max_by_key(|&v| g.in_degree(v)).unwrap();
        let u = (0..g.n() as u32)
            .find(|&u| g.prob_of_edge(u, hub).is_none())
            .expect("some node lacks an edge to the hub");
        let d = GraphDelta::new().insert_edge(u, hub, 0.5);
        let report = index.apply_delta(&d).unwrap();
        assert_eq!(report.version, 1);
        assert!(report.regenerated_sets > 0);

        // Reference: a fresh index over the final graph, grown to the
        // same chunk cursor.
        let mut fresh_vg = VersionedGraph::new(g).unwrap();
        fresh_vg.apply(&d).unwrap();
        let mut fresh = DeltaIndex::from_versioned(fresh_vg, config());
        fresh.warm(index.pool_len()).unwrap();
        assert_eq!(fresh.pool_len(), index.pool_len());
        for i in 0..index.pool_len() {
            assert_eq!(
                index.selection_pool().get(i),
                fresh.selection_pool().get(i),
                "r1 {i}"
            );
            assert_eq!(
                index.validation_pool().get(i),
                fresh.validation_pool().get(i),
                "r2 {i}"
            );
        }
        let a = index.query(4, 0.1, 0.01).unwrap();
        let b = fresh.query(4, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.stats.lower_bound, b.stats.lower_bound);
        assert_eq!(a.stats.upper_bound, b.stats.upper_bound);
        let m = index.metrics();
        assert_eq!(m.deltas_applied, 1);
        assert!(m.sets_repaired > 0);
    }

    fn sentinel_config() -> IndexConfig {
        config().sentinels(2)
    }

    /// A delta whose endpoints avoid the sentinel set `z`.
    fn non_stale_delta(g: &subsim_graph::Graph, z: &[u32]) -> GraphDelta {
        let hub = (0..g.n() as u32)
            .filter(|v| !z.contains(v))
            .max_by_key(|&v| g.in_degree(v))
            .unwrap();
        let u = (0..g.n() as u32)
            .find(|&u| !z.contains(&u) && u != hub && g.prob_of_edge(u, hub).is_none())
            .expect("some non-sentinel node lacks an edge to the hub");
        GraphDelta::new().insert_edge(u, hub, 0.5)
    }

    #[test]
    fn sentinel_warm_matches_borrowing_index() {
        let g = barabasi_albert(250, 3, WeightModel::Wc, 34);
        let vg = VersionedGraph::new(g).unwrap();
        let norm = vg.graph().clone();
        let mut delta_index = DeltaIndex::from_versioned(vg, sentinel_config());
        let mut plain = subsim_index::RrIndex::new(&norm, sentinel_config());
        delta_index.warm(320).unwrap();
        plain.warm(320).unwrap();
        assert_eq!(delta_index.pool_len(), plain.pool_len());
        let a = delta_index.sentinel_state().expect("sentinel active");
        let b = plain.sentinel_state().expect("sentinel active");
        assert_eq!(a.set.nodes(), b.set.nodes());
        assert_eq!(a.from_chunk, b.from_chunk);
        assert_eq!(a.chunk_hits_r1, b.chunk_hits_r1);
        assert_eq!(a.chunk_hits_r2, b.chunk_hits_r2);
        for i in 0..delta_index.pool_len() {
            assert_eq!(
                delta_index.selection_pool().get(i),
                plain.selection_pool().get(i),
                "r1 {i}"
            );
        }
        assert!(delta_index.metrics().truncated_sets_generated > 0);
    }

    #[test]
    fn non_stale_delta_repairs_sentinel_pool_to_fixed_z_rebuild() {
        let g = barabasi_albert(250, 3, WeightModel::Wc, 35);
        let mut index = DeltaIndex::new(g, sentinel_config()).unwrap();
        index.warm(320).unwrap();
        let st = index.sentinel_state().unwrap();
        let z = st.set.nodes().to_vec();
        let from_chunk = st.from_chunk;
        let d = non_stale_delta(index.graph(), &z);
        let report = index.apply_delta(&d).unwrap();
        assert!(!report.sentinel_refreshed);
        assert!(report.regenerated_sets > 0, "delta must dirty something");
        let st = index.sentinel_state().unwrap();
        assert_eq!(st.set.nodes(), z.as_slice(), "Z survives a non-stale delta");
        assert_eq!(st.from_chunk, from_chunk);

        // Reference: regenerate the full chunk range on the new graph
        // with the same (kept) Z — repair must be bit-identical to it.
        let cfg = sentinel_config();
        let sampler = RrSampler::new(index.graph(), cfg.strategy);
        let workers = WorkerPool::new(1);
        let chunks = index.chunk_cursor();
        for (half, seed, hits) in [
            (index.selection_pool(), cfg.seed, &st.chunk_hits_r1),
            (
                index.validation_pool(),
                cfg.seed ^ R2_STREAM,
                &st.chunk_hits_r2,
            ),
        ] {
            let plain =
                workers.generate_chunks(&sampler, None, 0..from_chunk, cfg.chunk_size, seed);
            let trunc = workers.generate_chunks(
                &sampler,
                Some(&z),
                from_chunk..chunks,
                cfg.chunk_size,
                seed,
            );
            let boundary = from_chunk as usize * cfg.chunk_size;
            for i in 0..half.len() {
                let expect = if i < boundary {
                    plain.rr.get(i)
                } else {
                    trunc.rr.get(i - boundary)
                };
                assert_eq!(half.get(i), expect, "set {i}");
            }
            assert_eq!(&hits[from_chunk as usize..], trunc.chunk_hits.as_slice());
            assert!(hits[..from_chunk as usize].iter().all(|&h| h == 0));
        }
        let ans = index.query(3, 0.1, 0.01).unwrap();
        assert!(ans.stats.certified_by_bounds);
    }

    #[test]
    fn stale_delta_refreshes_sentinel_and_keeps_serving() {
        let g = barabasi_albert(250, 3, WeightModel::Wc, 36);
        let mut index = DeltaIndex::new(g, sentinel_config()).unwrap();
        index.warm(320).unwrap();
        let st = index.sentinel_state().unwrap();
        let z = st.set.nodes().to_vec();
        let from_chunk = st.from_chunk;
        let chunks = index.chunk_cursor();
        // Rewire an edge into a sentinel: Z's selection basis is gone.
        let u = (0..index.graph().n() as u32)
            .find(|&u| !z.contains(&u) && index.graph().prob_of_edge(u, z[0]).is_none())
            .unwrap();
        let report = index
            .apply_delta(&GraphDelta::new().insert_edge(u, z[0], 0.9))
            .unwrap();
        assert!(report.sentinel_refreshed);
        // The whole truncated suffix regenerated, in both halves.
        assert!(report.dirty_chunks_r1 >= (chunks - from_chunk) as usize);
        assert!(report.dirty_chunks_r2 >= (chunks - from_chunk) as usize);
        let st = index.sentinel_state().unwrap();
        assert_eq!(st.from_chunk, from_chunk, "boundary survives a refresh");
        assert!(!st.set.is_empty());
        assert_eq!(st.chunk_hits_r1.len(), chunks as usize);
        assert_eq!(st.chunk_hits_r2.len(), chunks as usize);
        assert!(st.chunk_hits_r1[..from_chunk as usize]
            .iter()
            .all(|&h| h == 0));
        assert_eq!(
            index.pool_len(),
            chunks as usize * sentinel_config().chunk_size
        );
        let ans = index.query(3, 0.1, 0.01).unwrap();
        assert!(ans.stats.certified_by_bounds);
    }

    fn sketch_config() -> IndexConfig {
        config().sketch(6)
    }

    #[test]
    fn sketched_warm_and_query_match_borrowing_index() {
        let g = barabasi_albert(250, 3, WeightModel::Wc, 38);
        let vg = VersionedGraph::new(g).unwrap();
        let norm = vg.graph().clone();
        let mut delta_index = DeltaIndex::from_versioned(vg, sketch_config());
        let mut plain = subsim_index::RrIndex::new(&norm, sketch_config());
        delta_index.warm(320).unwrap();
        plain.warm(320).unwrap();
        assert_eq!(delta_index.pool_len(), plain.pool_len());
        assert_eq!(
            delta_index.validation_pool().len(),
            0,
            "sketched R2 stays empty"
        );
        assert_eq!(delta_index.sketch_state(), plain.sketch_state());
        let a = delta_index.query(4, 0.1, 0.01).unwrap();
        let b = plain.query(4, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.stats.lower_bound, b.stats.lower_bound);
        assert_eq!(a.stats.upper_bound, b.stats.upper_bound);
        // Whatever the ladder did, both stacks must agree on it.
        assert_eq!(delta_index.config().sketch, plain.config().sketch);
        assert_eq!(delta_index.sketch_state(), plain.sketch_state());
    }

    #[test]
    fn sketched_delta_repair_matches_fresh_sketched_index() {
        let g = barabasi_albert(250, 3, WeightModel::Wc, 39);
        let mut index = DeltaIndex::new(g.clone(), sketch_config()).unwrap();
        index.warm(400).unwrap();
        let hub = (0..g.n() as u32).max_by_key(|&v| g.in_degree(v)).unwrap();
        let u = (0..g.n() as u32)
            .find(|&u| g.prob_of_edge(u, hub).is_none())
            .expect("some node lacks an edge to the hub");
        let d = GraphDelta::new().insert_edge(u, hub, 0.5);
        let report = index.apply_delta(&d).unwrap();
        assert_eq!(report.version, 1);
        assert!(
            report.dirty_chunks_r2 > 0,
            "hub delta must dirty the sketch"
        );
        assert_eq!(
            report.dirty_sets_r2,
            report.dirty_chunks_r2 * sketch_config().chunk_size,
            "sketched dirtiness is whole chunks"
        );

        let mut fresh_vg = VersionedGraph::new(g).unwrap();
        fresh_vg.apply(&d).unwrap();
        let mut fresh = DeltaIndex::from_versioned(fresh_vg, sketch_config());
        fresh.warm(index.pool_len()).unwrap();
        assert_eq!(fresh.pool_len(), index.pool_len());
        for i in 0..index.pool_len() {
            assert_eq!(
                index.selection_pool().get(i),
                fresh.selection_pool().get(i),
                "r1 {i}"
            );
        }
        assert_eq!(index.sketch_state(), fresh.sketch_state());
        let a = index.query(4, 0.1, 0.01).unwrap();
        let b = fresh.query(4, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.stats.lower_bound, b.stats.lower_bound);
        assert_eq!(a.stats.upper_bound, b.stats.upper_bound);
    }

    #[test]
    fn sketched_snapshot_round_trips() {
        let dir = std::env::temp_dir().join("subsim_delta_sketch_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.subsimix");
        let g = barabasi_albert(200, 3, WeightModel::Wc, 40);
        let mut index = DeltaIndex::new(g.clone(), sketch_config()).unwrap();
        index.warm(320).unwrap();
        index.save_snapshot(&path).unwrap();
        let mut reloaded = DeltaIndex::load_snapshot(g, sketch_config(), &path).unwrap();
        assert_eq!(reloaded.pool_len(), index.pool_len());
        assert_eq!(reloaded.validation_pool().len(), 0);
        assert_eq!(reloaded.sketch_state(), index.sketch_state());
        // The reloaded index continues the identical chunk stream.
        index.warm(640).unwrap();
        reloaded.warm(640).unwrap();
        assert_eq!(reloaded.sketch_state(), index.sketch_state());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sentinel_snapshot_round_trips() {
        let dir = std::env::temp_dir().join("subsim_delta_sentinel_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.subsimix");
        let g = barabasi_albert(200, 3, WeightModel::Wc, 37);
        let mut index = DeltaIndex::new(g.clone(), sentinel_config()).unwrap();
        index.warm(320).unwrap();
        index.save_snapshot(&path).unwrap();
        let reloaded = DeltaIndex::load_snapshot(g, sentinel_config(), &path).unwrap();
        let a = index.sentinel_state().unwrap();
        let b = reloaded.sentinel_state().expect("sentinel state reloaded");
        assert_eq!(a.set.nodes(), b.set.nodes());
        assert_eq!(a.from_chunk, b.from_chunk);
        assert_eq!(a.chunk_hits_r1, b.chunk_hits_r1);
        assert_eq!(a.chunk_hits_r2, b.chunk_hits_r2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_round_trip_and_stale_rejection() {
        let dir = std::env::temp_dir().join("subsim_delta_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.subsimix");
        let g = barabasi_albert(150, 3, WeightModel::Wc, 33);
        let mut index = DeltaIndex::new(g.clone(), config()).unwrap();
        index.warm(200).unwrap();
        index.save_snapshot(&path).unwrap();

        let reloaded = DeltaIndex::load_snapshot(g.clone(), config(), &path).unwrap();
        assert_eq!(reloaded.pool_len(), index.pool_len());
        for i in 0..index.pool_len() {
            assert_eq!(
                reloaded.selection_pool().get(i),
                index.selection_pool().get(i)
            );
        }

        // Mutate, snapshot at version 1, then try loading it against
        // version 0: typed SnapshotMismatch, no panic.
        index
            .apply_delta(&GraphDelta::new().insert_edge(0, 149, 0.5))
            .unwrap();
        index.save_snapshot(&path).unwrap();
        let err = DeltaIndex::load_snapshot(g, config(), &path).unwrap_err();
        assert!(
            matches!(err, DeltaError::Index(IndexError::SnapshotMismatch { .. })),
            "got {err:?}"
        );
        std::fs::remove_file(&path).ok();
    }
}
