//! Byte-identity of the sharded index against the sequential reference.
//!
//! The acceptance property of chunk-ownership sharding: for the same
//! `(seed, script)`, an N-shard [`ShardedDeltaIndex`] must answer every
//! query with exactly the seeds, bounds, and repair reports the
//! sequential [`DeltaIndex`] produces — sharding may only change
//! wall-clock, never output.

use proptest::prelude::*;
use subsim_delta::{DeltaIndex, GraphDelta};
use subsim_diffusion::RrStrategy;
use subsim_graph::generators::barabasi_albert;
use subsim_graph::{Graph, WeightModel};
use subsim_index::IndexConfig;
use subsim_serve::ShardedDeltaIndex;

fn config() -> IndexConfig {
    IndexConfig::new(RrStrategy::SubsimIc)
        .seed(11)
        .chunk_size(32)
        .threads(2)
}

fn graph(n: usize, seed: u64) -> Graph {
    barabasi_albert(n, 3, WeightModel::Wc, seed)
}

/// Lockstep queries and deltas across shard counts: seeds, certified
/// bounds, versions, and repair reports all match the sequential index.
#[test]
fn sharded_matches_sequential_across_shard_counts() {
    let g = graph(250, 41);
    for shards in [1usize, 2, 3, 4, 7] {
        let mut seq = DeltaIndex::new(g.clone(), config()).unwrap();
        let sharded = ShardedDeltaIndex::new(g.clone(), config(), shards).unwrap();
        let deltas = [
            GraphDelta::new().insert_edge(7, 3, 0.6).delete_edge(1, 0),
            GraphDelta::new().reweight_edge(3, 1, 0.42),
        ];
        for (round, delta) in deltas.iter().enumerate() {
            for k in [1usize, 4, 6] {
                let a = seq.query(k, 0.1, 0.01).unwrap();
                let b = sharded.query(k, 0.1, 0.01).unwrap();
                assert_eq!(a.seeds, b.seeds, "shards={shards} round={round} k={k}");
                assert_eq!(
                    a.stats.lower_bound, b.stats.lower_bound,
                    "shards={shards} round={round} k={k}"
                );
                assert_eq!(
                    a.stats.upper_bound, b.stats.upper_bound,
                    "shards={shards} round={round} k={k}"
                );
                assert_eq!(a.stats.pool_after, b.stats.pool_after);
                assert_eq!(a.stats.certified_by_bounds, b.stats.certified_by_bounds);
            }
            let ra = seq.apply_delta(delta).unwrap();
            let rb = sharded.apply_delta(delta).unwrap();
            assert_eq!(ra.version, rb.version, "shards={shards}");
            assert_eq!(ra.dirty_sets_r1, rb.dirty_sets_r1, "shards={shards}");
            assert_eq!(ra.dirty_sets_r2, rb.dirty_sets_r2, "shards={shards}");
            assert_eq!(ra.dirty_chunks_r1, rb.dirty_chunks_r1, "shards={shards}");
            assert_eq!(ra.dirty_chunks_r2, rb.dirty_chunks_r2, "shards={shards}");
            assert_eq!(ra.regenerated_sets, rb.regenerated_sets, "shards={shards}");
        }
        let a = seq.query(5, 0.1, 0.01).unwrap();
        let b = sharded.query(5, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds, "shards={shards} final");
        assert_eq!(seq.version(), sharded.version());
    }
}

/// The union of per-shard pools, reassembled in global chunk order, is
/// the sequential pool bit-for-bit — before and after repair.
#[test]
fn union_pools_are_bit_identical_to_sequential() {
    let g = graph(200, 43);
    let chunk = config().chunk_size;
    for shards in [2usize, 3, 5] {
        let mut seq = DeltaIndex::new(g.clone(), config()).unwrap();
        let sharded = ShardedDeltaIndex::new(g.clone(), config(), shards).unwrap();
        seq.warm(300).unwrap();
        sharded.warm(300).unwrap();
        let check = |seq: &DeltaIndex, sharded: &ShardedDeltaIndex, tag: &str| {
            let snap = sharded.load();
            let (u1, u2) = snap.union_pools(chunk);
            assert_eq!(
                u1.len(),
                seq.selection_pool().len(),
                "{tag} shards={shards}"
            );
            assert_eq!(
                u2.len(),
                seq.validation_pool().len(),
                "{tag} shards={shards}"
            );
            for i in 0..u1.len() {
                assert_eq!(
                    u1.get(i),
                    seq.selection_pool().get(i),
                    "{tag} shards={shards} r1 set {i}"
                );
            }
            for i in 0..u2.len() {
                assert_eq!(
                    u2.get(i),
                    seq.validation_pool().get(i),
                    "{tag} shards={shards} r2 set {i}"
                );
            }
        };
        check(&seq, &sharded, "after warm");
        // Derive ops valid for this graph: insert a missing edge toward
        // the biggest hub, delete an existing edge.
        let hub = (0..g.n() as u32).max_by_key(|&v| g.in_degree(v)).unwrap();
        let u = (0..g.n() as u32)
            .find(|&u| u != hub && g.prob_of_edge(u, hub).is_none())
            .unwrap();
        let (du, dv, _) = g.edges().next().unwrap();
        let delta = GraphDelta::new()
            .insert_edge(u, hub, 0.7)
            .delete_edge(du, dv);
        seq.apply_delta(&delta).unwrap();
        sharded.apply_delta(&delta).unwrap();
        check(&seq, &sharded, "after repair");
    }
}

/// Version pins behave identically: a pinned query at the live version
/// answers, a stale pin fails typed.
#[test]
fn pinned_queries_match_sequential_semantics() {
    let g = graph(150, 45);
    let sharded = ShardedDeltaIndex::new(g.clone(), config(), 3).unwrap();
    sharded.warm(128).unwrap();
    sharded.query_at_version(0, 3, 0.1, 0.01).unwrap();
    sharded
        .apply_delta(&GraphDelta::new().insert_edge(0, 149, 0.5))
        .unwrap();
    let err = sharded.query_at_version(0, 3, 0.1, 0.01).unwrap_err();
    assert!(
        matches!(
            err,
            subsim_delta::DeltaError::StaleVersion {
                requested: 0,
                current: 1
            }
        ),
        "got {err:?}"
    );
    sharded.query_at_version(1, 3, 0.1, 0.01).unwrap();
}

/// Randomized scripts of interleaved queries and deltas stay in
/// lockstep with the sequential index for every shard count.
#[derive(Debug, Clone)]
enum Step {
    Query { k: usize, epsilon_centi: u8 },
    Insert { u: u32, v: u32, p_centi: u8 },
    Delete { u: u32, v: u32 },
}

fn step_strategy(n: u32) -> impl Strategy<Value = Step> {
    // The vendored proptest shim has no weighted arms; repeating the
    // query arm biases scripts toward queries.
    let query =
        || (1usize..5, 10u8..40).prop_map(|(k, epsilon_centi)| Step::Query { k, epsilon_centi });
    prop_oneof![
        query(),
        query(),
        query(),
        (0..n, 0..n, 5u8..95).prop_map(|(u, v, p_centi)| Step::Insert { u, v, p_centi }),
        (0..n, 0..n).prop_map(|(u, v)| Step::Delete { u, v }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_scripts_stay_in_lockstep(
        script in proptest::collection::vec(step_strategy(80), 1..8),
        shards in 1usize..5,
        graph_seed in 0u64..4,
    ) {
        let g = graph(80, 100 + graph_seed);
        let mut seq = DeltaIndex::new(g.clone(), config()).unwrap();
        let sharded = ShardedDeltaIndex::new(g.clone(), config(), shards).unwrap();
        for step in &script {
            match step {
                Step::Query { k, epsilon_centi } => {
                    let epsilon = *epsilon_centi as f64 / 100.0;
                    let a = seq.query(*k, epsilon, 0.05).unwrap();
                    let b = sharded.query(*k, epsilon, 0.05).unwrap();
                    prop_assert_eq!(&a.seeds, &b.seeds);
                    prop_assert_eq!(a.stats.lower_bound, b.stats.lower_bound);
                    prop_assert_eq!(a.stats.upper_bound, b.stats.upper_bound);
                    prop_assert_eq!(a.stats.pool_after, b.stats.pool_after);
                }
                Step::Insert { u, v, p_centi } => {
                    if u == v {
                        continue;
                    }
                    let p = *p_centi as f64 / 100.0;
                    let d = GraphDelta::new().insert_edge(*u, *v, p);
                    let a = seq.apply_delta(&d);
                    let b = sharded.apply_delta(&d);
                    match (a, b) {
                        (Ok(ra), Ok(rb)) => {
                            prop_assert_eq!(ra.regenerated_sets, rb.regenerated_sets);
                            prop_assert_eq!(ra.version, rb.version);
                        }
                        (Err(_), Err(_)) => {}
                        (a, b) => prop_assert!(false, "divergent delta outcome: {:?} vs {:?}", a, b),
                    }
                }
                Step::Delete { u, v } => {
                    let d = GraphDelta::new().delete_edge(*u, *v);
                    let a = seq.apply_delta(&d);
                    let b = sharded.apply_delta(&d);
                    match (a, b) {
                        (Ok(ra), Ok(rb)) => {
                            prop_assert_eq!(ra.regenerated_sets, rb.regenerated_sets);
                            prop_assert_eq!(ra.version, rb.version);
                        }
                        (Err(_), Err(_)) => {}
                        (a, b) => prop_assert!(false, "divergent delta outcome: {:?} vs {:?}", a, b),
                    }
                }
            }
        }
        prop_assert_eq!(seq.version(), sharded.version());
    }
}

// ---------------------------------------------------------------------------
// Sentinel tier: the statistical serving path stays in lockstep too.
// ---------------------------------------------------------------------------

fn sentinel_config() -> IndexConfig {
    config().sentinels(2)
}

fn assert_sentinel_eq(a: &subsim_index::SentinelState, b: &subsim_index::SentinelState, tag: &str) {
    assert_eq!(a.set.nodes(), b.set.nodes(), "{tag}: sentinel nodes");
    assert_eq!(a.from_chunk, b.from_chunk, "{tag}: from_chunk");
    assert_eq!(a.chunk_hits_r1, b.chunk_hits_r1, "{tag}: r1 hit counters");
    assert_eq!(a.chunk_hits_r2, b.chunk_hits_r2, "{tag}: r2 hit counters");
}

fn assert_pools_eq(seq: &DeltaIndex, sharded: &ShardedDeltaIndex, tag: &str) {
    let snap = sharded.load();
    let (u1, u2) = snap.union_pools(seq.config().chunk_size);
    assert_eq!(u1.len(), seq.selection_pool().len(), "{tag}: r1 len");
    assert_eq!(u2.len(), seq.validation_pool().len(), "{tag}: r2 len");
    for i in 0..u1.len() {
        assert_eq!(u1.get(i), seq.selection_pool().get(i), "{tag}: r1 set {i}");
    }
    for i in 0..u2.len() {
        assert_eq!(u2.get(i), seq.validation_pool().get(i), "{tag}: r2 set {i}");
    }
}

/// With sentinels enabled, warm pools, sentinel state (set, boundary,
/// per-chunk hit counters), non-stale repairs, and stale refreshes are
/// all byte-identical between the sharded index and the sequential
/// reference — the statistical tier does not break shard determinism.
#[test]
fn sentinel_sharded_matches_sequential_across_deltas() {
    let g = graph(250, 47);
    for shards in [2usize, 3] {
        let mut seq = DeltaIndex::new(g.clone(), sentinel_config()).unwrap();
        let sharded = ShardedDeltaIndex::new(g.clone(), sentinel_config(), shards).unwrap();
        seq.warm(320).unwrap();
        sharded.warm(320).unwrap();

        let snap = sharded.load();
        let st_seq = seq.sentinel_state().expect("sequential sentinel active");
        let st_sh = snap.sentinel_state().expect("sharded sentinel active");
        assert_sentinel_eq(st_seq, st_sh, "after warm");
        assert!(!st_seq.set.is_empty());
        let z: Vec<u32> = st_seq.set.nodes().to_vec();
        drop(snap);
        assert_pools_eq(&seq, &sharded, "after warm");

        let a = seq.query(4, 0.1, 0.01).unwrap();
        let b = sharded.query(4, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds, "shards={shards} warm query");
        assert_eq!(a.stats.lower_bound, b.stats.lower_bound);
        assert_eq!(a.stats.upper_bound, b.stats.upper_bound);

        // Non-stale delta: endpoints chosen away from the sentinel set.
        let (u, v) = (0..g.n() as u32)
            .flat_map(|u| (0..g.n() as u32).map(move |v| (u, v)))
            .find(|&(u, v)| {
                u != v && !z.contains(&u) && !z.contains(&v) && g.prob_of_edge(u, v).is_none()
            })
            .expect("a missing non-sentinel edge exists");
        let ra = seq
            .apply_delta(&GraphDelta::new().insert_edge(u, v, 0.55))
            .unwrap();
        let rb = sharded
            .apply_delta(&GraphDelta::new().insert_edge(u, v, 0.55))
            .unwrap();
        assert!(!ra.sentinel_refreshed, "Z untouched must not refresh");
        assert!(!rb.sentinel_refreshed, "Z untouched must not refresh");
        assert_eq!(ra.dirty_chunks_r1, rb.dirty_chunks_r1, "shards={shards}");
        assert_eq!(ra.dirty_chunks_r2, rb.dirty_chunks_r2, "shards={shards}");
        assert_sentinel_eq(
            seq.sentinel_state().unwrap(),
            sharded.load().sentinel_state().unwrap(),
            "after non-stale delta",
        );
        assert_pools_eq(&seq, &sharded, "after non-stale delta");
        let a = seq.query(4, 0.1, 0.01).unwrap();
        let b = sharded.query(4, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds, "shards={shards} non-stale query");

        // Stale delta: an edge into a sentinel forces a refresh.
        let w = (0..g.n() as u32)
            .find(|&w| w != z[0] && w != u && g.prob_of_edge(w, z[0]).is_none())
            .expect("a missing edge into the sentinel exists");
        let ra = seq
            .apply_delta(&GraphDelta::new().insert_edge(w, z[0], 0.7))
            .unwrap();
        let rb = sharded
            .apply_delta(&GraphDelta::new().insert_edge(w, z[0], 0.7))
            .unwrap();
        assert!(ra.sentinel_refreshed, "sentinel edge must refresh Z");
        assert!(rb.sentinel_refreshed, "sentinel edge must refresh Z");
        assert_eq!(ra.dirty_chunks_r1, rb.dirty_chunks_r1, "shards={shards}");
        assert_eq!(ra.dirty_chunks_r2, rb.dirty_chunks_r2, "shards={shards}");
        assert_sentinel_eq(
            seq.sentinel_state().unwrap(),
            sharded.load().sentinel_state().unwrap(),
            "after stale delta",
        );
        assert_pools_eq(&seq, &sharded, "after stale delta");
        let a = seq.query(4, 0.1, 0.01).unwrap();
        let b = sharded.query(4, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds, "shards={shards} post-refresh query");
        assert_eq!(a.stats.lower_bound, b.stats.lower_bound);
        assert_eq!(a.stats.upper_bound, b.stats.upper_bound);
        assert_eq!(seq.version(), sharded.version());
    }
}

// ---------------------------------------------------------------------------
// Sketch tier: memory-bounded validation stays in lockstep too.
// ---------------------------------------------------------------------------

fn sketch_config() -> IndexConfig {
    config().sketch(6)
}

/// With the sketched validation tier enabled, warm pools, per-shard
/// sketch merges, repairs, and error-ladder promotions are all in
/// lockstep with the sequential reference: every N-shard answer is
/// byte-identical, and the merged union sketch equals the sequential
/// sketch register-for-register.
#[test]
fn sketched_sharded_matches_sequential_across_deltas() {
    let g = graph(250, 59);
    for shards in [1usize, 2, 3, 5] {
        let mut seq = DeltaIndex::new(g.clone(), sketch_config()).unwrap();
        let sharded = ShardedDeltaIndex::new(g.clone(), sketch_config(), shards).unwrap();
        seq.warm(320).unwrap();
        sharded.warm(320).unwrap();

        let assert_sketch_eq = |seq: &DeltaIndex, sharded: &ShardedDeltaIndex, tag: &str| {
            let snap = sharded.load();
            let union = snap.union_sketch().expect("sharded sketch active");
            let reference = seq.sketch_state().expect("sequential sketch active");
            assert_eq!(&union, reference, "{tag} shards={shards}: union sketch");
            let per_shard_sets: usize = (0..shards)
                .map(|s| snap.shard(s).sketch_state().map_or(0, |sk| sk.len_sets()))
                .sum();
            assert_eq!(
                per_shard_sets,
                reference.len_sets(),
                "{tag} shards={shards}: sketch set partition"
            );
        };
        assert_sketch_eq(&seq, &sharded, "after warm");

        let deltas = [
            GraphDelta::new().insert_edge(7, 3, 0.6).delete_edge(1, 0),
            GraphDelta::new().reweight_edge(3, 1, 0.42),
        ];
        for (round, delta) in deltas.iter().enumerate() {
            for k in [1usize, 4, 6] {
                let a = seq.query(k, 0.1, 0.01).unwrap();
                let b = sharded.query(k, 0.1, 0.01).unwrap();
                assert_eq!(a.seeds, b.seeds, "shards={shards} round={round} k={k}");
                assert_eq!(
                    a.stats.lower_bound, b.stats.lower_bound,
                    "shards={shards} round={round} k={k}"
                );
                assert_eq!(
                    a.stats.upper_bound, b.stats.upper_bound,
                    "shards={shards} round={round} k={k}"
                );
                assert_eq!(a.stats.pool_after, b.stats.pool_after);
                assert_eq!(a.stats.certified_by_bounds, b.stats.certified_by_bounds);
                // Any error-ladder promotion must have happened (or not)
                // identically on both sides.
                assert_sketch_eq(&seq, &sharded, "after query");
            }
            let ra = seq.apply_delta(delta).unwrap();
            let rb = sharded.apply_delta(delta).unwrap();
            assert_eq!(ra.version, rb.version, "shards={shards}");
            assert_eq!(ra.dirty_sets_r1, rb.dirty_sets_r1, "shards={shards}");
            assert_eq!(ra.dirty_sets_r2, rb.dirty_sets_r2, "shards={shards}");
            assert_eq!(ra.dirty_chunks_r1, rb.dirty_chunks_r1, "shards={shards}");
            assert_eq!(ra.dirty_chunks_r2, rb.dirty_chunks_r2, "shards={shards}");
            assert_eq!(ra.regenerated_sets, rb.regenerated_sets, "shards={shards}");
            assert_sketch_eq(&seq, &sharded, "after delta");
        }
        let a = seq.query(5, 0.1, 0.01).unwrap();
        let b = sharded.query(5, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds, "shards={shards} final");
        assert_eq!(seq.version(), sharded.version());
    }
}

/// Sketched sharded snapshots round-trip through the single-index v4
/// format: reload at a different shard count, or into the sequential
/// [`DeltaIndex`], with the re-split sketches serving identical answers.
#[test]
fn sketched_sharded_snapshot_round_trips_across_layouts() {
    let dir = std::env::temp_dir().join("subsim_serve_sketch_snapshot_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pool.subsimix");
    let g = graph(200, 61);
    let sharded = ShardedDeltaIndex::new(g.clone(), sketch_config(), 3).unwrap();
    sharded.warm(320).unwrap();
    let want = sharded.query(4, 0.1, 0.01).unwrap();
    sharded.save_snapshot(&path).unwrap();
    let union = sharded.load().union_sketch().expect("sketch active");

    for shards in [1usize, 2, 4] {
        let resharded =
            ShardedDeltaIndex::load_snapshot(g.clone(), sketch_config(), shards, &path).unwrap();
        assert_eq!(
            resharded.load().union_sketch().as_ref(),
            Some(&union),
            "reshard 3 -> {shards}: sketch"
        );
        let got = resharded.query(4, 0.1, 0.01).unwrap();
        assert_eq!(want.seeds, got.seeds, "reshard 3 -> {shards}: seeds");
        assert_eq!(want.stats.lower_bound, got.stats.lower_bound);
        assert_eq!(want.stats.upper_bound, got.stats.upper_bound);
    }

    let mut seq = DeltaIndex::load_snapshot(g, sketch_config(), &path).unwrap();
    assert_eq!(
        seq.sketch_state(),
        Some(&union),
        "shard -> sequential: sketch"
    );
    let got = seq.query(4, 0.1, 0.01).unwrap();
    assert_eq!(want.seeds, got.seeds, "sequential reload diverges");
    std::fs::remove_file(&path).ok();
}

/// Sharded snapshots round-trip through the single-index format with the
/// sentinel block intact: reload at a different shard count, or into the
/// sequential [`DeltaIndex`], and serve identical answers.
#[test]
fn sharded_sentinel_snapshot_round_trips_across_layouts() {
    let dir = std::env::temp_dir().join("subsim_serve_sentinel_snapshot_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pool.subsimix");
    let g = graph(200, 53);
    let sharded = ShardedDeltaIndex::new(g.clone(), sentinel_config(), 3).unwrap();
    sharded.warm(320).unwrap();
    let want = sharded.query(4, 0.1, 0.01).unwrap();
    sharded.save_snapshot(&path).unwrap();
    let snap = sharded.load();
    let st = snap.sentinel_state().expect("sentinel active");

    let resharded =
        ShardedDeltaIndex::load_snapshot(g.clone(), sentinel_config(), 2, &path).unwrap();
    assert_sentinel_eq(
        st,
        resharded.load().sentinel_state().unwrap(),
        "reshard 3 -> 2",
    );
    let got = resharded.query(4, 0.1, 0.01).unwrap();
    assert_eq!(want.seeds, got.seeds, "resharded answers diverge");
    assert_eq!(want.stats.lower_bound, got.stats.lower_bound);
    assert_eq!(want.stats.upper_bound, got.stats.upper_bound);

    let mut seq = DeltaIndex::load_snapshot(g, sentinel_config(), &path).unwrap();
    assert_sentinel_eq(st, seq.sentinel_state().unwrap(), "shard -> sequential");
    let got = seq.query(4, 0.1, 0.01).unwrap();
    assert_eq!(want.seeds, got.seeds, "sequential reload diverges");
    std::fs::remove_file(&path).ok();
}

fn lt_config() -> IndexConfig {
    IndexConfig::new(RrStrategy::Lt)
        .seed(11)
        .chunk_size(32)
        .threads(2)
}

/// An LT pool snapshot round-trips through shard counts with identical
/// answers — and an IC-configured sharded server refuses it with a
/// typed mismatch instead of silently serving the wrong diffusion model.
#[test]
fn lt_sharded_snapshot_round_trips_and_refuses_ic_servers() {
    let dir = std::env::temp_dir().join("subsim_serve_lt_snapshot_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pool.subsimix");
    let g = graph(200, 71);
    let sharded = ShardedDeltaIndex::new(g.clone(), lt_config(), 3).unwrap();
    sharded.warm(320).unwrap();
    let want = sharded.query(4, 0.1, 0.01).unwrap();
    sharded.save_snapshot(&path).unwrap();

    for shards in [1usize, 2, 4] {
        let resharded =
            ShardedDeltaIndex::load_snapshot(g.clone(), lt_config(), shards, &path).unwrap();
        let got = resharded.query(4, 0.1, 0.01).unwrap();
        assert_eq!(want.seeds, got.seeds, "reshard 3 -> {shards}: seeds");
        assert_eq!(want.stats.lower_bound, got.stats.lower_bound);
        assert_eq!(want.stats.upper_bound, got.stats.upper_bound);
    }

    let mut seq = DeltaIndex::load_snapshot(g.clone(), lt_config(), &path).unwrap();
    let got = seq.query(4, 0.1, 0.01).unwrap();
    assert_eq!(want.seeds, got.seeds, "sequential reload diverges");

    let err = ShardedDeltaIndex::load_snapshot(g, config(), 2, &path).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("snapshot rejected"), "{msg}");
    assert!(msg.contains("Lt") && msg.contains("SubsimIc"), "{msg}");
    std::fs::remove_file(&path).ok();
}
