//! End-to-end tests of the framed multi-connection server over real
//! unix sockets: concurrent clients with in-order replies, typed frame
//! faults that stay per-connection, the per-connection delta barrier,
//! tenant accounting, and stale-socket handling.

use std::io::{Read, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use subsim_delta::NullSink;
use subsim_diffusion::RrStrategy;
use subsim_graph::generators::barabasi_albert;
use subsim_graph::{Graph, WeightModel};
use subsim_index::{IndexConfig, TenantMetrics};
use subsim_serve::{encode_frame, serve_framed, Listener, ServerConfig, ShardedDeltaIndex};

fn config() -> IndexConfig {
    IndexConfig::new(RrStrategy::SubsimIc)
        .seed(11)
        .chunk_size(32)
        .threads(2)
}

fn graph() -> Graph {
    barabasi_albert(120, 3, WeightModel::Wc, 41)
}

fn sock_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("subsim-serve-{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn send_line(stream: &mut UnixStream, line: &str) {
    let mut buf = Vec::new();
    encode_frame(line, &mut buf);
    stream.write_all(&buf).unwrap();
}

fn read_reply(stream: &mut UnixStream) -> String {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).unwrap();
    let len = u32::from_be_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).unwrap();
    String::from_utf8(payload).unwrap()
}

fn connect(path: &Path) -> UnixStream {
    // The server thread may not have bound yet; retry briefly.
    for _ in 0..200 {
        if let Ok(s) = UnixStream::connect(path) {
            return s;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    panic!("could not connect to {}", path.display());
}

/// Eight concurrent clients pipeline distinct query batches; every
/// client sees its own replies, in its own send order, matching a
/// direct query against an identical index.
#[test]
fn socket_smoke_eight_concurrent_clients_in_order() {
    let g = graph();
    let index = ShardedDeltaIndex::new(g.clone(), config(), 2).unwrap();
    let reference = ShardedDeltaIndex::new(g, config(), 2).unwrap();
    let path = sock_path("smoke");
    let tenants = TenantMetrics::new();
    let server_cfg = ServerConfig {
        workers: 3,
        delta: 0.01,
        ..ServerConfig::default()
    };

    // Expected reply per k, computed against an identical index.
    let ks = [1usize, 2, 3, 4];
    let expected: Vec<String> = ks
        .iter()
        .map(|&k| {
            let ans = reference.query(k, 0.2, 0.01).unwrap();
            ans.seeds
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();

    let report = std::thread::scope(|scope| {
        let (listener, guard) = Listener::bind_unix(&path).unwrap();
        let index = &index;
        let tenants = &tenants;
        let server_cfg = &server_cfg;
        let server = scope.spawn(move || {
            let report = serve_framed(index, vec![listener], server_cfg, tenants, &NullSink);
            drop(guard);
            report
        });
        let mut clients = Vec::new();
        for c in 0..8 {
            let path = &path;
            let expected = &expected;
            clients.push(scope.spawn(move || {
                let mut stream = connect(path);
                // Pipeline all queries before reading any reply.
                for (i, &k) in ks.iter().enumerate() {
                    let _ = (c, i);
                    send_line(&mut stream, &format!("{k} 0.2"));
                }
                for want in expected {
                    assert_eq!(&read_reply(&mut stream), want);
                }
            }));
        }
        for client in clients {
            client.join().unwrap();
        }
        let mut stream = connect(&path);
        send_line(&mut stream, "shutdown");
        assert_eq!(read_reply(&mut stream), "ok shutdown");
        server.join().unwrap().unwrap()
    });
    assert!(report.shutdown);
    assert_eq!(report.connections, 9);
    assert!(!path.exists(), "socket removed on graceful shutdown");
}

/// Frame violations produce typed per-connection errors and never
/// disturb other connections.
#[test]
fn frame_faults_are_typed_and_isolated() {
    let g = graph();
    let index = ShardedDeltaIndex::new(g, config(), 2).unwrap();
    let path = sock_path("faults");
    let tenants = TenantMetrics::new();
    let server_cfg = ServerConfig {
        max_frame: 32,
        ..ServerConfig::default()
    };

    std::thread::scope(|scope| {
        let (listener, guard) = Listener::bind_unix(&path).unwrap();
        let index = &index;
        let tenants = &tenants;
        let server_cfg = &server_cfg;
        let server = scope.spawn(move || {
            let report = serve_framed(index, vec![listener], server_cfg, tenants, &NullSink);
            drop(guard);
            report
        });

        // Victim connection: oversized frame, bad UTF-8, then a valid
        // query — each fault answered typed, the query still answered.
        let mut bad = connect(&path);
        let oversized = "x".repeat(64);
        send_line(&mut bad, &oversized);
        bad.write_all(&[0, 0, 0, 2, 0xff, 0xfe]).unwrap();
        send_line(&mut bad, "2 0.2");
        assert_eq!(
            read_reply(&mut bad),
            "err oversized frame: 64 bytes exceeds cap 32"
        );
        assert_eq!(read_reply(&mut bad), "err frame payload is not valid UTF-8");
        let seeds = read_reply(&mut bad);
        assert!(!seeds.starts_with("err"), "query still answers: {seeds}");

        // A second connection is untouched throughout.
        let mut good = connect(&path);
        send_line(&mut good, "2 0.2");
        assert_eq!(read_reply(&mut good), seeds);

        // Truncation: half a frame then write-side close. The typed
        // error still arrives on the read side.
        let mut trunc = connect(&path);
        trunc.write_all(&[0, 0, 0, 9, b'x']).unwrap();
        trunc.shutdown(Shutdown::Write).unwrap();
        assert_eq!(
            read_reply(&mut trunc),
            "err truncated frame: stream ended 8 bytes early"
        );

        // Malformed lines are typed errors too, not disconnects.
        send_line(&mut good, "not a query");
        let reply = read_reply(&mut good);
        assert!(reply.starts_with("err malformed line:"), "{reply}");

        send_line(&mut good, "shutdown");
        assert_eq!(read_reply(&mut good), "ok shutdown");
        let report = server.join().unwrap().unwrap();
        assert!(report.shutdown);
    });
}

/// A `delta` frame fences its connection: earlier queries answer first,
/// later queries run on the repaired snapshot, replies stay in order.
#[test]
fn delta_barrier_keeps_per_connection_order() {
    let g = graph();
    let index = ShardedDeltaIndex::new(g.clone(), config(), 3).unwrap();
    let path = sock_path("barrier");
    let tenants = TenantMetrics::new();
    let server_cfg = ServerConfig::default();

    // A fresh edge to insert.
    let hub = (0..g.n() as u32).max_by_key(|&v| g.in_degree(v)).unwrap();
    let u = (0..g.n() as u32)
        .find(|&u| u != hub && g.prob_of_edge(u, hub).is_none())
        .unwrap();

    std::thread::scope(|scope| {
        let (listener, guard) = Listener::bind_unix(&path).unwrap();
        let index = &index;
        let tenants = &tenants;
        let server_cfg = &server_cfg;
        let server = scope.spawn(move || {
            let report = serve_framed(index, vec![listener], server_cfg, tenants, &NullSink);
            drop(guard);
            report
        });
        let mut stream = connect(&path);
        // Pipeline: queries, a delta, a pinned query at the new version,
        // a stale pinned query — all before reading anything.
        send_line(&mut stream, "2 0.2");
        send_line(&mut stream, "3 0.2");
        send_line(&mut stream, &format!("delta + {u} {hub} 0.7"));
        send_line(&mut stream, "2 0.2 @1");
        send_line(&mut stream, "2 0.2 @0");
        let first = read_reply(&mut stream);
        let second = read_reply(&mut stream);
        assert!(!first.starts_with("err"), "{first}");
        assert!(!second.starts_with("err"), "{second}");
        assert_eq!(read_reply(&mut stream), "ok delta v1");
        let pinned = read_reply(&mut stream);
        assert!(!pinned.starts_with("err"), "pin at live version: {pinned}");
        let stale = read_reply(&mut stream);
        assert!(
            stale.starts_with("err stale version"),
            "stale pin is typed: {stale}"
        );
        send_line(&mut stream, "shutdown");
        assert_eq!(read_reply(&mut stream), "ok shutdown");
        server.join().unwrap().unwrap();
    });
    assert_eq!(index.version(), 1);
}

/// `tenant` frames re-tag the connection; counters land on the named
/// tenant.
#[test]
fn tenant_frames_route_counters() {
    let g = graph();
    let index = ShardedDeltaIndex::new(g, config(), 2).unwrap();
    let path = sock_path("tenant");
    let tenants = TenantMetrics::new();
    let server_cfg = ServerConfig::default();

    std::thread::scope(|scope| {
        let (listener, guard) = Listener::bind_unix(&path).unwrap();
        let index = &index;
        let tenants_ref = &tenants;
        let server_cfg = &server_cfg;
        let server = scope.spawn(move || {
            let report = serve_framed(index, vec![listener], server_cfg, tenants_ref, &NullSink);
            drop(guard);
            report
        });
        let mut stream = connect(&path);
        send_line(&mut stream, "tenant acme");
        send_line(&mut stream, "2 0.2");
        send_line(&mut stream, "bogus");
        assert_eq!(read_reply(&mut stream), "ok tenant acme");
        assert!(!read_reply(&mut stream).starts_with("err"));
        assert!(read_reply(&mut stream).starts_with("err malformed"));
        send_line(&mut stream, "shutdown");
        assert_eq!(read_reply(&mut stream), "ok shutdown");
        server.join().unwrap().unwrap();
    });
    let acme = tenants.tenant("acme");
    assert_eq!(acme.queries.load(Ordering::Relaxed), 1);
    assert_eq!(acme.answered.load(Ordering::Relaxed), 1);
    assert_eq!(acme.failed.load(Ordering::Relaxed), 1);
    assert!(acme.bytes_out.load(Ordering::Relaxed) > 0);
}

/// Startup unlinks a stale socket left by a dead server, but refuses to
/// unlink a path that is not a socket.
#[test]
fn stale_socket_is_unlinked_but_regular_files_are_refused() {
    let path = sock_path("stale");
    // Simulate a crashed server: bind, then drop the listener without
    // removing the path.
    {
        let l = std::os::unix::net::UnixListener::bind(&path).unwrap();
        drop(l);
    }
    assert!(path.exists(), "stale socket file left behind");
    let (listener, guard) = Listener::bind_unix(&path).unwrap();
    drop(listener);
    drop(guard);
    assert!(!path.exists(), "guard removed the socket");

    // A regular file at the path is refused, not deleted.
    std::fs::write(&path, b"precious").unwrap();
    let err = Listener::bind_unix(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    assert_eq!(std::fs::read(&path).unwrap(), b"precious");
    std::fs::remove_file(&path).unwrap();
}
