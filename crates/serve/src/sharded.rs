//! Chunk-ownership sharding of the RR pool with merged selection.
//!
//! # Shard layout
//!
//! The union pool is the familiar deterministic chunk stream: chunk `c`
//! is always generated from `chunk_seed(seed, c)` (and `seed ^ R2_STREAM`
//! for the validation half). Shard `s` of `N` **owns** exactly the chunks
//! `{c : c % N == s}` and stores them in ascending chunk order, so the
//! multiset union of the shards' sets equals the single-shard pool at the
//! same chunk cursor, set for set. Nothing about pool *content* depends
//! on the shard count — only which arena a chunk lands in.
//!
//! Each shard owns its arena (the two [`RrCollection`] halves), its
//! inverted coverage index over the selection half (built once per
//! publish, reused by every query and by delta-repair dirtiness
//! detection), and its generation workers. The full serving state — all
//! shard snapshots plus the graph at one version — is published as one
//! immutable [`ShardedSnapshot`] behind an `RwLock<Arc<_>>`, so a reader
//! can never observe shards at mixed versions: a delta's version bump
//! replaces the whole snapshot atomically, which is the cross-shard
//! barrier.
//!
//! # Merged selection
//!
//! Queries run the OPIM-C certification loop of
//! [`subsim_delta::DeltaIndex`] verbatim, but the per-round evaluation is
//! [`subsim_core::pool::evaluate_pool_sharded_indexed`]: per-shard
//! coverage counts are summed into one global count vector, the greedy
//! loop picks on the summed counts (identical heap keys, identical
//! tie-breaks), and the Eq 1/Eq 2 certificate is evaluated on the union
//! lengths. The answer — seeds, bounds, certification — is therefore
//! **byte-identical** to the sequential `DeltaIndex` at every shard
//! count, which the testkit simulator and a differential proptest
//! enforce.

use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;
use subsim_core::bounds::{i_max, theta_max_opim, theta_zero};
use subsim_core::pool::evaluate_pool_sharded_indexed;
use subsim_core::sentinel::{evaluate_pool_sentinel_sharded, SentinelSet};
use subsim_core::ImOptions;
use subsim_delta::{
    repair_half_indexed, repair_half_mapped, repair_sketch, DeltaError, GraphDelta, RepairReport,
    ServeError, ServeIndex, VersionedGraph,
};
use subsim_diffusion::pool::{PoolError, WorkerPool};
use subsim_diffusion::{InvertedIndex, RrCollection, RrSampler};
use subsim_graph::{Graph, NodeId};
use subsim_index::{
    IndexConfig, IndexError, IndexMetrics, MetricsSnapshot, QueryAnswer, QueryStats, RrIndex,
    SentinelState, R2_STREAM, SENTINEL_WARMUP_CHUNKS,
};
use subsim_sketch::{evaluate_pool_sketched_sharded, SketchedPool, MAX_PRECISION};

/// One shard's regenerated `R₂` chunk stream during a precision
/// promotion: the owned global chunk ids plus the fresh generation
/// batch (`None` for shards that own no chunks yet).
type ShardRegen = Result<(Vec<u64>, subsim_diffusion::ParBatch), PoolError>;

/// One shard's published arena: the owned chunks of both halves plus the
/// cached inverted coverage index over the selection half.
#[derive(Debug)]
pub struct ShardSnapshot {
    r1: RrCollection,
    r2: RrCollection,
    idx1: InvertedIndex,
    /// Sketched validation tier: the shard's owned chunks compressed
    /// into count-distinct sketches keyed by **global** chunk id. When
    /// active, `r2` stays empty.
    sketch: Option<SketchedPool>,
}

impl ShardSnapshot {
    fn new(r1: RrCollection, r2: RrCollection, sketch: Option<SketchedPool>) -> Self {
        let idx1 = InvertedIndex::build(&r1);
        ShardSnapshot {
            r1,
            r2,
            idx1,
            sketch,
        }
    }

    /// The shard's slice of the selection half `R₁`.
    pub fn selection_pool(&self) -> &RrCollection {
        &self.r1
    }

    /// The shard's slice of the validation half `R₂`.
    pub fn validation_pool(&self) -> &RrCollection {
        &self.r2
    }

    /// The shard's sketched validation pool, if the sketch tier is
    /// active.
    pub fn sketch_state(&self) -> Option<&SketchedPool> {
        self.sketch.as_ref()
    }
}

/// The complete published serving state: the graph at one version and
/// every shard's arena generated (or repaired) against exactly that
/// version. Published as a whole, so shard views never tear across a
/// delta.
#[derive(Debug)]
pub struct ShardedSnapshot {
    graph: Arc<Graph>,
    version: u64,
    fingerprint: u64,
    /// Global chunk cursor: complete chunks per half across all shards.
    chunks: u64,
    shards: Vec<Arc<ShardSnapshot>>,
    /// Sentinel tier state, global across shards: `Z` is selected once
    /// over the union warmup prefix and applied to every shard's
    /// truncated chunks; hit counters are indexed by **global** chunk id.
    sentinel: Option<SentinelState>,
}

impl ShardedSnapshot {
    /// The graph version this snapshot serves.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Structural fingerprint of [`ShardedSnapshot::graph`].
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The graph at this snapshot's version.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The global RNG cursor: complete chunks generated per half.
    pub fn chunk_cursor(&self) -> u64 {
        self.chunks
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's arena.
    pub fn shard(&self, s: usize) -> &ShardSnapshot {
        &self.shards[s]
    }

    /// The sentinel tier state, if active.
    pub fn sentinel_state(&self) -> Option<&SentinelState> {
        self.sentinel.as_ref()
    }

    /// Union sets per pool half (every chunk is full by construction).
    pub fn pool_len(&self) -> usize {
        self.shards.iter().map(|sh| sh.r1.len()).sum()
    }

    fn r1_refs(&self) -> Vec<&RrCollection> {
        self.shards.iter().map(|sh| &sh.r1).collect()
    }

    fn r2_refs(&self) -> Vec<&RrCollection> {
        self.shards.iter().map(|sh| &sh.r2).collect()
    }

    fn idx_refs(&self) -> Vec<&InvertedIndex> {
        self.shards.iter().map(|sh| &sh.idx1).collect()
    }

    fn sketch_refs(&self) -> Option<Vec<&SketchedPool>> {
        self.shards
            .iter()
            .map(|sh| sh.sketch.as_ref())
            .collect::<Option<Vec<_>>>()
            .filter(|v| !v.is_empty())
    }

    /// Merges the per-shard sketches into one union sketched pool — the
    /// exact pool a single-shard (or sequential) index holds at the same
    /// cursor. `None` when the sketch tier is inactive.
    pub fn union_sketch(&self) -> Option<SketchedPool> {
        let refs = self.sketch_refs()?;
        let mut union =
            SketchedPool::new(self.graph.n(), refs[0].chunk_size(), refs[0].precision());
        for sk in refs {
            union.merge_from(sk);
        }
        Some(union)
    }

    /// Reassembles the union pool halves in global chunk order — the
    /// exact collections a single-shard index would hold at the same
    /// cursor. Testing/diagnostics only: serving never materializes the
    /// union.
    pub fn union_pools(&self, chunk_size: usize) -> (RrCollection, RrCollection) {
        let n = self.graph.n();
        let shards = self.shards.len() as u64;
        let mut r1 = RrCollection::new(n);
        let mut r2 = RrCollection::new(n);
        for c in 0..self.chunks {
            let s = (c % shards) as usize;
            let local = (c / shards) as usize;
            let lo = local * chunk_size;
            let hi = lo + chunk_size;
            r1.extend_from_range(&self.shards[s].r1, lo..hi);
            // Sketched shards keep their exact R₂ empty; the union is
            // then empty too (the sketches union via `union_sketch`).
            if !self.shards[s].r2.is_empty() {
                r2.extend_from_range(&self.shards[s].r2, lo..hi);
            }
        }
        (r1, r2)
    }
}

/// The mutable side, serialized behind one mutex: the versioned graph
/// (authoritative for "current version") plus one persistent worker pool
/// per shard. Pool state lives only in published snapshots.
struct WriterState {
    vg: VersionedGraph,
    pools: Vec<WorkerPool>,
}

/// A sharded, concurrently queryable delta index: `&self` queries from
/// any number of threads, chunk generation partitioned `chunk % N`
/// across `N` shards, merged selection with the OPIM certificate
/// evaluated on the union, and writer-serialized growth and delta
/// application.
///
/// Every query answer is byte-identical to [`subsim_delta::DeltaIndex`]
/// over the same `(seed, script)` at any shard count.
pub struct ShardedDeltaIndex {
    config: IndexConfig,
    shards: usize,
    snapshot: RwLock<Arc<ShardedSnapshot>>,
    writer: Mutex<WriterState>,
    metrics: IndexMetrics,
}

impl std::fmt::Debug for ShardedDeltaIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.load();
        f.debug_struct("ShardedDeltaIndex")
            .field("config", &self.config)
            .field("shards", &self.shards)
            .field("version", &snap.version)
            .field("chunks", &snap.chunks)
            .field("pool_len", &snap.pool_len())
            .finish_non_exhaustive()
    }
}

impl ShardedDeltaIndex {
    /// An empty sharded index over version 0 of `g` (storage-normalized;
    /// see [`VersionedGraph`]) with `shards` shards. Worker threads are
    /// split across shards (`max(1, threads / shards)` each), so the
    /// configured thread budget is respected whatever the shard count.
    pub fn new(g: Graph, config: IndexConfig, shards: usize) -> Result<Self, DeltaError> {
        assert!(shards > 0, "need at least one shard");
        assert!(config.threads > 0, "need at least one worker");
        assert!(config.chunk_size > 0, "chunks must hold at least one set");
        assert!(
            config.sketch == 0 || config.sentinels == 0,
            "sketch and sentinel tiers are mutually exclusive: truncated \
             sets would poison the count-distinct estimates"
        );
        let vg = VersionedGraph::new(g)?;
        let n = vg.graph().n();
        let per_shard = (config.threads / shards).max(1);
        let snap = ShardedSnapshot {
            graph: vg.graph_arc(),
            version: vg.version(),
            fingerprint: vg.fingerprint(),
            chunks: 0,
            shards: (0..shards)
                .map(|_| {
                    Arc::new(ShardSnapshot::new(
                        RrCollection::new(n),
                        RrCollection::new(n),
                        (config.sketch > 0)
                            .then(|| SketchedPool::new(n, config.chunk_size, config.sketch as u8)),
                    ))
                })
                .collect(),
            sentinel: None,
        };
        Ok(ShardedDeltaIndex {
            config,
            shards,
            snapshot: RwLock::new(Arc::new(snap)),
            writer: Mutex::new(WriterState {
                vg,
                pools: (0..shards).map(|_| WorkerPool::new(per_shard)).collect(),
            }),
            metrics: IndexMetrics::default(),
        })
    }

    /// The construction-time configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The currently served graph version.
    pub fn version(&self) -> u64 {
        self.load().version
    }

    /// The current published snapshot; a stable immutable view.
    pub fn load(&self) -> Arc<ShardedSnapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// A point-in-time copy of the serving metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Pre-grows the union pool to at least `sets` per half.
    pub fn warm(&self, sets: usize) -> Result<(), DeltaError> {
        self.grow_to(sets)?;
        Ok(())
    }

    /// Answers one IM query against the latest published version;
    /// per-query semantics match [`subsim_delta::DeltaIndex::query`] bit
    /// for bit.
    pub fn query(&self, k: usize, epsilon: f64, delta: f64) -> Result<QueryAnswer, DeltaError> {
        self.query_inner(k, epsilon, delta, None)
    }

    /// Like [`ShardedDeltaIndex::query`], pinned to an exact graph
    /// version: fails with [`DeltaError::StaleVersion`] when the served
    /// version differs at query start or after any growth round.
    pub fn query_at_version(
        &self,
        version: u64,
        k: usize,
        epsilon: f64,
        delta: f64,
    ) -> Result<QueryAnswer, DeltaError> {
        self.query_inner(k, epsilon, delta, Some(version))
    }

    fn query_inner(
        &self,
        k: usize,
        epsilon: f64,
        delta: f64,
        pin: Option<u64>,
    ) -> Result<QueryAnswer, DeltaError> {
        let mut snap = self.load();
        check_pin(pin, &snap)?;
        let opts = ImOptions::new(k).epsilon(epsilon).delta(delta);
        opts.validate(&snap.graph).map_err(IndexError::from)?;
        let start = Instant::now();
        let n = snap.graph.n();
        let target = 1.0 - (-1.0f64).exp() - epsilon;
        let theta_max = theta_max_opim(n, k, epsilon, delta);
        let theta0 = theta_zero(delta);
        let imax = i_max(theta_max, theta0);
        let delta_iter = delta / (3.0 * imax as f64);

        let pool_before = snap.pool_len();
        let mut fresh = 0usize;
        if snap.pool_len() < theta0 as usize {
            let (grown, added) = self.grow_to(theta0 as usize)?;
            snap = grown;
            check_pin(pin, &snap)?;
            fresh += added;
        }
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            let cert_start = Instant::now();
            // Sentinel snapshots re-certify through the HIST-style round
            // on the sharded refs — same merged counts, same union-length
            // bounds — so the answer keeps the full (k, ε, δ) guarantee.
            // Sketched snapshots run the slack-adjusted round on the
            // merged per-shard registers (max is order-independent, so
            // the estimate matches the sequential index bit for bit).
            let (seeds, lower, upper, slack_failed) = if let Some(sketches) = snap.sketch_refs() {
                let eval = evaluate_pool_sketched_sharded(
                    &snap.r1_refs(),
                    Some(&snap.idx_refs()),
                    &sketches,
                    k,
                    delta_iter,
                    delta_iter,
                    self.config.threads,
                );
                let slack = eval.failed_on_slack(target);
                (eval.seeds, eval.lower, eval.upper, slack)
            } else {
                let eval = match snap.sentinel.as_ref().filter(|st| !st.set.is_empty()) {
                    Some(st) => evaluate_pool_sentinel_sharded(
                        &snap.r1_refs(),
                        &snap.r2_refs(),
                        &st.set,
                        &snap.graph,
                        k,
                        delta_iter,
                        delta_iter,
                        self.config.threads,
                    ),
                    None => evaluate_pool_sharded_indexed(
                        &snap.r1_refs(),
                        &snap.idx_refs(),
                        &snap.r2_refs(),
                        k,
                        delta_iter,
                        delta_iter,
                        self.config.threads,
                    ),
                };
                (eval.seeds, eval.lower, eval.upper, false)
            };
            self.metrics.record_selection(cert_start.elapsed());
            let certified = if upper <= 0.0 {
                false
            } else {
                lower / upper > target
            };
            if certified || snap.pool_len() as f64 >= theta_max {
                let stats = QueryStats {
                    k,
                    epsilon,
                    delta,
                    pool_before,
                    pool_after: snap.pool_len(),
                    fresh_sets: fresh,
                    rounds,
                    lower_bound: lower,
                    upper_bound: upper,
                    target_ratio: target,
                    certified_by_bounds: certified,
                    elapsed: start.elapsed(),
                };
                self.metrics.record_query(&stats);
                return Ok(QueryAnswer { seeds, stats });
            }
            // Error-adaptive ladder, as in the sequential index: a round
            // that failed on sketch slack promotes register precision
            // instead of growing the pool — every shard promotes in the
            // same step, so shards never serve at mixed precision.
            if slack_failed {
                let observed = snap
                    .shards
                    .first()
                    .and_then(|sh| sh.sketch.as_ref())
                    .map(|sk| sk.precision());
                if observed.is_some_and(|p| p < MAX_PRECISION) {
                    let (grown, added) = self.promote_sketch(observed.unwrap())?;
                    snap = grown;
                    check_pin(pin, &snap)?;
                    fresh += added;
                    continue;
                }
            }
            let next = snap
                .pool_len()
                .saturating_mul(2)
                .min(theta_max.ceil() as usize);
            let (grown, added) = self.grow_to(next)?;
            snap = grown;
            check_pin(pin, &snap)?;
            fresh += added;
        }
    }

    /// Error-adaptive ladder step: every shard regenerates its owned
    /// `R₂` chunks at the next register precision above `observed`, and
    /// one snapshot with all shards promoted is published — the
    /// cross-shard barrier that keeps every query at a single precision.
    /// If a racing thread already promoted past `observed`, the current
    /// snapshot is returned with no work done.
    fn promote_sketch(&self, observed: u8) -> Result<(Arc<ShardedSnapshot>, usize), DeltaError> {
        let ws = self.writer.lock().expect("writer lock poisoned");
        let base = self.load();
        let current = base
            .shards
            .first()
            .and_then(|sh| sh.sketch.as_ref())
            .map(|sk| sk.precision());
        if current != Some(observed) {
            return Ok((base, 0));
        }
        let precision = observed + 1;
        let chunk = self.config.chunk_size;
        let seed = self.config.seed ^ R2_STREAM;
        let graph = ws.vg.graph_arc();
        let sampler = RrSampler::new(&graph, self.config.strategy);
        let n = graph.n();
        let results: Vec<Option<ShardRegen>> = std::thread::scope(|scope| {
            let handles: Vec<_> = base
                .shards
                .iter()
                .zip(&ws.pools)
                .map(|(old, pool)| {
                    let ids = old
                        .sketch
                        .as_ref()
                        .map(|sk| sk.chunk_ids().to_vec())
                        .unwrap_or_default();
                    if ids.is_empty() {
                        return None;
                    }
                    let sampler = &sampler;
                    Some(scope.spawn(move || {
                        let b = pool.try_generate_chunk_ids(sampler, None, &ids, chunk, seed)?;
                        Ok((ids, b))
                    }))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.map(|h| h.join().expect("shard generator panicked")))
                .collect()
        });
        let mut regenerated = 0usize;
        let mut new_shards = Vec::with_capacity(self.shards);
        for (old, result) in base.shards.iter().zip(results) {
            let mut fresh = SketchedPool::new(n, chunk, precision);
            if let Some(result) = result {
                let (ids, b) = result?;
                self.metrics.record_generation(
                    b.rr.len() as u64,
                    b.rr.total_nodes() as u64,
                    b.cost,
                    b.elapsed,
                );
                regenerated += b.rr.len();
                fresh.absorb_chunk_ids(&ids, &b.rr);
            }
            new_shards.push(Arc::new(ShardSnapshot {
                r1: old.r1.clone(),
                r2: old.r2.clone(),
                idx1: old.idx1.clone(),
                sketch: Some(fresh),
            }));
        }
        let snap = Arc::new(ShardedSnapshot {
            graph: Arc::clone(&base.graph),
            version: base.version,
            fingerprint: base.fingerprint,
            chunks: base.chunks,
            shards: new_shards,
            sentinel: base.sentinel.clone(),
        });
        self.publish(Arc::clone(&snap));
        Ok((snap, regenerated))
    }

    /// Grows the union pool to at least `target_sets` per half: each
    /// shard generates its owned slice of the new chunk range
    /// (`chunk % N`) concurrently on its own workers, then one snapshot
    /// covering all shards is published. Returns the snapshot to continue
    /// with plus the freshly generated sets (both halves, all shards).
    fn grow_to(&self, target_sets: usize) -> Result<(Arc<ShardedSnapshot>, usize), DeltaError> {
        let chunk = self.config.chunk_size;
        let needed_chunks = target_sets.div_ceil(chunk) as u64;
        {
            let snap = self.load();
            if snap.chunks >= needed_chunks {
                return Ok((snap, 0));
            }
        }
        let ws = self.writer.lock().expect("writer lock poisoned");
        // Re-check under the guard: the pool may have grown (or been
        // repaired onto a newer version) while this thread waited.
        let base = self.load();
        if base.chunks >= needed_chunks {
            return Ok((base, 0));
        }
        debug_assert_eq!(base.version, ws.vg.version());
        if let Some(cap) = self.config.max_nodes {
            // A sketched R₂ counts its resident bytes in 4-byte
            // node-entry equivalents, keeping the budget unit consistent.
            let in_use: usize = base
                .shards
                .iter()
                .map(|sh| {
                    sh.r1.total_nodes()
                        + sh.r2.total_nodes()
                        + sh.sketch
                            .as_ref()
                            .map_or(0, |sk| sk.resident_bytes() as usize / 4)
                })
                .sum();
            if in_use >= cap {
                return Err(DeltaError::Index(IndexError::MemoryBudget {
                    max_nodes: cap,
                    in_use,
                    wanted_sets: needed_chunks as usize * chunk,
                }));
            }
        }
        let graph = ws.vg.graph_arc();
        let sampler = RrSampler::new(&graph, self.config.strategy);

        let shards = self.shards as u64;
        let seed = self.config.seed;
        let mut cur_shards: Vec<Arc<ShardSnapshot>> = base.shards.clone();
        let mut chunks = base.chunks;
        let mut sentinel = base.sentinel.clone();
        let mut added = 0usize;
        // Growth proceeds in rounds only to respect the sentinel warmup
        // boundary: a plain round up to `SENTINEL_WARMUP_CHUNKS`, then Z
        // is selected once over the union prefix, then one truncated
        // round to the target. Without sentinels this is a single round.
        while chunks < needed_chunks {
            if self.config.sentinels > 0 && sentinel.is_none() && chunks >= SENTINEL_WARMUP_CHUNKS {
                let r1s: Vec<&RrCollection> = cur_shards.iter().map(|sh| &sh.r1).collect();
                sentinel = Some(SentinelState {
                    set: SentinelSet::select(&r1s, &graph, self.config.sentinels),
                    from_chunk: chunks,
                    chunk_hits_r1: vec![0; chunks as usize],
                    chunk_hits_r2: vec![0; chunks as usize],
                });
            }
            let mut end = needed_chunks;
            if self.config.sentinels > 0 && sentinel.is_none() {
                // Still inside the warmup prefix: stop this round at the
                // boundary so the next iteration selects Z before any
                // truncated chunk is generated.
                end = end.min(SENTINEL_WARMUP_CHUNKS.max(chunks + 1));
            }
            let mut owned_ids: Vec<Vec<u64>> = vec![Vec::new(); self.shards];
            for c in chunks..end {
                owned_ids[(c % shards) as usize].push(c);
            }
            let z = sentinel
                .as_ref()
                .filter(|st| !st.set.is_empty())
                .map(|st| st.set.nodes());
            let truncating = z.is_some();

            let results: Vec<
                Option<Result<(subsim_diffusion::ParBatch, subsim_diffusion::ParBatch), PoolError>>,
            > = std::thread::scope(|scope| {
                let handles: Vec<_> = owned_ids
                    .iter()
                    .zip(&ws.pools)
                    .map(|(ids, pool)| {
                        if ids.is_empty() {
                            return None;
                        }
                        let sampler = &sampler;
                        Some(scope.spawn(move || {
                            let b1 = pool.try_generate_chunk_ids(sampler, z, ids, chunk, seed)?;
                            let b2 = pool.try_generate_chunk_ids(
                                sampler,
                                z,
                                ids,
                                chunk,
                                seed ^ R2_STREAM,
                            )?;
                            Ok((b1, b2))
                        }))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.map(|h| h.join().expect("shard generator panicked")))
                    .collect()
            });

            if let Some(st) = sentinel.as_mut() {
                st.chunk_hits_r1.resize(end as usize, 0);
                st.chunk_hits_r2.resize(end as usize, 0);
            }
            let mut new_shards: Vec<Arc<ShardSnapshot>> = Vec::with_capacity(self.shards);
            for ((old, result), ids) in cur_shards.iter().zip(results).zip(&owned_ids) {
                match result {
                    None => new_shards.push(Arc::clone(old)),
                    Some(batches) => {
                        let (b1, b2) = batches?;
                        if let Some(st) = sentinel.as_mut() {
                            for (j, &id) in ids.iter().enumerate() {
                                st.chunk_hits_r1[id as usize] = b1.chunk_hits[j];
                                st.chunk_hits_r2[id as usize] = b2.chunk_hits[j];
                            }
                        }
                        let sets = (b1.rr.len() + b2.rr.len()) as u64;
                        let nodes = (b1.rr.total_nodes() + b2.rr.total_nodes()) as u64;
                        self.metrics.record_generation(
                            sets,
                            nodes,
                            b1.cost + b2.cost,
                            b1.elapsed + b2.elapsed,
                        );
                        if truncating {
                            self.metrics.record_sentinel(
                                b1.sentinel_hits + b2.sentinel_hits,
                                sets,
                                nodes,
                            );
                        }
                        added += b1.rr.len() + b2.rr.len();
                        let mut r1 = old.r1.clone();
                        let mut r2 = old.r2.clone();
                        let mut sketch = old.sketch.clone();
                        r1.extend_from(&b1.rr);
                        if let Some(sk) = sketch.as_mut() {
                            sk.absorb_chunk_ids(ids, &b2.rr);
                        } else {
                            r2.extend_from(&b2.rr);
                        }
                        new_shards.push(Arc::new(ShardSnapshot::new(r1, r2, sketch)));
                    }
                }
            }
            cur_shards = new_shards;
            chunks = end;
        }

        let snap = Arc::new(ShardedSnapshot {
            graph,
            version: base.version,
            fingerprint: base.fingerprint,
            chunks,
            shards: cur_shards,
            sentinel,
        });
        self.publish(Arc::clone(&snap));
        Ok((snap, added))
    }

    /// Applies `delta` to the graph and publishes one repaired snapshot
    /// at the next version — the cross-shard barrier: every shard in the
    /// new snapshot is repaired against the new graph before any query
    /// can observe the version bump, and no query can ever observe shards
    /// at mixed versions.
    ///
    /// Shard `s` maps its local chunk position `j` back to global chunk
    /// `s + j·N` so dirty chunks regenerate from their original seeds;
    /// the cached per-shard inverted index provides `R₁` dirtiness
    /// detection without a rebuild. On error nothing is published.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<RepairReport, DeltaError> {
        let start = Instant::now();
        let ws = self.writer.lock().expect("writer lock poisoned");
        let mut staged = ws.vg.clone();
        staged.apply(delta)?;
        let base = self.load();
        let targets = delta.targets();
        let graph = staged.graph_arc();
        let sampler = RrSampler::new(&graph, self.config.strategy);
        let chunk = self.config.chunk_size;
        let shards = self.shards as u64;
        let seed = self.config.seed;

        struct ShardRepair {
            shard: Arc<ShardSnapshot>,
            dirty_sets_r1: usize,
            /// For sketched shards this is whole regenerated chunks' set
            /// count (the sketch cannot count per-set dirtiness).
            dirty_sets_r2: usize,
            dirty_chunks_r1: usize,
            dirty_chunks_r2: usize,
            /// `(global chunk, hits)` updates for regenerated truncated
            /// chunks, per half.
            hits_r1: Vec<(u64, u64)>,
            hits_r2: Vec<(u64, u64)>,
        }

        let mut report = RepairReport {
            targets: targets.len(),
            ..RepairReport::default()
        };
        let sentinel_active = base.sentinel.as_ref().filter(|st| !st.set.is_empty());
        let stale = sentinel_active.is_some_and(|st| {
            delta.ops().iter().any(|op| {
                let (u, v) = op.endpoints();
                st.set.contains(u) || st.set.contains(v)
            })
        });

        let (new_shards, new_sentinel) = match sentinel_active {
            Some(st) if stale => {
                // A sentinel's own edges were rewired: repair each
                // shard's plain prefix exactly, re-select Z' over the
                // union prefix, and regenerate every truncated chunk
                // under Z'.
                let from_chunk = st.from_chunk;
                report.sentinel_refreshed = true;
                struct PrefixRepair {
                    r1: RrCollection,
                    r2: RrCollection,
                    dirty_sets_r1: usize,
                    dirty_sets_r2: usize,
                    dirty_chunks_r1: usize,
                    dirty_chunks_r2: usize,
                }
                let prefixes: Vec<Result<PrefixRepair, PoolError>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = base
                        .shards
                        .iter()
                        .zip(&ws.pools)
                        .enumerate()
                        .map(|(s, (old, pool))| {
                            let (sampler, targets) = (&sampler, &targets);
                            scope.spawn(move || {
                                let s64 = s as u64;
                                let owned_prefix = if s64 < from_chunk {
                                    (from_chunk - s64).div_ceil(shards) as usize
                                } else {
                                    0
                                };
                                let n = old.r1.graph_n();
                                let mut pre1 = RrCollection::new(n);
                                pre1.extend_from_range(&old.r1, 0..owned_prefix * chunk);
                                let mut pre2 = RrCollection::new(n);
                                pre2.extend_from_range(&old.r2, 0..owned_prefix * chunk);
                                let h1 = repair_half_mapped(
                                    &pre1,
                                    targets,
                                    sampler,
                                    pool,
                                    chunk,
                                    seed,
                                    1,
                                    |j| s64 + j * shards,
                                )?;
                                let h2 = repair_half_mapped(
                                    &pre2,
                                    targets,
                                    sampler,
                                    pool,
                                    chunk,
                                    seed ^ R2_STREAM,
                                    1,
                                    |j| s64 + j * shards,
                                )?;
                                Ok(PrefixRepair {
                                    r1: h1.rr,
                                    r2: h2.rr,
                                    dirty_sets_r1: h1.dirty_sets,
                                    dirty_sets_r2: h2.dirty_sets,
                                    dirty_chunks_r1: h1.dirty_chunks,
                                    dirty_chunks_r2: h2.dirty_chunks,
                                })
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard repairer panicked"))
                        .collect()
                });
                let mut prefs = Vec::with_capacity(self.shards);
                for p in prefixes {
                    let p = p?;
                    report.dirty_sets_r1 += p.dirty_sets_r1;
                    report.dirty_sets_r2 += p.dirty_sets_r2;
                    report.dirty_chunks_r1 += p.dirty_chunks_r1;
                    report.dirty_chunks_r2 += p.dirty_chunks_r2;
                    prefs.push(p);
                }
                let budget = if self.config.sentinels > 0 {
                    self.config.sentinels
                } else {
                    st.set.len()
                };
                let r1s: Vec<&RrCollection> = prefs.iter().map(|p| &p.r1).collect();
                let fresh = SentinelSet::select(&r1s, &graph, budget);
                drop(r1s);
                let zn = (!fresh.is_empty()).then(|| fresh.nodes().to_vec());
                let suffix_ids: Vec<Vec<u64>> = (0..shards)
                    .map(|s| {
                        (from_chunk..base.chunks)
                            .filter(|c| c % shards == s)
                            .collect()
                    })
                    .collect();
                let batches: Vec<
                    Option<
                        Result<(subsim_diffusion::ParBatch, subsim_diffusion::ParBatch), PoolError>,
                    >,
                > = std::thread::scope(|scope| {
                    let handles: Vec<_> = suffix_ids
                        .iter()
                        .zip(&ws.pools)
                        .map(|(ids, pool)| {
                            if ids.is_empty() {
                                return None;
                            }
                            let (sampler, zn) = (&sampler, zn.as_deref());
                            Some(scope.spawn(move || {
                                let b1 =
                                    pool.try_generate_chunk_ids(sampler, zn, ids, chunk, seed)?;
                                let b2 = pool.try_generate_chunk_ids(
                                    sampler,
                                    zn,
                                    ids,
                                    chunk,
                                    seed ^ R2_STREAM,
                                )?;
                                Ok((b1, b2))
                            }))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.map(|h| h.join().expect("shard generator panicked")))
                        .collect()
                });
                let mut hits1 = vec![0u64; base.chunks as usize];
                let mut hits2 = vec![0u64; base.chunks as usize];
                let mut new_shards = Vec::with_capacity(self.shards);
                for ((pref, result), ids) in prefs.into_iter().zip(batches).zip(&suffix_ids) {
                    let mut r1 = pref.r1;
                    let mut r2 = pref.r2;
                    if let Some(batches) = result {
                        let (b1, b2) = batches?;
                        for (j, &id) in ids.iter().enumerate() {
                            hits1[id as usize] = b1.chunk_hits[j];
                            hits2[id as usize] = b2.chunk_hits[j];
                        }
                        r1.extend_from(&b1.rr);
                        r2.extend_from(&b2.rr);
                        report.dirty_chunks_r1 += ids.len();
                        report.dirty_chunks_r2 += ids.len();
                    }
                    new_shards.push(Arc::new(ShardSnapshot::new(r1, r2, None)));
                }
                let new_st = SentinelState {
                    set: fresh,
                    from_chunk,
                    chunk_hits_r1: hits1,
                    chunk_hits_r2: hits2,
                };
                (new_shards, Some(new_st))
            }
            Some(st) => {
                // Z untouched: sentinel-aware chunk repair per shard,
                // preserving the truncation boundary and refreshing hit
                // counters for regenerated truncated chunks.
                let z = st.set.nodes();
                let from_chunk = st.from_chunk;
                let repairs: Vec<Result<ShardRepair, PoolError>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = base
                        .shards
                        .iter()
                        .zip(&ws.pools)
                        .enumerate()
                        .map(|(s, (old, pool))| {
                            let (sampler, targets) = (&sampler, &targets);
                            scope.spawn(move || {
                                let s64 = s as u64;
                                let (rr1, ds1, dc1, hits_r1) = repair_shard_half_sentinel(
                                    &old.r1,
                                    Some(&old.idx1),
                                    targets,
                                    z,
                                    from_chunk,
                                    s64,
                                    shards,
                                    sampler,
                                    pool,
                                    chunk,
                                    seed,
                                )?;
                                let (rr2, ds2, dc2, hits_r2) = repair_shard_half_sentinel(
                                    &old.r2,
                                    None,
                                    targets,
                                    z,
                                    from_chunk,
                                    s64,
                                    shards,
                                    sampler,
                                    pool,
                                    chunk,
                                    seed ^ R2_STREAM,
                                )?;
                                let shard = if dc1 == 0 && dc2 == 0 {
                                    Arc::clone(old)
                                } else if dc1 == 0 {
                                    // R₁ untouched: keep its cached index.
                                    Arc::new(ShardSnapshot {
                                        r1: rr1,
                                        r2: rr2,
                                        idx1: old.idx1.clone(),
                                        sketch: None,
                                    })
                                } else {
                                    Arc::new(ShardSnapshot::new(rr1, rr2, None))
                                };
                                Ok(ShardRepair {
                                    shard,
                                    dirty_sets_r1: ds1,
                                    dirty_sets_r2: ds2,
                                    dirty_chunks_r1: dc1,
                                    dirty_chunks_r2: dc2,
                                    hits_r1,
                                    hits_r2,
                                })
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard repairer panicked"))
                        .collect()
                });
                let mut new_st = st.clone();
                let mut new_shards = Vec::with_capacity(self.shards);
                for repair in repairs {
                    let r = repair?;
                    report.dirty_sets_r1 += r.dirty_sets_r1;
                    report.dirty_sets_r2 += r.dirty_sets_r2;
                    report.dirty_chunks_r1 += r.dirty_chunks_r1;
                    report.dirty_chunks_r2 += r.dirty_chunks_r2;
                    for (id, h) in r.hits_r1 {
                        new_st.chunk_hits_r1[id as usize] = h;
                    }
                    for (id, h) in r.hits_r2 {
                        new_st.chunk_hits_r2[id as usize] = h;
                    }
                    new_shards.push(r.shard);
                }
                (new_shards, Some(new_st))
            }
            None => {
                let repairs: Vec<Result<ShardRepair, PoolError>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = base
                        .shards
                        .iter()
                        .zip(&ws.pools)
                        .enumerate()
                        .map(|(s, (old, pool))| {
                            let (sampler, targets) = (&sampler, &targets);
                            scope.spawn(move || {
                                let s64 = s as u64;
                                let h1 = repair_half_indexed(
                                    &old.r1,
                                    &old.idx1,
                                    targets,
                                    sampler,
                                    pool,
                                    chunk,
                                    seed,
                                    |j| s64 + j * shards,
                                )?;
                                // Sketched validation tier: the shard's
                                // sketch repairs chunk-wise on the same
                                // membership predicate, keyed by global
                                // chunk id (so seeds line up without a
                                // position map).
                                if let Some(sk) = old.sketch.as_ref() {
                                    let rs = repair_sketch(
                                        sk,
                                        targets,
                                        sampler,
                                        pool,
                                        seed ^ R2_STREAM,
                                    )?;
                                    let shard = if h1.dirty_chunks == 0 && rs.dirty_chunks == 0 {
                                        Arc::clone(old)
                                    } else if h1.dirty_chunks == 0 {
                                        // R₁ untouched: keep its cached index.
                                        Arc::new(ShardSnapshot {
                                            r1: h1.rr,
                                            r2: old.r2.clone(),
                                            idx1: old.idx1.clone(),
                                            sketch: Some(rs.sketch),
                                        })
                                    } else {
                                        Arc::new(ShardSnapshot::new(
                                            h1.rr,
                                            old.r2.clone(),
                                            Some(rs.sketch),
                                        ))
                                    };
                                    return Ok(ShardRepair {
                                        shard,
                                        dirty_sets_r1: h1.dirty_sets,
                                        dirty_sets_r2: rs.dirty_chunks * chunk,
                                        dirty_chunks_r1: h1.dirty_chunks,
                                        dirty_chunks_r2: rs.dirty_chunks,
                                        hits_r1: Vec::new(),
                                        hits_r2: Vec::new(),
                                    });
                                }
                                let h2 = repair_half_mapped(
                                    &old.r2,
                                    targets,
                                    sampler,
                                    pool,
                                    chunk,
                                    seed ^ R2_STREAM,
                                    1,
                                    |j| s64 + j * shards,
                                )?;
                                let shard = if h1.dirty_chunks == 0 && h2.dirty_chunks == 0 {
                                    Arc::clone(old)
                                } else if h1.dirty_chunks == 0 {
                                    // R₁ untouched: keep its cached index.
                                    Arc::new(ShardSnapshot {
                                        r1: h1.rr,
                                        r2: h2.rr,
                                        idx1: old.idx1.clone(),
                                        sketch: None,
                                    })
                                } else {
                                    Arc::new(ShardSnapshot::new(h1.rr, h2.rr, None))
                                };
                                Ok(ShardRepair {
                                    shard,
                                    dirty_sets_r1: h1.dirty_sets,
                                    dirty_sets_r2: h2.dirty_sets,
                                    dirty_chunks_r1: h1.dirty_chunks,
                                    dirty_chunks_r2: h2.dirty_chunks,
                                    hits_r1: Vec::new(),
                                    hits_r2: Vec::new(),
                                })
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard repairer panicked"))
                        .collect()
                });
                let mut new_shards = Vec::with_capacity(self.shards);
                for repair in repairs {
                    let r = repair?;
                    report.dirty_sets_r1 += r.dirty_sets_r1;
                    report.dirty_sets_r2 += r.dirty_sets_r2;
                    report.dirty_chunks_r1 += r.dirty_chunks_r1;
                    report.dirty_chunks_r2 += r.dirty_chunks_r2;
                    new_shards.push(r.shard);
                }
                (new_shards, base.sentinel.clone())
            }
        };
        drop(sampler);

        let mut ws = ws;
        ws.vg = staged;
        let snap = Arc::new(ShardedSnapshot {
            graph,
            version: ws.vg.version(),
            fingerprint: ws.vg.fingerprint(),
            chunks: base.chunks,
            shards: new_shards,
            sentinel: new_sentinel,
        });
        self.publish(Arc::clone(&snap));
        report.version = snap.version;
        report.regenerated_sets = (report.dirty_chunks_r1 + report.dirty_chunks_r2) * chunk;
        report.pool_sets = snap.pool_len() * 2;
        report.elapsed = start.elapsed();
        self.metrics.record_repair(
            report.regenerated_sets as u64,
            (report.dirty_chunks_r1 + report.dirty_chunks_r2) as u64,
            report.elapsed,
        );
        Ok(report)
    }

    /// Persists the current snapshot: the union pool is reassembled in
    /// global chunk order and written through the single-index snapshot
    /// format (including the sentinel block), so the file round-trips
    /// through any shard count — and through [`subsim_index::RrIndex`] /
    /// [`subsim_delta::DeltaIndex`] — behind the same graph fingerprint.
    pub fn save_snapshot<P: AsRef<Path>>(&self, path: P) -> Result<(), DeltaError> {
        let ws = self.writer.lock().expect("writer lock poisoned");
        let snap = self.load();
        let (r1, r2) = snap.union_pools(self.config.chunk_size);
        let mut idx = match snap.union_sketch() {
            // Sketched tier: the per-shard sketches merge losslessly
            // (register-wise max over disjoint chunk sets) into the exact
            // union a sequential index persists.
            Some(sk) => {
                RrIndex::from_sketched_parts(&snap.graph, self.config, r1, sk, snap.chunks)?
            }
            None => RrIndex::from_pool_parts(&snap.graph, self.config, r1, r2, snap.chunks)?,
        };
        idx.set_sentinel_state(snap.sentinel.clone())?;
        idx.save_to_path(path)?;
        drop(ws);
        Ok(())
    }

    /// Builds a sharded index over version 0 of `g` with the union pool
    /// loaded from a snapshot and re-split `chunk % shards` across shard
    /// arenas. Fails with a typed [`IndexError::SnapshotMismatch`]
    /// (wrapped in [`DeltaError::Index`]) when the snapshot was taken at
    /// a different graph version, or was generated under a different RR
    /// strategy than `config` asks for — a pool must never silently
    /// serve the wrong diffusion model.
    pub fn load_snapshot<P: AsRef<Path>>(
        g: Graph,
        config: IndexConfig,
        shards: usize,
        path: P,
    ) -> Result<Self, DeltaError> {
        assert!(shards > 0, "need at least one shard");
        let vg = VersionedGraph::new(g)?;
        let mut loaded = RrIndex::load_from_path(vg.graph(), path)?;
        loaded.ensure_strategy(config.strategy)?;
        let sentinel = loaded.take_sentinel_state();
        let sketch = loaded.take_sketch_state();
        let (loaded_config, r1, r2, chunks) = loaded.into_pool_parts();
        let config = IndexConfig {
            threads: config.threads,
            max_nodes: config.max_nodes,
            ..loaded_config
        };
        let n = vg.graph().n();
        let chunk = config.chunk_size;
        let shard_pools: Vec<(RrCollection, RrCollection)> = (0..shards as u64)
            .map(|s| {
                let mut s1 = RrCollection::new(n);
                let mut s2 = RrCollection::new(n);
                for c in (s..chunks).step_by(shards) {
                    let lo = c as usize * chunk;
                    let hi = lo + chunk;
                    s1.extend_from_range(&r1, lo..hi);
                    // A sketched snapshot persists an empty exact R₂; the
                    // shards keep theirs empty too.
                    if !r2.is_empty() {
                        s2.extend_from_range(&r2, lo..hi);
                    }
                }
                (s1, s2)
            })
            .collect();
        let per_shard = (config.threads / shards).max(1);
        // Re-split the union sketch `chunk % N` to match the shard arenas.
        let mut shard_sketches: Vec<Option<SketchedPool>> = match sketch {
            Some(sk) => sk.split(shards).into_iter().map(Some).collect(),
            None => vec![None; shards],
        };
        let snap = ShardedSnapshot {
            graph: vg.graph_arc(),
            version: vg.version(),
            fingerprint: vg.fingerprint(),
            chunks,
            shards: shard_pools
                .into_iter()
                .zip(shard_sketches.iter_mut())
                .map(|((s1, s2), sk)| Arc::new(ShardSnapshot::new(s1, s2, sk.take())))
                .collect(),
            sentinel,
        };
        Ok(ShardedDeltaIndex {
            config,
            shards,
            snapshot: RwLock::new(Arc::new(snap)),
            writer: Mutex::new(WriterState {
                vg,
                pools: (0..shards).map(|_| WorkerPool::new(per_shard)).collect(),
            }),
            metrics: IndexMetrics::default(),
        })
    }

    fn publish(&self, snap: Arc<ShardedSnapshot>) {
        *self.snapshot.write().expect("snapshot lock poisoned") = snap;
        self.metrics
            .snapshot_publishes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Sentinel-aware repair of one shard's pool half: local chunk position
/// `j` stores global chunk `s + j·N`; dirty globals `< from_chunk`
/// regenerate plain, the rest truncated under `z`, with refreshed hit
/// counts returned as `(global chunk, hits)` updates.
///
/// Returns `(repaired half, dirty sets, dirty chunks, hit updates)`.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn repair_shard_half_sentinel(
    pool: &RrCollection,
    inv: Option<&InvertedIndex>,
    targets: &[NodeId],
    z: &[NodeId],
    from_chunk: u64,
    s: u64,
    shards: u64,
    sampler: &RrSampler<'_>,
    workers: &WorkerPool,
    chunk_size: usize,
    seed: u64,
) -> Result<(RrCollection, usize, usize, Vec<(u64, u64)>), PoolError> {
    assert!(chunk_size > 0, "chunks must hold at least one set");
    assert_eq!(
        pool.len() % chunk_size,
        0,
        "pool half must be a whole number of chunks"
    );
    let built;
    let inv = match inv {
        Some(inv) => inv,
        None => {
            built = InvertedIndex::build(pool);
            &built
        }
    };
    let mut dirty_sets: Vec<u32> = targets
        .iter()
        .flat_map(|&t| inv.sets_containing(t))
        .copied()
        .collect();
    dirty_sets.sort_unstable();
    dirty_sets.dedup();
    let dirty_set_count = dirty_sets.len();
    let mut dirty_local: Vec<u64> = dirty_sets
        .into_iter()
        .map(|x| x as u64 / chunk_size as u64)
        .collect();
    dirty_local.dedup();
    if dirty_local.is_empty() {
        return Ok((pool.clone(), dirty_set_count, 0, Vec::new()));
    }
    let global = |j: u64| s + j * shards;
    let plain_ids: Vec<u64> = dirty_local
        .iter()
        .map(|&j| global(j))
        .filter(|&c| c < from_chunk)
        .collect();
    let trunc_ids: Vec<u64> = dirty_local
        .iter()
        .map(|&j| global(j))
        .filter(|&c| c >= from_chunk)
        .collect();
    let plain = if plain_ids.is_empty() {
        None
    } else {
        Some(workers.try_generate_chunk_ids(sampler, None, &plain_ids, chunk_size, seed)?)
    };
    let trunc = if trunc_ids.is_empty() {
        None
    } else {
        Some(workers.try_generate_chunk_ids(sampler, Some(z), &trunc_ids, chunk_size, seed)?)
    };
    let mut hits = Vec::with_capacity(trunc_ids.len());
    if let Some(batch) = &trunc {
        for (j, &c) in trunc_ids.iter().enumerate() {
            hits.push((c, batch.chunk_hits[j]));
        }
    }
    let mut rr = RrCollection::new(pool.graph_n());
    let mut cursor = 0usize;
    let (mut pi, mut ti) = (0usize, 0usize);
    for &j in &dirty_local {
        let lo = j as usize * chunk_size;
        rr.extend_from_range(pool, cursor..lo);
        if global(j) < from_chunk {
            let batch = plain.as_ref().expect("plain batch generated");
            rr.extend_from_range(&batch.rr, pi * chunk_size..(pi + 1) * chunk_size);
            pi += 1;
        } else {
            let batch = trunc.as_ref().expect("truncated batch generated");
            rr.extend_from_range(&batch.rr, ti * chunk_size..(ti + 1) * chunk_size);
            ti += 1;
        }
        cursor = lo + chunk_size;
    }
    rr.extend_from_range(pool, cursor..pool.len());
    Ok((rr, dirty_set_count, dirty_local.len(), hits))
}

fn check_pin(pin: Option<u64>, snap: &ShardedSnapshot) -> Result<(), DeltaError> {
    match pin {
        Some(requested) if requested != snap.version => Err(DeltaError::StaleVersion {
            requested,
            current: snap.version,
        }),
        _ => Ok(()),
    }
}

impl ServeIndex for ShardedDeltaIndex {
    fn run_query(
        &self,
        k: usize,
        epsilon: f64,
        delta: f64,
        pin: Option<u64>,
    ) -> Result<QueryAnswer, ServeError> {
        match pin {
            Some(version) => Ok(self.query_at_version(version, k, epsilon, delta)?),
            None => Ok(self.query(k, epsilon, delta)?),
        }
    }

    fn apply_delta_line(&self, op: &str) -> Result<RepairReport, ServeError> {
        let parsed = GraphDelta::parse_line(op)
            .map_err(ServeError::Delta)?
            .ok_or_else(|| {
                ServeError::Delta(DeltaError::Parse {
                    message: "empty delta line".into(),
                })
            })?;
        let mut delta = GraphDelta::new();
        delta.push(parsed);
        Ok(self.apply_delta(&delta)?)
    }

    fn version(&self) -> Option<u64> {
        Some(ShardedDeltaIndex::version(self))
    }
}
