//! The multi-connection framed server.
//!
//! A single reactor thread owns every socket: it accepts connections,
//! decodes length-framed protocol lines ([`crate::net::frame`]), admits
//! them in per-connection arrival order, and fans query work out to a
//! small pool of worker threads that hit the shared [`ServeIndex`]
//! concurrently. Readiness comes from the no-dependency poller in
//! [`crate::net::sys`] (epoll on Linux, `poll(2)` elsewhere); workers
//! wake the reactor through a nonblocking socketpair.
//!
//! # Protocol
//!
//! Each frame payload is one line of the [`subsim_delta::serve_queries`]
//! grammar (`k [epsilon] [@version]`, `delta <op>`, `shutdown`), plus a
//! frame-only extension `tenant <name>` that tags the connection for
//! per-tenant metrics. Every admitted frame — except blank and `#`
//! comment lines, which are skipped exactly like the line server skips
//! them — produces **exactly one reply frame, in admission order**:
//!
//! - query → the seed line (`"s1 s2 …"`, the byte-identical rendering the
//!   line server writes), or `err <reason>` on a typed failure;
//! - `delta <op>` → `ok delta v<version>` or `err <reason>`;
//! - `tenant <name>` → `ok tenant <name>`;
//! - `shutdown` → `ok shutdown`, then the server drains and exits;
//! - a frame that violates the transport (oversized declaration,
//!   non-UTF-8 payload) → `err <violation>` — the connection keeps
//!   serving, mirroring the per-line error contract of the line server.
//!
//! # Ordering and the delta barrier
//!
//! Queries from one connection run concurrently, but replies are
//! re-sequenced through a per-connection reorder buffer, so each client
//! observes answers in the order it asked. A `delta` frame is a
//! **barrier** for its connection: it waits for every earlier admitted
//! query to answer, runs alone, and blocks later frames (they queue in a
//! bounded deferred list) until the repaired snapshot publishes — so a
//! connection's replies are a pure function of its own frame sequence
//! whenever no other connection mutates the graph. Across connections,
//! deltas serialize through the index's writer lock and each version
//! bump fences all shards at one atomic snapshot swap.
//!
//! # Backpressure
//!
//! Outbound bytes queue in a bounded per-connection buffer. When a
//! client stops reading and the buffer crosses the high-water mark, the
//! reactor drops *read* interest for that connection — the client can no
//! longer pump queries into the server faster than it drains answers —
//! and resumes reading once the buffer falls below the low-water mark.
//! The deferred list behind a delta barrier is capped the same way.

use crate::net::frame::{encode_frame, FrameDecoder, FrameItem, HEADER_LEN};
use crate::net::sys::{
    Interest, PollEvent, Poller, TOKEN_CONN_BASE, TOKEN_LISTENER_BASE, TOKEN_WAKE,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use subsim_delta::{parse_query, FrameViolation, LineError, ServeEvent, ServeIndex, ServeSink};
use subsim_index::{TenantCounters, TenantMetrics};

/// Tuning for [`serve_framed`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads answering queries against the index.
    pub workers: usize,
    /// Certificate failure probability handed to every query
    /// (the `delta` of `serve_queries`, not a graph delta).
    pub delta: f64,
    /// Maximum accepted frame payload, bytes.
    pub max_frame: usize,
    /// Stop reading a connection when its outbound buffer exceeds this.
    pub write_high_water: usize,
    /// Resume reading once the outbound buffer falls below this.
    pub write_low_water: usize,
    /// Maximum frames queued behind a connection's delta barrier before
    /// its reads are gated.
    pub deferred_cap: usize,
    /// Tenant connections report under before any `tenant` frame.
    pub default_tenant: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            delta: 0.01,
            max_frame: 64 << 10,
            write_high_water: 256 << 10,
            write_low_water: 32 << 10,
            deferred_cap: 1024,
            default_tenant: "default".into(),
        }
    }
}

/// What a finished server run did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Whether a `shutdown` frame ended the run.
    pub shutdown: bool,
    /// Connections accepted over the run's lifetime.
    pub connections: u64,
    /// Frames decoded (including violating frames).
    pub frames: u64,
    /// Reply frames written into connection buffers.
    pub replies: u64,
}

/// Removes a bound unix-socket path when dropped, so a crashed or
/// completed server never leaves a stale socket behind to trigger
/// `AddrInUse` on the next start.
#[derive(Debug)]
pub struct SocketPathGuard {
    path: Option<PathBuf>,
}

impl SocketPathGuard {
    /// The guarded path.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Keeps the socket file on disk after drop.
    pub fn disarm(mut self) {
        self.path = None;
    }
}

impl Drop for SocketPathGuard {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One accept socket, unix or TCP.
#[derive(Debug)]
pub enum Listener {
    /// A `SOCK_STREAM` unix-domain listener.
    Unix(UnixListener),
    /// A TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds a unix listener at `path`, unlinking a **stale socket** left
    /// by a previous run first. A path that exists but is not a socket is
    /// refused rather than unlinked — the server never deletes a file it
    /// could not have created. The returned guard removes the socket on
    /// drop (graceful shutdown included).
    pub fn bind_unix(path: &Path) -> io::Result<(Listener, SocketPathGuard)> {
        match std::fs::symlink_metadata(path) {
            Ok(meta) => {
                use std::os::unix::fs::FileTypeExt;
                if !meta.file_type().is_socket() {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        format!(
                            "{} exists and is not a socket; refusing to unlink",
                            path.display()
                        ),
                    ));
                }
                std::fs::remove_file(path)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let listener = UnixListener::bind(path)?;
        Ok((
            Listener::Unix(listener),
            SocketPathGuard {
                path: Some(path.to_path_buf()),
            },
        ))
    }

    /// Binds a TCP listener at `addr` (e.g. `127.0.0.1:7979`).
    pub fn bind_tcp(addr: &str) -> io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(true),
            Listener::Tcp(l) => l.set_nonblocking(true),
        }
    }

    fn raw_fd(&self) -> RawFd {
        match self {
            Listener::Unix(l) => l.as_raw_fd(),
            Listener::Tcp(l) => l.as_raw_fd(),
        }
    }

    fn accept(&self) -> io::Result<Option<Stream>> {
        match self {
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(Stream::Unix(s))),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(Stream::Tcp(s))),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

#[derive(Debug)]
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(true),
            Stream::Tcp(s) => s.set_nonblocking(true),
        }
    }

    fn raw_fd(&self) -> RawFd {
        match self {
            Stream::Unix(s) => s.as_raw_fd(),
            Stream::Tcp(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
}

enum JobKind {
    Query {
        line: String,
        k: usize,
        epsilon: f64,
        pin: Option<u64>,
    },
    Delta {
        op: String,
    },
}

struct Job {
    conn: u64,
    seq: u64,
    kind: JobKind,
}

enum DoneKind {
    Answered,
    Failed,
    DeltaApplied,
}

struct Done {
    conn: u64,
    seq: u64,
    kind: DoneKind,
    payload: String,
}

struct Conn {
    token: u64,
    stream: Stream,
    decoder: FrameDecoder,
    interest: Interest,
    /// Outbound bytes; `write_pos` is the flushed prefix.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Next sequence number handed to an admitted frame.
    next_seq: u64,
    /// Next sequence to serialize into `write_buf`.
    flush_seq: u64,
    /// Completed replies waiting for earlier sequences (reorder buffer).
    completed: BTreeMap<u64, String>,
    /// Admitted queries not yet answered.
    inflight: usize,
    /// A delta admitted but not yet applied fences this connection.
    barrier: bool,
    /// Sequence of the dispatched barrier delta, to tell its completion
    /// apart from query completions.
    barrier_seq: Option<u64>,
    /// A delta waiting for `inflight` to reach zero before dispatch.
    pending_delta: Option<(u64, String)>,
    /// Frames decoded behind an active barrier, in arrival order.
    deferred: VecDeque<String>,
    tenant: Arc<TenantCounters>,
    read_eof: bool,
    dead: bool,
}

impl Conn {
    fn write_pending(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Inserts a finished reply and serializes every now-consecutive one.
    fn complete(&mut self, seq: u64, payload: String, report: &mut ServerReport) {
        self.completed.insert(seq, payload);
        while let Some(payload) = self.completed.remove(&self.flush_seq) {
            let before = self.write_buf.len();
            encode_frame(&payload, &mut self.write_buf);
            self.tenant
                .bytes_out
                .fetch_add((self.write_buf.len() - before) as u64, Ordering::Relaxed);
            report.replies += 1;
            self.flush_seq += 1;
        }
    }

    fn try_write(&mut self) {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos > (64 << 10) {
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
    }

    fn idle(&self) -> bool {
        self.inflight == 0
            && !self.barrier
            && self.pending_delta.is_none()
            && (self.dead || self.write_pending() == 0)
    }

    fn should_close(&self) -> bool {
        self.dead || (self.read_eof && self.idle() && self.deferred.is_empty())
    }
}

struct Env<'a, S: ?Sized> {
    job_tx: mpsc::Sender<Job>,
    tenants: &'a TenantMetrics,
    sink: &'a S,
    config: &'a ServerConfig,
}

/// Runs the framed multi-connection server over `listeners` until a
/// `shutdown` frame arrives, answering queries against `index` on
/// `config.workers` threads. Per-tenant counters accumulate into
/// `tenants`; observability events stream to `sink`. Returns only on
/// shutdown (or a fatal poller/accept error).
pub fn serve_framed<I, S>(
    index: &I,
    listeners: Vec<Listener>,
    config: &ServerConfig,
    tenants: &TenantMetrics,
    sink: &S,
) -> io::Result<ServerReport>
where
    I: ServeIndex,
    S: ServeSink + ?Sized,
{
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let (done_tx, done_rx) = mpsc::channel::<Done>();
    let job_rx = Mutex::new(job_rx);
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;

    let mut poller = Poller::new()?;
    poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
    for (i, listener) in listeners.iter().enumerate() {
        listener.set_nonblocking()?;
        poller.register(
            listener.raw_fd(),
            TOKEN_LISTENER_BASE + i as u64,
            Interest::READ,
        )?;
    }

    std::thread::scope(|scope| {
        for _ in 0..config.workers.max(1) {
            let done_tx = done_tx.clone();
            let job_rx = &job_rx;
            let wake = &wake_tx;
            scope.spawn(move || worker_loop(index, config.delta, job_rx, done_tx, wake, sink));
        }
        drop(done_tx);
        let env = Env {
            job_tx,
            tenants,
            sink,
            config,
        };
        reactor_loop(&mut poller, &listeners, &wake_rx, &done_rx, env)
        // `env.job_tx` drops here, closing the job channel; workers
        // finish their current job and exit, and the scope joins them.
    })
}

fn reactor_loop<S: ServeSink + ?Sized>(
    poller: &mut Poller,
    listeners: &[Listener],
    wake_rx: &UnixStream,
    done_rx: &mpsc::Receiver<Done>,
    env: Env<'_, S>,
) -> io::Result<ServerReport> {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn: u64 = TOKEN_CONN_BASE;
    let mut events: Vec<PollEvent> = Vec::new();
    let mut report = ServerReport::default();
    let mut draining = false;
    let mut listeners_live = true;

    loop {
        poller.wait(&mut events, 64)?;
        let batch: Vec<PollEvent> = std::mem::take(&mut events);
        for ev in batch {
            if ev.token == TOKEN_WAKE {
                drain_wake(wake_rx);
                while let Ok(done) = done_rx.try_recv() {
                    let token = done.conn;
                    if let Some(conn) = conns.get_mut(&token) {
                        handle_done(conn, done, &env, &mut draining, &mut report);
                    }
                    sync_conn(poller, &mut conns, token, &env, draining);
                }
            } else if ev.token < TOKEN_CONN_BASE {
                let listener = &listeners[(ev.token - TOKEN_LISTENER_BASE) as usize];
                if !listeners_live {
                    continue;
                }
                while let Some(stream) = listener.accept()? {
                    stream.set_nonblocking()?;
                    let token = next_conn;
                    next_conn += 1;
                    poller.register(stream.raw_fd(), token, Interest::READ)?;
                    conns.insert(
                        token,
                        Conn {
                            token,
                            stream,
                            decoder: FrameDecoder::new(env.config.max_frame),
                            interest: Interest::READ,
                            write_buf: Vec::new(),
                            write_pos: 0,
                            next_seq: 0,
                            flush_seq: 0,
                            completed: BTreeMap::new(),
                            inflight: 0,
                            barrier: false,
                            barrier_seq: None,
                            pending_delta: None,
                            deferred: VecDeque::new(),
                            tenant: env.tenants.tenant(&env.config.default_tenant),
                            read_eof: false,
                            dead: false,
                        },
                    );
                    report.connections += 1;
                }
            } else if let Some(conn) = conns.get_mut(&ev.token) {
                if ev.readable && conn.interest.readable {
                    handle_readable(conn, &env, &mut draining, &mut report);
                }
                if ev.writable {
                    conn.try_write();
                }
                sync_conn(poller, &mut conns, ev.token, &env, draining);
            }
        }
        if draining && listeners_live {
            // Stop accepting and stop reading: finish what was admitted.
            for listener in listeners {
                poller.deregister(listener.raw_fd())?;
            }
            listeners_live = false;
            let tokens: Vec<u64> = conns.keys().copied().collect();
            for token in tokens {
                sync_conn(poller, &mut conns, token, &env, draining);
            }
        }
        if draining && conns.values().all(Conn::idle) {
            report.shutdown = true;
            return Ok(report);
        }
    }
}

fn drain_wake(wake_rx: &UnixStream) {
    let mut buf = [0u8; 64];
    let mut wake = wake_rx;
    loop {
        match wake.read(&mut buf) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Reads everything available, decodes it, and admits each decoded item.
fn handle_readable<S: ServeSink + ?Sized>(
    conn: &mut Conn,
    env: &Env<'_, S>,
    draining: &mut bool,
    report: &mut ServerReport,
) {
    let mut items: Vec<FrameItem> = Vec::new();
    let mut buf = [0u8; 16 << 10];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.read_eof = true;
                if let Some(violation) = conn.decoder.on_eof() {
                    reject_frame(conn, violation, env, report);
                }
                break;
            }
            Ok(n) => conn.decoder.push(&buf[..n], &mut items),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                env.sink.event(ServeEvent::InputError {
                    message: e.to_string(),
                });
                conn.dead = true;
                break;
            }
        }
    }
    for item in items {
        report.frames += 1;
        match item {
            FrameItem::Line(line) => admit_line(conn, line, env, draining, report),
            FrameItem::Violation(violation) => reject_frame(conn, violation, env, report),
        }
    }
}

/// Replies `err <violation>` in sequence and reports the typed failure.
fn reject_frame<S: ServeSink + ?Sized>(
    conn: &mut Conn,
    violation: FrameViolation,
    env: &Env<'_, S>,
    report: &mut ServerReport,
) {
    let error = LineError::Frame(violation);
    let payload = format!("err {error}");
    env.sink.event(ServeEvent::LineFailed {
        line: String::new(),
        error,
    });
    conn.tenant.failed.fetch_add(1, Ordering::Relaxed);
    let seq = conn.next_seq;
    conn.next_seq += 1;
    conn.complete(seq, payload, report);
}

/// Admits one decoded line, deferring it behind an active delta barrier.
fn admit_line<S: ServeSink + ?Sized>(
    conn: &mut Conn,
    line: String,
    env: &Env<'_, S>,
    draining: &mut bool,
    report: &mut ServerReport,
) {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || *draining {
        return;
    }
    if conn.barrier || !conn.deferred.is_empty() {
        conn.deferred.push_back(line);
        return;
    }
    admit_direct(conn, trimmed.to_owned(), env, draining, report);
}

/// Admission proper: assigns the reply sequence and routes the line.
fn admit_direct<S: ServeSink + ?Sized>(
    conn: &mut Conn,
    line: String,
    env: &Env<'_, S>,
    draining: &mut bool,
    report: &mut ServerReport,
) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    if line == "shutdown" {
        conn.complete(seq, "ok shutdown".into(), report);
        *draining = true;
        return;
    }
    if let Some(name) = line.strip_prefix("tenant ") {
        let name = name.trim();
        if name.is_empty() {
            let error = LineError::Malformed {
                reason: "empty tenant name".into(),
            };
            let payload = format!("err {error}");
            env.sink.event(ServeEvent::LineFailed { line, error });
            conn.tenant.failed.fetch_add(1, Ordering::Relaxed);
            conn.complete(seq, payload, report);
            return;
        }
        conn.tenant = env.tenants.tenant(name);
        conn.complete(seq, format!("ok tenant {name}"), report);
        return;
    }
    if let Some(op) = line.strip_prefix("delta ") {
        conn.barrier = true;
        if conn.inflight == 0 {
            conn.barrier_seq = Some(seq);
            let _ = env.job_tx.send(Job {
                conn: conn.token,
                seq,
                kind: JobKind::Delta { op: op.to_owned() },
            });
        } else {
            conn.pending_delta = Some((seq, op.to_owned()));
        }
        return;
    }
    match parse_query(&line) {
        Ok((k, epsilon, pin)) => {
            conn.inflight += 1;
            conn.tenant.queries.fetch_add(1, Ordering::Relaxed);
            let _ = env.job_tx.send(Job {
                conn: conn.token,
                seq,
                kind: JobKind::Query {
                    line,
                    k,
                    epsilon,
                    pin,
                },
            });
        }
        Err(reason) => {
            let error = LineError::Malformed { reason };
            let payload = format!("err {error}");
            env.sink.event(ServeEvent::LineFailed { line, error });
            conn.tenant.failed.fetch_add(1, Ordering::Relaxed);
            conn.complete(seq, payload, report);
        }
    }
}

/// Routes one worker completion: settles barrier/inflight accounting,
/// sequences the reply, dispatches a waiting delta, and drains the
/// deferred queue if the barrier lifted.
fn handle_done<S: ServeSink + ?Sized>(
    conn: &mut Conn,
    done: Done,
    env: &Env<'_, S>,
    draining: &mut bool,
    report: &mut ServerReport,
) {
    if conn.barrier_seq == Some(done.seq) {
        conn.barrier = false;
        conn.barrier_seq = None;
    } else {
        conn.inflight -= 1;
    }
    let counter = match done.kind {
        DoneKind::Answered => &conn.tenant.answered,
        DoneKind::Failed => &conn.tenant.failed,
        DoneKind::DeltaApplied => &conn.tenant.deltas,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    conn.complete(done.seq, done.payload, report);
    if conn.inflight == 0 {
        if let Some((seq, op)) = conn.pending_delta.take() {
            conn.barrier_seq = Some(seq);
            let _ = env.job_tx.send(Job {
                conn: conn.token,
                seq,
                kind: JobKind::Delta { op },
            });
        }
    }
    while !conn.barrier {
        let Some(line) = conn.deferred.pop_front() else {
            break;
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || *draining {
            continue;
        }
        admit_direct(conn, trimmed.to_owned(), env, draining, report);
    }
}

/// Flushes, recomputes poll interest, and closes the connection when it
/// has nothing left to do.
fn sync_conn<S: ServeSink + ?Sized>(
    poller: &mut Poller,
    conns: &mut HashMap<u64, Conn>,
    token: u64,
    env: &Env<'_, S>,
    draining: bool,
) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    if !conn.dead {
        conn.try_write();
    }
    if conn.should_close() {
        let _ = poller.deregister(conn.stream.raw_fd());
        conns.remove(&token);
        return;
    }
    let want = Interest {
        readable: !draining
            && !conn.read_eof
            && !conn.dead
            && conn.write_pending() < backpressure_resume(conn, env.config)
            && conn.deferred.len() < env.config.deferred_cap,
        writable: conn.write_pending() > 0,
    };
    if want != conn.interest {
        if poller
            .reregister(conn.stream.raw_fd(), token, want)
            .is_err()
        {
            conn.dead = true;
            let _ = poller.deregister(conn.stream.raw_fd());
            conns.remove(&token);
            return;
        }
        conn.interest = want;
    }
}

/// Hysteresis: a connection that tripped the high-water mark must drain
/// below the low-water mark before reads resume.
fn backpressure_resume(conn: &Conn, config: &ServerConfig) -> usize {
    if conn.interest.readable {
        config.write_high_water.max(HEADER_LEN)
    } else {
        config.write_low_water.max(HEADER_LEN)
    }
}

fn worker_loop<I, S>(
    index: &I,
    delta: f64,
    jobs: &Mutex<mpsc::Receiver<Job>>,
    done_tx: mpsc::Sender<Done>,
    wake: &UnixStream,
    sink: &S,
) where
    I: ServeIndex,
    S: ServeSink + ?Sized,
{
    loop {
        let job = match jobs.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        let done = match job.kind {
            JobKind::Query {
                line,
                k,
                epsilon,
                pin,
            } => match index.run_query(k, epsilon, delta, pin) {
                Ok(answer) => {
                    let payload = answer
                        .seeds
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join(" ");
                    sink.event(ServeEvent::Answered {
                        line,
                        stats: Box::new(answer.stats),
                    });
                    Done {
                        conn: job.conn,
                        seq: job.seq,
                        kind: DoneKind::Answered,
                        payload,
                    }
                }
                Err(e) => {
                    let error = LineError::Rejected(e);
                    let payload = format!("err {error}");
                    sink.event(ServeEvent::LineFailed { line, error });
                    Done {
                        conn: job.conn,
                        seq: job.seq,
                        kind: DoneKind::Failed,
                        payload,
                    }
                }
            },
            JobKind::Delta { op } => match index.apply_delta_line(&op) {
                Ok(rep) => {
                    let payload = match index.version() {
                        Some(v) => format!("ok delta v{v}"),
                        None => "ok delta".into(),
                    };
                    sink.event(ServeEvent::DeltaApplied {
                        op,
                        report: Box::new(rep),
                    });
                    Done {
                        conn: job.conn,
                        seq: job.seq,
                        kind: DoneKind::DeltaApplied,
                        payload,
                    }
                }
                Err(e) => {
                    let error = LineError::Rejected(e);
                    let payload = format!("err {error}");
                    sink.event(ServeEvent::LineFailed {
                        line: format!("delta {op}"),
                        error,
                    });
                    Done {
                        conn: job.conn,
                        seq: job.seq,
                        kind: DoneKind::Failed,
                        payload,
                    }
                }
            },
        };
        if done_tx.send(done).is_err() {
            break;
        }
        let mut w = wake;
        let _ = w.write(&[1u8]);
    }
}
