//! The async front end: readiness polling ([`sys`]), the length-framed
//! transport ([`frame`]), and the multi-connection reactor ([`server`]).

pub mod frame;
pub mod server;
pub mod sys;
