//! Readiness polling over raw fds with no external crates.
//!
//! The vendored-offline constraint rules out `mio`/`tokio`, so this is
//! the minimal mio-shaped surface the reactor needs: register an fd with
//! a `u64` token and read/write interest, block until something is
//! ready, get `(token, readable, writable, hangup)` events back.
//!
//! On Linux the backend is epoll through direct `extern "C"`
//! declarations (std already links libc, so no crate is needed); on
//! other unixes it falls back to POSIX `poll(2)`, which is the portable
//! equivalent of the kqueue readiness loop on BSDs. Both backends are
//! level-triggered, so the reactor never needs to drain-to-EAGAIN for
//! correctness — only for batching.

/// What the caller wants to hear about for one fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or a peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// One readiness event.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable now (includes EOF/hangup — a read will not block).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
}

#[cfg(target_os = "linux")]
mod backend {
    use super::{Interest, PollEvent};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;

    // x86-64 Linux packs epoll_event; other Linux targets align it.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;

    /// epoll-backed readiness poller.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<u8>, // raw EpollEvent storage, sized on first wait
    }

    fn flags_of(interest: Interest) -> u32 {
        let mut f = 0;
        if interest.readable {
            f |= EPOLLIN;
        }
        if interest.writable {
            f |= EPOLLOUT;
        }
        f
    }

    impl Poller {
        /// A fresh poller with no registrations.
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: Vec::new(),
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: flags_of(interest),
                data: token,
            };
            let ev_ptr = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev as *mut EpollEvent
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, ev_ptr) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Starts watching `fd` under `token`.
        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes the interest (and token) of a watched `fd`.
        pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stops watching `fd`.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ)
        }

        /// Blocks until readiness, filling `events` (up to `capacity`).
        pub fn wait(&mut self, events: &mut Vec<PollEvent>, capacity: usize) -> io::Result<()> {
            events.clear();
            let want = capacity.max(1);
            self.buf.resize(want * std::mem::size_of::<EpollEvent>(), 0);
            let got = loop {
                let got = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr() as *mut EpollEvent,
                        want as c_int,
                        -1,
                    )
                };
                if got >= 0 {
                    break got as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for i in 0..got {
                let ev: EpollEvent = unsafe {
                    std::ptr::read_unaligned((self.buf.as_ptr() as *const EpollEvent).add(i))
                };
                let flags = ev.events;
                events.push(PollEvent {
                    token: ev.data,
                    readable: flags & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: flags & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    use super::{Interest, PollEvent};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short};

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
    }

    const POLLIN: c_short = 0x1;
    const POLLOUT: c_short = 0x4;
    const POLLERR: c_short = 0x8;
    const POLLHUP: c_short = 0x10;

    /// `poll(2)`-backed readiness poller (kqueue-platform fallback).
    #[derive(Debug)]
    pub struct Poller {
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
    }

    fn flags_of(interest: Interest) -> c_short {
        let mut f = 0;
        if interest.readable {
            f |= POLLIN;
        }
        if interest.writable {
            f |= POLLOUT;
        }
        f
    }

    impl Poller {
        /// A fresh poller with no registrations.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        fn position(&self, fd: RawFd) -> Option<usize> {
            self.fds.iter().position(|p| p.fd == fd)
        }

        /// Starts watching `fd` under `token`.
        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.position(fd).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.fds.push(PollFd {
                fd,
                events: flags_of(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        /// Changes the interest (and token) of a watched `fd`.
        pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let i = self
                .position(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds[i].events = flags_of(interest);
            self.tokens[i] = token;
            Ok(())
        }

        /// Stops watching `fd`.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self
                .position(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            Ok(())
        }

        /// Blocks until readiness, filling `events`.
        pub fn wait(&mut self, events: &mut Vec<PollEvent>, _capacity: usize) -> io::Result<()> {
            events.clear();
            loop {
                let got = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len(), -1) };
                if got >= 0 {
                    break;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            for (p, &token) in self.fds.iter().zip(&self.tokens) {
                if p.revents == 0 {
                    continue;
                }
                events.push(PollEvent {
                    token,
                    readable: p.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: p.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

pub use backend::Poller;

/// Token of the reactor's self-wake channel.
pub const TOKEN_WAKE: u64 = 0;
/// First listener token; listeners count up from here.
pub const TOKEN_LISTENER_BASE: u64 = 1;
/// First connection token.
pub const TOKEN_CONN_BASE: u64 = 1 << 20;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poller_reports_readable_after_write() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 42, Interest::READ).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 8).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));
        let mut buf = [0u8; 4];
        let mut b2 = &b;
        assert_eq!(b2.read(&mut buf).unwrap(), 1);
        poller.deregister(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn reregister_switches_interest() {
        let (_a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();
        // A socket with empty send buffer is immediately writable.
        poller
            .reregister(
                b.as_raw_fd(),
                7,
                Interest {
                    readable: false,
                    writable: true,
                },
            )
            .unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 8).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));
    }
}
