//! Length-framed line transport.
//!
//! One frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 — exactly one line of the [`subsim_delta::serve_queries`]
//! line protocol, without a trailing newline. Framing lets many logical
//! lines interleave on one socket without ambiguity and gives the server
//! a cheap admission unit for batching.
//!
//! The decoder is incremental (feed it whatever `read` returned) and
//! degrades per-frame, not per-connection: an oversized declaration skips
//! exactly the declared payload so the stream stays in sync, and a
//! non-UTF-8 payload rejects that frame alone. Only a stream that ends
//! mid-header or mid-payload ([`FrameViolation::Truncated`]) is fatal to
//! the connection — there is no resynchronization point after a partial
//! frame.

use subsim_delta::FrameViolation;

/// Frame header width: 4-byte big-endian payload length.
pub const HEADER_LEN: usize = 4;

/// One decoded item: a protocol line, or a typed violation of the frame
/// transport (the connection keeps decoding after either).
#[derive(Debug, PartialEq)]
pub enum FrameItem {
    /// A complete, valid UTF-8 payload.
    Line(String),
    /// A violating frame, skipped in place.
    Violation(FrameViolation),
}

/// Appends one encoded frame carrying `payload` to `out`.
///
/// # Panics
/// Panics if `payload` exceeds `u32::MAX` bytes.
pub fn encode_frame(payload: &str, out: &mut Vec<u8>) {
    let len = u32::try_from(payload.len()).expect("frame payload exceeds u32::MAX");
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload.as_bytes());
}

/// Incremental decoder for the length-framed transport.
#[derive(Debug)]
pub struct FrameDecoder {
    max_frame: usize,
    buf: Vec<u8>,
    pos: usize,
    /// Payload bytes of an oversized frame still to discard, paired with
    /// the violation to report once skipping completes.
    skipping: Option<(usize, FrameViolation)>,
}

impl FrameDecoder {
    /// A decoder rejecting payloads longer than `max_frame` bytes.
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            max_frame,
            buf: Vec::new(),
            pos: 0,
            skipping: None,
        }
    }

    /// The configured payload cap.
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Feeds `bytes` in and appends every newly completed item to `out`.
    pub fn push(&mut self, bytes: &[u8], out: &mut Vec<FrameItem>) {
        self.buf.extend_from_slice(bytes);
        loop {
            if let Some((remaining, violation)) = self.skipping.take() {
                let avail = self.buf.len() - self.pos;
                if avail < remaining {
                    // Still mid-skip: consume everything, report later.
                    self.pos = self.buf.len();
                    self.skipping = Some((remaining - avail, violation));
                    break;
                }
                self.pos += remaining;
                out.push(FrameItem::Violation(violation));
            }
            let avail = self.buf.len() - self.pos;
            if avail < HEADER_LEN {
                break;
            }
            let header: [u8; HEADER_LEN] = self.buf[self.pos..self.pos + HEADER_LEN]
                .try_into()
                .unwrap();
            let declared = u32::from_be_bytes(header) as usize;
            if declared > self.max_frame {
                self.pos += HEADER_LEN;
                self.skipping = Some((
                    declared,
                    FrameViolation::Oversized {
                        declared,
                        max: self.max_frame,
                    },
                ));
                continue;
            }
            if avail < HEADER_LEN + declared {
                break;
            }
            let start = self.pos + HEADER_LEN;
            let payload = &self.buf[start..start + declared];
            out.push(match std::str::from_utf8(payload) {
                Ok(s) => FrameItem::Line(s.to_owned()),
                Err(_) => FrameItem::Violation(FrameViolation::NotUtf8),
            });
            self.pos = start + declared;
        }
        // Compact consumed bytes so the buffer stays bounded by one frame.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Called when the stream hits EOF: reports the partial frame (or
    /// unfinished oversized skip) still in flight, if any.
    pub fn on_eof(&self) -> Option<FrameViolation> {
        if let Some((remaining, _)) = &self.skipping {
            return Some(FrameViolation::Truncated {
                missing: *remaining,
            });
        }
        let avail = self.buf.len() - self.pos;
        if avail == 0 {
            return None;
        }
        let missing = if avail < HEADER_LEN {
            HEADER_LEN - avail
        } else {
            let header: [u8; HEADER_LEN] = self.buf[self.pos..self.pos + HEADER_LEN]
                .try_into()
                .unwrap();
            let declared = u32::from_be_bytes(header) as usize;
            HEADER_LEN + declared - avail
        };
        Some(FrameViolation::Truncated { missing })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(decoder: &mut FrameDecoder, bytes: &[u8]) -> Vec<FrameItem> {
        let mut out = Vec::new();
        decoder.push(bytes, &mut out);
        out
    }

    #[test]
    fn roundtrips_frames_across_arbitrary_splits() {
        let mut wire = Vec::new();
        encode_frame("5 0.2", &mut wire);
        encode_frame("delta + 0 1 0.5", &mut wire);
        encode_frame("", &mut wire);
        // Feed one byte at a time — worst-case fragmentation.
        let mut decoder = FrameDecoder::new(64);
        let mut items = Vec::new();
        for b in &wire {
            decoder.push(std::slice::from_ref(b), &mut items);
        }
        assert_eq!(
            items,
            vec![
                FrameItem::Line("5 0.2".into()),
                FrameItem::Line("delta + 0 1 0.5".into()),
                FrameItem::Line(String::new()),
            ]
        );
        assert_eq!(decoder.on_eof(), None);
    }

    #[test]
    fn oversized_frame_is_skipped_and_stream_resyncs() {
        let mut decoder = FrameDecoder::new(8);
        let mut wire = Vec::new();
        encode_frame("this payload is far too long", &mut wire);
        encode_frame("3", &mut wire);
        let items = drain(&mut decoder, &wire);
        assert_eq!(
            items,
            vec![
                FrameItem::Violation(FrameViolation::Oversized {
                    declared: 28,
                    max: 8
                }),
                FrameItem::Line("3".into()),
            ]
        );
    }

    #[test]
    fn oversized_skip_spans_reads_and_truncates_at_eof() {
        let mut decoder = FrameDecoder::new(4);
        let mut wire = Vec::new();
        encode_frame("0123456789", &mut wire);
        // Deliver the header plus only 3 of the 10 payload bytes.
        let items = drain(&mut decoder, &wire[..HEADER_LEN + 3]);
        assert!(items.is_empty());
        assert_eq!(
            decoder.on_eof(),
            Some(FrameViolation::Truncated { missing: 7 })
        );
        // Delivering the rest completes the skip and reports the cap hit.
        let items = drain(&mut decoder, &wire[HEADER_LEN + 3..]);
        assert_eq!(
            items,
            vec![FrameItem::Violation(FrameViolation::Oversized {
                declared: 10,
                max: 4
            })]
        );
        assert_eq!(decoder.on_eof(), None);
    }

    #[test]
    fn invalid_utf8_rejects_only_that_frame() {
        let mut decoder = FrameDecoder::new(16);
        let mut wire = vec![0, 0, 0, 2, 0xff, 0xfe];
        encode_frame("2", &mut wire);
        let items = drain(&mut decoder, &wire);
        assert_eq!(
            items,
            vec![
                FrameItem::Violation(FrameViolation::NotUtf8),
                FrameItem::Line("2".into()),
            ]
        );
    }

    #[test]
    fn truncation_reports_missing_bytes() {
        // Mid-header.
        let mut decoder = FrameDecoder::new(16);
        assert!(drain(&mut decoder, &[0, 0]).is_empty());
        assert_eq!(
            decoder.on_eof(),
            Some(FrameViolation::Truncated { missing: 2 })
        );
        // Mid-payload.
        let mut decoder = FrameDecoder::new(16);
        assert!(drain(&mut decoder, &[0, 0, 0, 5, b'x']).is_empty());
        assert_eq!(
            decoder.on_eof(),
            Some(FrameViolation::Truncated { missing: 4 })
        );
    }
}
