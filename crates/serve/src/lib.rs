//! `subsim-serve` — sharded RR pools behind an async multi-connection
//! server.
//!
//! Two layers, composable but independent:
//!
//! - [`sharded`] — [`ShardedDeltaIndex`] partitions chunk generation
//!   across N shards by chunk ownership (`chunk % shards`), each shard
//!   holding its own arena, cached inverted coverage index, and
//!   atomically published snapshot. Selection merges per-shard partial
//!   coverage counts at greedy-pick time and evaluates the OPIM Eq. 1 /
//!   Eq. 2 certificate on the union, so the N-shard index answers
//!   **byte-identically** to the sequential [`subsim_delta::DeltaIndex`]
//!   for the same `(seed, script)` — sharding changes wall-clock, never
//!   output. Delta application keeps the single-version barrier: one
//!   snapshot swap republishes every shard at the new version.
//! - [`net`] — a dependency-free readiness loop (epoll on Linux,
//!   `poll(2)` elsewhere) serving the length-framed line protocol over
//!   many unix-socket/TCP connections: batched admission, per-connection
//!   in-order replies, bounded write queues with high/low-water
//!   backpressure, per-connection delta barriers, typed per-frame
//!   errors, per-tenant counters, and graceful shutdown.

#![warn(missing_docs)]

pub mod net;
pub mod sharded;

pub use net::frame::{encode_frame, FrameDecoder, FrameItem, HEADER_LEN};
pub use net::server::{serve_framed, Listener, ServerConfig, ServerReport, SocketPathGuard};
pub use sharded::{ShardSnapshot, ShardedDeltaIndex, ShardedSnapshot};
