//! The sketched validation pool: per-node count-distinct sketches over
//! global RR-set ids, organised as per-chunk sub-sketches.
//!
//! Layout invariants, all load-bearing for determinism:
//!
//! - Set ids are **global**: `chunk_id * chunk_size + offset`. A shard
//!   that owns chunk `c` inserts exactly the ids the sequential index
//!   would, so register-wise max across shards reproduces the sequential
//!   registers bit-for-bit for any shard count.
//! - A [`ChunkSketch`] is a pure function of `(chunk content, precision)`
//!   in canonical form (keys sorted, entries max-deduplicated and sorted
//!   by register index), regardless of build order. Delta repair can
//!   therefore rebuild a dirty chunk's sub-sketch in isolation and land
//!   on exactly the bytes a full rebuild would produce.
//! - Serialization emits the canonical form directly, so equal pools
//!   round-trip byte-identically (pinned by the proptest battery).

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use subsim_diffusion::RrCollection;
use subsim_graph::NodeId;

use crate::hll::{self, num_registers, pack_entry, unpack_entry, MAX_PRECISION, MIN_PRECISION};

/// Serialized sketch-block magic.
pub const SKETCH_MAGIC: &[u8; 8] = b"SUBSIMSK";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Count-distinct sub-sketch for one pool chunk: for every node that
/// appears in the chunk's RR sets, the HLL registers of the set ids that
/// contain it. Nodes touching few sets stay in the packed sparse form
/// (`idx << 6 | rank` entries); nodes whose register occupancy crosses
/// `m / 2` flip to a dense `m`-byte block (the break-even point, since a
/// sparse entry costs two bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkSketch {
    /// Exact-representation bytes this sub-sketch displaces
    /// (`4 * nodes + 8 * sets` for the arena slice it replaces).
    exact_bytes: u64,
    sparse_keys: Vec<NodeId>,
    /// `sparse_keys.len() + 1` offsets into `sparse_entries`.
    sparse_offsets: Vec<u32>,
    sparse_entries: Vec<u16>,
    dense_keys: Vec<NodeId>,
    /// `num_registers(p)` bytes per dense key.
    dense_regs: Vec<u8>,
}

impl ChunkSketch {
    /// Builds the canonical sub-sketch for `chunk_size` sets starting at
    /// `first_set` in `rr`, which hold global ids starting at `first_id`.
    pub fn build(
        rr: &RrCollection,
        first_set: usize,
        chunk_size: usize,
        first_id: u64,
        precision: u8,
    ) -> Self {
        let m = num_registers(precision);
        let mut regs: BTreeMap<NodeId, Vec<u8>> = BTreeMap::new();
        let mut nodes = 0u64;
        for off in 0..chunk_size {
            let (idx, rank) = hll::hash_set_id(first_id + off as u64, precision);
            let set = rr.get(first_set + off);
            nodes += set.len() as u64;
            for &v in set {
                let r = regs.entry(v).or_insert_with(|| vec![0u8; m]);
                let slot = &mut r[idx as usize];
                *slot = (*slot).max(rank);
            }
        }
        let mut out = ChunkSketch {
            exact_bytes: 4 * nodes + 8 * chunk_size as u64,
            sparse_keys: Vec::new(),
            sparse_offsets: vec![0],
            sparse_entries: Vec::new(),
            dense_keys: Vec::new(),
            dense_regs: Vec::new(),
        };
        for (v, r) in regs {
            let occupied = r.iter().filter(|&&x| x != 0).count();
            if occupied > m / 2 {
                out.dense_keys.push(v);
                out.dense_regs.extend_from_slice(&r);
            } else {
                out.sparse_keys.push(v);
                for (idx, &rank) in r.iter().enumerate() {
                    if rank != 0 {
                        out.sparse_entries.push(pack_entry(idx as u16, rank));
                    }
                }
                out.sparse_offsets.push(out.sparse_entries.len() as u32);
            }
        }
        out
    }

    /// Whether `v` appears anywhere in this chunk's RR sets — the same
    /// membership predicate the exact inverted index answers, which is
    /// what delta repair keys its dirty-chunk detection on.
    pub fn contains(&self, v: NodeId) -> bool {
        self.sparse_keys.binary_search(&v).is_ok() || self.dense_keys.binary_search(&v).is_ok()
    }

    /// Register-wise max of `v`'s registers into `regs` (no-op when `v`
    /// is absent from the chunk).
    pub fn merge_node_into(&self, v: NodeId, regs: &mut [u8]) {
        if let Ok(i) = self.dense_keys.binary_search(&v) {
            let m = regs.len();
            hll::merge_registers(regs, &self.dense_regs[i * m..(i + 1) * m]);
            return;
        }
        if let Ok(i) = self.sparse_keys.binary_search(&v) {
            let lo = self.sparse_offsets[i] as usize;
            let hi = self.sparse_offsets[i + 1] as usize;
            for &e in &self.sparse_entries[lo..hi] {
                let (idx, rank) = unpack_entry(e);
                let slot = &mut regs[idx as usize];
                *slot = (*slot).max(rank);
            }
        }
    }

    /// Resident heap bytes of the canonical representation.
    pub fn resident_bytes(&self) -> u64 {
        (self.sparse_keys.len() * 4
            + self.sparse_offsets.len() * 4
            + self.sparse_entries.len() * 2
            + self.dense_keys.len() * 4
            + self.dense_regs.len()) as u64
    }

    /// Exact-arena bytes this sub-sketch displaced.
    pub fn exact_bytes(&self) -> u64 {
        self.exact_bytes
    }

    fn keys(&self) -> impl Iterator<Item = NodeId> + '_ {
        // Canonical order is irrelevant to callers; both halves are sorted.
        self.sparse_keys
            .iter()
            .chain(self.dense_keys.iter())
            .copied()
    }
}

/// The sketched stand-in for an exact validation pool: one
/// [`ChunkSketch`] per generated chunk, keyed by global chunk id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SketchedPool {
    precision: u8,
    chunk_size: usize,
    graph_n: usize,
    /// Sorted, strictly increasing global chunk ids.
    chunk_ids: Vec<u64>,
    chunks: Vec<ChunkSketch>,
}

impl SketchedPool {
    pub fn new(graph_n: usize, chunk_size: usize, precision: u8) -> Self {
        assert!(
            (MIN_PRECISION..=MAX_PRECISION).contains(&precision),
            "sketch precision {precision} outside {MIN_PRECISION}..={MAX_PRECISION}"
        );
        assert!(chunk_size > 0, "chunk_size must be positive");
        SketchedPool {
            precision,
            chunk_size,
            graph_n,
            chunk_ids: Vec::new(),
            chunks: Vec::new(),
        }
    }

    pub fn precision(&self) -> u8 {
        self.precision
    }

    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    pub fn graph_n(&self) -> usize {
        self.graph_n
    }

    pub fn num_chunks(&self) -> usize {
        self.chunk_ids.len()
    }

    /// Number of RR sets the sketch stands in for.
    pub fn len_sets(&self) -> usize {
        self.chunk_ids.len() * self.chunk_size
    }

    pub fn is_empty(&self) -> bool {
        self.chunk_ids.is_empty()
    }

    pub fn chunk_ids(&self) -> &[u64] {
        &self.chunk_ids
    }

    pub fn contains_chunk(&self, chunk_id: u64) -> bool {
        self.chunk_ids.binary_search(&chunk_id).is_ok()
    }

    /// Relative standard error of the union estimate at this precision.
    pub fn rel_std_error(&self) -> f64 {
        hll::rel_std_error(self.precision)
    }

    /// Absorbs a freshly generated batch of whole chunks whose first
    /// global chunk id is `first_chunk`. `rr` must hold an exact multiple
    /// of `chunk_size` sets. Panics if a chunk id is already present.
    pub fn absorb_batch(&mut self, first_chunk: u64, rr: &RrCollection) {
        assert_eq!(
            rr.graph_n(),
            self.graph_n,
            "batch is over a different graph"
        );
        assert_eq!(rr.len() % self.chunk_size, 0, "batch is not whole chunks");
        for c in 0..rr.len() / self.chunk_size {
            let chunk_id = first_chunk + c as u64;
            let sketch = ChunkSketch::build(
                rr,
                c * self.chunk_size,
                self.chunk_size,
                chunk_id * self.chunk_size as u64,
                self.precision,
            );
            match self.chunk_ids.binary_search(&chunk_id) {
                Ok(_) => panic!("chunk {chunk_id} already sketched"),
                Err(pos) => {
                    self.chunk_ids.insert(pos, chunk_id);
                    self.chunks.insert(pos, sketch);
                }
            }
        }
    }

    /// Absorbs freshly generated whole chunks with explicit (possibly
    /// non-contiguous) global ids, in batch order: sets
    /// `j*chunk_size..(j+1)*chunk_size` of `rr` belong to chunk `ids[j]`
    /// — the layout `try_generate_chunk_ids` produces for a shard's
    /// owned chunk list. Panics if an id is already present.
    pub fn absorb_chunk_ids(&mut self, ids: &[u64], rr: &RrCollection) {
        assert_eq!(
            rr.graph_n(),
            self.graph_n,
            "batch is over a different graph"
        );
        assert_eq!(
            rr.len(),
            ids.len() * self.chunk_size,
            "batch must hold exactly one chunk per id"
        );
        for (j, &chunk_id) in ids.iter().enumerate() {
            let sketch = ChunkSketch::build(
                rr,
                j * self.chunk_size,
                self.chunk_size,
                chunk_id * self.chunk_size as u64,
                self.precision,
            );
            match self.chunk_ids.binary_search(&chunk_id) {
                Ok(_) => panic!("chunk {chunk_id} already sketched"),
                Err(pos) => {
                    self.chunk_ids.insert(pos, chunk_id);
                    self.chunks.insert(pos, sketch);
                }
            }
        }
    }

    /// Replaces the sub-sketch of an existing chunk with one rebuilt from
    /// `chunk_size` regenerated sets starting at `first_set` in `rr`.
    /// Panics if the chunk was never absorbed.
    pub fn replace_chunk(&mut self, chunk_id: u64, rr: &RrCollection, first_set: usize) {
        assert_eq!(
            rr.graph_n(),
            self.graph_n,
            "batch is over a different graph"
        );
        let pos = self
            .chunk_ids
            .binary_search(&chunk_id)
            .unwrap_or_else(|_| panic!("chunk {chunk_id} not sketched"));
        self.chunks[pos] = ChunkSketch::build(
            rr,
            first_set,
            self.chunk_size,
            chunk_id * self.chunk_size as u64,
            self.precision,
        );
    }

    /// Global ids of chunks whose key set intersects `targets` — exactly
    /// the chunks the exact inverted index would flag dirty for a delta
    /// over those endpoints.
    pub fn dirty_chunks(&self, targets: &[NodeId]) -> Vec<u64> {
        self.chunk_ids
            .iter()
            .zip(&self.chunks)
            .filter(|(_, s)| targets.iter().any(|&v| s.contains(v)))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Merges the registers of `seeds`' union across every chunk into
    /// `regs` (resized and zeroed first). Max is order-independent, so
    /// the result is identical for any chunk/shard iteration order.
    pub fn union_into(&self, seeds: &[NodeId], regs: &mut Vec<u8>) {
        regs.clear();
        regs.resize(num_registers(self.precision), 0);
        self.merge_union_into(seeds, regs);
    }

    /// As [`union_into`](Self::union_into) but max-merging into existing
    /// register content — the sharded path folds every shard's pool into
    /// one scratch array before taking a single estimate.
    pub fn merge_union_into(&self, seeds: &[NodeId], regs: &mut [u8]) {
        assert_eq!(regs.len(), num_registers(self.precision));
        for sketch in &self.chunks {
            for &v in seeds {
                sketch.merge_node_into(v, regs);
            }
        }
    }

    /// Union cardinality estimate for `seeds` over this pool alone.
    pub fn estimate_union(&self, seeds: &[NodeId]) -> f64 {
        let mut regs = Vec::new();
        self.union_into(seeds, &mut regs);
        hll::estimate(&regs)
    }

    /// Folds `other`'s chunks into `self`. The chunk id sets must be
    /// disjoint (shards own disjoint chunks); configs must match.
    pub fn merge_from(&mut self, other: &SketchedPool) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        assert_eq!(self.chunk_size, other.chunk_size, "chunk size mismatch");
        assert_eq!(self.graph_n, other.graph_n, "graph mismatch");
        for (&id, sketch) in other.chunk_ids.iter().zip(&other.chunks) {
            match self.chunk_ids.binary_search(&id) {
                Ok(_) => panic!("chunk {id} present in both pools"),
                Err(pos) => {
                    self.chunk_ids.insert(pos, id);
                    self.chunks.insert(pos, sketch.clone());
                }
            }
        }
    }

    /// Splits by chunk ownership (`chunk_id % shards`) — the inverse of
    /// merging per-shard pools, used when loading a union snapshot into a
    /// sharded index.
    pub fn split(&self, shards: usize) -> Vec<SketchedPool> {
        assert!(shards > 0);
        let mut out: Vec<SketchedPool> = (0..shards)
            .map(|_| SketchedPool::new(self.graph_n, self.chunk_size, self.precision))
            .collect();
        for (&id, sketch) in self.chunk_ids.iter().zip(&self.chunks) {
            let s = (id % shards as u64) as usize;
            out[s].chunk_ids.push(id);
            out[s].chunks.push(sketch.clone());
        }
        out
    }

    /// Resident heap bytes across all sub-sketches (keys + offsets +
    /// entries + dense registers).
    pub fn resident_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.resident_bytes()).sum::<u64>()
            + (self.chunk_ids.len() * 8) as u64
    }

    /// Exact-arena bytes the sketch displaces (what the same sets would
    /// cost in an `RrCollection`).
    pub fn displaced_exact_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.exact_bytes()).sum()
    }

    /// Serializes the canonical form. Equal pools produce identical
    /// bytes; `read_from` inverts this exactly.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(SKETCH_MAGIC)?;
        w.write_all(&[self.precision])?;
        w.write_all(&(self.chunk_size as u64).to_le_bytes())?;
        w.write_all(&(self.graph_n as u64).to_le_bytes())?;
        w.write_all(&(self.chunk_ids.len() as u64).to_le_bytes())?;
        for (&id, c) in self.chunk_ids.iter().zip(&self.chunks) {
            w.write_all(&id.to_le_bytes())?;
            w.write_all(&c.exact_bytes.to_le_bytes())?;
            w.write_all(&(c.sparse_keys.len() as u64).to_le_bytes())?;
            w.write_all(&(c.dense_keys.len() as u64).to_le_bytes())?;
            w.write_all(&(c.sparse_entries.len() as u64).to_le_bytes())?;
            for &k in &c.sparse_keys {
                w.write_all(&k.to_le_bytes())?;
            }
            for &o in &c.sparse_offsets {
                w.write_all(&o.to_le_bytes())?;
            }
            for &e in &c.sparse_entries {
                w.write_all(&e.to_le_bytes())?;
            }
            for &k in &c.dense_keys {
                w.write_all(&k.to_le_bytes())?;
            }
            w.write_all(&c.dense_regs)?;
        }
        Ok(())
    }

    /// Deserializes and structurally validates a sketch block. Every
    /// violation is an `InvalidData` error with a reason — callers map
    /// these to typed snapshot mismatches, never to a silent fallback.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<SketchedPool> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != SKETCH_MAGIC {
            return Err(bad("bad sketch block magic"));
        }
        let precision = read_u8(r)?;
        if !(MIN_PRECISION..=MAX_PRECISION).contains(&precision) {
            return Err(bad(format!(
                "sketch precision {precision} outside {MIN_PRECISION}..={MAX_PRECISION}"
            )));
        }
        let m = num_registers(precision);
        let max_rank = 64 - precision + 1;
        let chunk_size = read_u64(r)? as usize;
        if chunk_size == 0 {
            return Err(bad("sketch chunk_size is zero"));
        }
        let graph_n = read_u64(r)? as usize;
        let count = read_u64(r)? as usize;
        let mut pool = SketchedPool::new(graph_n, chunk_size, precision);
        let mut prev_id: Option<u64> = None;
        for _ in 0..count {
            let id = read_u64(r)?;
            if prev_id.is_some_and(|p| p >= id) {
                return Err(bad("sketch chunk ids not strictly increasing"));
            }
            prev_id = Some(id);
            let exact_bytes = read_u64(r)?;
            let n_sparse = read_u64(r)? as usize;
            let n_dense = read_u64(r)? as usize;
            let n_entries = read_u64(r)? as usize;
            if n_sparse > graph_n || n_dense > graph_n {
                return Err(bad("sketch key count exceeds graph size"));
            }
            if n_entries > n_sparse * m {
                return Err(bad("sketch entry count exceeds sparse capacity"));
            }
            let sparse_keys = read_keys(r, n_sparse, graph_n)?;
            let mut sparse_offsets = Vec::with_capacity(n_sparse + 1);
            for _ in 0..=n_sparse {
                sparse_offsets.push(read_u32(r)?);
            }
            if sparse_offsets[0] != 0
                || sparse_offsets[n_sparse] as usize != n_entries
                || sparse_offsets.windows(2).any(|w| w[0] > w[1])
            {
                return Err(bad("sketch sparse offsets not monotone"));
            }
            let mut sparse_entries = Vec::with_capacity(n_entries);
            for _ in 0..n_entries {
                sparse_entries.push(read_u16(r)?);
            }
            for w in sparse_offsets.windows(2) {
                let span = &sparse_entries[w[0] as usize..w[1] as usize];
                let mut prev_idx: Option<u16> = None;
                for &e in span {
                    let (idx, rank) = unpack_entry(e);
                    if idx as usize >= m || rank == 0 || rank > max_rank {
                        return Err(bad("sketch entry out of range"));
                    }
                    if prev_idx.is_some_and(|p| p >= idx) {
                        return Err(bad("sketch entries not sorted by register"));
                    }
                    prev_idx = Some(idx);
                }
            }
            let dense_keys = read_keys(r, n_dense, graph_n)?;
            let mut dense_regs = vec![0u8; n_dense * m];
            r.read_exact(&mut dense_regs)?;
            if dense_regs.iter().any(|&x| x > max_rank) {
                return Err(bad("sketch dense register out of range"));
            }
            let sketch = ChunkSketch {
                exact_bytes,
                sparse_keys,
                sparse_offsets,
                sparse_entries,
                dense_keys,
                dense_regs,
            };
            // Keys must not straddle both forms.
            if sketch
                .sparse_keys
                .iter()
                .any(|k| sketch.dense_keys.binary_search(k).is_ok())
            {
                return Err(bad("sketch key present in both sparse and dense forms"));
            }
            pool.chunk_ids.push(id);
            pool.chunks.push(sketch);
        }
        Ok(pool)
    }

    /// All distinct node keys across chunks (test/diagnostic helper).
    pub fn key_count(&self) -> usize {
        self.chunks.iter().map(|c| c.keys().count()).sum()
    }
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_keys<R: Read>(r: &mut R, count: usize, graph_n: usize) -> io::Result<Vec<NodeId>> {
    let mut keys = Vec::with_capacity(count);
    let mut prev: Option<NodeId> = None;
    for _ in 0..count {
        let k = read_u32(r)?;
        if k as usize >= graph_n {
            return Err(bad("sketch key outside graph"));
        }
        if prev.is_some_and(|p| p >= k) {
            return Err(bad("sketch keys not strictly increasing"));
        }
        prev = Some(k);
        keys.push(k);
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hll::DEFAULT_PRECISION;

    fn pool_with(sets: &[&[NodeId]], chunk_size: usize, n: usize, p: u8) -> SketchedPool {
        let mut rr = RrCollection::new(n);
        for s in sets {
            rr.push(s);
        }
        let mut pool = SketchedPool::new(n, chunk_size, p);
        pool.absorb_batch(0, &rr);
        pool
    }

    #[test]
    fn membership_matches_chunk_content() {
        let pool = pool_with(
            &[&[1, 2, 3], &[2, 4], &[5, 6], &[6, 7]],
            2,
            16,
            DEFAULT_PRECISION,
        );
        // Chunk 0 holds sets {1,2,3},{2,4}; chunk 1 holds {5,6},{6,7}.
        assert_eq!(pool.dirty_chunks(&[2]), vec![0]);
        assert_eq!(pool.dirty_chunks(&[6]), vec![1]);
        assert_eq!(pool.dirty_chunks(&[3, 7]), vec![0, 1]);
        assert!(pool.dirty_chunks(&[15]).is_empty());
    }

    #[test]
    fn union_estimate_counts_distinct_sets() {
        // Node 0 in every set, node 1 in half: estimate(union {0}) ≈ sets.
        let n = 64usize;
        let chunk = 8usize;
        let mut rr = RrCollection::new(n);
        for i in 0..512usize {
            if i % 2 == 0 {
                rr.push(&[0, 1]);
            } else {
                rr.push(&[0, 2]);
            }
        }
        let mut pool = SketchedPool::new(n, chunk, 8);
        pool.absorb_batch(0, &rr);
        let est_all = pool.estimate_union(&[0]);
        let est_half = pool.estimate_union(&[1]);
        let sigma = pool.rel_std_error();
        assert!(
            (est_all - 512.0).abs() / 512.0 < 4.0 * sigma,
            "est_all={est_all}"
        );
        assert!(
            (est_half - 256.0).abs() / 256.0 < 4.0 * sigma,
            "est_half={est_half}"
        );
        // Union of {1, 2} covers everything node 0 does.
        let est_both = pool.estimate_union(&[1, 2]);
        assert_eq!(est_both, est_all);
    }

    #[test]
    fn merge_of_split_matches_original() {
        let n = 128usize;
        let chunk = 4usize;
        let mut rr = RrCollection::new(n);
        for i in 0..64u32 {
            rr.push(&[i % 128, (i * 7) % 128, (i * 13) % 128]);
        }
        let mut pool = SketchedPool::new(n, chunk, 6);
        pool.absorb_batch(0, &rr);
        for shards in [1usize, 2, 3, 5] {
            let parts = pool.split(shards);
            let mut merged = SketchedPool::new(n, chunk, 6);
            for part in parts.iter().rev() {
                merged.merge_from(part);
            }
            assert_eq!(merged, pool, "shards={shards}");
        }
    }

    #[test]
    fn serialization_round_trips_byte_identically() {
        let pool = pool_with(
            &[&[1, 2, 3], &[2, 4], &[5, 6], &[6, 7], &[0, 9], &[9, 10]],
            3,
            16,
            5,
        );
        let mut buf = Vec::new();
        pool.write_to(&mut buf).unwrap();
        let back = SketchedPool::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, pool);
        let mut buf2 = Vec::new();
        back.write_to(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn corrupt_blocks_are_typed_errors() {
        let pool = pool_with(&[&[1, 2], &[3, 4]], 2, 8, 4);
        let mut buf = Vec::new();
        pool.write_to(&mut buf).unwrap();
        // Magic flip.
        let mut bad_magic = buf.clone();
        bad_magic[0] ^= 0xff;
        assert!(SketchedPool::read_from(&mut bad_magic.as_slice()).is_err());
        // Precision out of range.
        let mut bad_p = buf.clone();
        bad_p[8] = 63;
        assert!(SketchedPool::read_from(&mut bad_p.as_slice()).is_err());
        // Truncation.
        let short = &buf[..buf.len() - 1];
        assert!(SketchedPool::read_from(&mut &*short).is_err());
    }

    #[test]
    fn replace_chunk_is_pure_function_of_content() {
        let n = 32usize;
        let mut rr = RrCollection::new(n);
        for i in 0..8u32 {
            rr.push(&[i, i + 1, (i * 3) % 32]);
        }
        let mut pool = SketchedPool::new(n, 4, DEFAULT_PRECISION);
        pool.absorb_batch(0, &rr);
        let reference = pool.clone();
        // Rebuild chunk 1 from the same content laid out at offset 4.
        pool.replace_chunk(1, &rr, 4);
        assert_eq!(pool, reference);
    }

    #[test]
    fn compression_beats_exact_on_heavy_pools() {
        // Hub-heavy chunk: every set contains the same 40 hubs, so each
        // hub's sparse entries amortize over chunk_size sets.
        let n = 64usize;
        let chunk = 512usize;
        let mut rr = RrCollection::new(n);
        let hubs: Vec<NodeId> = (0..40).collect();
        for _ in 0..chunk {
            rr.push(&hubs);
        }
        let mut pool = SketchedPool::new(n, chunk, DEFAULT_PRECISION);
        pool.absorb_batch(0, &rr);
        assert!(
            pool.resident_bytes() * 4 <= pool.displaced_exact_bytes(),
            "resident={} exact={}",
            pool.resident_bytes(),
            pool.displaced_exact_bytes()
        );
    }
}
