//! HyperLogLog register primitives for the sketched validation pool.
//!
//! A sketch over a set of **global RR-set ids** keeps `m = 2^p` one-byte
//! registers. Each id is mixed through the same splitmix64 finalizer the
//! pool generators use, so register content is a pure function of
//! `(set_id, salt, precision)` — independent of insertion order, thread
//! schedule, and shard layout. That is what lets N-shard sketches merge
//! (register-wise max) into exactly the registers the sequential index
//! would have built.

/// Lowest supported register precision (`m = 16`).
pub const MIN_PRECISION: u8 = 4;
/// Highest supported register precision (`m = 1024`). The packed sparse
/// entry layout reserves 10 bits for the register index, which also caps
/// the ladder.
pub const MAX_PRECISION: u8 = 10;
/// Default register precision (`m = 256`, σ ≈ 6.5%).
pub const DEFAULT_PRECISION: u8 = 8;

/// Salt folded into every set-id hash. Fixed (not seed-derived) so that
/// sketches for the same pool content are identical across configs that
/// share a pool seed, and snapshot fingerprints stay meaningful.
pub const SKETCH_SALT: u64 = 0x9e6c_63d0_76cc_4191;

/// The 64-bit finalizer from splitmix64 (Steele et al.), also used by the
/// chunk-deterministic generators. Full-avalanche, bijective.
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Number of registers at precision `p`.
#[inline]
pub fn num_registers(precision: u8) -> usize {
    1usize << precision
}

/// Hashes a global RR-set id into `(register index, rank)` at `precision`.
///
/// The top `p` bits of the mixed hash pick the register; the rank is the
/// number of leading zeros of the remaining `64 - p` bits plus one
/// (capped at `64 - p + 1`, which fits the 6-bit rank field for all
/// supported precisions).
#[inline]
pub fn hash_set_id(set_id: u64, precision: u8) -> (u16, u8) {
    debug_assert!((MIN_PRECISION..=MAX_PRECISION).contains(&precision));
    let h = splitmix64_mix(set_id ^ SKETCH_SALT);
    let idx = (h >> (64 - precision)) as u16;
    let rest = h << precision;
    let rank = if rest == 0 {
        64 - precision + 1
    } else {
        rest.leading_zeros() as u8 + 1
    };
    (idx, rank)
}

/// Packs a `(register index, rank)` pair into the canonical sparse entry:
/// `idx << 6 | rank`. Valid for `p <= 10` (idx fits 10 bits) and ranks up
/// to 61 (rank fits 6 bits).
#[inline]
pub fn pack_entry(idx: u16, rank: u8) -> u16 {
    debug_assert!(idx < 1 << 10 && rank < 1 << 6);
    (idx << 6) | rank as u16
}

/// Inverse of [`pack_entry`].
#[inline]
pub fn unpack_entry(entry: u16) -> (u16, u8) {
    (entry >> 6, (entry & 0x3f) as u8)
}

/// Bias-correction constant `α_m` (Flajolet et al. 2007).
fn alpha_m(m: usize) -> f64 {
    match m {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m as f64),
    }
}

/// Cardinality estimate from a dense register array, with the standard
/// small-range (linear counting) correction. Pure function of register
/// content, so shard-merged registers yield bit-identical estimates.
pub fn estimate(registers: &[u8]) -> f64 {
    let m = registers.len();
    debug_assert!(m.is_power_of_two() && m >= 16);
    let mut sum = 0.0f64;
    let mut zeros = 0usize;
    for &r in registers {
        sum += f64::powi(2.0, -(r as i32));
        if r == 0 {
            zeros += 1;
        }
    }
    let raw = alpha_m(m) * (m as f64) * (m as f64) / sum;
    if raw <= 2.5 * m as f64 && zeros > 0 {
        // Linear counting dominates in the small-cardinality regime.
        (m as f64) * (m as f64 / zeros as f64).ln()
    } else {
        raw
    }
}

/// Relative standard error `σ = 1.04 / √m` at `precision`.
pub fn rel_std_error(precision: u8) -> f64 {
    1.04 / (num_registers(precision) as f64).sqrt()
}

/// Register-wise max merge: `dst[i] = max(dst[i], src[i])`.
///
/// This is the (only) sketch union operation — associative, commutative,
/// and idempotent, which the proptest battery pins down.
pub fn merge_registers(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "register width mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_in_range() {
        for p in MIN_PRECISION..=MAX_PRECISION {
            for id in [0u64, 1, 7, 1 << 40, u64::MAX] {
                let (idx, rank) = hash_set_id(id, p);
                assert_eq!((idx, rank), hash_set_id(id, p));
                assert!((idx as usize) < num_registers(p));
                assert!(rank >= 1 && rank <= 64 - p + 1);
                let (i2, r2) = unpack_entry(pack_entry(idx, rank));
                assert_eq!((i2, r2), (idx, rank));
            }
        }
    }

    #[test]
    fn estimate_tracks_true_cardinality_within_error() {
        for p in [6u8, 8, 10] {
            let m = num_registers(p);
            for &n in &[50usize, 500, 5000, 50_000] {
                let mut regs = vec![0u8; m];
                for id in 0..n as u64 {
                    let (idx, rank) = hash_set_id(id, p);
                    let r = &mut regs[idx as usize];
                    *r = (*r).max(rank);
                }
                let est = estimate(&regs);
                let sigma = rel_std_error(p);
                let rel = (est - n as f64).abs() / n as f64;
                assert!(
                    rel < 4.0 * sigma,
                    "p={p} n={n} est={est:.1} rel={rel:.4} sigma={sigma:.4}"
                );
            }
        }
    }

    #[test]
    fn merge_is_max() {
        let mut a = vec![0u8, 3, 5, 7];
        let b = vec![1u8, 2, 6, 7];
        merge_registers(&mut a, &b);
        assert_eq!(a, vec![1, 3, 6, 7]);
    }
}
