//! Slack-adjusted OPIM-C certification over a sketched validation pool.
//!
//! Selection is unchanged — greedy max-coverage over the exact `R₁`
//! arena, with the Eq. 2 upper bound from the same pass — so the seed
//! set at a given pool size is bit-identical to the exact path's. Only
//! the Eq. 1 side changes: the seeds' `R₂` coverage `Λ_{R₂}(S)` is the
//! union cardinality of per-node sketches instead of an exact count.
//!
//! The epsilon split: Eq. 1 already absorbs *sampling* error through
//! `δ_l`. Sketch *estimation* error is handled by deflating the union
//! estimate multiplicatively by [`SLACK_SIGMAS`] relative standard
//! errors (`σ = 1.04/√m`) before it enters Eq. 1. The HLL estimator is
//! asymptotically unbiased with approximately Gaussian relative error,
//! so the deflated value undershoots the true coverage except with
//! probability `≈ Φ(-SLACK_SIGMAS) < 2.3%` — conservative in the
//! direction that matters: a certificate that passes on the deflated
//! estimate would also have passed on the exact count, so the
//! `(1 - 1/e - ε)` guarantee carries over with the sketch failure
//! probability folded into the `δ` budget alongside `δ_l`.
//!
//! [`SketchedEvaluation::failed_on_slack`] is the error-adaptive ladder
//! trigger: the certificate failed *because of* the deflation (the
//! undeflated estimate would have passed), so growing the pool is waste
//! — promote register precision instead.

use subsim_core::bounds::{opim_lower_bound, opim_upper_bound};
use subsim_core::coverage::{
    greedy_max_coverage_indexed, greedy_max_coverage_sharded, GreedyConfig,
};
use subsim_diffusion::{InvertedIndex, RrCollection};
use subsim_graph::NodeId;

use crate::hll;
use crate::pool::SketchedPool;

/// How many relative standard errors the union estimate is deflated by
/// before entering Eq. 1. Two sigmas keeps the one-sided sketch failure
/// probability under 2.3% per certification round.
pub const SLACK_SIGMAS: f64 = 2.0;

/// Outcome of one sketched OPIM certification round.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchedEvaluation {
    /// Greedy seeds selected from the exact `R₁`, in pick order.
    pub seeds: Vec<NodeId>,
    /// `Λ_{R₁}(S)`: sets of `R₁` the seeds cover.
    pub coverage_r1: usize,
    /// Sketched `Λ_{R₂}(S)`: union cardinality estimate, clamped to
    /// `|R₂|`.
    pub estimate_r2: f64,
    /// The estimate after the `SLACK_SIGMAS · σ` deflation — what Eq. 1
    /// actually sees.
    pub deflated_r2: f64,
    /// Eq. 1 lower bound from the deflated estimate.
    pub lower: f64,
    /// Eq. 1 lower bound from the undeflated estimate (ladder
    /// diagnostic — *not* part of the certificate).
    pub lower_undeflated: f64,
    /// Eq. 2 upper bound on `𝕀(S^o_k)` from the exact `R₁` pass.
    pub upper: f64,
    /// Relative standard error `σ` of the sketch at its precision.
    pub rel_err: f64,
}

impl SketchedEvaluation {
    /// The certified approximation ratio `𝕀⁻(S)/𝕀⁺(S^o_k)`, sketch
    /// slack included.
    pub fn ratio(&self) -> f64 {
        if self.upper <= 0.0 {
            0.0
        } else {
            self.lower / self.upper
        }
    }

    /// The ratio the exact estimate would have certified (diagnostic).
    pub fn ratio_undeflated(&self) -> f64 {
        if self.upper <= 0.0 {
            0.0
        } else {
            self.lower_undeflated / self.upper
        }
    }

    /// True when the round failed `target` *only because of* the sketch
    /// slack: the undeflated estimate clears the target but the deflated
    /// one does not. More samples cannot fix this — higher precision can.
    pub fn failed_on_slack(&self, target: f64) -> bool {
        self.ratio() <= target && self.ratio_undeflated() > target
    }
}

/// One sketched certification round over a single exact `R₁` collection
/// and a sketched `R₂` pool.
pub fn evaluate_pool_sketched(
    r1: &RrCollection,
    sketch: &SketchedPool,
    k: usize,
    delta_l: f64,
    delta_u: f64,
    threads: usize,
) -> SketchedEvaluation {
    evaluate_pool_sketched_sharded(&[r1], None, &[sketch], k, delta_l, delta_u, threads)
}

/// Sharded variant: `r1s[s]` / `sketches[s]` hold shard `s`'s disjoint
/// slice of each half. Pass cached per-shard inverted indexes via `idxs`
/// to skip the per-query build (the serving path does).
///
/// Selection state is identical to the union's (merged greedy), and the
/// sketch union folds every shard's registers into one scratch array
/// before a single estimate is taken — register-wise max is
/// order-independent, so seeds, bounds, and the estimate are
/// byte-identical for any shard count.
pub fn evaluate_pool_sketched_sharded(
    r1s: &[&RrCollection],
    idxs: Option<&[&InvertedIndex]>,
    sketches: &[&SketchedPool],
    k: usize,
    delta_l: f64,
    delta_u: f64,
    threads: usize,
) -> SketchedEvaluation {
    assert!(
        !r1s.is_empty() && !sketches.is_empty(),
        "need at least one shard"
    );
    let n = r1s[0].graph_n();
    for rr in r1s {
        assert_eq!(rr.graph_n(), n, "pool shards are over different graphs");
    }
    let precision = sketches[0].precision();
    let mut r2_len = 0u64;
    for s in sketches {
        assert_eq!(s.graph_n(), n, "sketch shards are over different graphs");
        assert_eq!(s.precision(), precision, "sketch shards at mixed precision");
        r2_len += s.len_sets() as u64;
    }
    let r1_len: u64 = r1s.iter().map(|rr| rr.len() as u64).sum();
    assert!(r1_len > 0 && r2_len > 0, "pool halves must be non-empty");

    let cfg = GreedyConfig::standard(k).with_threads(threads);
    let out = match idxs {
        Some(idxs) => greedy_max_coverage_indexed(r1s, idxs, &cfg),
        None => greedy_max_coverage_sharded(r1s, &cfg),
    };
    let upper = opim_upper_bound(out.coverage_upper, r1_len, n, delta_u);

    let mut regs = vec![0u8; hll::num_registers(precision)];
    for s in sketches {
        s.merge_union_into(&out.seeds, &mut regs);
    }
    let rel_err = hll::rel_std_error(precision);
    let estimate_r2 = hll::estimate(&regs).min(r2_len as f64);
    let deflated_r2 = (estimate_r2 * (1.0 - SLACK_SIGMAS * rel_err)).max(0.0);
    let lower = opim_lower_bound(deflated_r2, r2_len, n, delta_l);
    let lower_undeflated = opim_lower_bound(estimate_r2, r2_len, n, delta_l);

    SketchedEvaluation {
        coverage_r1: out.coverage(),
        seeds: out.seeds,
        estimate_r2,
        deflated_r2,
        lower,
        lower_undeflated,
        upper,
        rel_err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_core::evaluate_pool_par;

    /// Builds a deterministic synthetic pool pair: `sets` pseudo-random
    /// RR sets over `n` nodes, identical content for both halves' shape.
    fn synth(n: usize, sets: usize, seed: u64) -> RrCollection {
        let mut rr = RrCollection::new(n);
        let mut s = Vec::new();
        for i in 0..sets {
            s.clear();
            let mut x = hll::splitmix64_mix(seed ^ i as u64);
            let len = 1 + (x % 5) as usize;
            for _ in 0..len {
                x = hll::splitmix64_mix(x);
                let v = (x % n as u64) as NodeId;
                if !s.contains(&v) {
                    s.push(v);
                }
            }
            rr.push(&s);
        }
        rr
    }

    #[test]
    fn seeds_and_upper_match_exact_path() {
        let n = 256;
        let chunk = 32;
        let r1 = synth(n, 8 * chunk, 1);
        let r2 = synth(n, 8 * chunk, 2);
        let mut sk = SketchedPool::new(n, chunk, 8);
        sk.absorb_batch(0, &r2);
        let exact = evaluate_pool_par(&r1, &r2, 4, 0.05, 0.05, 1);
        let sketched = evaluate_pool_sketched(&r1, &sk, 4, 0.05, 0.05, 1);
        assert_eq!(sketched.seeds, exact.seeds);
        assert_eq!(sketched.coverage_r1, exact.coverage_r1);
        assert_eq!(sketched.upper, exact.upper);
        // Sketched Eq. 1 is conservative: never above the exact bound by
        // more than the sketch's own error allows, and the deflated
        // variant sits below the undeflated one.
        assert!(sketched.lower <= sketched.lower_undeflated);
        let rel = (sketched.estimate_r2 - exact.coverage_r2 as f64).abs()
            / exact.coverage_r2.max(1) as f64;
        assert!(rel < 4.0 * sketched.rel_err, "rel={rel}");
    }

    #[test]
    fn sharded_evaluation_is_byte_identical_to_sequential() {
        let n = 256;
        let chunk = 16;
        let chunks = 12usize;
        let r1 = synth(n, chunks * chunk, 3);
        let r2 = synth(n, chunks * chunk, 4);
        let mut sk = SketchedPool::new(n, chunk, 7);
        sk.absorb_batch(0, &r2);
        let seq = evaluate_pool_sketched(&r1, &sk, 3, 0.04, 0.04, 1);
        for shards in [2usize, 3, 5] {
            // Shard r1 by chunk ownership (c mod N) and the sketch by the
            // same rule.
            let mut r1_parts: Vec<RrCollection> =
                (0..shards).map(|_| RrCollection::new(n)).collect();
            for c in 0..chunks {
                r1_parts[c % shards].extend_from_range(&r1, c * chunk..(c + 1) * chunk);
            }
            let sk_parts = sk.split(shards);
            let r1_refs: Vec<&RrCollection> = r1_parts.iter().collect();
            let sk_refs: Vec<&SketchedPool> = sk_parts.iter().collect();
            let got = evaluate_pool_sketched_sharded(&r1_refs, None, &sk_refs, 3, 0.04, 0.04, 1);
            assert_eq!(got, seq, "shards={shards}");
        }
    }

    #[test]
    fn failed_on_slack_identifies_the_deflation_band() {
        let eval = SketchedEvaluation {
            seeds: vec![1],
            coverage_r1: 10,
            estimate_r2: 100.0,
            deflated_r2: 87.0,
            lower: 50.0,
            lower_undeflated: 60.0,
            upper: 100.0,
            rel_err: 0.065,
        };
        // target between deflated (0.5) and undeflated (0.6) ratios.
        assert!(eval.failed_on_slack(0.55));
        assert!(!eval.failed_on_slack(0.45)); // passes outright
        assert!(!eval.failed_on_slack(0.65)); // fails on samples, not slack
    }
}
