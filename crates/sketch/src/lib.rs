//! `subsim-sketch`: count-distinct sketched validation pools for
//! memory-bounded OPIM-C serving.
//!
//! The serving stack keeps two exact RR pools alive per index. Selection
//! (`R₁`) must stay exact — greedy max-coverage reads individual sets —
//! but validation (`R₂`) is only ever consulted through one statistic:
//! `Λ_{R₂}(S)`, the number of `R₂` sets the chosen seeds cover. That is
//! a count-distinct query over set ids, so `R₂` compresses into per-node
//! HyperLogLog sketches (Göktürk & Kaya, "Fast and Error-Adaptive
//! Influence Maximization based on Count-Distinct Sketches") at a
//! fraction of the arena's footprint.
//!
//! Three properties make the tier drop into the existing stack without
//! weakening any determinism contract:
//!
//! - **Deterministic hashing** ([`hll`]): set ids are global
//!   (`chunk · chunk_size + offset`) and mixed with the same splitmix64
//!   finalizer the pool generators use, so sketch content is a pure
//!   function of pool content — independent of threads, shards, and
//!   build order.
//! - **Lossless merge** ([`pool`]): HLL union is register-wise max, so
//!   per-shard sketches fold into exactly the sequential registers for
//!   any shard count, and per-chunk sub-sketches let delta repair
//!   rebuild only dirty chunks bit-identically to a full rebuild.
//! - **Conservative certificate** ([`evaluate`]): the union estimate is
//!   deflated by [`evaluate::SLACK_SIGMAS`] standard errors before Eq. 1,
//!   so a passing certificate still carries the `(1 - 1/e - ε)`
//!   guarantee; [`SketchedEvaluation::failed_on_slack`] tells the caller
//!   when to promote precision (the error-adaptive ladder) instead of
//!   growing the pool.

pub mod evaluate;
pub mod hll;
pub mod pool;

pub use evaluate::{
    evaluate_pool_sketched, evaluate_pool_sketched_sharded, SketchedEvaluation, SLACK_SIGMAS,
};
pub use hll::{DEFAULT_PRECISION, MAX_PRECISION, MIN_PRECISION};
pub use pool::{ChunkSketch, SketchedPool, SKETCH_MAGIC};
