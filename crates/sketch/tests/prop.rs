//! Property battery for the sketch algebra (ISSUE 9 satellite): the
//! merge operation is associative, commutative, and idempotent;
//! register-wise max over independently built sketches equals the
//! sketch of the union; and serialization round-trips byte-identically.

use proptest::prelude::*;
use subsim_diffusion::RrCollection;
use subsim_graph::NodeId;
use subsim_sketch::hll::{self, num_registers};
use subsim_sketch::SketchedPool;

const N: usize = 64;

/// Dense registers built from a raw list of set ids at `precision`.
fn regs_of(ids: &[u64], precision: u8) -> Vec<u8> {
    let mut regs = vec![0u8; num_registers(precision)];
    for &id in ids {
        let (idx, rank) = hll::hash_set_id(id, precision);
        let slot = &mut regs[idx as usize];
        *slot = (*slot).max(rank);
    }
    regs
}

/// A pool absorbing `sets` as whole chunks of `chunk` starting at
/// global chunk id `first_chunk`.
fn pool_of(sets: &[Vec<NodeId>], chunk: usize, first_chunk: u64, precision: u8) -> SketchedPool {
    let mut rr = RrCollection::new(N);
    for s in sets {
        rr.push(s);
    }
    // Pad the tail to a whole chunk with singleton sets.
    while !rr.len().is_multiple_of(chunk) {
        rr.push(&[0]);
    }
    let mut pool = SketchedPool::new(N, chunk, precision);
    pool.absorb_batch(first_chunk, &rr);
    pool
}

fn arb_ids() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..1_000_000, 0..200)
}

fn arb_sets() -> impl Strategy<Value = Vec<Vec<NodeId>>> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..N as u32, 1..8).prop_map(|mut s| {
            s.sort_unstable();
            s.dedup();
            s
        }),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Register merge is associative, commutative, and idempotent.
    #[test]
    fn merge_is_a_semilattice(a in arb_ids(), b in arb_ids(), c in arb_ids(), p in 4u8..=10) {
        let (ra, rb, rc) = (regs_of(&a, p), regs_of(&b, p), regs_of(&c, p));

        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut left = ra.clone();
        hll::merge_registers(&mut left, &rb);
        hll::merge_registers(&mut left, &rc);
        let mut bc = rb.clone();
        hll::merge_registers(&mut bc, &rc);
        let mut right = ra.clone();
        hll::merge_registers(&mut right, &bc);
        prop_assert_eq!(&left, &right);

        // a ∪ b == b ∪ a
        let mut ab = ra.clone();
        hll::merge_registers(&mut ab, &rb);
        let mut ba = rb.clone();
        hll::merge_registers(&mut ba, &ra);
        prop_assert_eq!(&ab, &ba);

        // a ∪ a == a
        let mut aa = ra.clone();
        hll::merge_registers(&mut aa, &ra);
        prop_assert_eq!(&aa, &ra);
    }

    /// Register-wise max of independently built sketches equals the
    /// sketch built from the union of ids — hence equal cardinality
    /// estimates (the lossless-merge property shard determinism rests on).
    #[test]
    fn merge_equals_union_sketch(a in arb_ids(), b in arb_ids(), p in 4u8..=10) {
        let mut merged = regs_of(&a, p);
        hll::merge_registers(&mut merged, &regs_of(&b, p));
        let mut union_ids = a.clone();
        union_ids.extend_from_slice(&b);
        let union = regs_of(&union_ids, p);
        prop_assert_eq!(&merged, &union);
        prop_assert_eq!(hll::estimate(&merged), hll::estimate(&union));
    }

    /// Serialization of the canonical pool form round-trips
    /// byte-identically, and pool merge commutes with pool order.
    #[test]
    fn pool_serialization_round_trips(sets in arb_sets(), chunk in 1usize..6, p in 4u8..=10) {
        let pool = pool_of(&sets, chunk, 0, p);
        let mut buf = Vec::new();
        pool.write_to(&mut buf).unwrap();
        let back = SketchedPool::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(&back, &pool);
        let mut buf2 = Vec::new();
        back.write_to(&mut buf2).unwrap();
        prop_assert_eq!(buf, buf2);
    }

    /// Merging disjoint pools is order-independent and agrees with the
    /// split inverse.
    #[test]
    fn pool_merge_is_commutative(sets_a in arb_sets(), sets_b in arb_sets(), p in 4u8..=10) {
        let chunk = 4usize;
        let a = pool_of(&sets_a, chunk, 0, p);
        // Disjoint chunk ids: b starts after a's last chunk.
        let b = pool_of(&sets_b, chunk, a.num_chunks() as u64, p);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        prop_assert_eq!(&ab, &ba);
        // Splitting and re-merging reproduces the pool for any shard count.
        for shards in [2usize, 3] {
            let parts = ab.split(shards);
            let mut re = SketchedPool::new(ab.graph_n(), chunk, p);
            for part in &parts {
                re.merge_from(part);
            }
            prop_assert_eq!(&re, &ab);
        }
    }
}
