//! Property-based tests for the subset samplers.
//!
//! Structural invariants for arbitrary probability vectors; the
//! statistical (distribution-matching) checks live in the unit tests with
//! fixed seeds.

use proptest::prelude::*;
use subsim_sampling::{
    bernoulli_subset_naive, rng_from_seed, uniform_subset, AliasTable, BucketJumpSampler,
    BucketSubsetSampler, GeometricSkipper, SortedSubsetSampler,
};

fn arb_probs() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, 0..64)
}

fn sorted_desc(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| b.total_cmp(a));
    v
}

proptest! {
    #[test]
    fn geometric_skip_at_least_one(p in 1e-6f64..1.0, seed in 0u64..u64::MAX) {
        let mut rng = rng_from_seed(seed);
        let x = subsim_sampling::geometric_skip(&mut rng, p);
        prop_assert!(x >= 1);
    }

    #[test]
    fn skipper_agrees_with_free_function_in_support(p in 1e-6f64..1.0, seed in 0u64..u64::MAX) {
        // Not the same stream position, but both must produce values in
        // the same support and with the same degenerate-case handling.
        let s = GeometricSkipper::new(p);
        let mut rng = rng_from_seed(seed);
        for _ in 0..20 {
            prop_assert!(s.skip(&mut rng) >= 1);
        }
        prop_assert_eq!(GeometricSkipper::new(0.0).skip(&mut rng), u64::MAX);
        prop_assert_eq!(GeometricSkipper::new(1.0).skip(&mut rng), 1);
    }

    #[test]
    fn uniform_subset_positions_strictly_increasing(
        h in 0usize..200,
        p in 0.0f64..=1.0,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = rng_from_seed(seed);
        let mut last: Option<usize> = None;
        uniform_subset(&mut rng, h, p, |i| {
            assert!(i < h);
            if let Some(l) = last {
                assert!(i > l, "positions must increase: {l} then {i}");
            }
            last = Some(i);
        });
    }

    #[test]
    fn naive_never_emits_zero_prob_elements(probs in arb_probs(), seed in 0u64..u64::MAX) {
        let mut rng = rng_from_seed(seed);
        bernoulli_subset_naive(&mut rng, &probs, |i| {
            assert!(probs[i] > 0.0, "sampled zero-probability element {i}");
        });
    }

    #[test]
    fn sorted_sampler_in_range_no_duplicates(probs in arb_probs(), seed in 0u64..u64::MAX) {
        let probs = sorted_desc(probs);
        let sampler = SortedSubsetSampler::new(&probs);
        let mut rng = rng_from_seed(seed);
        let mut seen = vec![false; probs.len()];
        sampler.sample_into(&mut rng, |i| {
            assert!(i < probs.len());
            assert!(probs[i] > 0.0);
            assert!(!seen[i], "duplicate emission of {i}");
            seen[i] = true;
        });
    }

    #[test]
    fn bucket_samplers_in_range_no_duplicates(probs in arb_probs(), seed in 0u64..u64::MAX) {
        for variant in 0..2 {
            let mut rng = rng_from_seed(seed);
            let mut seen = vec![false; probs.len()];
            let mut check = |i: usize| {
                assert!(i < probs.len());
                assert!(probs[i] > 0.0);
                assert!(!seen[i], "duplicate emission of {i}");
                seen[i] = true;
            };
            if variant == 0 {
                BucketSubsetSampler::new(&probs).sample_into(&mut rng, &mut check);
            } else {
                BucketJumpSampler::new(&probs).sample_into(&mut rng, &mut check);
            }
        }
    }

    #[test]
    fn certain_elements_always_sampled(
        ones in 1usize..8,
        rest in prop::collection::vec(0.0f64..0.5, 0..16),
        seed in 0u64..u64::MAX,
    ) {
        let mut probs = vec![1.0f64; ones];
        probs.extend(rest);
        // Sorted descending already (1.0s first, rest < 0.5 unsorted is
        // fine for the bucket samplers; sort for the sorted sampler).
        let sorted = sorted_desc(probs.clone());
        let mut rng = rng_from_seed(seed);
        let mut hit = vec![false; sorted.len()];
        SortedSubsetSampler::new(&sorted).sample_into(&mut rng, |i| hit[i] = true);
        for (i, &h) in hit.iter().enumerate().take(ones) {
            prop_assert!(h, "p=1 element {i} missed by sorted sampler");
        }
        let mut hit = vec![false; probs.len()];
        BucketJumpSampler::new(&probs).sample_into(&mut rng, |i| hit[i] = true);
        for (i, &h) in hit.iter().enumerate().take(ones) {
            prop_assert!(h, "p=1 element {i} missed by jump sampler");
        }
    }

    #[test]
    fn alias_table_samples_positive_weight(weights in prop::collection::vec(0.0f64..10.0, 1..40), seed in 0u64..u64::MAX) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = rng_from_seed(seed);
        for _ in 0..50 {
            let i = table.sample(&mut rng);
            prop_assert!(weights[i] > 0.0, "sampled zero-weight category {i}");
        }
    }
}
