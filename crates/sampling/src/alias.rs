//! Walker's alias method for O(1) sampling from a discrete distribution.
//!
//! Used for (i) LT-model in-edge selection, where each reverse step picks
//! one in-neighbor with probability proportional to its edge weight, and
//! (ii) the bucket-jump index of [`crate::subset::BucketJumpSampler`]
//! (paper Section 3.3, citing Walker \[41\]).

use rand::Rng;

/// Precomputed alias table over `n` weights; draws cost one uniform and one
/// comparison.
///
/// ```
/// use subsim_sampling::{rng_from_seed, AliasTable};
///
/// let table = AliasTable::new(&[3.0, 1.0]).unwrap();
/// let mut rng = rng_from_seed(1);
/// let hits = (0..10_000).filter(|_| table.sample(&mut rng) == 0).count();
/// assert!((hits as f64 / 10_000.0 - 0.75).abs() < 0.03);
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance threshold per column, scaled so a uniform in `[0,1)` works.
    prob: Vec<f64>,
    /// Alias column used when the threshold test fails.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative `weights` (need not sum to 1).
    ///
    /// Zero-weight entries are never sampled. Returns `None` if `weights`
    /// is empty, contains a negative/non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 || n > u32::MAX as usize {
            return None;
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return None;
            }
            total += w;
        }
        if total <= 0.0 {
            return None;
        }

        // Vose's stable construction: scale weights to mean 1, then pair
        // under-full and over-full columns.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are within floating-point error of 1.
        for &i in large.iter().chain(small.iter()) {
            prob[i as usize] = 1.0;
        }
        Some(AliasTable { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Per-column acceptance thresholds, in `[0, 1]` — the exact values
    /// [`AliasTable::sample`] compares its uniform against. Exposed so
    /// flattened (structure-of-arrays) kernels can replicate a draw
    /// bitwise without going through the table object.
    pub fn probs(&self) -> &[f64] {
        &self.prob
    }

    /// Per-column alias targets, parallel to [`AliasTable::probs`].
    pub fn aliases(&self) -> &[u32] {
        &self.alias
    }

    /// Draws one index, distributed proportionally to the input weights.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let col = rng.gen_range(0..n);
        if rng.gen::<f64>() < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let table = AliasTable::new(weights).unwrap();
        let mut rng = rng_from_seed(seed);
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn rejects_bad_input() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -0.5]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
        assert!(AliasTable::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn single_category_always_sampled() {
        let t = AliasTable::new(&[3.7]).unwrap();
        let mut rng = rng_from_seed(11);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let freqs = empirical(&[1.0; 10], 200_000, 12);
        for f in freqs {
            assert!((f - 0.1).abs() < 0.01, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_proportions() {
        let w = [8.0, 4.0, 2.0, 1.0, 1.0];
        let total: f64 = w.iter().sum();
        let freqs = empirical(&w, 400_000, 13);
        for (f, &wi) in freqs.iter().zip(&w) {
            let expect = wi / total;
            assert!((f - expect).abs() < 0.01, "freq {f} vs {expect}");
        }
    }

    #[test]
    fn zero_weight_entries_never_sampled() {
        let freqs = empirical(&[0.0, 1.0, 0.0, 2.0], 100_000, 14);
        assert_eq!(freqs[0], 0.0);
        assert_eq!(freqs[2], 0.0);
        assert!((freqs[1] - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn unnormalized_weights_ok() {
        let a = empirical(&[0.002, 0.001], 200_000, 15);
        assert!((a[0] - 2.0 / 3.0).abs() < 0.01);
    }
}
