//! Independent subset sampling (paper Sections 3.1 and 3.3).
//!
//! Given elements `x_1..x_h` with keep-probabilities `p_1..p_h`, draw the
//! random subset where each element is kept independently with its own
//! probability. Four strategies, trading preprocessing for per-draw cost
//! (`μ = Σ p_i`):
//!
//! | sampler | preprocessing | per draw | requirement |
//! |---|---|---|---|
//! | [`bernoulli_subset_naive`] | none | `O(h)` | none (baseline) |
//! | [`uniform_subset`] | none | `O(1 + μ)` | all `p_i` equal |
//! | [`SortedSubsetSampler`] | none | `O(1 + μ + log h)` | `p_i` sorted descending |
//! | [`BucketSubsetSampler`] | `O(h)` | `O(1 + μ + log h)` | none |
//! | [`BucketJumpSampler`] | `O(h + log² h)` | `O(1 + μ)` | none |

use crate::alias::AliasTable;
use crate::geometric::{geometric_skip, GeometricSkipper, NEVER};
use rand::Rng;

/// Rate above which a direct Bernoulli scan is cheaper than geometric
/// skipping: the expected skip length `1/p` is too short to amortize the
/// `ln` each skip costs.
const SCAN_THRESHOLD: f64 = 0.25;

/// Baseline: one coin flip per element, `O(h)` per draw.
///
/// Calls `visit(i)` for each kept index. This is what the *vanilla* RR-set
/// generator (paper Algorithm 2) does implicitly, and what every other
/// sampler in this module is measured against.
pub fn bernoulli_subset_naive<R, F>(rng: &mut R, probs: &[f64], mut visit: F)
where
    R: Rng + ?Sized,
    F: FnMut(usize),
{
    for (i, &p) in probs.iter().enumerate() {
        if rng.gen::<f64>() < p {
            visit(i);
        }
    }
}

/// Equal-probability subset sampling by geometric skips (paper Algorithm 3).
///
/// Each of the `h` slots is kept independently with probability `p`; kept
/// (0-based) indices are passed to `visit` in increasing order. Expected
/// cost `O(1 + h·p)`.
///
/// ```
/// use subsim_sampling::{rng_from_seed, uniform_subset};
///
/// let mut rng = rng_from_seed(3);
/// let mut kept = Vec::new();
/// uniform_subset(&mut rng, 1_000, 0.01, |i| kept.push(i));
/// assert!(kept.windows(2).all(|w| w[0] < w[1])); // increasing order
/// assert!(kept.len() < 100); // ~10 expected
/// ```
#[inline]
pub fn uniform_subset<R, F>(rng: &mut R, h: usize, p: f64, mut visit: F)
where
    R: Rng + ?Sized,
    F: FnMut(usize),
{
    if p >= 1.0 {
        for i in 0..h {
            visit(i);
        }
        return;
    }
    let h = h as u64;
    let mut cursor = 0u64;
    loop {
        let skip = geometric_skip(rng, p);
        if skip == NEVER {
            return;
        }
        cursor += skip;
        if cursor > h {
            return;
        }
        visit((cursor - 1) as usize);
    }
}

/// Index-free sampler for probabilities sorted in **descending** order
/// (paper Section 3.3, "Index-free method").
///
/// Positions (1-indexed) are grouped by magnitude: bucket `k` covers
/// positions `[2^k, 2^(k+1))`. Within bucket `k` the sampler runs geometric
/// skips at rate `p_{2^k}` (the largest probability in the bucket) and
/// accepts a landed position `j` with probability `p_j / p_{2^k}`, which
/// keeps every element's marginal probability exact. Because
/// `p_x <= p_{ceil(x/2)}`, the expected overhead per bucket is at most 2×,
/// giving `O(1 + μ + log h)` total.
#[derive(Debug, Clone, Copy)]
pub struct SortedSubsetSampler<'a> {
    probs: &'a [f64],
}

impl<'a> SortedSubsetSampler<'a> {
    /// Wraps a slice of probabilities sorted in descending order.
    ///
    /// Debug-asserts the ordering; release builds trust the caller (the
    /// graph substrate sorts in-edges once at construction).
    pub fn new(probs: &'a [f64]) -> Self {
        debug_assert!(
            probs.windows(2).all(|w| w[0] >= w[1]),
            "SortedSubsetSampler requires descending probabilities"
        );
        SortedSubsetSampler { probs }
    }

    /// Draws one subset; kept indices (0-based, increasing) go to `visit`.
    pub fn sample_into<R, F>(&self, rng: &mut R, mut visit: F)
    where
        R: Rng + ?Sized,
        F: FnMut(usize),
    {
        let h = self.probs.len();
        let mut start = 0usize; // 0-based index of the bucket's first slot
        while start < h {
            let end = ((start + 1) * 2 - 1).min(h); // exclusive
            let rate = self.probs[start].min(1.0);
            if rate <= 0.0 {
                // Sorted descending: everything from here on is 0.
                return;
            }
            if rate >= SCAN_THRESHOLD {
                // Dense bucket: a direct Bernoulli scan beats geometric
                // skipping (each skip costs a ln; a scan step costs one
                // uniform draw and a compare).
                for (j, &p) in self.probs[start..end].iter().enumerate() {
                    if p >= 1.0 || rng.gen::<f64>() < p {
                        visit(start + j);
                    }
                }
            } else {
                let skipper = GeometricSkipper::new(rate);
                let mut cursor = start as u64;
                let end = end as u64;
                loop {
                    let skip = skipper.skip(rng);
                    if skip == NEVER {
                        break;
                    }
                    cursor += skip;
                    if cursor > end {
                        break;
                    }
                    let j = (cursor - 1) as usize;
                    let accept = self.probs[j] / rate;
                    if accept >= 1.0 || rng.gen::<f64>() < accept {
                        visit(j);
                    }
                }
            }
            start = end;
        }
    }
}

/// One probability-class bucket of [`BucketSubsetSampler`].
#[derive(Debug, Clone)]
struct Bucket {
    /// Geometric rate `2^-k`, an upper bound on every member's probability.
    rate: f64,
    /// Hoisted geometric sampler at `rate`.
    skipper: GeometricSkipper,
    /// Original element indices in this bucket.
    members: Vec<u32>,
    /// Member probabilities, parallel to `members`.
    probs: Vec<f64>,
}

impl Bucket {
    /// Probability that at least one geometric draw lands inside the bucket,
    /// i.e. that the bucket is "touched" during a sample.
    fn touch_prob(&self) -> f64 {
        if self.rate >= 1.0 {
            return if self.members.is_empty() { 0.0 } else { 1.0 };
        }
        1.0 - (1.0 - self.rate).powi(self.members.len() as i32)
    }

    /// Runs geometric skips over the bucket, visiting accepted members.
    fn sample_into<R, F>(&self, rng: &mut R, visit: &mut F)
    where
        R: Rng + ?Sized,
        F: FnMut(usize),
    {
        sample_bucket_from(self, rng, 0, visit);
    }
}

/// Geometric-skip scan of `bucket` starting at member index `from`
/// (0-based), visiting accepted members.
fn sample_bucket_from<R, F>(bucket: &Bucket, rng: &mut R, from: u64, visit: &mut F)
where
    R: Rng + ?Sized,
    F: FnMut(usize),
{
    let h = bucket.members.len() as u64;
    if bucket.rate >= SCAN_THRESHOLD {
        // Dense class bucket: test each member's own probability directly
        // (exact, and cheaper than skip-plus-rejection at these rates).
        for i in from as usize..h as usize {
            let p = bucket.probs[i];
            if p >= 1.0 || rng.gen::<f64>() < p {
                visit(bucket.members[i] as usize);
            }
        }
        return;
    }
    let mut cursor = from;
    loop {
        let skip = bucket.skipper.skip(rng);
        if skip == NEVER {
            return;
        }
        cursor += skip;
        if cursor > h {
            return;
        }
        let i = (cursor - 1) as usize;
        let accept = bucket.probs[i] / bucket.rate;
        if accept >= 1.0 || rng.gen::<f64>() < accept {
            visit(bucket.members[i] as usize);
        }
    }
}

/// Bucketed subset sampler for arbitrary probabilities
/// (Bringmann–Panagiotou; paper Lemma 5).
///
/// Elements are grouped by probability class: bucket `k` holds elements
/// with `p ∈ (2^-(k+1), 2^-k]` for `k < L`, and bucket `L = ceil(log2 h)`
/// holds everything with `p <= 2^-L`. Each draw runs geometric skips at
/// rate `2^-k` inside every bucket with rejection `p_i · 2^k`, costing
/// `O(1 + μ + log h)`.
#[derive(Debug, Clone)]
pub struct BucketSubsetSampler {
    buckets: Vec<Bucket>,
    /// Sum of all probabilities (`μ`), exposed for cost accounting.
    mu: f64,
}

impl BucketSubsetSampler {
    /// Preprocesses `probs` in `O(h)`.
    ///
    /// Probabilities are clamped to `[0, 1]`; zero entries are dropped
    /// (never sampled).
    pub fn new(probs: &[f64]) -> Self {
        let h = probs.len().max(1);
        let levels = (usize::BITS - (h - 1).leading_zeros()).max(1) as usize; // ceil(log2 h), >=1
        let mut buckets: Vec<Bucket> = (0..=levels)
            .map(|k| {
                let rate = 0.5f64.powi(k as i32);
                Bucket {
                    rate,
                    skipper: GeometricSkipper::new(rate),
                    members: Vec::new(),
                    probs: Vec::new(),
                }
            })
            .collect();
        let mut mu = 0.0;
        for (i, &p_raw) in probs.iter().enumerate() {
            let p = p_raw.clamp(0.0, 1.0);
            if p <= 0.0 {
                continue;
            }
            mu += p;
            // Smallest k with 2^-k >= p, capped at the final bucket.
            let k = if p >= 1.0 {
                0
            } else {
                ((-p.log2()).floor() as usize).min(levels)
            };
            // Guard float edge: ensure rate >= p for the chosen class bucket.
            let k = if buckets[k].rate < p && k > 0 {
                k - 1
            } else {
                k
            };
            buckets[k].members.push(i as u32);
            buckets[k].probs.push(p);
        }
        buckets.retain(|b| !b.members.is_empty());
        BucketSubsetSampler { buckets, mu }
    }

    /// Sum of the (clamped) probabilities.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Draws one subset; kept original indices go to `visit` (order is by
    /// bucket, then by position within bucket).
    pub fn sample_into<R, F>(&self, rng: &mut R, mut visit: F)
    where
        R: Rng + ?Sized,
        F: FnMut(usize),
    {
        for bucket in &self.buckets {
            bucket.sample_into(rng, &mut visit);
        }
    }
}

/// Bucketed sampler with the bucket-jump index (paper Section 3.3):
/// precomputes, for every bucket, the probability that it is *touched*
/// (receives at least one geometric draw) and an alias table over which
/// bucket is touched next, so a draw skips untouched buckets entirely and
/// runs in `O(1 + μ)` expected time.
#[derive(Debug, Clone)]
pub struct BucketJumpSampler {
    buckets: Vec<Bucket>,
    /// `jump[i]` samples the next touched bucket after bucket `i-1`
    /// (`jump[0]` samples the first touched bucket). Category `j` means
    /// bucket `i-1+1+j`; the last category means "none".
    jump: Vec<AliasTable>,
    mu: f64,
}

impl BucketJumpSampler {
    /// Preprocesses `probs` in `O(h + log² h)`.
    pub fn new(probs: &[f64]) -> Self {
        let base = BucketSubsetSampler::new(probs);
        let buckets = base.buckets;
        let touch: Vec<f64> = buckets.iter().map(|b| b.touch_prob()).collect();
        let nb = buckets.len();
        // jump[i]: distribution of the first touched bucket among
        // buckets[i..], with a final "none" category.
        let mut jump = Vec::with_capacity(nb + 1);
        for i in 0..=nb {
            let mut w: Vec<f64> = Vec::with_capacity(nb - i + 1);
            let mut none = 1.0;
            for &t in &touch[i..] {
                w.push(none * t);
                none *= 1.0 - t;
            }
            w.push(none);
            // Total is 1 by construction; AliasTable renormalizes anyway.
            jump.push(AliasTable::new(&w).expect("weights sum to 1"));
        }
        BucketJumpSampler {
            buckets,
            jump,
            mu: base.mu,
        }
    }

    /// Sum of the (clamped) probabilities.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Draws one subset; kept original indices go to `visit`.
    pub fn sample_into<R, F>(&self, rng: &mut R, mut visit: F)
    where
        R: Rng + ?Sized,
        F: FnMut(usize),
    {
        let nb = self.buckets.len();
        let mut i = 0usize; // next bucket candidate
        while i < nb {
            let pick = self.jump[i].sample(rng);
            let Some(bucket_idx) = (pick < nb - i).then(|| i + pick) else {
                return; // "none": no further bucket is touched
            };
            let bucket = &self.buckets[bucket_idx];
            // The bucket is touched: its first hit position follows a
            // geometric truncated to the bucket length.
            let first = truncated_geometric(rng, bucket.rate, bucket.members.len() as u64);
            let idx = (first - 1) as usize;
            let accept = bucket.probs[idx] / bucket.rate;
            if accept >= 1.0 || rng.gen::<f64>() < accept {
                visit(bucket.members[idx] as usize);
            }
            // Remaining hits inside the bucket are plain geometric skips.
            sample_bucket_from(bucket, rng, first, &mut visit);
            i = bucket_idx + 1;
        }
    }
}

/// Samples `X | X <= bound` where `X ~ Geometric(rate)`, via inverse CDF.
///
/// Requires `0 < rate` and `bound >= 1`; returns a value in `1..=bound`.
fn truncated_geometric<R: Rng + ?Sized>(rng: &mut R, rate: f64, bound: u64) -> u64 {
    if rate >= 1.0 {
        return 1;
    }
    let q = 1.0 - rate;
    let tail = 1.0 - q.powi(bound.min(i32::MAX as u64) as i32);
    let u = rng.gen::<f64>();
    let x = (1.0 - u * tail).ln() / q.ln();
    (x.ceil() as u64).clamp(1, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    /// Empirical per-element keep frequency under `draws` samples.
    fn freqs<F>(h: usize, draws: usize, seed: u64, mut sample: F) -> Vec<f64>
    where
        F: FnMut(&mut rand::rngs::SmallRng, &mut dyn FnMut(usize)),
    {
        let mut rng = rng_from_seed(seed);
        let mut counts = vec![0u64; h];
        for _ in 0..draws {
            sample(&mut rng, &mut |i| counts[i] += 1);
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    fn assert_marginals(probs: &[f64], got: &[f64], tol: f64) {
        for (i, (&p, &g)) in probs.iter().zip(got).enumerate() {
            assert!((p - g).abs() < tol, "element {i}: p={p}, freq={g}");
        }
    }

    const SKEWED: [f64; 8] = [0.95, 0.6, 0.31, 0.30, 0.12, 0.05, 0.011, 0.0];

    #[test]
    fn naive_marginals() {
        let got = freqs(SKEWED.len(), 100_000, 21, |rng, visit| {
            bernoulli_subset_naive(rng, &SKEWED, visit)
        });
        assert_marginals(&SKEWED, &got, 0.01);
    }

    #[test]
    fn uniform_subset_marginals() {
        let p = 0.17;
        let got = freqs(40, 100_000, 22, |rng, visit| {
            uniform_subset(rng, 40, p, visit)
        });
        assert_marginals(&[p; 40], &got, 0.01);
    }

    #[test]
    fn uniform_subset_extremes() {
        let mut rng = rng_from_seed(23);
        let mut n = 0;
        uniform_subset(&mut rng, 10, 1.0, |_| n += 1);
        assert_eq!(n, 10);
        uniform_subset(&mut rng, 10, 0.0, |_| panic!("p=0 sampled"));
        uniform_subset(&mut rng, 0, 0.5, |_| panic!("h=0 sampled"));
    }

    #[test]
    fn sorted_sampler_marginals() {
        let sampler_probs = SKEWED;
        let got = freqs(sampler_probs.len(), 150_000, 24, |rng, visit| {
            SortedSubsetSampler::new(&sampler_probs).sample_into(rng, visit)
        });
        assert_marginals(&sampler_probs, &got, 0.01);
    }

    #[test]
    fn sorted_sampler_long_tail_marginals() {
        // 100 elements decaying geometrically: exercises many buckets.
        let probs: Vec<f64> = (0..100).map(|i| 0.9f64 * 0.9f64.powi(i)).collect();
        let got = freqs(probs.len(), 60_000, 25, |rng, visit| {
            SortedSubsetSampler::new(&probs).sample_into(rng, visit)
        });
        assert_marginals(&probs[..30], &got[..30], 0.015);
    }

    #[test]
    fn sorted_sampler_with_ones() {
        let probs = [1.0, 1.0, 0.5, 0.25];
        let got = freqs(4, 80_000, 26, |rng, visit| {
            SortedSubsetSampler::new(&probs).sample_into(rng, visit)
        });
        assert_eq!(got[0], 1.0);
        assert_eq!(got[1], 1.0);
        assert_marginals(&probs[2..], &got[2..], 0.01);
    }

    #[test]
    fn sorted_sampler_empty_and_zero() {
        let mut rng = rng_from_seed(27);
        SortedSubsetSampler::new(&[]).sample_into(&mut rng, |_| panic!("empty"));
        SortedSubsetSampler::new(&[0.0, 0.0]).sample_into(&mut rng, |_| panic!("zeros"));
    }

    #[test]
    fn bucket_sampler_marginals() {
        let got = freqs(SKEWED.len(), 150_000, 28, |rng, visit| {
            BucketSubsetSampler::new(&SKEWED).sample_into(rng, visit)
        });
        assert_marginals(&SKEWED, &got, 0.01);
    }

    #[test]
    fn bucket_sampler_tiny_probs_land_in_last_bucket() {
        let probs = [1e-9, 1e-7, 0.5];
        let s = BucketSubsetSampler::new(&probs);
        let got = freqs(3, 200_000, 29, |rng, visit| s.sample_into(rng, visit));
        assert!((got[2] - 0.5).abs() < 0.01);
        // Tiny probabilities should essentially never fire in 2e5 draws.
        assert!(got[0] < 1e-3 && got[1] < 1e-3);
    }

    #[test]
    fn bucket_sampler_mu() {
        let s = BucketSubsetSampler::new(&[0.25, 0.25, 0.5, 0.0]);
        assert!((s.mu() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jump_sampler_marginals() {
        let got = freqs(SKEWED.len(), 150_000, 30, |rng, visit| {
            BucketJumpSampler::new(&SKEWED).sample_into(rng, visit)
        });
        assert_marginals(&SKEWED, &got, 0.01);
    }

    #[test]
    fn jump_sampler_matches_bucket_sampler_statistically() {
        let probs: Vec<f64> = (0..64).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let a = freqs(64, 80_000, 31, |rng, visit| {
            BucketSubsetSampler::new(&probs).sample_into(rng, visit)
        });
        let b = freqs(64, 80_000, 32, |rng, visit| {
            BucketJumpSampler::new(&probs).sample_into(rng, visit)
        });
        for i in 0..64 {
            assert!(
                (a[i] - b[i]).abs() < 0.015,
                "element {i}: {} vs {}",
                a[i],
                b[i]
            );
        }
    }

    #[test]
    fn truncated_geometric_in_range() {
        let mut rng = rng_from_seed(33);
        for _ in 0..10_000 {
            let x = truncated_geometric(&mut rng, 0.3, 5);
            assert!((1..=5).contains(&x));
        }
    }

    #[test]
    fn truncated_geometric_distribution() {
        let mut rng = rng_from_seed(34);
        let (rate, bound, n) = (0.4, 4u64, 300_000);
        let mut counts = [0u64; 5];
        for _ in 0..n {
            counts[truncated_geometric(&mut rng, rate, bound) as usize] += 1;
        }
        let q: f64 = 1.0 - rate;
        let tail = 1.0 - q.powi(bound as i32);
        for (i, &c) in counts.iter().enumerate().take(bound as usize + 1).skip(1) {
            let expect = q.powi(i as i32 - 1) * rate / tail;
            let got = c as f64 / n as f64;
            assert!((got - expect).abs() < 0.01, "P(X={i}): {got} vs {expect}");
        }
    }

    /// Pairwise independence spot check: joint keep frequency of two
    /// elements should factorize.
    #[test]
    fn sorted_sampler_pairwise_independence() {
        let probs = [0.5, 0.4, 0.3, 0.2];
        let s = SortedSubsetSampler::new(&probs);
        let mut rng = rng_from_seed(35);
        let n = 200_000;
        let mut joint = 0u64;
        for _ in 0..n {
            let mut hit = [false; 4];
            s.sample_into(&mut rng, |i| hit[i] = true);
            if hit[0] && hit[3] {
                joint += 1;
            }
        }
        let got = joint as f64 / n as f64;
        let expect = probs[0] * probs[3];
        assert!((got - expect).abs() < 0.01, "joint {got} vs {expect}");
    }
}
