//! Subset-sampling primitives used by the SUBSIM reverse-reachable-set
//! generators (Guo et al., SIGMOD 2020, Section 3).
//!
//! The influence-maximization inner loop repeatedly asks: *given the `h`
//! in-neighbors of a node, each with an activation probability, which subset
//! gets activated?* Answering by flipping one coin per neighbor costs
//! `O(h)`. This crate provides samplers that answer in `O(1 + μ)` expected
//! time, where `μ` is the sum of the probabilities:
//!
//! - [`geometric::geometric_skip`] — constant-time sampling from the
//!   geometric distribution via inverse-CDF (Knuth), the building block for
//!   everything else.
//! - [`subset::uniform_subset`] — equal-probability subset sampling by
//!   geometric skips (paper Algorithm 3, lines 7/13). Covers the WC and
//!   Uniform IC cascade models.
//! - [`subset::SortedSubsetSampler`] — the *index-free* sampler for general
//!   (skewed) probabilities sorted in descending order (paper Section 3.3),
//!   `O(1 + μ + log h)` per draw with no preprocessing.
//! - [`subset::BucketSubsetSampler`] — the Bringmann–Panagiotou bucketed
//!   sampler (paper Lemma 5): `O(h)` preprocessing, `O(1 + μ + log h)` per
//!   draw, improvable to `O(1 + μ)` with the bucket-jump index
//!   ([`subset::BucketJumpSampler`]).
//! - [`alias::AliasTable`] — Walker's alias method for `O(1)` draws from an
//!   arbitrary discrete distribution (used for LT-model edge selection and
//!   the bucket-jump index).
//!
//! All samplers are deterministic given the caller-supplied [`rand::Rng`],
//! which keeps every experiment in the workspace reproducible from a seed.

#![warn(missing_docs)]

pub mod alias;
pub mod geometric;
pub mod subset;

pub use alias::AliasTable;
pub use geometric::{geometric_skip, GeometricSkipper, SkipperBank};
pub use subset::{
    bernoulli_subset_naive, uniform_subset, BucketJumpSampler, BucketSubsetSampler,
    SortedSubsetSampler,
};

/// Convenience constructor for the RNG used across the workspace.
///
/// A small, fast, seedable generator; not cryptographically secure, which is
/// fine for Monte-Carlo sampling.
pub fn rng_from_seed(seed: u64) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    rand::rngs::SmallRng::seed_from_u64(seed)
}
