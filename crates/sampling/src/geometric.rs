//! Constant-time geometric-distribution sampling.
//!
//! SUBSIM's key primitive (paper Section 3.1): to sample a subset of `h`
//! elements each kept independently with probability `p`, draw the position
//! of the *next* kept element from the geometric distribution `G(p)` and
//! jump straight to it, skipping the elements in between. Sampling from
//! `G(p)` takes constant time via the inverse CDF (Knuth, TAOCP vol. 3):
//!
//! ```text
//! h' = ceil( ln U / ln (1 - p) ),   U ~ Uniform(0, 1)
//! ```
//!
//! because `h' = i` exactly when `U ∈ [(1-p)^i, (1-p)^(i-1))`, an interval
//! of probability `(1-p)^(i-1) · p`.

use rand::Rng;

/// Sentinel returned when a success can never happen (`p <= 0`).
pub const NEVER: u64 = u64::MAX;

/// Draws the number of Bernoulli(`p`) trials up to and including the first
/// success, in constant time.
///
/// Returns a value in `1..` for `0 < p < 1`, `1` when `p >= 1`, and
/// [`NEVER`] when `p <= 0` (no trial can ever succeed). Results larger than
/// `2^62` are clamped to [`NEVER`]; callers compare against their horizon
/// `h`, which is always far smaller.
///
/// ```
/// use subsim_sampling::{geometric_skip, rng_from_seed};
///
/// let mut rng = rng_from_seed(7);
/// let trials = geometric_skip(&mut rng, 0.25);
/// assert!(trials >= 1); // first success is at trial 1 or later
/// ```
///
/// # Panics
///
/// Debug-asserts that `p` is finite.
#[inline]
pub fn geometric_skip<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    debug_assert!(p.is_finite(), "geometric_skip: p must be finite, got {p}");
    if p >= 1.0 {
        return 1;
    }
    if p <= 0.0 {
        return NEVER;
    }
    // `gen::<f64>()` is in [0, 1); ln(0) would be -inf, so nudge zero up to
    // the smallest positive normal. The bias is ~2^-53 and unobservable.
    let u = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let x = u.ln() / (-p).ln_1p(); // ln(1 - p) computed accurately for small p
    if x >= 4.611_686_018_427_388e18 {
        // >= 2^62: beyond any realistic horizon.
        return NEVER;
    }
    // ceil, then force >= 1 (x can be exactly 0.0 when u rounds to 1.0-eps
    // and p is close to 1).
    (x.ceil() as u64).max(1)
}

/// Reusable geometric sampler with the `ln(1 - p)` denominator hoisted out
/// of the draw loop.
///
/// [`geometric_skip`] recomputes `ln(1 - p)` on every call; inner loops
/// that draw many skips at a fixed rate (every RR-set traversal) should
/// construct a `GeometricSkipper` once per rate instead — the division by
/// a precomputed reciprocal leaves a single `ln` per draw.
#[derive(Debug, Clone, Copy)]
pub struct GeometricSkipper {
    /// `1 / ln(1 - p)`; `0.0` flags the degenerate rates.
    inv_ln_q: f64,
    /// `p >= 1`: every trial succeeds.
    always: bool,
}

impl GeometricSkipper {
    /// Precomputes the sampler for success probability `p`.
    #[inline]
    pub fn new(p: f64) -> Self {
        debug_assert!(p.is_finite());
        if p >= 1.0 {
            GeometricSkipper {
                inv_ln_q: 0.0,
                always: true,
            }
        } else if p <= 0.0 {
            GeometricSkipper {
                inv_ln_q: 0.0,
                always: false,
            }
        } else {
            GeometricSkipper {
                inv_ln_q: 1.0 / (-p).ln_1p(),
                always: false,
            }
        }
    }

    /// Draws the trial index of the next success; semantics identical to
    /// [`geometric_skip`].
    #[inline]
    pub fn skip<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.always {
            return 1;
        }
        if self.inv_ln_q == 0.0 {
            return NEVER;
        }
        self.skip_from(rng.gen::<f64>())
    }

    /// The deterministic tail of [`GeometricSkipper::skip`]: maps an
    /// already-drawn unit sample `u ∈ [0, 1)` to the trial index, bit-for-bit
    /// as `skip` would. Callers that obtain the unit sample themselves (e.g.
    /// to first test it against a precomputed overshoot boundary) use this
    /// to finish only the draws that need the logarithm.
    ///
    /// Only meaningful for non-degenerate rates (`0 < p < 1`); the
    /// degenerate cases short-circuit in `skip` before any sample is drawn.
    #[inline]
    pub fn skip_from(&self, u: f64) -> u64 {
        debug_assert!(!self.always && self.inv_ln_q != 0.0);
        let u = u.max(f64::MIN_POSITIVE);
        let x = u.ln() * self.inv_ln_q;
        if x >= 4.611_686_018_427_388e18 {
            return NEVER;
        }
        (x.ceil() as u64).max(1)
    }
}

/// A bank of per-element [`GeometricSkipper`]s, precomputed in one pass.
///
/// Frontier-style traversals visit the same per-node rates millions of
/// times; constructing the skipper inside the hot loop pays the `ln(1-p)`
/// setup on every activation. Precomputing the bank once per graph moves
/// that setup out of the traversal entirely, and because the stored
/// `1 / ln(1 - p)` is the exact `f64` [`GeometricSkipper::new`] would
/// compute, draws through the bank are bitwise identical to draws through
/// a freshly built skipper on the same RNG stream.
#[derive(Debug, Clone)]
pub struct SkipperBank {
    skippers: Vec<GeometricSkipper>,
}

impl SkipperBank {
    /// Precomputes one skipper per rate in `ps`.
    pub fn new(ps: impl IntoIterator<Item = f64>) -> Self {
        SkipperBank {
            skippers: ps.into_iter().map(GeometricSkipper::new).collect(),
        }
    }

    /// Number of rates in the bank.
    pub fn len(&self) -> usize {
        self.skippers.len()
    }

    /// Whether the bank holds no rates.
    pub fn is_empty(&self) -> bool {
        self.skippers.is_empty()
    }

    /// The precomputed skipper for rate index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> GeometricSkipper {
        self.skippers[i]
    }
}

/// Iterator over the (0-based) positions selected when each of `h` slots is
/// kept independently with probability `p`.
///
/// Equivalent to `(0..h).filter(|_| rng.gen::<f64>() < p)` but runs in
/// `O(1 + h·p)` expected time.
pub struct GeometricHits<'a, R: Rng + ?Sized> {
    rng: &'a mut R,
    p: f64,
    /// Next candidate position (0-based); `cursor > h` once exhausted.
    cursor: u64,
    h: u64,
}

impl<'a, R: Rng + ?Sized> GeometricHits<'a, R> {
    /// Creates the iterator over `h` slots with keep-probability `p`.
    pub fn new(rng: &'a mut R, h: usize, p: f64) -> Self {
        GeometricHits {
            rng,
            p,
            cursor: 0,
            h: h as u64,
        }
    }
}

impl<R: Rng + ?Sized> Iterator for GeometricHits<'_, R> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        let skip = geometric_skip(self.rng, self.p);
        self.cursor = self.cursor.saturating_add(skip);
        if self.cursor > self.h {
            None
        } else {
            Some((self.cursor - 1) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;
    use rand::Rng;

    #[test]
    fn certain_success_is_immediate() {
        let mut rng = rng_from_seed(1);
        for _ in 0..100 {
            assert_eq!(geometric_skip(&mut rng, 1.0), 1);
            assert_eq!(geometric_skip(&mut rng, 1.5), 1);
        }
    }

    #[test]
    fn impossible_success_is_never() {
        let mut rng = rng_from_seed(2);
        assert_eq!(geometric_skip(&mut rng, 0.0), NEVER);
        assert_eq!(geometric_skip(&mut rng, -0.3), NEVER);
    }

    #[test]
    fn mean_matches_one_over_p() {
        let mut rng = rng_from_seed(3);
        for &p in &[0.9, 0.5, 0.1, 0.01] {
            let n = 200_000;
            let sum: f64 = (0..n).map(|_| geometric_skip(&mut rng, p) as f64).sum();
            let mean = sum / n as f64;
            let expect = 1.0 / p;
            assert!(
                (mean - expect).abs() < 0.05 * expect,
                "p={p}: mean {mean} vs expected {expect}"
            );
        }
    }

    #[test]
    fn distribution_matches_geometric_pmf() {
        let mut rng = rng_from_seed(4);
        let p = 0.3;
        let n = 300_000;
        let mut counts = [0u64; 8];
        for _ in 0..n {
            let x = geometric_skip(&mut rng, p);
            if (x as usize) < counts.len() {
                counts[x as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate().skip(1) {
            let expect = (1.0 - p).powi(i as i32 - 1) * p;
            let got = c as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "P(X={i}): got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn tiny_p_does_not_overflow() {
        let mut rng = rng_from_seed(5);
        for _ in 0..1000 {
            let x = geometric_skip(&mut rng, 1e-300);
            assert!(x == NEVER || x >= 1);
        }
    }

    #[test]
    fn hits_iterator_matches_expected_count() {
        let mut rng = rng_from_seed(6);
        let (h, p) = (1000, 0.05);
        let trials = 2000;
        let mut total = 0usize;
        for _ in 0..trials {
            let mut r = rng_from_seed(rng.gen());
            total += GeometricHits::new(&mut r, h, p).count();
        }
        let mean = total as f64 / trials as f64;
        let expect = h as f64 * p;
        assert!(
            (mean - expect).abs() < 0.05 * expect,
            "mean hits {mean} vs {expect}"
        );
    }

    #[test]
    fn hits_iterator_positions_in_range_and_increasing() {
        let mut rng = rng_from_seed(7);
        for _ in 0..200 {
            let mut last = None;
            for pos in GeometricHits::new(&mut rng, 50, 0.2) {
                assert!(pos < 50);
                if let Some(l) = last {
                    assert!(pos > l);
                }
                last = Some(pos);
            }
        }
    }

    #[test]
    fn hits_iterator_p_one_selects_everything() {
        let mut rng = rng_from_seed(8);
        let hits: Vec<usize> = GeometricHits::new(&mut rng, 10, 1.0).collect();
        assert_eq!(hits, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn hits_iterator_p_zero_selects_nothing() {
        let mut rng = rng_from_seed(9);
        assert_eq!(GeometricHits::new(&mut rng, 10, 0.0).count(), 0);
    }

    #[test]
    fn bank_draws_match_fresh_skippers_bitwise() {
        let ps = [0.0, 1e-9, 0.01, 0.2, 0.25, 0.5, 1.0, 1.5, -0.3];
        let bank = SkipperBank::new(ps.iter().copied());
        assert_eq!(bank.len(), ps.len());
        for (i, &p) in ps.iter().enumerate() {
            let mut a = rng_from_seed(1000 + i as u64);
            let mut b = rng_from_seed(1000 + i as u64);
            let fresh = GeometricSkipper::new(p);
            for _ in 0..200 {
                assert_eq!(bank.get(i).skip(&mut a), fresh.skip(&mut b), "p={p}");
            }
        }
    }
}
