//! Property-based tests for the bounds and the greedy machinery.

use proptest::prelude::*;
use subsim_core::bounds::{
    i_max, ln_binomial, opim_lower_bound, opim_upper_bound, theta_max_im_sentinel,
    theta_max_sentinel, theta_zero,
};
use subsim_core::coverage::{greedy_max_coverage, GreedyConfig};
use subsim_diffusion::RrCollection;

/// Exhaustive best coverage over all k-subsets of a <= 20-node universe,
/// via per-node coverage bitmasks (collections in these tests hold < 64
/// sets).
fn brute_force_best_coverage(rr: &RrCollection, k: usize) -> u32 {
    let n = rr.graph_n();
    let mut node_mask = vec![0u64; n];
    for (i, set) in rr.iter().enumerate() {
        for &v in set {
            node_mask[v as usize] |= 1 << i;
        }
    }
    fn recurse(masks: &[u64], start: usize, left: usize, acc: u64, best: &mut u32) {
        if left == 0 || start == masks.len() {
            *best = (*best).max(acc.count_ones());
            return;
        }
        for i in start..masks.len() {
            recurse(masks, i + 1, left - 1, acc | masks[i], best);
        }
        *best = (*best).max(acc.count_ones());
    }
    let mut best = 0;
    recurse(&node_mask, 0, k, 0, &mut best);
    best
}

proptest! {
    #[test]
    fn bounds_sandwich_the_empirical_mean(
        coverage in 0u32..100_000,
        theta in 1u64..1_000_000,
        n in 1usize..10_000_000,
        delta in 1e-9f64..0.5,
    ) {
        let cov = coverage as f64;
        prop_assume!(cov <= theta as f64);
        let mean = n as f64 * cov / theta as f64;
        let lb = opim_lower_bound(cov, theta, n, delta);
        let ub = opim_upper_bound(cov, theta, n, delta);
        prop_assert!(lb >= 0.0);
        prop_assert!(lb <= mean + 1e-6 * mean.max(1.0), "lb {lb} above mean {mean}");
        prop_assert!(ub >= mean - 1e-6 * mean.max(1.0), "ub {ub} below mean {mean}");
    }

    #[test]
    fn bounds_monotone_in_delta(
        coverage in 1u32..10_000,
        theta in 100u64..100_000,
    ) {
        // Smaller failure probability -> wider (more conservative) bounds.
        let cov = coverage as f64;
        prop_assume!(cov <= theta as f64);
        let n = 100_000;
        let lb_loose = opim_lower_bound(cov, theta, n, 0.1);
        let lb_tight = opim_lower_bound(cov, theta, n, 0.001);
        prop_assert!(lb_tight <= lb_loose + 1e-9);
        let ub_loose = opim_upper_bound(cov, theta, n, 0.1);
        let ub_tight = opim_upper_bound(cov, theta, n, 0.001);
        prop_assert!(ub_tight >= ub_loose - 1e-9);
    }

    #[test]
    fn ln_binomial_recurrence(n in 2u64..500, k in 1u64..100) {
        prop_assume!(k < n);
        // Pascal: C(n,k) = C(n-1,k-1) + C(n-1,k). Verify in log space.
        let lhs = ln_binomial(n, k);
        let a = ln_binomial(n - 1, k - 1);
        let b = if k < n - 1 { ln_binomial(n - 1, k) } else { 0.0 };
        let rhs = (a.exp() + b.exp()).ln();
        // exp() can overflow for large inputs; only check the stable range.
        if rhs.is_finite() {
            prop_assert!((lhs - rhs).abs() < 1e-6 * lhs.max(1.0), "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn theta_formulas_monotone_in_epsilon(
        n in 100usize..1_000_000,
        k in 1usize..500,
    ) {
        prop_assume!(k < n);
        let a = theta_max_sentinel(n, k, 0.05, 0.01);
        let b = theta_max_sentinel(n, k, 0.2, 0.01);
        prop_assert!(a > b, "smaller eps must need more samples");
        let c = theta_max_im_sentinel(n, k, k.min(4), 0.05, 0.01);
        prop_assert!(c > 0.0);
        prop_assert!(i_max(a, theta_zero(0.01)) >= 1);
    }

    #[test]
    fn greedy_never_beats_total_and_respects_guarantee(
        sets in prop::collection::vec(prop::collection::vec(0u32..20, 1..6), 1..60),
        k in 1usize..6,
    ) {
        let mut rr = RrCollection::new(20);
        for s in &sets {
            let mut s = s.clone();
            s.sort_unstable();
            s.dedup();
            rr.push(&s);
        }
        let out = greedy_max_coverage(&rr, &GreedyConfig::standard(k));
        prop_assert!(out.coverage() <= rr.len());
        // The Eq 2 bound dominates the greedy's own coverage.
        prop_assert!(out.coverage_upper + 1e-9 >= out.coverage() as f64);
        // Brute-force the optimal k-set coverage (tiny universe) and check
        // both the (1 - 1/e) greedy guarantee and the Eq 2 upper bound.
        let opt = brute_force_best_coverage(&rr, k);
        prop_assert!(out.coverage_upper + 1e-9 >= opt as f64, "Eq 2 bound below OPT");
        let frac = 1.0 - (-1.0f64).exp();
        prop_assert!(
            out.coverage() as f64 + 1e-9 >= frac * opt as f64,
            "greedy {} below (1-1/e)·OPT with OPT {}",
            out.coverage(),
            opt
        );
        // Prefix coverages are monotone with shrinking gains.
        let p = &out.prefix_coverage;
        for w in p.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        for w in p.windows(3) {
            prop_assert!(w[2] - w[1] <= w[1] - w[0]);
        }
        // Seeds are distinct.
        let mut s = out.seeds.clone();
        s.sort_unstable();
        s.dedup();
        prop_assert_eq!(s.len(), out.seeds.len());
    }

    #[test]
    fn greedy_beats_any_single_node(
        sets in prop::collection::vec(prop::collection::vec(0u32..15, 1..5), 1..40),
    ) {
        let mut rr = RrCollection::new(15);
        for s in &sets {
            let mut s = s.clone();
            s.sort_unstable();
            s.dedup();
            rr.push(&s);
        }
        let out = greedy_max_coverage(&rr, &GreedyConfig::standard(1));
        for v in 0..15u32 {
            prop_assert!(out.coverage() >= rr.coverage_of(&[v]));
        }
    }
}

/// Oracle check: every greedy step must pick a node whose marginal gain
/// equals the brute-force maximum marginal at that step. (Trajectories of
/// two correct greedy implementations can diverge after a tie, so the
/// differential test is step-wise optimality, not trajectory equality.)
fn assert_stepwise_optimal(rr: &RrCollection, seeds: &[u32], prefix: &[usize]) {
    let mut covered = vec![false; rr.len()];
    for (i, &seed) in seeds.iter().enumerate() {
        // Max marginal over all nodes under the current covered state.
        let mut best = 0usize;
        for v in 0..rr.graph_n() as u32 {
            if seeds[..i].contains(&v) {
                continue;
            }
            let gain = rr
                .iter()
                .enumerate()
                .filter(|(sid, set)| !covered[*sid] && set.contains(&v))
                .count();
            best = best.max(gain);
        }
        let picked = prefix[i + 1] - prefix[i];
        assert_eq!(picked, best, "step {i} picked gain {picked}, max is {best}");
        for (sid, set) in rr.iter().enumerate() {
            if set.contains(&seed) {
                covered[sid] = true;
            }
        }
    }
}

proptest! {
    /// Differential test: both greedy implementations are step-wise
    /// optimal against a brute-force marginal oracle, and their final
    /// first-step gains coincide (no ties possible at the maximum value
    /// itself).
    #[test]
    fn heap_and_bucket_greedy_are_stepwise_optimal(
        sets in prop::collection::vec(prop::collection::vec(0u32..25, 1..6), 1..80),
        k in 1usize..8,
    ) {
        use subsim_core::coverage::greedy_max_coverage_buckets;
        let mut rr = RrCollection::new(25);
        for s in &sets {
            let mut s = s.clone();
            s.sort_unstable();
            s.dedup();
            rr.push(&s);
        }
        let heap = greedy_max_coverage(&rr, &GreedyConfig::standard(k));
        assert_stepwise_optimal(&rr, &heap.seeds, &heap.prefix_coverage);
        let bucket = greedy_max_coverage_buckets(&rr, k);
        assert_stepwise_optimal(&rr, &bucket.seeds, &bucket.prefix_coverage);
        prop_assert_eq!(heap.prefix_coverage[1], bucket.prefix_coverage[1]);
    }
}
