//! Error type for the IM algorithms.

use std::fmt;

/// Errors produced while validating options or running an algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum ImError {
    /// `k` must satisfy `1 <= k <= n`.
    InvalidK {
        /// Requested seed count.
        k: usize,
        /// Graph node count.
        n: usize,
    },
    /// `ε` must lie strictly inside `(0, 1 - 1/e)` for the guarantee to be
    /// non-vacuous.
    InvalidEpsilon {
        /// Requested accuracy.
        epsilon: f64,
    },
    /// `δ` must lie strictly inside `(0, 1)`.
    InvalidDelta {
        /// Requested failure probability.
        delta: f64,
    },
}

impl fmt::Display for ImError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImError::InvalidK { k, n } => {
                write!(f, "seed count k={k} must satisfy 1 <= k <= n={n}")
            }
            ImError::InvalidEpsilon { epsilon } => {
                write!(f, "epsilon={epsilon} must lie in (0, 1 - 1/e)")
            }
            ImError::InvalidDelta { delta } => {
                write!(f, "delta={delta} must lie in (0, 1)")
            }
        }
    }
}

impl std::error::Error for ImError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(ImError::InvalidK { k: 0, n: 5 }.to_string().contains("k=0"));
        assert!(ImError::InvalidEpsilon { epsilon: 2.0 }
            .to_string()
            .contains("epsilon=2"));
        assert!(ImError::InvalidDelta { delta: 0.0 }
            .to_string()
            .contains("delta=0"));
    }
}
