//! OPIM bound evaluation over *external* RR collections.
//!
//! [`crate::algorithms::OpimC`] owns its RR sample and throws it away when
//! it returns. The bound machinery it runs each round, however, is valid
//! for **any** pair of independent collections, whatever generated them
//! (Eqs 1–2 only require that `R₂` is independent of the selected seeds,
//! which holds because selection reads `R₁` alone). This module exposes
//! that round as a standalone function so long-lived pools — notably
//! `subsim-index`'s amortized query engine — can re-certify against the
//! same sample across many `(k, ε)` queries without regenerating it.

use crate::bounds::{opim_lower_bound, opim_upper_bound};
use crate::coverage::{
    greedy_max_coverage_indexed, greedy_max_coverage_sharded, GreedyConfig, GreedyOutcome,
};
use std::time::{Duration, Instant};
use subsim_diffusion::{InvertedIndex, NodeMarks, RrCollection};
use subsim_graph::NodeId;

/// Outcome of one OPIM certification round over an external pool pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolEvaluation {
    /// Greedy seeds selected from `R₁`, in pick order.
    pub seeds: Vec<NodeId>,
    /// `Λ_{R₁}(S)`: sets of `R₁` the seeds cover.
    pub coverage_r1: usize,
    /// `Λ_{R₂}(S)`: sets of `R₂` the seeds cover (feeds Eq. 1).
    pub coverage_r2: usize,
    /// Eq. 1 lower bound on `𝕀(S)`, failing with probability `<= δ_l`.
    pub lower: f64,
    /// Eq. 2 upper bound on `𝕀(S^o_k)`, failing with probability `<= δ_u`.
    pub upper: f64,
}

impl PoolEvaluation {
    /// The certified approximation ratio `𝕀⁻(S)/𝕀⁺(S^o_k)`.
    pub fn ratio(&self) -> f64 {
        if self.upper <= 0.0 {
            0.0
        } else {
            self.lower / self.upper
        }
    }
}

/// Runs one OPIM-C certification round over caller-owned collections:
/// greedy max-coverage over `r1` (which also yields the Eq. 2 coverage
/// upper bound), then the Eq. 1 lower bound from the seeds' coverage of
/// `r2`.
///
/// The guarantee follows OPIM-C's: if `ratio() > 1 - 1/e - ε` then the
/// returned seeds are `(1 - 1/e - ε)`-approximate with probability at
/// least `1 - δ_l - δ_u`, **provided** `r2` was generated independently of
/// `r1` (both collections i.i.d. random RR sets over the same graph).
/// Both collections must be non-empty and over the same graph.
pub fn evaluate_pool(
    r1: &RrCollection,
    r2: &RrCollection,
    k: usize,
    delta_l: f64,
    delta_u: f64,
) -> PoolEvaluation {
    evaluate_pool_par(r1, r2, k, delta_l, delta_u, 1)
}

/// [`evaluate_pool`] with the selection *preparation* (inverted-index
/// build and initial counts) sharded across `threads` workers.
///
/// The greedy loop itself stays sequential, so the seeds and both bounds
/// are byte-identical for every `threads` value — parallelism only cuts
/// the wall-clock of the certification round.
pub fn evaluate_pool_par(
    r1: &RrCollection,
    r2: &RrCollection,
    k: usize,
    delta_l: f64,
    delta_u: f64,
    threads: usize,
) -> PoolEvaluation {
    evaluate_pool_sharded(&[r1], &[r2], k, delta_l, delta_u, threads)
}

/// [`evaluate_pool`] over a *sharded* pool pair: `r1s[s]` / `r2s[s]`
/// hold shard `s`'s disjoint slice of each half's union.
///
/// Selection runs the merged greedy over per-shard coverage counts, and
/// both certificates are evaluated on the **union**: the Eq. 2 upper
/// bound uses `Σ_s |R₁^s|` and the Eq. 1 lower bound uses the summed
/// per-shard `R₂` coverages over `Σ_s |R₂^s|`. Because the greedy state
/// is identical to the union's and the bounds see identical counts and
/// lengths, the result is byte-identical to [`evaluate_pool`] on the
/// concatenated halves — the single-pool entry point is literally this
/// function with one shard.
pub fn evaluate_pool_sharded(
    r1s: &[&RrCollection],
    r2s: &[&RrCollection],
    k: usize,
    delta_l: f64,
    delta_u: f64,
    threads: usize,
) -> PoolEvaluation {
    let n = check_shards(r1s, r2s);
    let out = greedy_max_coverage_sharded(r1s, &GreedyConfig::standard(k).with_threads(threads));
    finish_evaluation(out, r1s, r2s, n, delta_l, delta_u)
}

/// [`evaluate_pool_sharded`] with caller-owned per-shard inverted
/// indexes over the `R₁` shards — the serving path caches one index per
/// published shard snapshot, so a warm query skips the index build.
pub fn evaluate_pool_sharded_indexed(
    r1s: &[&RrCollection],
    idxs: &[&InvertedIndex],
    r2s: &[&RrCollection],
    k: usize,
    delta_l: f64,
    delta_u: f64,
    threads: usize,
) -> PoolEvaluation {
    let n = check_shards(r1s, r2s);
    let out =
        greedy_max_coverage_indexed(r1s, idxs, &GreedyConfig::standard(k).with_threads(threads));
    finish_evaluation(out, r1s, r2s, n, delta_l, delta_u)
}

pub(crate) fn check_shards(r1s: &[&RrCollection], r2s: &[&RrCollection]) -> usize {
    assert!(
        !r1s.is_empty() && !r2s.is_empty(),
        "need at least one shard"
    );
    let n = r1s[0].graph_n();
    for rr in r1s.iter().chain(r2s) {
        assert_eq!(rr.graph_n(), n, "pool shards are over different graphs");
    }
    assert!(
        r1s.iter().any(|rr| !rr.is_empty()) && r2s.iter().any(|rr| !rr.is_empty()),
        "pool halves must be non-empty"
    );
    n
}

fn finish_evaluation(
    out: GreedyOutcome,
    r1s: &[&RrCollection],
    r2s: &[&RrCollection],
    n: usize,
    delta_l: f64,
    delta_u: f64,
) -> PoolEvaluation {
    let r1_len: u64 = r1s.iter().map(|rr| rr.len() as u64).sum();
    let r2_len: u64 = r2s.iter().map(|rr| rr.len() as u64).sum();
    let upper = opim_upper_bound(out.coverage_upper, r1_len, n, delta_u);
    let mut marks = NodeMarks::new();
    let coverage_r2: usize = r2s
        .iter()
        .map(|r2| r2.coverage_of_with(&out.seeds, &mut marks))
        .sum();
    let lower = opim_lower_bound(coverage_r2 as f64, r2_len, n, delta_l);
    PoolEvaluation {
        coverage_r1: out.coverage(),
        seeds: out.seeds,
        coverage_r2,
        lower,
        upper,
    }
}

/// [`evaluate_pool`] plus the wall-clock time of the round — the
/// instrumented entry point serving layers use to attribute query latency
/// to certification (greedy + bounds) as opposed to RR generation.
pub fn evaluate_pool_timed(
    r1: &RrCollection,
    r2: &RrCollection,
    k: usize,
    delta_l: f64,
    delta_u: f64,
) -> (PoolEvaluation, Duration) {
    evaluate_pool_timed_par(r1, r2, k, delta_l, delta_u, 1)
}

/// [`evaluate_pool_par`] plus the wall-clock time of the round.
pub fn evaluate_pool_timed_par(
    r1: &RrCollection,
    r2: &RrCollection,
    k: usize,
    delta_l: f64,
    delta_u: f64,
    threads: usize,
) -> (PoolEvaluation, Duration) {
    let start = Instant::now();
    let eval = evaluate_pool_par(r1, r2, k, delta_l, delta_u, threads);
    (eval, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::greedy_max_coverage;
    use subsim_diffusion::{RrContext, RrSampler, RrStrategy};
    use subsim_graph::generators::{barabasi_albert, star_graph};
    use subsim_graph::WeightModel;
    use subsim_sampling::rng_from_seed;

    fn two_pools(g: &subsim_graph::Graph, count: usize, seed: u64) -> (RrCollection, RrCollection) {
        let sampler = RrSampler::new(g, RrStrategy::SubsimIc);
        let mut ctx = RrContext::new(g.n());
        let mut rng = rng_from_seed(seed);
        let mut r1 = RrCollection::new(g.n());
        r1.generate(&sampler, &mut ctx, &mut rng, count);
        let mut r2 = RrCollection::new(g.n());
        r2.generate(&sampler, &mut ctx, &mut rng, count);
        (r1, r2)
    }

    #[test]
    fn matches_manual_bound_computation() {
        let g = barabasi_albert(300, 3, WeightModel::Wc, 71);
        let (r1, r2) = two_pools(&g, 2000, 72);
        let eval = evaluate_pool(&r1, &r2, 5, 0.01, 0.01);
        let direct = greedy_max_coverage(&r1, &GreedyConfig::standard(5));
        assert_eq!(eval.seeds, direct.seeds);
        assert_eq!(eval.coverage_r1, direct.coverage());
        assert_eq!(eval.coverage_r2, r2.coverage_of(&direct.seeds));
        let lb = opim_lower_bound(eval.coverage_r2 as f64, r2.len() as u64, g.n(), 0.01);
        let ub = opim_upper_bound(direct.coverage_upper, r1.len() as u64, g.n(), 0.01);
        assert_eq!(eval.lower, lb);
        assert_eq!(eval.upper, ub);
        assert!(eval.lower <= eval.upper);
    }

    #[test]
    fn large_pool_certifies_star_hub() {
        let g = star_graph(100, WeightModel::UniformIc { p: 0.5 });
        let (r1, r2) = two_pools(&g, 20_000, 73);
        let eval = evaluate_pool(&r1, &r2, 1, 0.005, 0.005);
        assert_eq!(eval.seeds, vec![0]);
        assert!(
            eval.ratio() > 1.0 - (-1.0f64).exp() - 0.1,
            "ratio {} too loose on a 20k-set pool",
            eval.ratio()
        );
    }

    #[test]
    fn parallel_evaluation_is_byte_identical() {
        let g = barabasi_albert(250, 3, WeightModel::Wc, 74);
        let (r1, r2) = two_pools(&g, 3000, 75);
        let reference = evaluate_pool(&r1, &r2, 6, 0.01, 0.02);
        for threads in [2, 4, 7] {
            let eval = evaluate_pool_par(&r1, &r2, 6, 0.01, 0.02, threads);
            assert_eq!(eval, reference, "threads={threads}");
        }
        let (timed, elapsed) = evaluate_pool_timed_par(&r1, &r2, 6, 0.01, 0.02, 3);
        assert_eq!(timed, reference);
        assert!(elapsed > Duration::ZERO);
    }

    #[test]
    fn sharded_evaluation_matches_union() {
        let g = barabasi_albert(280, 3, WeightModel::Wc, 76);
        let (r1, r2) = two_pools(&g, 2500, 77);
        let reference = evaluate_pool(&r1, &r2, 5, 0.01, 0.02);

        let split = |rr: &RrCollection, shards: usize| -> Vec<RrCollection> {
            let mut out: Vec<RrCollection> = (0..shards)
                .map(|_| RrCollection::new(rr.graph_n()))
                .collect();
            for (i, set) in rr.iter().enumerate() {
                out[i % shards].push(set);
            }
            out
        };
        for shards in [1usize, 2, 4, 5] {
            let p1 = split(&r1, shards);
            let p2 = split(&r2, shards);
            let r1s: Vec<&RrCollection> = p1.iter().collect();
            let r2s: Vec<&RrCollection> = p2.iter().collect();
            let eval = evaluate_pool_sharded(&r1s, &r2s, 5, 0.01, 0.02, 2);
            assert_eq!(eval, reference, "shards={shards}");

            let idxs: Vec<InvertedIndex> = p1.iter().map(InvertedIndex::build).collect();
            let idx_refs: Vec<&InvertedIndex> = idxs.iter().collect();
            let eval = evaluate_pool_sharded_indexed(&r1s, &idx_refs, &r2s, 5, 0.01, 0.02, 1);
            assert_eq!(eval, reference, "indexed shards={shards}");
        }
    }

    #[test]
    fn ratio_handles_degenerate_upper() {
        let eval = PoolEvaluation {
            seeds: vec![],
            coverage_r1: 0,
            coverage_r2: 0,
            lower: 0.0,
            upper: 0.0,
        };
        assert_eq!(eval.ratio(), 0.0);
    }
}
