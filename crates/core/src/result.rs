//! Run results and per-run statistics.

use std::time::Duration;
use subsim_graph::NodeId;

/// Statistics gathered during one algorithm run — the quantities the
/// paper's figures report (RR-set counts, average sizes, phase timings).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Total random RR sets generated across all phases and doublings.
    pub rr_generated: u64,
    /// Total node entries across those sets (`rr_total_nodes /
    /// rr_generated` is the average RR-set size of Figure 3(b)).
    pub rr_total_nodes: u64,
    /// Generation cost proxy (see `subsim_diffusion::RrContext::cost`).
    pub cost: u64,
    /// RR generations truncated by a sentinel hit (HIST only).
    pub sentinel_hits: u64,
    /// Sentinel-set size `b` chosen by HIST's phase 1 (0 otherwise).
    pub sentinel_size: usize,
    /// RR sets generated during HIST's sentinel-selection phase only
    /// (Figure 3(a)); equals `rr_generated` for single-phase algorithms.
    pub phase1_rr: u64,
    /// Certified lower bound on `𝕀(S*)` at termination (0 when the
    /// algorithm provides none, e.g. IMM terminates by sample count).
    pub lower_bound: f64,
    /// Certified upper bound on `𝕀(S^o_k)` at termination (0 when none).
    pub upper_bound: f64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl RunStats {
    /// Average RR-set size; 0 if no sets were generated.
    pub fn avg_rr_size(&self) -> f64 {
        if self.rr_generated == 0 {
            0.0
        } else {
            self.rr_total_nodes as f64 / self.rr_generated as f64
        }
    }

    /// The certified approximation ratio `𝕀⁻(S*)/𝕀⁺(S^o)` at
    /// termination, if both bounds were computed.
    pub fn certified_ratio(&self) -> Option<f64> {
        (self.upper_bound > 0.0).then(|| self.lower_bound / self.upper_bound)
    }
}

/// The outcome of an IM run: the seed set plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ImResult {
    /// Selected seeds, in selection order (greedy order).
    pub seeds: Vec<NodeId>,
    /// Run statistics.
    pub stats: RunStats,
}

impl ImResult {
    /// The seed set size.
    pub fn k(&self) -> usize {
        self.seeds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_rr_size_handles_zero() {
        assert_eq!(RunStats::default().avg_rr_size(), 0.0);
        let s = RunStats {
            rr_generated: 4,
            rr_total_nodes: 10,
            ..Default::default()
        };
        assert!((s.avg_rr_size() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn certified_ratio_requires_bounds() {
        assert_eq!(RunStats::default().certified_ratio(), None);
        let s = RunStats {
            lower_bound: 3.0,
            upper_bound: 4.0,
            ..Default::default()
        };
        assert!((s.certified_ratio().unwrap() - 0.75).abs() < 1e-12);
    }
}
