//! Sentinel-aware pool evaluation for long-lived serving pools.
//!
//! The one-shot [`crate::algorithms::Hist`] already implements the paper's
//! sentinel machinery (Algorithms 5–8) but throws its RR sample away when
//! it returns. This module ports the two pieces the *serving* stack needs
//! to keep amortized pools under sentinel truncation:
//!
//! 1. [`SentinelSet::select`] — pick a small sentinel set `Z` as a hitting
//!    set over an **existing** plain pool prefix (iterative-covering via
//!    the revised greedy, Algorithm 6's out-degree tie-break), instead of
//!    rerunning the full Algorithm 7 doubling schedule from scratch.
//! 2. [`evaluate_pool_sentinel_sharded`] — re-certify the OPIM union bound
//!    (Eqs 1–2) over a *mixed* pool whose early chunks are plain and whose
//!    later chunks were generated with Algorithm 5 truncation, so warm
//!    queries keep the full `(k, ε, δ)` guarantee.
//!
//! # Why the bounds survive truncation
//!
//! A truncated RR set records the traversal up to **and including** the
//! first sentinel hit. For any seed set `S ⊇ Z` the coverage indicator of
//! a truncated set equals the full set's: if the traversal hit `z ∈ Z`,
//! the recorded set contains `z ∈ S` (covered either way); if it never
//! hit, the recorded set *is* the full set. Hence, mirroring HIST phase 2:
//!
//! * **Eq. 1 (lower)** on `R₂` is exact for the returned seeds when
//!   `k ≥ |Z|` (seeds ⊇ Z). For `k < |Z|` the seeds are the prefix
//!   `Z[..k]` and truncated coverage only *undercounts* (a set stopped at
//!   `z ∉ Z[..k]` may hide a later member), so the bound is conservative —
//!   still sound, possibly loose.
//! * **Eq. 2 (upper)** uses the submodular chain
//!   `Λ(Z) + Σ top-k marginals ≥ Λ(Z ∪ S°_k) = Λ_full(Z ∪ S°_k) ≥
//!   Λ_full(S°_k)` — the middle equality is the superset property above,
//!   so the bound dominates the optimum's *full-set* coverage and the
//!   OPIM concentration argument applies unchanged, for **any** `k`.
//!
//! The result is certified *statistically*: a sentinel pool is not
//! bit-identical to a plain pool, but every answer it returns carries the
//! same `(1 - 1/e - ε, δ)` certificate, checked per query.

use crate::bounds::{opim_lower_bound, opim_upper_bound};
use crate::coverage::{greedy_max_coverage_sharded, GreedyConfig};
use crate::pool::{check_shards, PoolEvaluation};
use subsim_diffusion::{NodeMarks, RrCollection};
use subsim_graph::{Graph, NodeId};

/// A sentinel set pinned to one graph version.
///
/// Selected once per version over the plain warmup prefix of the pool;
/// every later top-up chunk runs Algorithm 5 truncation against it. The
/// serving layers persist it in snapshots and drop it (re-selecting) when
/// a graph delta touches any of its nodes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SentinelSet {
    nodes: Vec<NodeId>,
}

impl SentinelSet {
    /// Wraps an explicit node list (snapshot load path). Duplicates are
    /// removed; order is preserved (greedy pick order matters for the
    /// `k < |Z|` prefix answer).
    pub fn from_nodes(nodes: Vec<NodeId>) -> Self {
        let mut seen = std::collections::HashSet::new();
        let nodes = nodes.into_iter().filter(|&v| seen.insert(v)).collect();
        SentinelSet { nodes }
    }

    /// Selects up to `b` sentinels as a hitting set over `prefix` — the
    /// plain (untruncated) warmup chunks of the current pool — using the
    /// revised greedy (coverage ties break towards large out-degree, so
    /// sentinels are nodes RR traversals are likely to hit).
    ///
    /// This is the iterative-covering shortcut: the pool prefix is an
    /// i.i.d. RR sample that already exists, so no fresh Algorithm 7
    /// doubling run is needed. Deterministic given `(prefix, g, b)`.
    pub fn select(prefix: &[&RrCollection], g: &Graph, b: usize) -> Self {
        if b == 0 || prefix.iter().all(|rr| rr.is_empty()) {
            return SentinelSet::default();
        }
        let out = greedy_max_coverage_sharded(prefix, &GreedyConfig::revised(b.min(g.n()), g));
        SentinelSet { nodes: out.seeds }
    }

    /// The sentinel nodes in greedy pick order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of sentinels.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no sentinel is installed (plain-pool behaviour).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `v` is a sentinel — the staleness test delta repair runs
    /// on every touched endpoint.
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }
}

/// [`evaluate_pool_sentinel_sharded`] over unsharded halves.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_pool_sentinel(
    r1: &RrCollection,
    r2: &RrCollection,
    sentinel: &SentinelSet,
    g: &Graph,
    k: usize,
    delta_l: f64,
    delta_u: f64,
    threads: usize,
) -> PoolEvaluation {
    evaluate_pool_sentinel_sharded(&[r1], &[r2], sentinel, g, k, delta_l, delta_u, threads)
}

/// One OPIM certification round over a sentinel-truncated pool pair,
/// mirroring HIST phase 2 (Algorithm 8) on caller-owned collections.
///
/// `r1s`/`r2s` may freely mix plain and truncated sets (the serving pools
/// keep a plain warmup prefix). Sets already covered by the sentinel are
/// filtered out and counted as base coverage; the remaining `k - |Z|`
/// seeds come from the revised greedy excluding `Z`, and both bounds are
/// evaluated on the full (unfiltered) half lengths. For `k < |Z|` the
/// seeds are the prefix `Z[..k]` with a conservative Eq. 1 (see the
/// module docs for the soundness argument). An empty sentinel falls back
/// to the plain [`crate::pool::evaluate_pool_sharded`] round.
///
/// The guarantee matches [`crate::pool::evaluate_pool`]'s: if `ratio() >
/// 1 - 1/e - ε` the seeds are `(1 - 1/e - ε)`-approximate with
/// probability at least `1 - δ_l - δ_u`, provided both halves are
/// independent i.i.d. samples under the *same* sentinel set.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_pool_sentinel_sharded(
    r1s: &[&RrCollection],
    r2s: &[&RrCollection],
    sentinel: &SentinelSet,
    g: &Graph,
    k: usize,
    delta_l: f64,
    delta_u: f64,
    threads: usize,
) -> PoolEvaluation {
    if sentinel.is_empty() {
        return crate::pool::evaluate_pool_sharded(r1s, r2s, k, delta_l, delta_u, threads);
    }
    let n = check_shards(r1s, r2s);
    let z = sentinel.nodes();
    let b = z.len();
    let mut marks = NodeMarks::new();

    // Line 5 of Algorithm 8: sets the sentinel covers carry zero marginal
    // coverage for the extension picks; count them as base coverage. On a
    // truncated pool most sets are covered, so the filtered greedy runs
    // over a small residue — the selection-time half of HIST's speedup.
    let mut base = 0usize;
    let filtered: Vec<RrCollection> = r1s
        .iter()
        .map(|rr| {
            let (f, covered) = rr.filter_not_covering_with(z, &mut marks);
            base += covered;
            f
        })
        .collect();
    let refs: Vec<&RrCollection> = filtered.iter().collect();
    let cfg = GreedyConfig {
        select: k.saturating_sub(b),
        bound_terms: k,
        tie_break: Some(g),
        base_covered: base,
        exclude: z,
        threads,
    };
    let out = greedy_max_coverage_sharded(&refs, &cfg);

    let mut seeds: Vec<NodeId> = z[..b.min(k)].to_vec();
    seeds.extend_from_slice(&out.seeds);

    let r1_len: u64 = r1s.iter().map(|rr| rr.len() as u64).sum();
    let r2_len: u64 = r2s.iter().map(|rr| rr.len() as u64).sum();
    let upper = opim_upper_bound(out.coverage_upper, r1_len, n, delta_u);
    let coverage_r1 = if k >= b {
        out.coverage()
    } else {
        r1s.iter()
            .map(|rr| rr.coverage_of_with(&seeds, &mut marks))
            .sum()
    };
    let coverage_r2: usize = r2s
        .iter()
        .map(|rr| rr.coverage_of_with(&seeds, &mut marks))
        .sum();
    let lower = opim_lower_bound(coverage_r2 as f64, r2_len, n, delta_l);
    PoolEvaluation {
        seeds,
        coverage_r1,
        coverage_r2,
        lower,
        upper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::evaluate_pool;
    use subsim_diffusion::{RrContext, RrSampler, RrStrategy};
    use subsim_graph::generators::{barabasi_albert, star_graph};
    use subsim_graph::WeightModel;
    use subsim_sampling::rng_from_seed;

    /// A mixed pool: `plain` untruncated sets followed by `trunc` sets
    /// generated under Algorithm 5 truncation against `z`.
    fn mixed_pool(
        g: &subsim_graph::Graph,
        z: &[NodeId],
        plain: usize,
        trunc: usize,
        seed: u64,
    ) -> RrCollection {
        let sampler = RrSampler::new(g, RrStrategy::SubsimIc);
        let mut ctx = RrContext::new(g.n());
        let mut rng = rng_from_seed(seed);
        let mut rr = RrCollection::new(g.n());
        rr.generate(&sampler, &mut ctx, &mut rng, plain);
        ctx.set_sentinel(z);
        rr.generate(&sampler, &mut ctx, &mut rng, trunc);
        rr
    }

    fn plain_pool(g: &subsim_graph::Graph, count: usize, seed: u64) -> RrCollection {
        mixed_pool(g, &[], count, 0, seed)
    }

    #[test]
    fn selection_is_deterministic_and_bounded() {
        let g = barabasi_albert(300, 3, WeightModel::Wc, 11);
        let prefix = plain_pool(&g, 2000, 12);
        let a = SentinelSet::select(&[&prefix], &g, 4);
        let b = SentinelSet::select(&[&prefix], &g, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        for &v in a.nodes() {
            assert!(a.contains(v));
        }
    }

    #[test]
    fn selection_prefers_hubs() {
        // The star hub is in every RR set rooted at a leaf; it must be
        // the first sentinel.
        let g = star_graph(80, WeightModel::UniformIc { p: 0.5 });
        let prefix = plain_pool(&g, 1000, 13);
        let z = SentinelSet::select(&[&prefix], &g, 2);
        assert_eq!(z.nodes()[0], 0);
    }

    #[test]
    fn empty_prefix_or_zero_b_selects_nothing() {
        let g = star_graph(10, WeightModel::Wc);
        let empty = RrCollection::new(g.n());
        assert!(SentinelSet::select(&[&empty], &g, 3).is_empty());
        let prefix = plain_pool(&g, 50, 14);
        assert!(SentinelSet::select(&[&prefix], &g, 0).is_empty());
    }

    #[test]
    fn from_nodes_dedups_preserving_order() {
        let z = SentinelSet::from_nodes(vec![5, 3, 5, 7, 3]);
        assert_eq!(z.nodes(), &[5, 3, 7]);
    }

    #[test]
    fn empty_sentinel_matches_plain_evaluation() {
        let g = barabasi_albert(250, 3, WeightModel::Wc, 15);
        let r1 = plain_pool(&g, 1500, 16);
        let r2 = plain_pool(&g, 1500, 17);
        let plain = evaluate_pool(&r1, &r2, 5, 0.01, 0.01);
        let viaz = evaluate_pool_sentinel(&r1, &r2, &SentinelSet::default(), &g, 5, 0.01, 0.01, 1);
        assert_eq!(plain, viaz);
    }

    #[test]
    fn sentinel_evaluation_certifies_star_hub() {
        let g = star_graph(100, WeightModel::UniformIc { p: 0.5 });
        let warm = plain_pool(&g, 2000, 18);
        let z = SentinelSet::select(&[&warm], &g, 1);
        let r1 = mixed_pool(&g, z.nodes(), 2000, 18_000, 18);
        let r2 = mixed_pool(&g, z.nodes(), 2000, 18_000, 19);
        let eval = evaluate_pool_sentinel(&r1, &r2, &z, &g, 1, 0.005, 0.005, 1);
        assert_eq!(eval.seeds, vec![0]);
        assert!(
            eval.ratio() > 1.0 - (-1.0f64).exp() - 0.1,
            "ratio {} too loose",
            eval.ratio()
        );
        assert!(eval.lower <= eval.upper);
    }

    #[test]
    fn seeds_include_sentinel_prefix_for_all_k() {
        let g = barabasi_albert(400, 4, WeightModel::WcVariant { theta: 3.0 }, 20);
        let warm = plain_pool(&g, 2000, 21);
        let z = SentinelSet::select(&[&warm], &g, 3);
        let r1 = mixed_pool(&g, z.nodes(), 2000, 6000, 21);
        let r2 = mixed_pool(&g, z.nodes(), 2000, 6000, 22);
        for k in [1usize, 2, 3, 5, 8] {
            let eval = evaluate_pool_sentinel(&r1, &r2, &z, &g, k, 0.01, 0.01, 1);
            assert_eq!(eval.seeds.len(), k, "k={k}");
            let prefix = z.nodes()[..z.len().min(k)].to_vec();
            assert_eq!(&eval.seeds[..prefix.len()], &prefix[..], "k={k}");
            let mut s = eval.seeds.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), k, "k={k}: duplicate seeds");
            assert!(eval.lower <= eval.upper, "k={k}");
        }
    }

    #[test]
    fn sharded_sentinel_evaluation_matches_union() {
        let g = barabasi_albert(300, 3, WeightModel::WcVariant { theta: 3.0 }, 23);
        let warm = plain_pool(&g, 1500, 24);
        let z = SentinelSet::select(&[&warm], &g, 2);
        let r1 = mixed_pool(&g, z.nodes(), 1500, 4500, 24);
        let r2 = mixed_pool(&g, z.nodes(), 1500, 4500, 25);
        let reference = evaluate_pool_sentinel(&r1, &r2, &z, &g, 5, 0.01, 0.02, 1);

        let split = |rr: &RrCollection, shards: usize| -> Vec<RrCollection> {
            let mut out: Vec<RrCollection> = (0..shards)
                .map(|_| RrCollection::new(rr.graph_n()))
                .collect();
            for (i, set) in rr.iter().enumerate() {
                out[i % shards].push(set);
            }
            out
        };
        for shards in [2usize, 3, 5] {
            let p1 = split(&r1, shards);
            let p2 = split(&r2, shards);
            let r1s: Vec<&RrCollection> = p1.iter().collect();
            let r2s: Vec<&RrCollection> = p2.iter().collect();
            for threads in [1usize, 4] {
                let eval =
                    evaluate_pool_sentinel_sharded(&r1s, &r2s, &z, &g, 5, 0.01, 0.02, threads);
                assert_eq!(eval, reference, "shards={shards} threads={threads}");
            }
        }
    }

    #[test]
    fn truncated_pool_certificate_matches_plain_quality() {
        // The headline contract: on the same graph, a sentinel pool's
        // certified ratio stays in the same band as a plain pool's of
        // equal size, while its sets are much smaller.
        let g = barabasi_albert(600, 5, WeightModel::WcVariant { theta: 6.0 }, 26);
        let k = 8;
        let warm = plain_pool(&g, 2000, 27);
        let z = SentinelSet::select(&[&warm], &g, 4);

        let plain1 = plain_pool(&g, 10_000, 27);
        let plain2 = plain_pool(&g, 10_000, 28);
        let plain_eval = evaluate_pool(&plain1, &plain2, k, 0.01, 0.01);

        let mix1 = mixed_pool(&g, z.nodes(), 2000, 8000, 27);
        let mix2 = mixed_pool(&g, z.nodes(), 2000, 8000, 28);
        let z_eval = evaluate_pool_sentinel(&mix1, &mix2, &z, &g, k, 0.01, 0.01, 1);

        assert!(
            mix1.avg_size() < plain1.avg_size(),
            "truncation must shrink RR sets: {} vs {}",
            mix1.avg_size(),
            plain1.avg_size()
        );
        assert!(
            z_eval.ratio() > 0.8 * plain_eval.ratio(),
            "sentinel ratio {} collapsed vs plain {}",
            z_eval.ratio(),
            plain_eval.ratio()
        );
    }
}
