//! Concentration bounds and sample-size formulas (paper Equations 1–4).
//!
//! All bounds descend from the martingale inequalities of Lemma 2
//! (Tang et al. 2015). Given a coverage count `Λ` over `θ` RR sets:
//!
//! - [`opim_lower_bound`] (Eq. 1) certifies `𝕀(S) >= 𝕀⁻(S)` with
//!   probability `1 - δ_l`, for any `S` **independent** of the RR sets.
//! - [`opim_upper_bound`] (Eq. 2) certifies `𝕀(S^o_k) <= 𝕀⁺(S^o_k)` with
//!   probability `1 - δ_u`, fed with the submodular coverage upper bound
//!   `Λ^u` computed during the greedy pass.
//! - [`theta_max_sentinel`] (Eq. 3) and [`theta_max_im_sentinel`] (Eq. 4)
//!   cap the doubling loops of HIST's two phases.

/// `ln C(n, k)` computed exactly as a sum of logs, `O(k)`.
///
/// Returns 0 for `k == 0` or `k >= n` edge cases outside the usual range.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k == 0 || k >= n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 0.0;
    for i in 0..k {
        acc += ((n - i) as f64).ln() - ((k - i) as f64).ln();
    }
    acc
}

/// Eq. 1: lower bound `𝕀⁻(S)` from coverage `Λ` over `θ` RR sets, failing
/// with probability at most `δ_l`.
///
/// ```text
/// 𝕀⁻(S) = ( ( √(Λ + 2η/9) − √(η/2) )² − η/18 ) · n/θ,   η = ln(1/δ_l)
/// ```
///
/// Clamped to `>= 0` (the raw formula can go slightly negative for tiny
/// coverage).
pub fn opim_lower_bound(coverage: f64, theta: u64, n: usize, delta_l: f64) -> f64 {
    debug_assert!(theta > 0 && delta_l > 0.0 && delta_l < 1.0);
    let eta = (1.0 / delta_l).ln();
    let inner = (coverage + 2.0 * eta / 9.0).sqrt() - (eta / 2.0).sqrt();
    let val = (inner * inner - eta / 18.0) * n as f64 / theta as f64;
    val.max(0.0)
}

/// Eq. 2: upper bound `𝕀⁺(S^o_k)` from the coverage upper bound `Λ^u`
/// over `θ` RR sets, failing with probability at most `δ_u`.
///
/// ```text
/// 𝕀⁺(S^o_k) = ( √(Λᵘ + η/2) + √(η/2) )² · n/θ,   η = ln(1/δ_u)
/// ```
pub fn opim_upper_bound(coverage_upper: f64, theta: u64, n: usize, delta_u: f64) -> f64 {
    debug_assert!(theta > 0 && delta_u > 0.0 && delta_u < 1.0);
    let eta = (1.0 / delta_u).ln();
    let inner = (coverage_upper + eta / 2.0).sqrt() + (eta / 2.0).sqrt();
    inner * inner * n as f64 / theta as f64
}

/// Eq. 3: maximum RR sets needed by the sentinel-selection phase
/// (worst-case over `b`, substituting `𝕀(S^o_k) -> k`, `C(n,b) -> C(n,k)`,
/// `1 - x^b -> 1`).
pub fn theta_max_sentinel(n: usize, k: usize, eps1: f64, delta1: f64) -> f64 {
    let ln6d = (6.0 / delta1).ln();
    let s = ln6d.sqrt() + (ln_binomial(n as u64, k as u64) + ln6d).sqrt();
    2.0 * n as f64 * s * s / (eps1 * eps1 * k as f64)
}

/// Eq. 4: maximum RR sets needed by the IM-Sentinel phase given sentinel
/// size `b`.
pub fn theta_max_im_sentinel(n: usize, k: usize, b: usize, eps2: f64, delta2: f64) -> f64 {
    let ln9d = (9.0 / delta2).ln();
    let frac = 1.0 - (-1.0f64).exp(); // 1 - 1/e
    let s = ln9d.sqrt() + (frac * (ln_binomial((n - b) as u64, (k - b) as u64) + ln9d)).sqrt();
    2.0 * n as f64 * s * s / (eps2 * eps2 * k as f64)
}

/// The OPIM-C worst-case sample cap: Eq. 4 with `b = 0` and `ln(9/δ)`
/// replaced by `ln(6/δ)` (only two bounds per final check).
pub fn theta_max_opim(n: usize, k: usize, eps: f64, delta: f64) -> f64 {
    let ln6d = (6.0 / delta).ln();
    let frac = 1.0 - (-1.0f64).exp();
    let s = ln6d.sqrt() + (frac * (ln_binomial(n as u64, k as u64) + ln6d)).sqrt();
    2.0 * n as f64 * s * s / (eps * eps * k as f64)
}

/// Initial sample size `θ_0 = 3·ln(1/δ)` (paper Section 4.1: the
/// Monte-Carlo floor of Dagum et al. for a unit-mean variable).
pub fn theta_zero(delta: f64) -> u64 {
    ((3.0 * (1.0 / delta).ln()).ceil() as u64).max(1)
}

/// Number of doubling iterations `i_max = ceil(log2(θ_max / θ_0))`.
pub fn i_max(theta_max: f64, theta_zero: u64) -> u32 {
    ((theta_max / theta_zero as f64).log2().ceil() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_binomial_small_cases() {
        // C(5,2) = 10
        assert!((ln_binomial(5, 2) - 10.0f64.ln()).abs() < 1e-12);
        // C(10,3) = 120
        assert!((ln_binomial(10, 3) - 120.0f64.ln()).abs() < 1e-12);
        assert_eq!(ln_binomial(7, 0), 0.0);
        assert_eq!(ln_binomial(7, 7), 0.0);
    }

    #[test]
    fn ln_binomial_symmetry() {
        assert!((ln_binomial(100, 30) - ln_binomial(100, 70)).abs() < 1e-9);
    }

    #[test]
    fn ln_binomial_large_no_overflow() {
        let v = ln_binomial(10_000_000, 2000);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn lower_bound_below_sample_mean() {
        // 𝕀⁻ must never exceed the empirical estimate n·Λ/θ.
        for &(cov, theta) in &[(50.0, 100u64), (900.0, 1000), (5.0, 64)] {
            let n = 1000;
            let lb = opim_lower_bound(cov, theta, n, 0.01);
            let mean = n as f64 * cov / theta as f64;
            assert!(lb <= mean + 1e-9, "lb {lb} above mean {mean}");
            assert!(lb >= 0.0);
        }
    }

    #[test]
    fn upper_bound_above_sample_mean() {
        for &(cov, theta) in &[(50.0, 100u64), (900.0, 1000), (5.0, 64)] {
            let n = 1000;
            let ub = opim_upper_bound(cov, theta, n, 0.01);
            let mean = n as f64 * cov / theta as f64;
            assert!(ub >= mean - 1e-9, "ub {ub} below mean {mean}");
        }
    }

    #[test]
    fn bounds_tighten_with_more_samples() {
        let n = 1000;
        // Same empirical mean, growing θ: the gap must shrink.
        let gap = |theta: u64| {
            let cov = theta as f64 * 0.3;
            opim_upper_bound(cov, theta, n, 0.01) - opim_lower_bound(cov, theta, n, 0.01)
        };
        assert!(gap(10_000) < gap(1_000));
        assert!(gap(1_000) < gap(100));
    }

    #[test]
    fn lower_bound_zero_coverage_is_zero() {
        // Mathematically exactly 0; allow float residue.
        assert!(opim_lower_bound(0.0, 100, 1000, 0.01) < 1e-9);
    }

    #[test]
    fn theta_formulas_positive_and_ordered() {
        let (n, k) = (10_000, 100);
        let t3 = theta_max_sentinel(n, k, 0.05, 0.005);
        let t4 = theta_max_im_sentinel(n, k, 10, 0.05, 0.005);
        let to = theta_max_opim(n, k, 0.1, 1.0 / n as f64);
        assert!(t3 > 0.0 && t4 > 0.0 && to > 0.0);
        // Smaller ε needs more samples.
        assert!(theta_max_sentinel(n, k, 0.01, 0.005) > t3);
        // Larger b shrinks the IM-Sentinel requirement (smaller binomial).
        assert!(theta_max_im_sentinel(n, k, 90, 0.05, 0.005) < t4);
    }

    #[test]
    fn theta_zero_and_imax() {
        let t0 = theta_zero(0.001);
        assert_eq!(t0, (3.0 * 1000f64.ln()).ceil() as u64);
        assert!(i_max(1e6, t0) >= 1);
        assert_eq!(i_max(1.0, 100), 1); // never below one iteration
    }
}
