//! Greedy max-coverage over RR collections (paper Algorithms 1 and 6) with
//! the submodular coverage upper bound of Eq. 2 computed in the same pass.

use std::collections::BinaryHeap;
use subsim_diffusion::collection::{InvertedIndex, RrCollection};
use subsim_graph::{Graph, NodeId};

/// Configuration of one greedy pass.
#[derive(Debug, Clone, Copy)]
pub struct GreedyConfig<'g> {
    /// Number of seeds to select.
    pub select: usize,
    /// Number of top-marginal terms in the Eq. 2 coverage upper bound
    /// (the paper always uses `k`, even when `select = k - b` in HIST's
    /// phase 2). `0` skips the bound computation.
    pub bound_terms: usize,
    /// `Some(graph)` enables the revised greedy (Algorithm 6): ties in
    /// marginal coverage break towards the larger out-degree.
    pub tie_break: Option<&'g Graph>,
    /// Coverage already granted before this pass (HIST phase 2 counts the
    /// RR sets covered by the sentinel here; the collection passed in must
    /// exclude those sets).
    pub base_covered: usize,
    /// Nodes that must never be selected (HIST phase 2 excludes the
    /// sentinel nodes, which are already part of the final seed set).
    pub exclude: &'g [NodeId],
    /// Workers for the selection *preparation* (inverted-index build and
    /// initial counts). The greedy loop itself stays sequential, so the
    /// picks, prefix coverages, and bound are byte-identical for every
    /// `threads` value.
    pub threads: usize,
}

impl<'g> GreedyConfig<'g> {
    /// Standard greedy (Algorithm 1) selecting `k` seeds with a `k`-term
    /// upper bound.
    pub fn standard(k: usize) -> Self {
        GreedyConfig {
            select: k,
            bound_terms: k,
            tie_break: None,
            base_covered: 0,
            exclude: &[],
            threads: 1,
        }
    }

    /// Revised greedy (Algorithm 6) with out-degree tie-breaking.
    pub fn revised(k: usize, g: &'g Graph) -> Self {
        GreedyConfig {
            select: k,
            bound_terms: k,
            tie_break: Some(g),
            base_covered: 0,
            exclude: &[],
            threads: 1,
        }
    }

    /// Returns the config with the preparation phase sharded across
    /// `threads` workers.
    ///
    /// The request is advisory: the greedy entry points clamp it through
    /// [`effective_prep_threads`], so asking for parallelism on a 1-core
    /// box, over a tiny pool, or over a pool whose *coverage mass*
    /// (total node memberships) is too small to amortize thread spawns
    /// silently degrades to the sequential path (BENCH_pr3 measured a
    /// 0.96× regression when the spawn cost had nothing to pay for
    /// itself). The clamp only changes wall-clock: picks, prefix
    /// coverages, and the Eq. 2 bound are byte-identical on both sides
    /// of every threshold.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        self.threads = threads;
        self
    }
}

/// Node count below which the initial-count pass stays sequential.
const PARALLEL_COUNT_MIN_NODES: usize = 1 << 16;

/// Pool size (RR sets) below which selection preparation stays
/// sequential regardless of the requested thread count: under this the
/// inverted-index build is microseconds and thread spawn dominates.
pub const PARALLEL_PREP_MIN_SETS: usize = 1 << 12;

/// Coverage mass (total node memberships, `Σ|R_i|`) below which
/// selection preparation stays sequential. Set count alone misjudges
/// sentinel-truncated pools: a million one-node sets still build their
/// inverted index in under a millisecond, so the per-set gate must be
/// paired with a per-membership gate — the index build and the initial
/// count pass are both `O(mass)`, not `O(sets)`.
pub const PARALLEL_PREP_MIN_MASS: usize = 1 << 16;

/// Clamps a requested selection-prep thread count against the machine
/// and the workload.
///
/// Returns `1` (sequential) when the box has a single core — spawning
/// workers that time-slice one core is pure overhead (BENCH_pr3's 0.96×
/// selection regression) — or when the pool holds fewer than
/// [`PARALLEL_PREP_MIN_SETS`] sets or fewer than
/// [`PARALLEL_PREP_MIN_MASS`] total node memberships. Otherwise the
/// request is honoured as-is; prep output is thread-count-invariant, so
/// the clamp only ever changes wall-clock, never selection results.
pub fn effective_prep_threads(
    requested: usize,
    pool_sets: usize,
    pool_mass: usize,
    cores: usize,
) -> usize {
    if requested <= 1
        || cores <= 1
        || pool_sets < PARALLEL_PREP_MIN_SETS
        || pool_mass < PARALLEL_PREP_MIN_MASS
    {
        1
    } else {
        requested
    }
}

/// Cores visible to this process, cached after the first query.
fn available_cores() -> usize {
    use std::sync::OnceLock;
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Result of a greedy pass.
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// Selected nodes in pick order.
    pub seeds: Vec<NodeId>,
    /// `prefix_coverage[i] = Λ(S_i)` including `base_covered`;
    /// `prefix_coverage[0] == base_covered`, length `select + 1`.
    pub prefix_coverage: Vec<usize>,
    /// The Eq. 2 coverage upper bound
    /// `Λᵘ = min_i (Λ(S_i) + Σ_{v ∈ maxMC(S_i, bound_terms)} Λ(v|S_i))`,
    /// or `f64::INFINITY` when `bound_terms == 0`.
    pub coverage_upper: f64,
}

impl GreedyOutcome {
    /// Final coverage `Λ(S_select)`.
    pub fn coverage(&self) -> usize {
        *self.prefix_coverage.last().unwrap()
    }
}

/// Initial per-node coverage counts over the union of shards
/// (`count[v] = Σ_s |{i : v ∈ R_i^s}|`), sharded across `threads`
/// workers when the graph is large enough for the spawn cost to pay
/// off. Node order is fixed, so the result is identical for every
/// `threads` value.
fn initial_counts(idxs: &[&InvertedIndex], n: usize, threads: usize) -> Vec<usize> {
    let degree_sum = |v: NodeId| -> usize { idxs.iter().map(|idx| idx.degree(v)).sum() };
    if threads > 1 && n >= PARALLEL_COUNT_MIN_NODES {
        let mut count = vec![0usize; n];
        let per = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (ci, slice) in count.chunks_mut(per).enumerate() {
                scope.spawn(move || {
                    let base = ci * per;
                    for (i, c) in slice.iter_mut().enumerate() {
                        *c = degree_sum((base + i) as NodeId);
                    }
                });
            }
        });
        count
    } else {
        (0..n as NodeId).map(degree_sum).collect()
    }
}

/// Runs greedy max-coverage over `rr`.
///
/// Uses a lazily-updated max-heap keyed by `(marginal coverage,
/// out-degree, node id)`; because marginals only decrease (submodularity),
/// a popped entry is either current or can be re-pushed with its corrected
/// value. Each round extracts the `bound_terms` freshest maxima, which
/// yields both the next seed (the maximum) and the Eq. 2 top-`k` marginal
/// sum in one sweep.
pub fn greedy_max_coverage(rr: &RrCollection, cfg: &GreedyConfig<'_>) -> GreedyOutcome {
    let prep = effective_prep_threads(cfg.threads, rr.len(), rr.total_nodes(), available_cores());
    let idx = InvertedIndex::build_parallel(rr, prep);
    greedy_over_indexes(&[rr], &[&idx], cfg, prep)
}

/// [`greedy_max_coverage`] over a *sharded* pool: each element of
/// `shards` holds a disjoint slice of the union pool's RR sets.
///
/// Per-shard inverted indexes are built concurrently (one builder per
/// shard when the prep-thread clamp allows), then the merged greedy loop
/// runs sequentially over the summed per-shard counts. Greedy state —
/// counts, heap order, covered flags — evolves exactly as it would over
/// the concatenated union, so the outcome is **byte-identical** to
/// [`greedy_max_coverage`] on the union for any shard split and any
/// thread count.
pub fn greedy_max_coverage_sharded(
    shards: &[&RrCollection],
    cfg: &GreedyConfig<'_>,
) -> GreedyOutcome {
    let total_sets: usize = shards.iter().map(|rr| rr.len()).sum();
    let total_mass: usize = shards.iter().map(|rr| rr.total_nodes()).sum();
    let prep = effective_prep_threads(cfg.threads, total_sets, total_mass, available_cores());
    let idxs: Vec<InvertedIndex> = if prep > 1 && shards.len() > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|rr| scope.spawn(move || InvertedIndex::build(rr)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard index builder panicked"))
                .collect()
        })
    } else {
        shards.iter().map(|rr| InvertedIndex::build(rr)).collect()
    };
    let idx_refs: Vec<&InvertedIndex> = idxs.iter().collect();
    greedy_over_indexes(shards, &idx_refs, cfg, prep)
}

/// [`greedy_max_coverage_sharded`] with caller-owned per-shard inverted
/// indexes — the serving path caches one index per published shard
/// snapshot and skips the per-query build entirely. `idxs[s]` must index
/// exactly `shards[s]`.
pub fn greedy_max_coverage_indexed(
    shards: &[&RrCollection],
    idxs: &[&InvertedIndex],
    cfg: &GreedyConfig<'_>,
) -> GreedyOutcome {
    let total_sets: usize = shards.iter().map(|rr| rr.len()).sum();
    let total_mass: usize = shards.iter().map(|rr| rr.total_nodes()).sum();
    let prep = effective_prep_threads(cfg.threads, total_sets, total_mass, available_cores());
    greedy_over_indexes(shards, idxs, cfg, prep)
}

/// The merged greedy loop shared by the single-pool and sharded entry
/// points. `prep_threads` is the already-clamped worker count for the
/// initial-count pass.
fn greedy_over_indexes(
    shards: &[&RrCollection],
    idxs: &[&InvertedIndex],
    cfg: &GreedyConfig<'_>,
    prep_threads: usize,
) -> GreedyOutcome {
    assert!(!shards.is_empty(), "need at least one shard");
    assert_eq!(shards.len(), idxs.len(), "one index per shard");
    let n = shards[0].graph_n();
    for rr in shards {
        assert_eq!(rr.graph_n(), n, "shards are over different graphs");
    }
    let mut count = initial_counts(idxs, n, prep_threads);
    let outdeg = |v: NodeId| -> u32 { cfg.tie_break.map_or(0, |g| g.out_degree(v) as u32) };

    let mut heap: BinaryHeap<(usize, u32, NodeId)> = (0..n as NodeId)
        .map(|v| (count[v as usize], outdeg(v), v))
        .collect();
    let mut covered: Vec<Vec<bool>> = shards.iter().map(|rr| vec![false; rr.len()]).collect();
    let mut selected = vec![false; n];
    for &v in cfg.exclude {
        selected[v as usize] = true;
    }
    let mut seeds = Vec::with_capacity(cfg.select);
    let mut lambda = cfg.base_covered;
    let mut prefix = Vec::with_capacity(cfg.select + 1);
    prefix.push(lambda);
    let mut upper = f64::INFINITY;

    // Pops up to `want` entries whose stored count is current, returning
    // them ordered best-first. Stale entries are re-pushed corrected.
    let pop_fresh = |heap: &mut BinaryHeap<(usize, u32, NodeId)>,
                     count: &[usize],
                     selected: &[bool],
                     want: usize| {
        let mut fresh: Vec<(usize, u32, NodeId)> = Vec::with_capacity(want);
        while fresh.len() < want {
            let Some((c, d, v)) = heap.pop() else { break };
            if selected[v as usize] {
                continue; // seeds never re-enter
            }
            if c != count[v as usize] {
                heap.push((count[v as usize], d, v));
                continue;
            }
            fresh.push((c, d, v));
        }
        fresh
    };

    for _round in 0..cfg.select {
        let want = cfg.bound_terms.max(1);
        let fresh = pop_fresh(&mut heap, &count, &selected, want);

        if cfg.bound_terms > 0 {
            let marginal_sum: usize = fresh.iter().map(|&(c, _, _)| c).sum();
            upper = upper.min((lambda + marginal_sum) as f64);
        }

        // The next seed: the best fresh entry, or an arbitrary unselected
        // node once every remaining marginal is zero and the heap drained.
        let seed = match fresh.first() {
            Some(&(_, _, v)) => v,
            None => match (0..n as NodeId).find(|&v| !selected[v as usize]) {
                Some(v) => v,
                None => break, // select > n: nothing left to pick
            },
        };
        // Return the unpicked fresh entries for later rounds.
        for &entry in fresh.iter().skip(1) {
            heap.push(entry);
        }

        selected[seed as usize] = true;
        lambda += count[seed as usize];
        for (shard, (idx, rr)) in idxs.iter().zip(shards).enumerate() {
            let covered = &mut covered[shard];
            for &sid in idx.sets_containing(seed) {
                let sid = sid as usize;
                if covered[sid] {
                    continue;
                }
                covered[sid] = true;
                for &w in rr.get(sid) {
                    count[w as usize] -= 1;
                }
            }
        }
        debug_assert_eq!(count[seed as usize], 0);
        seeds.push(seed);
        prefix.push(lambda);
    }

    // Final bound term at i = select.
    if cfg.bound_terms > 0 {
        let fresh = pop_fresh(&mut heap, &count, &selected, cfg.bound_terms);
        let marginal_sum: usize = fresh.iter().map(|&(c, _, _)| c).sum();
        upper = upper.min((lambda + marginal_sum) as f64);
    }

    GreedyOutcome {
        seeds,
        prefix_coverage: prefix,
        coverage_upper: upper,
    }
}

/// Reference greedy using degree buckets instead of a lazy heap — the
/// structure the authors' released C++ implementations use. `O(Σ|R_i| +
/// n + k·Δ)` where `Δ` is the max marginal; no Eq. 2 bound, no
/// tie-breaking (first-in-bucket wins).
///
/// Exists for *differential testing*: on tie-free inputs it must select
/// exactly the same seeds as [`greedy_max_coverage`], and on any input it
/// must reach the same total coverage trajectory. The `greedy_impls`
/// Criterion bench compares their throughput.
pub fn greedy_max_coverage_buckets(rr: &RrCollection, k: usize) -> GreedyOutcome {
    let n = rr.graph_n();
    let idx = InvertedIndex::build(rr);
    let mut count: Vec<usize> = (0..n as NodeId).map(|v| idx.degree(v)).collect();
    let max_count = count.iter().copied().max().unwrap_or(0);

    // buckets[c] holds nodes whose *recorded* count is c; nodes migrate
    // lazily (recorded position may be stale, checked on pop).
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_count + 1];
    for (v, &c) in count.iter().enumerate() {
        buckets[c].push(v as NodeId);
    }
    let mut covered = vec![false; rr.len()];
    let mut selected = vec![false; n];
    let mut seeds = Vec::with_capacity(k);
    let mut lambda = 0usize;
    let mut prefix = vec![0usize];
    let mut cur = max_count;

    while seeds.len() < k {
        // Find the highest bucket with a fresh entry.
        let seed = loop {
            while cur > 0 && buckets[cur].is_empty() {
                cur -= 1;
            }
            if cur == 0 {
                break None;
            }
            let v = buckets[cur].pop().expect("nonempty bucket");
            if selected[v as usize] {
                continue;
            }
            let c = count[v as usize];
            if c != cur {
                buckets[c].push(v); // stale: re-file under the true count
                continue;
            }
            break Some(v);
        };
        let seed = match seed {
            Some(v) => v,
            None => match (0..n as NodeId).find(|&v| !selected[v as usize]) {
                Some(v) => v,
                None => break,
            },
        };
        selected[seed as usize] = true;
        lambda += count[seed as usize];
        for &sid in idx.sets_containing(seed) {
            let sid = sid as usize;
            if covered[sid] {
                continue;
            }
            covered[sid] = true;
            for &w in rr.get(sid) {
                count[w as usize] -= 1;
            }
        }
        seeds.push(seed);
        prefix.push(lambda);
    }
    GreedyOutcome {
        seeds,
        prefix_coverage: prefix,
        coverage_upper: f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::star_graph;
    use subsim_graph::WeightModel;

    fn collection(sets: &[&[NodeId]], n: usize) -> RrCollection {
        let mut rr = RrCollection::new(n);
        for s in sets {
            rr.push(s);
        }
        rr
    }

    #[test]
    fn picks_highest_coverage_first() {
        // Node 1 covers 3 sets, node 0 covers 2, node 2 covers 1.
        let rr = collection(&[&[0, 1], &[1], &[1, 2], &[0]], 3);
        let out = greedy_max_coverage(&rr, &GreedyConfig::standard(2));
        assert_eq!(out.seeds[0], 1);
        assert_eq!(out.prefix_coverage, vec![0, 3, 4]);
        assert_eq!(out.coverage(), 4);
    }

    #[test]
    fn marginal_not_raw_coverage_drives_second_pick() {
        // Node 0 in 3 sets; node 1 in 2 of the same sets plus nothing new;
        // node 2 in 1 disjoint set. After picking 0, node 2 beats node 1.
        let rr = collection(&[&[0, 1], &[0, 1], &[0], &[2]], 3);
        let out = greedy_max_coverage(&rr, &GreedyConfig::standard(2));
        assert_eq!(out.seeds, vec![0, 2]);
        assert_eq!(out.coverage(), 4);
    }

    #[test]
    fn tie_break_prefers_out_degree() {
        // Nodes 0 and 1 each cover one set; node 0 has the bigger
        // out-degree in the star graph, so revised greedy must pick it.
        let g = star_graph(3, WeightModel::Wc); // 0 -> 1, 0 -> 2
        let rr = collection(&[&[1], &[0]], 3);
        let out = greedy_max_coverage(&rr, &GreedyConfig::revised(1, &g));
        assert_eq!(out.seeds, vec![0]);
        // Standard greedy breaks ties by node id via the heap ordering —
        // still deterministic, but id 1 > 0 wins on the third key.
        let out = greedy_max_coverage(&rr, &GreedyConfig::standard(1));
        assert_eq!(out.seeds, vec![1]);
    }

    #[test]
    fn upper_bound_dominates_best_k_set() {
        // Brute-force the best 2-set coverage and compare.
        let rr = collection(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0], &[4]], 5);
        let out = greedy_max_coverage(&rr, &GreedyConfig::standard(2));
        let mut best = 0;
        for a in 0..5u32 {
            for b in 0..a {
                best = best.max(rr.coverage_of(&[a, b]));
            }
        }
        assert!(
            out.coverage_upper >= best as f64,
            "upper {} < best {}",
            out.coverage_upper,
            best
        );
        // And the greedy guarantee: coverage >= (1 - 1/e) * best.
        assert!(out.coverage() as f64 >= (1.0 - (-1.0f64).exp()) * best as f64);
    }

    #[test]
    fn base_covered_shifts_everything() {
        let rr = collection(&[&[0], &[1]], 3);
        let cfg = GreedyConfig {
            base_covered: 7,
            ..GreedyConfig::standard(2)
        };
        let out = greedy_max_coverage(&rr, &cfg);
        assert_eq!(out.prefix_coverage, vec![7, 8, 9]);
        assert!(out.coverage_upper >= 9.0);
    }

    #[test]
    fn exhausted_marginals_fall_back_to_arbitrary_nodes() {
        let rr = collection(&[&[0]], 4);
        let out = greedy_max_coverage(&rr, &GreedyConfig::standard(3));
        assert_eq!(out.seeds.len(), 3);
        assert_eq!(out.seeds[0], 0);
        assert_eq!(out.coverage(), 1);
        // No duplicates.
        let mut s = out.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_collection_selects_arbitrary() {
        let rr = RrCollection::new(3);
        let out = greedy_max_coverage(&rr, &GreedyConfig::standard(2));
        assert_eq!(out.seeds.len(), 2);
        assert_eq!(out.coverage(), 0);
    }

    #[test]
    fn bound_terms_zero_skips_bound() {
        let rr = collection(&[&[0]], 2);
        let cfg = GreedyConfig {
            bound_terms: 0,
            ..GreedyConfig::standard(1)
        };
        let out = greedy_max_coverage(&rr, &cfg);
        assert_eq!(out.coverage_upper, f64::INFINITY);
        assert_eq!(out.seeds, vec![0]);
    }

    #[test]
    fn select_larger_than_n_stops_gracefully() {
        let rr = collection(&[&[0], &[1]], 2);
        let out = greedy_max_coverage(&rr, &GreedyConfig::standard(5));
        assert_eq!(out.seeds.len(), 2);
    }

    #[test]
    fn threads_never_change_selection() {
        use subsim_diffusion::{RrContext, RrSampler, RrStrategy};
        use subsim_graph::generators::barabasi_albert;
        use subsim_sampling::rng_from_seed;

        let g = barabasi_albert(400, 3, WeightModel::Wc, 81);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = RrContext::new(g.n());
        let mut rng = rng_from_seed(82);
        let mut rr = RrCollection::new(g.n());
        rr.generate(&sampler, &mut ctx, &mut rng, 4000);

        let reference = greedy_max_coverage(&rr, &GreedyConfig::standard(8));
        for threads in [2, 3, 5, 8] {
            let cfg = GreedyConfig::standard(8).with_threads(threads);
            let out = greedy_max_coverage(&rr, &cfg);
            assert_eq!(out.seeds, reference.seeds, "threads={threads}");
            assert_eq!(out.prefix_coverage, reference.prefix_coverage);
            assert_eq!(out.coverage_upper, reference.coverage_upper);
        }
    }

    #[test]
    fn parallel_initial_counts_match_sequential_over_gate() {
        // Force the sharded path by exceeding PARALLEL_COUNT_MIN_NODES.
        let n = super::PARALLEL_COUNT_MIN_NODES + 37;
        let mut rr = RrCollection::new(n);
        for i in 0..200usize {
            let a = (i * 7919) % n;
            let b = (i * 104_729) % n;
            rr.push(&[a as NodeId, b as NodeId, (n - 1) as NodeId]);
        }
        let idx = InvertedIndex::build(&rr);
        let seq = super::initial_counts(&[&idx], n, 1);
        for threads in [2, 5] {
            assert_eq!(
                super::initial_counts(&[&idx], n, threads),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn prep_thread_clamp_pins_fallback_decision() {
        const BIG: usize = 1 << 20;
        // One core: always sequential, whatever was asked for.
        assert_eq!(effective_prep_threads(8, BIG, BIG, 1), 1);
        // Tiny pool: spawn cost dominates, stay sequential even with cores.
        assert_eq!(
            effective_prep_threads(8, PARALLEL_PREP_MIN_SETS - 1, BIG, 16),
            1
        );
        // Sequential request passes through untouched.
        assert_eq!(effective_prep_threads(1, BIG, BIG, 16), 1);
        // Big pool on a multi-core box: the request is honoured.
        assert_eq!(
            effective_prep_threads(8, PARALLEL_PREP_MIN_SETS, BIG, 16),
            8
        );
        assert_eq!(effective_prep_threads(3, BIG, BIG, 2), 3);
    }

    #[test]
    fn prep_thread_clamp_crossover_on_coverage_mass() {
        const BIG: usize = 1 << 20;
        // Exact crossover: one membership below the mass gate falls back,
        // at the gate the request is honoured.
        assert_eq!(
            effective_prep_threads(8, BIG, PARALLEL_PREP_MIN_MASS - 1, 16),
            1
        );
        assert_eq!(
            effective_prep_threads(8, BIG, PARALLEL_PREP_MIN_MASS, 16),
            8
        );
        // Many sets but nearly empty (sentinel-truncated pools): set count
        // alone would have parallelized; the mass gate catches it.
        assert_eq!(effective_prep_threads(8, BIG, BIG / 1024, 16), 1);
    }

    #[test]
    fn picks_byte_identical_across_mass_crossover() {
        use subsim_diffusion::{RrContext, RrSampler, RrStrategy};
        use subsim_graph::generators::barabasi_albert;
        use subsim_sampling::rng_from_seed;

        // Two pools straddling the mass threshold (same distribution,
        // different sizes); on both sides every thread request must yield
        // the sequential picks byte-for-byte — the clamp (or, above the
        // gate, thread-invariant prep) never alters selection.
        let g = barabasi_albert(500, 4, WeightModel::Wc, 83);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = RrContext::new(g.n());
        let mut rng = rng_from_seed(84);

        let mut sets_for = |target_mass: usize| {
            let mut rr = RrCollection::new(g.n());
            while rr.total_nodes() < target_mass {
                rr.generate(&sampler, &mut ctx, &mut rng, 512);
            }
            rr
        };
        let below = sets_for(PARALLEL_PREP_MIN_MASS / 8);
        let above = sets_for(PARALLEL_PREP_MIN_MASS + 1024);
        assert!(below.total_nodes() < PARALLEL_PREP_MIN_MASS);
        assert!(above.total_nodes() >= PARALLEL_PREP_MIN_MASS);

        for rr in [&below, &above] {
            let reference = greedy_max_coverage(rr, &GreedyConfig::standard(10));
            for threads in [2usize, 4, 8] {
                let out =
                    greedy_max_coverage(rr, &GreedyConfig::standard(10).with_threads(threads));
                assert_eq!(out.seeds, reference.seeds, "threads={threads}");
                assert_eq!(out.prefix_coverage, reference.prefix_coverage);
                assert_eq!(out.coverage_upper, reference.coverage_upper);
            }
        }
    }

    /// Splits `rr` into `shards` collections by `set_index % shards` —
    /// the same interleaving the serving layer uses for chunk ownership.
    fn split_round_robin(rr: &RrCollection, shards: usize) -> Vec<RrCollection> {
        let mut out: Vec<RrCollection> = (0..shards)
            .map(|_| RrCollection::new(rr.graph_n()))
            .collect();
        for (i, set) in rr.iter().enumerate() {
            out[i % shards].push(set);
        }
        out
    }

    #[test]
    fn sharded_greedy_matches_union_greedy() {
        use subsim_diffusion::{RrContext, RrSampler, RrStrategy};
        use subsim_graph::generators::barabasi_albert;
        use subsim_sampling::rng_from_seed;

        let g = barabasi_albert(300, 3, WeightModel::Wc, 91);
        let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
        let mut ctx = RrContext::new(g.n());
        let mut rng = rng_from_seed(92);
        let mut rr = RrCollection::new(g.n());
        rr.generate(&sampler, &mut ctx, &mut rng, 3000);

        for (cfg, name) in [
            (GreedyConfig::standard(6), "standard"),
            (GreedyConfig::revised(6, &g), "revised"),
        ] {
            let reference = greedy_max_coverage(&rr, &cfg);
            for shards in [1usize, 2, 3, 4, 7] {
                let parts = split_round_robin(&rr, shards);
                let refs: Vec<&RrCollection> = parts.iter().collect();
                for threads in [1usize, 4] {
                    let out = greedy_max_coverage_sharded(&refs, &cfg.with_threads(threads));
                    assert_eq!(out.seeds, reference.seeds, "{name} shards={shards}");
                    assert_eq!(out.prefix_coverage, reference.prefix_coverage);
                    assert_eq!(out.coverage_upper, reference.coverage_upper);
                }
                // Prebuilt-index entry point must agree too.
                let idxs: Vec<InvertedIndex> = parts.iter().map(InvertedIndex::build).collect();
                let idx_refs: Vec<&InvertedIndex> = idxs.iter().collect();
                let out = greedy_max_coverage_indexed(&refs, &idx_refs, &cfg);
                assert_eq!(out.seeds, reference.seeds, "{name} indexed shards={shards}");
                assert_eq!(out.coverage_upper, reference.coverage_upper);
            }
        }
    }

    #[test]
    fn sharded_greedy_tolerates_empty_shards() {
        let rr = collection(&[&[0, 1], &[1], &[1, 2], &[0]], 3);
        let empty = RrCollection::new(3);
        let reference = greedy_max_coverage(&rr, &GreedyConfig::standard(2));
        let out = greedy_max_coverage_sharded(&[&empty, &rr, &empty], &GreedyConfig::standard(2));
        assert_eq!(out.seeds, reference.seeds);
        assert_eq!(out.prefix_coverage, reference.prefix_coverage);
    }

    #[test]
    fn prefix_coverages_are_monotone_and_concave() {
        // Submodularity: marginal gains must be non-increasing.
        let rr = collection(
            &[&[0, 1, 2], &[0, 1], &[0], &[3], &[3, 4], &[2], &[1, 4]],
            5,
        );
        let out = greedy_max_coverage(&rr, &GreedyConfig::standard(4));
        let p = &out.prefix_coverage;
        for w in p.windows(2) {
            assert!(w[1] >= w[0]);
        }
        for w in p.windows(3) {
            assert!(w[2] - w[1] <= w[1] - w[0], "gains must shrink: {p:?}");
        }
    }
}
