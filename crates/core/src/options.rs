//! Shared run options.

use crate::error::ImError;
use subsim_graph::Graph;

/// Options shared by every IM algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct ImOptions {
    /// Seed-set size `k`.
    pub k: usize,
    /// Accuracy `ε` of the `(1 - 1/e - ε)` guarantee. The paper's
    /// experiments use `ε = 0.1`.
    pub epsilon: f64,
    /// Failure probability `δ`; `None` means the paper's default `1/n`.
    pub delta: Option<f64>,
    /// RNG seed — all algorithms are deterministic given it.
    pub seed: u64,
}

impl ImOptions {
    /// Options with the paper defaults (`ε = 0.1`, `δ = 1/n`, seed 0).
    pub fn new(k: usize) -> Self {
        ImOptions {
            k,
            epsilon: 0.1,
            delta: None,
            seed: 0,
        }
    }

    /// Sets `ε`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets `δ` explicitly.
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The effective `δ` for a graph (`1/n` when unset).
    pub fn effective_delta(&self, g: &Graph) -> f64 {
        self.delta.unwrap_or(1.0 / g.n() as f64)
    }

    /// Validates the options against a graph.
    pub fn validate(&self, g: &Graph) -> Result<(), ImError> {
        if self.k == 0 || self.k > g.n() {
            return Err(ImError::InvalidK {
                k: self.k,
                n: g.n(),
            });
        }
        let one_minus_inv_e = 1.0 - (-1.0f64).exp();
        if !(self.epsilon > 0.0 && self.epsilon < one_minus_inv_e) {
            return Err(ImError::InvalidEpsilon {
                epsilon: self.epsilon,
            });
        }
        let delta = self.effective_delta(g);
        if !(delta > 0.0 && delta < 1.0) {
            return Err(ImError::InvalidDelta { delta });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::path_graph;
    use subsim_graph::WeightModel;

    #[test]
    fn defaults_match_paper() {
        let o = ImOptions::new(10);
        assert_eq!(o.epsilon, 0.1);
        assert_eq!(o.delta, None);
        let g = path_graph(100, WeightModel::Wc);
        assert!((o.effective_delta(&g) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_values() {
        let g = path_graph(5, WeightModel::Wc);
        assert!(ImOptions::new(0).validate(&g).is_err());
        assert!(ImOptions::new(6).validate(&g).is_err());
        assert!(ImOptions::new(3).epsilon(0.0).validate(&g).is_err());
        assert!(ImOptions::new(3).epsilon(0.7).validate(&g).is_err());
        assert!(ImOptions::new(3).delta(1.5).validate(&g).is_err());
        assert!(ImOptions::new(3).validate(&g).is_ok());
    }

    #[test]
    fn builder_chain() {
        let o = ImOptions::new(7).epsilon(0.2).delta(0.01).seed(9);
        assert_eq!(o.k, 7);
        assert_eq!(o.epsilon, 0.2);
        assert_eq!(o.delta, Some(0.01));
        assert_eq!(o.seed, 9);
    }
}
