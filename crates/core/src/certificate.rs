//! Post-hoc certification of arbitrary seed sets.
//!
//! The OPIM bounds (Eqs 1–2) are not tied to any particular selection
//! algorithm: Eq 1 lower-bounds `𝕀(S)` for **any** `S` independent of the
//! sample, and Eq 2 upper-bounds `𝕀(S^o_k)` from a greedy pass. Together
//! they certify how close *someone else's* seed set — a heuristic, a
//! hand-picked marketing list, another tool's output — is to optimal,
//! without rerunning selection.

use crate::bounds::{opim_lower_bound, opim_upper_bound};
use crate::coverage::{greedy_max_coverage, GreedyConfig};
use crate::error::ImError;
use crate::options::ImOptions;
use subsim_diffusion::{RrCollection, RrContext, RrSampler, RrStrategy};
use subsim_graph::{Graph, NodeId};
use subsim_sampling::rng_from_seed;

/// A probabilistic certificate for a seed set.
#[derive(Debug, Clone, PartialEq)]
pub struct InfluenceCertificate {
    /// Unbiased point estimate `n·Λ(S)/θ` of `𝕀(S)`.
    pub estimate: f64,
    /// Eq. 1 lower bound on `𝕀(S)`, holds with probability `1 - δ/2`.
    pub lower: f64,
    /// Eq. 2 upper bound on `𝕀(S^o_k)` with `k = |S|`, holds with
    /// probability `1 - δ/2`.
    pub optimal_upper: f64,
    /// RR sets used per side.
    pub samples: usize,
}

impl InfluenceCertificate {
    /// Certified approximation ratio `𝕀⁻(S)/𝕀⁺(S^o)`: with probability
    /// `1 - δ`, `𝕀(S) >= ratio · OPT_{|S|}`.
    pub fn ratio(&self) -> f64 {
        if self.optimal_upper <= 0.0 {
            0.0
        } else {
            (self.lower / self.optimal_upper).clamp(0.0, 1.0)
        }
    }
}

/// Certifies `seeds` using `samples` RR sets per side.
///
/// Two independent collections are generated: one (sentinel-truncated at
/// `seeds`, which leaves their coverage exact while shrinking cost) feeds
/// the Eq. 1 lower bound; the other feeds a greedy pass whose Eq. 2 bound
/// caps `OPT_{|S|}`. Errors if `seeds` is empty or out of range.
pub fn certify_seed_set(
    g: &Graph,
    seeds: &[NodeId],
    strategy: RrStrategy,
    samples: usize,
    opts: &ImOptions,
) -> Result<InfluenceCertificate, ImError> {
    let n = g.n();
    let k = seeds.len();
    if k == 0 || seeds.iter().any(|&v| v as usize >= n) {
        return Err(ImError::InvalidK { k, n });
    }
    let delta = opts.effective_delta(g);
    if !(delta > 0.0 && delta < 1.0) {
        return Err(ImError::InvalidDelta { delta });
    }
    let samples = samples.max(1);
    let sampler = RrSampler::new(g, strategy);
    let mut rng = rng_from_seed(opts.seed);

    // Side 1: sentinel-truncated sample for the seeds' own coverage.
    let mut ctx = RrContext::new(n);
    ctx.set_sentinel(seeds);
    for _ in 0..samples {
        sampler.generate(&mut ctx, &mut rng);
    }
    let coverage = ctx.sentinel_hits as usize;
    let lower = opim_lower_bound(coverage as f64, samples as u64, n, delta / 2.0);
    let estimate = n as f64 * coverage as f64 / samples as f64;

    // Side 2: full sample + greedy for the Eq. 2 optimum upper bound.
    let mut ctx2 = RrContext::new(n);
    let mut rr = RrCollection::new(n);
    for _ in 0..samples {
        sampler.generate(&mut ctx2, &mut rng);
        rr.push(ctx2.last());
    }
    let out = greedy_max_coverage(&rr, &GreedyConfig::standard(k));
    let optimal_upper = opim_upper_bound(out.coverage_upper, samples as u64, n, delta / 2.0);

    Ok(InfluenceCertificate {
        estimate,
        lower,
        optimal_upper,
        samples,
    })
}

/// Convenience: certify with a sample size scaled to the graph
/// (`max(10⁴, 50·n/k)` RR sets per side — enough for tight ratios on the
/// workloads in this repo; pass an explicit budget via
/// [`certify_seed_set`] to control it).
pub fn certify_seed_set_auto(
    g: &Graph,
    seeds: &[NodeId],
    strategy: RrStrategy,
    opts: &ImOptions,
) -> Result<InfluenceCertificate, ImError> {
    let samples = (50 * g.n() / seeds.len().max(1)).max(10_000);
    certify_seed_set(g, seeds, strategy, samples, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::OpimC;
    use crate::ImAlgorithm;
    use subsim_diffusion::forward::{mc_influence, CascadeModel};
    use subsim_graph::generators::{barabasi_albert, star_graph};
    use subsim_graph::WeightModel;

    #[test]
    fn bounds_sandwich_the_truth() {
        let g = barabasi_albert(300, 4, WeightModel::Wc, 81);
        let seeds = [0u32, 5, 9];
        let cert = certify_seed_set(
            &g,
            &seeds,
            RrStrategy::SubsimIc,
            40_000,
            &ImOptions::new(3).seed(82),
        )
        .unwrap();
        let truth = mc_influence(&g, &seeds, CascadeModel::Ic, 40_000, 83);
        assert!(
            cert.lower <= truth * 1.02,
            "lower {} vs truth {truth}",
            cert.lower
        );
        assert!(
            cert.optimal_upper >= truth * 0.98,
            "OPT upper {} below the set's own influence {truth}",
            cert.optimal_upper
        );
        assert!((cert.estimate - truth).abs() < 0.1 * truth);
    }

    #[test]
    fn good_seeds_certify_high_ratio() {
        let g = barabasi_albert(400, 4, WeightModel::Wc, 84);
        let opts = ImOptions::new(10).seed(85);
        let picked = OpimC::subsim().run(&g, &opts).unwrap();
        let cert =
            certify_seed_set(&g, &picked.seeds, RrStrategy::SubsimIc, 60_000, &opts).unwrap();
        assert!(
            cert.ratio() > 1.0 - (-1.0f64).exp() - 0.15,
            "ratio {} too low for greedy-selected seeds",
            cert.ratio()
        );
    }

    #[test]
    fn bad_seeds_certify_low_ratio() {
        // Leaves of a star have negligible influence vs the hub.
        let g = star_graph(200, WeightModel::UniformIc { p: 0.8 });
        let opts = ImOptions::new(1).seed(86);
        let good = certify_seed_set(&g, &[0], RrStrategy::SubsimIc, 30_000, &opts).unwrap();
        let bad = certify_seed_set(&g, &[42], RrStrategy::SubsimIc, 30_000, &opts).unwrap();
        assert!(good.ratio() > 0.5);
        assert!(bad.ratio() < 0.2, "leaf certified at {}", bad.ratio());
    }

    #[test]
    fn validates_input() {
        let g = star_graph(5, WeightModel::Wc);
        let opts = ImOptions::new(1);
        assert!(certify_seed_set(&g, &[], RrStrategy::SubsimIc, 100, &opts).is_err());
        assert!(certify_seed_set(&g, &[99], RrStrategy::SubsimIc, 100, &opts).is_err());
        assert!(certify_seed_set_auto(&g, &[0], RrStrategy::SubsimIc, &opts).is_ok());
    }
}
