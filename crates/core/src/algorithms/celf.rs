//! CELF — lazy-forward greedy (Leskovec et al., KDD 2007; the
//! "cost-effective lazy forward" optimization the related-work line
//! CELF/CELF++ \[21\] builds on).
//!
//! Plain Monte-Carlo greedy re-estimates every node's marginal gain in
//! every round. By submodularity a node's marginal gain only shrinks as
//! the seed set grows, so a stale gain is an upper bound: keep all gains
//! in a max-heap, and per round re-evaluate only the top entry until the
//! freshest top survives. Same `(1 - 1/e)` guarantee as [`super::McGreedy`]
//! at a fraction of the simulations — the classic pre-RIS accelerator, and
//! the natural quality reference between Kempe greedy and the RR-set era.

use crate::error::ImError;
use crate::options::ImOptions;
use crate::result::{ImResult, RunStats};
use crate::ImAlgorithm;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;
use subsim_diffusion::forward::{mc_influence, CascadeModel};
use subsim_graph::{Graph, NodeId};

/// Lazy-forward Monte-Carlo greedy.
#[derive(Debug, Clone)]
pub struct Celf {
    /// Cascade model to simulate.
    pub model: CascadeModel,
    /// Cascades per influence estimate.
    pub runs: usize,
}

impl Celf {
    /// IC-model CELF with `runs` simulations per estimate.
    pub fn ic(runs: usize) -> Self {
        Celf {
            model: CascadeModel::Ic,
            runs,
        }
    }

    /// LT-model CELF with `runs` simulations per estimate.
    pub fn lt(runs: usize) -> Self {
        Celf {
            model: CascadeModel::Lt,
            runs,
        }
    }
}

/// Heap entry ordered by stale upper-bound gain.
struct Entry {
    gain: f64,
    node: NodeId,
    /// Round at which `gain` was computed; fresh iff equal to the current
    /// round.
    round: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.node == other.node
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then(self.node.cmp(&other.node))
    }
}

impl ImAlgorithm for Celf {
    fn name(&self) -> String {
        format!("celf({:?})", self.model)
    }

    fn run(&self, g: &Graph, opts: &ImOptions) -> Result<ImResult, ImError> {
        opts.validate(g)?;
        let start = Instant::now();
        let mut evaluations = 0u64;
        let mut estimate = |seeds: &[NodeId], salt: u64| {
            evaluations += 1;
            mc_influence(g, seeds, self.model, self.runs, opts.seed ^ salt)
        };

        // Round 0: every singleton, exactly like plain greedy's first pass.
        let mut heap: BinaryHeap<Entry> = (0..g.n() as NodeId)
            .map(|v| Entry {
                gain: estimate(&[v], v as u64),
                node: v,
                round: 0,
            })
            .collect();

        let mut seeds: Vec<NodeId> = Vec::with_capacity(opts.k);
        let mut current = 0.0f64;
        let mut candidate = Vec::with_capacity(opts.k + 1);
        for round in 0..opts.k {
            loop {
                let top = heap.pop().expect("k <= n validated");
                if top.round == round {
                    current += top.gain;
                    seeds.push(top.node);
                    break;
                }
                // Stale: recompute the true marginal gain w.r.t. the
                // current seed set and re-insert.
                candidate.clone_from(&seeds);
                candidate.push(top.node);
                let gain = estimate(&candidate, (round as u64) << 32 | top.node as u64) - current;
                heap.push(Entry {
                    gain,
                    node: top.node,
                    round,
                });
            }
        }

        Ok(ImResult {
            seeds,
            stats: RunStats {
                // For the MC-based algorithms the cost proxy counts
                // influence evaluations (each `runs` cascades).
                cost: evaluations,
                elapsed: start.elapsed(),
                ..RunStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::{barabasi_albert, star_graph};
    use subsim_graph::{GraphBuilder, WeightModel};

    #[test]
    fn picks_the_hub_of_a_star() {
        let g = star_graph(12, WeightModel::UniformIc { p: 0.8 });
        let res = Celf::ic(300).run(&g, &ImOptions::new(1)).unwrap();
        assert_eq!(res.seeds, vec![0]);
    }

    #[test]
    fn picks_both_hubs_of_two_stars() {
        let mut b = GraphBuilder::new(12);
        for leaf in 2..7 {
            b = b.add_weighted_edge(0, leaf, 1.0);
        }
        for leaf in 7..12 {
            b = b.add_weighted_edge(1, leaf, 1.0);
        }
        let g = b.build().unwrap();
        let res = Celf::ic(200).run(&g, &ImOptions::new(2)).unwrap();
        let mut s = res.seeds.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn far_fewer_evaluations_than_plain_greedy() {
        // Plain greedy costs ~ n evaluations per round; CELF costs n for
        // round 0 plus a handful per later round.
        let g = barabasi_albert(80, 3, WeightModel::Wc, 92);
        let k = 4;
        let res = Celf::ic(300).run(&g, &ImOptions::new(k).seed(93)).unwrap();
        let greedy_cost = (g.n() * k) as u64;
        assert!(
            res.stats.cost < greedy_cost / 2,
            "CELF used {} evaluations vs greedy's {}",
            res.stats.cost,
            greedy_cost
        );
        assert_eq!(res.k(), k);
    }

    #[test]
    fn quality_matches_plain_greedy() {
        use crate::algorithms::McGreedy;
        let g = barabasi_albert(100, 3, WeightModel::Wc, 94);
        let opts = ImOptions::new(3).seed(95);
        let celf = Celf::ic(800).run(&g, &opts).unwrap();
        let greedy = McGreedy::ic(800).run(&g, &opts).unwrap();
        let ic = |s: &[u32]| mc_influence(&g, s, CascadeModel::Ic, 20_000, 96);
        let (a, b) = (ic(&celf.seeds), ic(&greedy.seeds));
        assert!(a > 0.95 * b, "CELF {a} vs greedy {b}");
    }

    #[test]
    fn lt_variant_runs() {
        let g = star_graph(8, WeightModel::Lt);
        let res = Celf::lt(200).run(&g, &ImOptions::new(1)).unwrap();
        assert_eq!(res.seeds, vec![0]);
    }
}
