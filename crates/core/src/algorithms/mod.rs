//! The IM algorithms. See the crate docs for the role of each.

mod celf;
mod dssa;
mod hist;
mod imm;
mod mc_greedy;
mod opim;
mod ssa;
mod tim;

pub use celf::Celf;
pub use dssa::Dssa;
pub use hist::Hist;
pub use imm::Imm;
pub use mc_greedy::McGreedy;
pub use opim::OpimC;
pub use ssa::Ssa;
pub use tim::TimPlus;

use crate::result::RunStats;
use rand::rngs::SmallRng;
use subsim_diffusion::{RrCollection, RrContext, RrSampler, RrStrategy};
use subsim_graph::{Graph, NodeId};
use subsim_sampling::rng_from_seed;

/// Shared RR-generation driver: owns the sampler, scratch context, and
/// RNG, and keeps the running statistics every algorithm reports.
pub(crate) struct Driver<'g> {
    pub sampler: RrSampler<'g>,
    pub ctx: RrContext,
    pub rng: SmallRng,
    pub rr_generated: u64,
    pub rr_total_nodes: u64,
}

impl<'g> Driver<'g> {
    pub fn new(g: &'g Graph, strategy: RrStrategy, seed: u64) -> Self {
        Driver {
            sampler: RrSampler::new(g, strategy),
            ctx: RrContext::new(g.n()),
            rng: rng_from_seed(seed),
            rr_generated: 0,
            rr_total_nodes: 0,
        }
    }

    /// Appends `count` random RR sets to `rr`, honouring the context's
    /// sentinel if one is installed.
    pub fn generate_into(&mut self, rr: &mut RrCollection, count: usize) {
        for _ in 0..count {
            let size = self.sampler.generate(&mut self.ctx, &mut self.rng);
            rr.push(self.ctx.last());
            self.rr_total_nodes += size as u64;
        }
        self.rr_generated += count as u64;
    }

    /// Installs a sentinel set for subsequent generations.
    pub fn set_sentinel(&mut self, sentinel: &[NodeId]) {
        self.ctx.set_sentinel(sentinel);
    }

    /// Removes the sentinel.
    pub fn clear_sentinel(&mut self) {
        self.ctx.clear_sentinel();
    }

    /// Snapshot of the statistics accumulated so far.
    pub fn stats(&self) -> RunStats {
        RunStats {
            rr_generated: self.rr_generated,
            rr_total_nodes: self.rr_total_nodes,
            cost: self.ctx.cost,
            sentinel_hits: self.ctx.sentinel_hits,
            ..RunStats::default()
        }
    }
}

/// `1 - 1/e`, the submodular greedy factor.
pub(crate) fn one_minus_inv_e() -> f64 {
    1.0 - (-1.0f64).exp()
}
