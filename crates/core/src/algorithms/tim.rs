//! TIM⁺ (Tang, Xiao, Shi — SIGMOD 2014).
//!
//! The first practical RIS algorithm and IMM's direct predecessor
//! (paper Section 2.2). Three stages:
//!
//! 1. **KPT estimation**: probe `OPT_k` from below using the statistic
//!    `κ(R) = 1 - (1 - w(R)/m)^k`, where `w(R)` is the number of edges
//!    entering the RR set `R` — an unbiased estimator of the probability
//!    that a *random* size-`k` seed set (weighted by in-degree) covers
//!    `R`.
//! 2. **Refinement** (the "+" of TIM⁺): greedy-select on a small sample,
//!    re-estimate that seed set's coverage on a fresh sample, and keep the
//!    larger of the two `OPT_k` lower bounds.
//! 3. **Node selection**: sample `θ = λ/KPT⁺` RR sets and run greedy.
//!
//! Kept as a baseline for completeness; IMM dominates it in both theory
//! and practice, which our benches reproduce.

use super::Driver;
use crate::bounds::ln_binomial;
use crate::coverage::{greedy_max_coverage, GreedyConfig};
use crate::error::ImError;
use crate::options::ImOptions;
use crate::result::ImResult;
use crate::ImAlgorithm;
use std::time::Instant;
use subsim_diffusion::{RrCollection, RrStrategy};
use subsim_graph::Graph;

/// TIM⁺ parameterized by the RR-generation strategy.
#[derive(Debug, Clone, Copy)]
pub struct TimPlus {
    /// How RR sets are generated.
    pub strategy: RrStrategy,
}

impl TimPlus {
    /// TIM⁺ with vanilla RR generation (the published algorithm).
    pub fn vanilla() -> Self {
        TimPlus {
            strategy: RrStrategy::VanillaIc,
        }
    }

    /// TIM⁺ accelerated by SUBSIM RR generation.
    pub fn subsim() -> Self {
        TimPlus {
            strategy: RrStrategy::SubsimIc,
        }
    }
}

/// `w(R)`: total in-degree of the set's nodes.
fn width(g: &Graph, set: &[subsim_graph::NodeId]) -> u64 {
    set.iter().map(|&v| g.in_degree(v) as u64).sum()
}

impl ImAlgorithm for TimPlus {
    fn name(&self) -> String {
        match self.strategy {
            RrStrategy::VanillaIc => "TIM+".into(),
            s => format!("TIM+({s:?})"),
        }
    }

    fn run(&self, g: &Graph, opts: &ImOptions) -> Result<ImResult, ImError> {
        opts.validate(g)?;
        let start = Instant::now();
        let (n, k, eps) = (g.n(), opts.k, opts.epsilon);
        let (nf, m) = (n as f64, g.m() as f64);
        let delta = opts.effective_delta(g);
        let ell = ((1.0 / delta).ln() / nf.ln()).max(0.1);
        let mut driver = Driver::new(g, self.strategy, opts.seed);

        // --- Stage 1: KPT estimation ---
        let log2n = nf.log2();
        let mut kpt = 1.0f64;
        let mut probe = RrCollection::new(n);
        'outer: for i in 1..(log2n.floor() as i32) {
            let ci =
                ((6.0 * ell * nf.ln() + 6.0 * log2n.max(1.0).ln()) * 2f64.powi(i)).ceil() as usize;
            let mut sum = 0.0;
            for _ in 0..ci {
                driver.generate_into(&mut probe, 1);
                let set = probe.get(probe.len() - 1);
                let kappa = if m == 0.0 {
                    0.0
                } else {
                    1.0 - (1.0 - width(g, set) as f64 / m).powi(k as i32)
                };
                sum += kappa;
            }
            if sum / ci as f64 > 1.0 / 2f64.powi(i) {
                kpt = nf * sum / (2.0 * ci as f64);
                break 'outer;
            }
        }
        drop(probe);

        // --- Stage 2: refinement (TIM⁺'s extra pass) ---
        let eps_p = 5.0 * (ell * eps * eps / (k as f64 + ell)).cbrt();
        let eps_p = eps_p.min(0.9); // keep the deflation factor sane
        let lambda_p = (2.0 + eps_p) * ell * nf * nf.ln() / (eps_p * eps_p);
        let theta_p = ((lambda_p / kpt).ceil() as usize).max(1);
        let mut rr = RrCollection::new(n);
        driver.generate_into(&mut rr, theta_p);
        let out = greedy_max_coverage(
            &rr,
            &GreedyConfig {
                bound_terms: 0,
                ..GreedyConfig::standard(k)
            },
        );
        let mut fresh = RrCollection::new(n);
        driver.generate_into(&mut fresh, theta_p);
        let frac = fresh.coverage_of(&out.seeds) as f64 / theta_p as f64;
        let kpt_refined = frac * nf / (1.0 + eps_p);
        let kpt_plus = kpt_refined.max(kpt);

        // --- Stage 3: node selection ---
        let lambda =
            (8.0 + 2.0 * eps) * nf * (ell * nf.ln() + ln_binomial(n as u64, k as u64) + 2f64.ln())
                / (eps * eps);
        let theta = ((lambda / kpt_plus).ceil() as usize).max(1);
        let mut rr = RrCollection::new(n);
        driver.generate_into(&mut rr, theta);
        let out = greedy_max_coverage(
            &rr,
            &GreedyConfig {
                bound_terms: 0,
                ..GreedyConfig::standard(k)
            },
        );

        let mut stats = driver.stats();
        stats.phase1_rr = stats.rr_generated;
        stats.elapsed = start.elapsed();
        Ok(ImResult {
            seeds: out.seeds,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::{barabasi_albert, star_graph};
    use subsim_graph::WeightModel;

    fn opts(k: usize) -> ImOptions {
        ImOptions::new(k).epsilon(0.5).delta(0.2).seed(61)
    }

    #[test]
    fn star_hub_selected() {
        let g = star_graph(80, WeightModel::UniformIc { p: 0.7 });
        let res = TimPlus::vanilla().run(&g, &opts(1)).unwrap();
        assert_eq!(res.seeds, vec![0]);
    }

    #[test]
    fn generates_at_least_as_many_sets_as_imm() {
        // TIM+'s union bound is looser than IMM's martingale analysis;
        // with identical parameters it needs at least as many samples
        // (the historical motivation for IMM).
        let g = barabasi_albert(300, 4, WeightModel::Wc, 62);
        let o = ImOptions::new(5).epsilon(0.4).delta(0.1).seed(63);
        let tim = TimPlus::vanilla().run(&g, &o).unwrap();
        let imm = crate::algorithms::Imm::vanilla().run(&g, &o).unwrap();
        assert!(
            tim.stats.rr_generated as f64 >= 0.8 * imm.stats.rr_generated as f64,
            "TIM+ {} vs IMM {}",
            tim.stats.rr_generated,
            imm.stats.rr_generated
        );
    }

    #[test]
    fn subsim_variant_selects_k_distinct() {
        let g = barabasi_albert(250, 4, WeightModel::Wc, 64);
        let res = TimPlus::subsim().run(&g, &opts(8)).unwrap();
        assert_eq!(res.k(), 8);
        let mut s = res.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 65);
        let a = TimPlus::vanilla().run(&g, &opts(3)).unwrap();
        let b = TimPlus::vanilla().run(&g, &opts(3)).unwrap();
        assert_eq!(a.seeds, b.seeds);
    }
}
