//! OPIM-C (Tang et al., SIGMOD 2018) — and, with the SUBSIM RR strategy,
//! the paper's **SUBSIM** algorithm.
//!
//! Structure (paper Section 2.2): maintain two equal-sized independent RR
//! collections. `R₁` drives greedy selection and the Eq. 2 upper bound on
//! `𝕀(S^o_k)`; `R₂` — independent of the selected set — certifies the
//! Eq. 1 lower bound on `𝕀(S*_k)`. Stop as soon as
//! `𝕀⁻(S*_k)/𝕀⁺(S^o_k) > 1 - 1/e - ε`, else double both collections.
//! The sample cap `θ_max` guarantees the final iteration succeeds with
//! probability `1 - δ/3`.

use super::{one_minus_inv_e, Driver};
use crate::bounds::{i_max, opim_lower_bound, opim_upper_bound, theta_max_opim, theta_zero};
use crate::coverage::{greedy_max_coverage, GreedyConfig};
use crate::error::ImError;
use crate::options::ImOptions;
use crate::result::ImResult;
use crate::ImAlgorithm;
use std::time::Instant;
use subsim_diffusion::{NodeMarks, RrCollection, RrStrategy};
use subsim_graph::Graph;

/// OPIM-C parameterized by the RR-generation strategy.
#[derive(Debug, Clone, Copy)]
pub struct OpimC {
    /// How RR sets are generated.
    pub strategy: RrStrategy,
}

impl OpimC {
    /// Plain OPIM-C: vanilla RR generation (paper's baseline).
    pub fn vanilla() -> Self {
        OpimC {
            strategy: RrStrategy::VanillaIc,
        }
    }

    /// The paper's **SUBSIM**: OPIM-C with geometric-skip RR generation.
    pub fn subsim() -> Self {
        OpimC {
            strategy: RrStrategy::SubsimIc,
        }
    }

    /// OPIM-C under the Linear Threshold model.
    pub fn lt() -> Self {
        OpimC {
            strategy: RrStrategy::Lt,
        }
    }

    /// OPIM-C with an arbitrary strategy.
    pub fn with_strategy(strategy: RrStrategy) -> Self {
        OpimC { strategy }
    }
}

impl ImAlgorithm for OpimC {
    fn name(&self) -> String {
        match self.strategy {
            RrStrategy::VanillaIc => "OPIM-C".into(),
            RrStrategy::SubsimIc => "SUBSIM".into(),
            RrStrategy::SubsimBucketIc => "SUBSIM(bucket)".into(),
            RrStrategy::Lt => "OPIM-C(LT)".into(),
        }
    }

    fn run(&self, g: &Graph, opts: &ImOptions) -> Result<ImResult, ImError> {
        opts.validate(g)?;
        let start = Instant::now();
        let (n, k, eps) = (g.n(), opts.k, opts.epsilon);
        let delta = opts.effective_delta(g);
        let target = one_minus_inv_e() - eps;

        let theta_max = theta_max_opim(n, k, eps, delta);
        let theta0 = theta_zero(delta);
        let imax = i_max(theta_max, theta0);
        let delta_iter = delta / (3.0 * imax as f64);

        let mut driver = Driver::new(g, self.strategy, opts.seed);
        let mut r1 = RrCollection::new(n);
        let mut r2 = RrCollection::new(n);
        driver.generate_into(&mut r1, theta0 as usize);
        driver.generate_into(&mut r2, theta0 as usize);
        let mut marks = NodeMarks::new();

        for i in 1..=imax {
            let out = greedy_max_coverage(&r1, &GreedyConfig::standard(k));
            let ub = opim_upper_bound(out.coverage_upper, r1.len() as u64, n, delta_iter);
            let cov2 = r2.coverage_of_with(&out.seeds, &mut marks);
            let lb = opim_lower_bound(cov2 as f64, r2.len() as u64, n, delta_iter);

            if lb / ub > target || i == imax {
                let mut stats = driver.stats();
                stats.phase1_rr = stats.rr_generated;
                stats.lower_bound = lb;
                stats.upper_bound = ub;
                stats.elapsed = start.elapsed();
                return Ok(ImResult {
                    seeds: out.seeds,
                    stats,
                });
            }
            let grow = r1.len();
            driver.generate_into(&mut r1, grow);
            driver.generate_into(&mut r2, grow);
        }
        unreachable!("loop returns on the final iteration");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::{barabasi_albert, star_graph};
    use subsim_graph::WeightModel;

    #[test]
    fn star_hub_selected_first() {
        let g = star_graph(50, WeightModel::UniformIc { p: 0.5 });
        for alg in [OpimC::vanilla(), OpimC::subsim()] {
            let res = alg.run(&g, &ImOptions::new(1).seed(1)).unwrap();
            assert_eq!(res.seeds, vec![0], "{}", alg.name());
            assert!(res.stats.rr_generated > 0);
        }
    }

    #[test]
    fn certified_ratio_meets_target() {
        let g = barabasi_albert(500, 4, WeightModel::Wc, 2);
        let res = OpimC::subsim()
            .run(&g, &ImOptions::new(10).seed(3))
            .unwrap();
        let ratio = res.stats.certified_ratio().unwrap();
        assert!(
            ratio > 1.0 - (-1.0f64).exp() - 0.1,
            "certified ratio {ratio} below target"
        );
        assert_eq!(res.k(), 10);
    }

    #[test]
    fn vanilla_and_subsim_agree_on_quality() {
        let g = barabasi_albert(400, 4, WeightModel::Wc, 4);
        let opts = ImOptions::new(5).seed(5);
        let a = OpimC::vanilla().run(&g, &opts).unwrap();
        let b = OpimC::subsim().run(&g, &opts).unwrap();
        // Different RNG consumption → possibly different seeds, but both
        // certified; compare certified lower bounds loosely.
        assert!(a.stats.lower_bound > 0.0 && b.stats.lower_bound > 0.0);
        let rel = (a.stats.lower_bound - b.stats.lower_bound).abs()
            / a.stats.lower_bound.max(b.stats.lower_bound);
        assert!(
            rel < 0.25,
            "lower bounds diverge: {a:?} vs {b:?}",
            a = a.stats.lower_bound,
            b = b.stats.lower_bound
        );
    }

    #[test]
    fn lt_strategy_runs() {
        let g = barabasi_albert(300, 3, WeightModel::Lt, 6);
        let res = OpimC::lt().run(&g, &ImOptions::new(5).seed(7)).unwrap();
        assert_eq!(res.k(), 5);
        assert!(res.stats.certified_ratio().unwrap() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = barabasi_albert(300, 3, WeightModel::Wc, 8);
        let opts = ImOptions::new(4).seed(9);
        let a = OpimC::subsim().run(&g, &opts).unwrap();
        let b = OpimC::subsim().run(&g, &opts).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.stats.rr_generated, b.stats.rr_generated);
    }

    #[test]
    fn rejects_invalid_options() {
        let g = star_graph(5, WeightModel::Wc);
        assert!(OpimC::subsim().run(&g, &ImOptions::new(0)).is_err());
        assert!(OpimC::subsim()
            .run(&g, &ImOptions::new(2).epsilon(0.9))
            .is_err());
    }
}
