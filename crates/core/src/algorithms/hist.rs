//! HIST — Hit-and-Stop (paper Section 4, Algorithms 4–8).
//!
//! Two phases:
//!
//! 1. **Sentinel set selection** (Algorithm 7): find a *small* set `S*_b`
//!    whose influence already certifies `(1 - (1-1/k)^b - ε₁)·OPT_k`. The
//!    revised greedy (Algorithm 6) breaks coverage ties towards large
//!    out-degree so that sentinels are nodes RR traversals are likely to
//!    hit. The size `b` is chosen per-iteration as the largest prefix
//!    whose *estimated* lower bound clears the ratio; the choice is then
//!    verified on an independent, sentinel-truncated collection `R₂`.
//! 2. **IM-Sentinel** (Algorithm 8): select the remaining `k - b` seeds
//!    with every RR generation stopping at the sentinel (Algorithm 5),
//!    which slashes the average RR-set size. Coverage of any superset of
//!    `S*_b` is exact on truncated sets, so the OPIM bounds still apply;
//!    the final set carries the full `(1 - 1/e - ε)` guarantee.

use super::{one_minus_inv_e, Driver};
use crate::bounds::{
    i_max, opim_lower_bound, opim_upper_bound, theta_max_im_sentinel, theta_max_sentinel,
    theta_zero,
};
use crate::coverage::{greedy_max_coverage, GreedyConfig};
use crate::error::ImError;
use crate::options::ImOptions;
use crate::result::ImResult;
use crate::ImAlgorithm;
use std::time::Instant;
use subsim_diffusion::{NodeMarks, RrCollection, RrStrategy};
use subsim_graph::{Graph, NodeId};

/// HIST parameterized by the RR-generation strategy.
#[derive(Debug, Clone, Copy)]
pub struct Hist {
    /// How RR sets are generated. `VanillaIc` is the paper's plain HIST;
    /// `SubsimIc` is HIST+SUBSIM.
    pub strategy: RrStrategy,
    /// Ablation knob: force the sentinel size `b` instead of the paper's
    /// automatic largest-qualifying-prefix choice (Algorithm 7 line 8).
    /// The `R₂` verification still runs, so the guarantee is unaffected —
    /// a bad forced `b` just costs more sampling. Clamped to `[1, k]`.
    pub force_sentinel_size: Option<usize>,
    /// Ablation knob: `false` replaces the revised greedy (Algorithm 6,
    /// out-degree tie-break) with the standard greedy (Algorithm 1) in
    /// both phases. The paper argues the tie-break picks sentinels that
    /// are hit more often; the ablation quantifies that.
    pub revised_tie_break: bool,
}

/// Outcome of the sentinel-selection phase.
struct SentinelPhase {
    sentinel: Vec<NodeId>,
    lower_bound: f64,
    upper_bound: f64,
    /// RR sets generated during this phase (Figure 3(a)).
    phase_rr: u64,
}

impl Hist {
    /// HIST with vanilla RR generation.
    pub fn vanilla() -> Self {
        Hist {
            strategy: RrStrategy::VanillaIc,
            force_sentinel_size: None,
            revised_tie_break: true,
        }
    }

    /// HIST+SUBSIM: the paper's fastest configuration.
    pub fn with_subsim() -> Self {
        Hist {
            strategy: RrStrategy::SubsimIc,
            force_sentinel_size: None,
            revised_tie_break: true,
        }
    }

    /// HIST with an arbitrary strategy.
    pub fn with_strategy(strategy: RrStrategy) -> Self {
        Hist {
            strategy,
            force_sentinel_size: None,
            revised_tie_break: true,
        }
    }

    /// Disables the out-degree tie-break (ablation; see
    /// `revised_tie_break`).
    pub fn standard_greedy(mut self) -> Self {
        self.revised_tie_break = false;
        self
    }

    /// Forces the sentinel size (ablation; see `force_sentinel_size`).
    pub fn force_b(mut self, b: usize) -> Self {
        self.force_sentinel_size = Some(b);
        self
    }

    /// Algorithm 7: selects the sentinel set `S*_b`.
    fn sentinel_set(
        &self,
        g: &Graph,
        driver: &mut Driver<'_>,
        k: usize,
        eps1: f64,
        delta1: f64,
    ) -> SentinelPhase {
        let n = g.n();
        let theta0 = theta_zero(delta1);
        let theta_max = theta_max_sentinel(n, k, eps1, delta1);
        let imax = i_max(theta_max, theta0);
        let delta_u = delta1 / (3.0 * imax as f64);
        let delta_l = delta1 / (6.0 * imax as f64);
        let x = 1.0 - 1.0 / k as f64;

        let mut r1 = RrCollection::new(n);
        driver.generate_into(&mut r1, theta0 as usize);
        let mut marks = NodeMarks::new();

        for i in 1..=imax {
            let theta1 = r1.len() as u64;
            let cfg = if self.revised_tie_break {
                GreedyConfig::revised(k, g)
            } else {
                GreedyConfig::standard(k)
            };
            let out = greedy_max_coverage(&r1, &cfg);
            let ub = opim_upper_bound(out.coverage_upper, theta1, n, delta_u);

            // Line 8: the largest prefix whose *estimated* lower bound
            // clears the (1 - x^a - ε₁) target; fall back to b = k.
            // The ablation knob overrides the scan.
            let b = match self.force_sentinel_size {
                Some(forced) => forced.clamp(1, k),
                None => {
                    let mut b = k;
                    for a in (1..=k).rev() {
                        let est =
                            opim_lower_bound(out.prefix_coverage[a] as f64, theta1, n, delta_l);
                        if est / ub > 1.0 - x.powi(a as i32) - eps1 {
                            b = a;
                            break;
                        }
                    }
                    b
                }
            };
            let sentinel: Vec<NodeId> = out.seeds[..b].to_vec();
            let ratio_target = 1.0 - x.powi(b as i32) - eps1;

            // Lines 9-15: verify on independent sentinel-truncated R₂,
            // once at |R₁| and once more at 4|R₁| (two lower-bound
            // computations per iteration, matching the paper's failure
            // accounting).
            let mut last_lb = 0.0;
            driver.set_sentinel(&sentinel);
            for mult in [1usize, 4] {
                let mut r2 = RrCollection::new(n);
                driver.generate_into(&mut r2, mult * theta1 as usize);
                let cov = r2.coverage_of_with(&sentinel, &mut marks);
                last_lb = opim_lower_bound(cov as f64, r2.len() as u64, n, delta_l);
                if last_lb / ub > ratio_target {
                    driver.clear_sentinel();
                    return SentinelPhase {
                        sentinel,
                        lower_bound: last_lb,
                        upper_bound: ub,
                        phase_rr: driver.rr_generated,
                    };
                }
            }
            driver.clear_sentinel();

            if i == imax {
                // θ_max reached: S*_b is qualified with probability
                // 1 - δ₁/3 regardless of the check (Lemma 6).
                return SentinelPhase {
                    sentinel,
                    lower_bound: last_lb,
                    upper_bound: ub,
                    phase_rr: driver.rr_generated,
                };
            }
            let grow = r1.len();
            driver.generate_into(&mut r1, grow);
        }
        unreachable!("loop returns on the final iteration");
    }

    /// Algorithm 8: selects the remaining `k - b` seeds under sentinel
    /// truncation.
    #[allow(clippy::too_many_arguments)]
    fn im_sentinel(
        &self,
        g: &Graph,
        driver: &mut Driver<'_>,
        sentinel: &[NodeId],
        k: usize,
        eps: f64,
        eps2: f64,
        delta2: f64,
    ) -> (Vec<NodeId>, f64, f64) {
        let n = g.n();
        let b = sentinel.len();
        let theta0 = theta_zero(delta2);
        let theta_max = theta_max_im_sentinel(n, k, b, eps2, delta2);
        let imax = i_max(theta_max, theta0);
        let delta_iter = delta2 / (3.0 * imax as f64);
        let target = one_minus_inv_e() - eps;

        driver.set_sentinel(sentinel);
        let mut r1 = RrCollection::new(n);
        let mut r2 = RrCollection::new(n);
        driver.generate_into(&mut r1, theta0 as usize);
        driver.generate_into(&mut r2, theta0 as usize);
        let mut marks = NodeMarks::new();

        for i in 1..=imax {
            // Line 5: sets already covered by the sentinel carry zero
            // marginal coverage; count them as base coverage instead.
            let (r1p, covered) = r1.filter_not_covering_with(sentinel, &mut marks);
            let cfg = GreedyConfig {
                select: k - b,
                bound_terms: k,
                tie_break: self.revised_tie_break.then_some(g),
                base_covered: covered,
                exclude: sentinel,
                threads: 1,
            };
            let out = greedy_max_coverage(&r1p, &cfg);
            let mut seeds: Vec<NodeId> = sentinel.to_vec();
            seeds.extend_from_slice(&out.seeds);

            let ub = opim_upper_bound(out.coverage_upper, r1.len() as u64, n, delta_iter);
            let cov2 = r2.coverage_of_with(&seeds, &mut marks);
            let lb = opim_lower_bound(cov2 as f64, r2.len() as u64, n, delta_iter);

            if lb / ub > target || i == imax {
                driver.clear_sentinel();
                return (seeds, lb, ub);
            }
            let grow = r1.len();
            driver.generate_into(&mut r1, grow);
            driver.generate_into(&mut r2, grow);
        }
        unreachable!("loop returns on the final iteration");
    }
}

impl ImAlgorithm for Hist {
    fn name(&self) -> String {
        match self.strategy {
            RrStrategy::VanillaIc => "HIST".into(),
            RrStrategy::SubsimIc => "HIST+SUBSIM".into(),
            s => format!("HIST({s:?})"),
        }
    }

    fn run(&self, g: &Graph, opts: &ImOptions) -> Result<ImResult, ImError> {
        opts.validate(g)?;
        let start = Instant::now();
        let k = opts.k;
        let delta = opts.effective_delta(g);
        let (eps1, eps2) = (opts.epsilon / 2.0, opts.epsilon / 2.0);
        let (delta1, delta2) = (delta / 2.0, delta / 2.0);

        let mut driver = Driver::new(g, self.strategy, opts.seed);
        let phase1 = self.sentinel_set(g, &mut driver, k, eps1, delta1);
        let b = phase1.sentinel.len();

        let (seeds, lb, ub) = if b == k {
            // The sentinel phase already solved the full problem
            // (its guarantee at b = k is 1 - (1-1/k)^k - ε₁ > 1 - 1/e - ε).
            (
                phase1.sentinel.clone(),
                phase1.lower_bound,
                phase1.upper_bound,
            )
        } else {
            self.im_sentinel(
                g,
                &mut driver,
                &phase1.sentinel,
                k,
                opts.epsilon,
                eps2,
                delta2,
            )
        };

        let mut stats = driver.stats();
        stats.sentinel_size = b;
        stats.phase1_rr = phase1.phase_rr;
        stats.lower_bound = lb;
        stats.upper_bound = ub;
        stats.elapsed = start.elapsed();
        Ok(ImResult { seeds, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::OpimC;
    use subsim_graph::generators::{barabasi_albert, star_graph};
    use subsim_graph::WeightModel;

    #[test]
    fn star_hub_selected_first() {
        let g = star_graph(60, WeightModel::UniformIc { p: 0.5 });
        for alg in [Hist::vanilla(), Hist::with_subsim()] {
            let res = alg.run(&g, &ImOptions::new(1).seed(31)).unwrap();
            assert_eq!(res.seeds, vec![0], "{}", alg.name());
            assert_eq!(res.stats.sentinel_size, 1);
        }
    }

    #[test]
    fn returns_k_distinct_seeds() {
        let g = barabasi_albert(500, 4, WeightModel::WcVariant { theta: 3.0 }, 32);
        let res = Hist::with_subsim()
            .run(&g, &ImOptions::new(20).seed(33))
            .unwrap();
        assert_eq!(res.k(), 20);
        let mut s = res.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 20, "duplicate seeds");
        assert!(res.stats.sentinel_size >= 1 && res.stats.sentinel_size <= 20);
    }

    #[test]
    fn certified_ratio_meets_target() {
        let g = barabasi_albert(500, 4, WeightModel::WcVariant { theta: 3.0 }, 34);
        let opts = ImOptions::new(10).seed(35);
        let res = Hist::with_subsim().run(&g, &opts).unwrap();
        let ratio = res.stats.certified_ratio().unwrap();
        assert!(
            ratio > 1.0 - (-1.0f64).exp() - opts.epsilon,
            "certified ratio {ratio}"
        );
    }

    #[test]
    fn sentinel_truncation_shrinks_rr_sets_vs_opim() {
        // High-influence setting: HIST's average RR size must undercut
        // OPIM-C's (Figure 3(b) mechanism).
        let g = barabasi_albert(800, 5, WeightModel::WcVariant { theta: 6.0 }, 36);
        let opts = ImOptions::new(20).seed(37);
        let hist = Hist::with_subsim().run(&g, &opts).unwrap();
        let opim = OpimC::subsim().run(&g, &opts).unwrap();
        assert!(hist.stats.sentinel_hits > 0);
        assert!(
            hist.stats.avg_rr_size() < opim.stats.avg_rr_size(),
            "HIST avg {} vs OPIM avg {}",
            hist.stats.avg_rr_size(),
            opim.stats.avg_rr_size()
        );
    }

    #[test]
    fn influence_competitive_with_opim() {
        use subsim_diffusion::forward::{mc_influence, CascadeModel};
        let g = barabasi_albert(500, 4, WeightModel::WcVariant { theta: 4.0 }, 38);
        let opts = ImOptions::new(10).seed(39);
        let hist = Hist::with_subsim().run(&g, &opts).unwrap();
        let opim = OpimC::subsim().run(&g, &opts).unwrap();
        let ih = mc_influence(&g, &hist.seeds, CascadeModel::Ic, 3000, 40);
        let io = mc_influence(&g, &opim.seeds, CascadeModel::Ic, 3000, 40);
        assert!(ih > 0.85 * io, "HIST influence {ih} vs OPIM {io}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = barabasi_albert(300, 3, WeightModel::WcVariant { theta: 3.0 }, 41);
        let opts = ImOptions::new(5).seed(42);
        let a = Hist::with_subsim().run(&g, &opts).unwrap();
        let b = Hist::with_subsim().run(&g, &opts).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.stats.rr_generated, b.stats.rr_generated);
    }

    #[test]
    fn k_equals_one_short_circuits_phase_two() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 43);
        let res = Hist::with_subsim()
            .run(&g, &ImOptions::new(1).seed(44))
            .unwrap();
        assert_eq!(res.k(), 1);
        assert_eq!(res.stats.sentinel_size, 1);
    }

    #[test]
    fn standard_greedy_ablation_still_correct() {
        let g = barabasi_albert(300, 4, WeightModel::WcVariant { theta: 3.0 }, 47);
        let opts = ImOptions::new(8).seed(48);
        let res = Hist::with_subsim()
            .standard_greedy()
            .run(&g, &opts)
            .unwrap();
        assert_eq!(res.k(), 8);
        let mut s = res.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 8);
        let ratio = res.stats.certified_ratio().unwrap();
        assert!(ratio > 1.0 - (-1.0f64).exp() - opts.epsilon);
    }

    #[test]
    fn forced_b_is_respected() {
        let g = barabasi_albert(300, 4, WeightModel::WcVariant { theta: 4.0 }, 49);
        for b in [1usize, 3, 7] {
            let res = Hist::with_subsim()
                .force_b(b)
                .run(&g, &ImOptions::new(10).seed(50))
                .unwrap();
            assert_eq!(res.stats.sentinel_size, b, "forced b={b}");
            assert_eq!(res.k(), 10);
        }
    }

    #[test]
    fn phase1_rr_counted_separately() {
        let g = barabasi_albert(400, 4, WeightModel::WcVariant { theta: 3.0 }, 45);
        let res = Hist::with_subsim()
            .run(&g, &ImOptions::new(15).seed(46))
            .unwrap();
        assert!(res.stats.phase1_rr > 0);
        assert!(res.stats.phase1_rr <= res.stats.rr_generated);
    }
}
