//! D-SSA — dynamic stop-and-stare (Nguyen, Thai, Dinh — SIGMOD 2016,
//! Algorithm 3; revised in CSoNet 2018).
//!
//! Like SSA, but the precision split is computed *dynamically* from the
//! two independent coverage estimates instead of being fixed up front:
//! after greedy selection on `R₁`, the selected set's influence is
//! re-estimated on `R₂`, the empirical gap feeds `ε₁`, and concentration
//! widths `ε₂`, `ε₃` shrink as samples double; the run stops once the
//! composed error drops below `ε`.
//!
//! **Caveat** (paper Section 2.2): Huang et al. (PVLDB 2017) showed the
//! original D-SSA analysis is flawed, and the efficiency guarantee of the
//! fixed version is still open. We implement the published pseudocode with
//! an absolute `θ_max` cap, and treat the result as a *heuristic* baseline:
//! its seeds are good in practice, but no formal certificate is attached
//! (`RunStats::lower_bound`/`upper_bound` stay 0).

use super::{one_minus_inv_e, Driver};
use crate::bounds::{i_max, theta_max_opim};
use crate::coverage::{greedy_max_coverage, GreedyConfig};
use crate::error::ImError;
use crate::options::ImOptions;
use crate::result::ImResult;
use crate::ImAlgorithm;
use std::time::Instant;
use subsim_diffusion::{RrCollection, RrStrategy};
use subsim_graph::Graph;

/// D-SSA parameterized by the RR-generation strategy.
#[derive(Debug, Clone, Copy)]
pub struct Dssa {
    /// How RR sets are generated.
    pub strategy: RrStrategy,
}

impl Dssa {
    /// D-SSA with vanilla RR generation.
    pub fn vanilla() -> Self {
        Dssa {
            strategy: RrStrategy::VanillaIc,
        }
    }

    /// D-SSA accelerated by SUBSIM RR generation.
    pub fn subsim() -> Self {
        Dssa {
            strategy: RrStrategy::SubsimIc,
        }
    }
}

impl ImAlgorithm for Dssa {
    fn name(&self) -> String {
        match self.strategy {
            RrStrategy::VanillaIc => "D-SSA".into(),
            s => format!("D-SSA({s:?})"),
        }
    }

    fn run(&self, g: &Graph, opts: &ImOptions) -> Result<ImResult, ImError> {
        opts.validate(g)?;
        let start = Instant::now();
        let (n, k, eps) = (g.n(), opts.k, opts.epsilon);
        let nf = n as f64;
        let delta = opts.effective_delta(g);
        let frac = one_minus_inv_e();

        let lambda1 = 1.0
            + (1.0 + eps) * (1.0 + eps) * (2.0 + 2.0 * eps / 3.0) * (3.0 / delta).ln()
                / (eps * eps);
        let theta_max = theta_max_opim(n, k, eps, delta);
        let t_max = i_max(theta_max, lambda1.ceil() as u64);

        let mut driver = Driver::new(g, self.strategy, opts.seed);
        let mut r1 = RrCollection::new(n);
        let mut r2 = RrCollection::new(n);

        let mut best_seeds = Vec::new();
        for t in 1..=t_max {
            let theta_t = (lambda1 * 2f64.powi(t as i32 - 1)).ceil() as usize;
            if r1.len() < theta_t {
                let need = theta_t - r1.len();
                driver.generate_into(&mut r1, need);
                driver.generate_into(&mut r2, need);
            }
            let out = greedy_max_coverage(
                &r1,
                &GreedyConfig {
                    bound_terms: 0,
                    ..GreedyConfig::standard(k)
                },
            );
            best_seeds = out.seeds;
            let theta_f = r1.len() as f64;
            let i1 = out.prefix_coverage.last().copied().unwrap_or(0) as f64 * nf / theta_f;
            let i2 = r2.coverage_of(&best_seeds) as f64 * nf / theta_f;
            if i2 <= 0.0 {
                continue;
            }
            // Dynamic error decomposition (SSA paper, Algorithm 3).
            let eps1 = i1 / i2 - 1.0;
            let half = 2f64.powi(t as i32 - 1);
            let eps2 = eps * (nf * (1.0 + eps) / (half * i2)).sqrt();
            let eps3 =
                eps * (nf * (1.0 + eps) * (frac - eps) / ((1.0 + eps / 3.0) * half * i2)).sqrt();
            let eps_t = (eps1 + eps2 + eps1 * eps2) * (frac - eps) + frac * eps3;
            if eps1 >= 0.0 && eps_t <= eps {
                break;
            }
        }

        let mut stats = driver.stats();
        stats.phase1_rr = stats.rr_generated;
        stats.elapsed = start.elapsed();
        Ok(ImResult {
            seeds: best_seeds,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::{barabasi_albert, star_graph};
    use subsim_graph::WeightModel;

    fn opts(k: usize) -> ImOptions {
        ImOptions::new(k).epsilon(0.3).delta(0.05).seed(71)
    }

    #[test]
    fn star_hub_selected() {
        let g = star_graph(100, WeightModel::UniformIc { p: 0.6 });
        let res = Dssa::vanilla().run(&g, &opts(1)).unwrap();
        assert_eq!(res.seeds, vec![0]);
    }

    #[test]
    fn selects_k_distinct_seeds() {
        let g = barabasi_albert(400, 4, WeightModel::Wc, 72);
        let res = Dssa::subsim().run(&g, &opts(10)).unwrap();
        assert_eq!(res.k(), 10);
        let mut s = res.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn quality_comparable_to_opim() {
        use subsim_diffusion::forward::{mc_influence, CascadeModel};
        let g = barabasi_albert(400, 4, WeightModel::Wc, 73);
        let o = opts(8);
        let dssa = Dssa::vanilla().run(&g, &o).unwrap();
        let opim = crate::algorithms::OpimC::vanilla().run(&g, &o).unwrap();
        let a = mc_influence(&g, &dssa.seeds, CascadeModel::Ic, 10_000, 74);
        let b = mc_influence(&g, &opim.seeds, CascadeModel::Ic, 10_000, 74);
        assert!(a > 0.9 * b, "D-SSA {a} vs OPIM {b}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = barabasi_albert(250, 3, WeightModel::Wc, 75);
        let a = Dssa::vanilla().run(&g, &opts(4)).unwrap();
        let b = Dssa::vanilla().run(&g, &opts(4)).unwrap();
        assert_eq!(a.seeds, b.seeds);
    }
}
