//! The original Kempe–Kleinberg–Tardos greedy with Monte-Carlo influence
//! estimation.
//!
//! `Ω(k·m·n·poly(1/ε))` — prohibitive on real networks (the paper's
//! motivation for RIS), but invaluable here: on small graphs it provides a
//! trusted `(1 - 1/e)`-approximate reference that the RR-set algorithms
//! are validated against in the integration tests.

use crate::error::ImError;
use crate::options::ImOptions;
use crate::result::{ImResult, RunStats};
use crate::ImAlgorithm;
use std::time::Instant;
use subsim_diffusion::forward::{mc_influence, CascadeModel};
use subsim_graph::{Graph, NodeId};

/// Monte-Carlo greedy baseline.
#[derive(Debug, Clone)]
pub struct McGreedy {
    /// Cascade model to simulate.
    pub model: CascadeModel,
    /// Cascades simulated per influence estimate. The paper-era default
    /// is 10 000; tests use less.
    pub runs: usize,
}

impl McGreedy {
    /// IC-model greedy with `runs` simulations per estimate.
    pub fn ic(runs: usize) -> Self {
        McGreedy {
            model: CascadeModel::Ic,
            runs,
        }
    }

    /// LT-model greedy with `runs` simulations per estimate.
    pub fn lt(runs: usize) -> Self {
        McGreedy {
            model: CascadeModel::Lt,
            runs,
        }
    }
}

impl ImAlgorithm for McGreedy {
    fn name(&self) -> String {
        format!("mc-greedy({:?})", self.model)
    }

    fn run(&self, g: &Graph, opts: &ImOptions) -> Result<ImResult, ImError> {
        opts.validate(g)?;
        let start = Instant::now();
        let mut seeds: Vec<NodeId> = Vec::with_capacity(opts.k);
        let mut candidate = seeds.clone();
        for round in 0..opts.k {
            let mut best: Option<(f64, NodeId)> = None;
            for v in 0..g.n() as NodeId {
                if seeds.contains(&v) {
                    continue;
                }
                candidate.clone_from(&seeds);
                candidate.push(v);
                // Derived per-candidate seed keeps rounds independent yet
                // deterministic.
                let est = mc_influence(
                    g,
                    &candidate,
                    self.model,
                    self.runs,
                    opts.seed ^ ((round as u64) << 32 | v as u64),
                );
                if best.is_none_or(|(b, _)| est > b) {
                    best = Some((est, v));
                }
            }
            seeds.push(best.expect("k <= n validated").1);
        }
        Ok(ImResult {
            seeds,
            stats: RunStats {
                elapsed: start.elapsed(),
                ..RunStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::star_graph;
    use subsim_graph::{GraphBuilder, WeightModel};

    #[test]
    fn picks_the_hub_of_a_star() {
        let g = star_graph(12, WeightModel::UniformIc { p: 0.8 });
        let res = McGreedy::ic(300).run(&g, &ImOptions::new(1)).unwrap();
        assert_eq!(res.seeds, vec![0]);
    }

    #[test]
    fn picks_both_hubs_of_two_stars() {
        // Hubs 0 and 1 each feed 5 leaves deterministically.
        let mut b = GraphBuilder::new(12);
        for leaf in 2..7 {
            b = b.add_weighted_edge(0, leaf, 1.0);
        }
        for leaf in 7..12 {
            b = b.add_weighted_edge(1, leaf, 1.0);
        }
        let g = b.build().unwrap();
        let res = McGreedy::ic(200).run(&g, &ImOptions::new(2)).unwrap();
        let mut s = res.seeds.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn lt_variant_runs() {
        let g = star_graph(8, WeightModel::Lt);
        let res = McGreedy::lt(200).run(&g, &ImOptions::new(1)).unwrap();
        assert_eq!(res.seeds, vec![0]);
    }

    #[test]
    fn validates_options() {
        let g = star_graph(4, WeightModel::Wc);
        assert!(McGreedy::ic(10).run(&g, &ImOptions::new(0)).is_err());
    }
}
