//! SSA — Stop-and-Stare (Nguyen, Thai, Dinh — SIGMOD 2016).
//!
//! Structure: be *optimistic* about the greedy seed set — generate a
//! modest batch, select, then **stare**: estimate the selected set's
//! influence on an independent batch and stop if the two estimates agree
//! to within the precision budget. Huang et al. (PVLDB 2017) showed the
//! original analysis has gaps; following `DESIGN.md` §5 we implement the
//! stop-and-stare structure with a conservative parameter split
//! (`ε₁ = ε₂ = ε/8`, `ε₃ = ε/2`, which composes to `< ε`) and an absolute
//! sample cap that restores the worst-case guarantee, as in SSA-Fix. SSA
//! serves as a baseline curve in the paper's experiments, and this
//! implementation preserves its qualitative position: adaptive like
//! OPIM-C, but with a much larger minimum batch.

use super::{one_minus_inv_e, Driver};
use crate::bounds::{i_max, opim_lower_bound, opim_upper_bound, theta_max_opim};
use crate::coverage::{greedy_max_coverage, GreedyConfig};
use crate::error::ImError;
use crate::options::ImOptions;
use crate::result::ImResult;
use crate::ImAlgorithm;
use std::time::Instant;
use subsim_diffusion::{NodeMarks, RrCollection, RrStrategy};
use subsim_graph::Graph;

/// SSA parameterized by the RR-generation strategy.
#[derive(Debug, Clone, Copy)]
pub struct Ssa {
    /// How RR sets are generated.
    pub strategy: RrStrategy,
}

impl Ssa {
    /// SSA with vanilla RR generation (the published algorithm).
    pub fn vanilla() -> Self {
        Ssa {
            strategy: RrStrategy::VanillaIc,
        }
    }

    /// SSA accelerated by SUBSIM RR generation.
    pub fn subsim() -> Self {
        Ssa {
            strategy: RrStrategy::SubsimIc,
        }
    }
}

impl ImAlgorithm for Ssa {
    fn name(&self) -> String {
        match self.strategy {
            RrStrategy::VanillaIc => "SSA".into(),
            s => format!("SSA({s:?})"),
        }
    }

    fn run(&self, g: &Graph, opts: &ImOptions) -> Result<ImResult, ImError> {
        opts.validate(g)?;
        let start = Instant::now();
        let (n, k, eps) = (g.n(), opts.k, opts.epsilon);
        let delta = opts.effective_delta(g);
        let target = one_minus_inv_e() - eps;

        // Precision split: ε₃ governs the minimum batch Λ (coverage needed
        // for a relative-error estimate), ε₁/ε₂ the two-estimate agreement.
        let eps3 = eps / 2.0;
        let eps12 = eps / 8.0;
        // Dagum et al. Monte-Carlo floor: Λ coverage gives an ε₃-relative
        // estimate with probability 1 - δ/3.
        let lambda = ((2.0 + 2.0 * eps3 / 3.0) * (3.0 / delta).ln() / (eps3 * eps3)).ceil();

        let theta_max = theta_max_opim(n, k, eps, delta);
        let t_max = i_max(theta_max, lambda.max(1.0) as u64);
        let delta_iter = delta / (3.0 * t_max as f64);

        let mut driver = Driver::new(g, self.strategy, opts.seed);
        let mut r1 = RrCollection::new(n);
        let mut r2 = RrCollection::new(n);
        driver.generate_into(&mut r1, lambda as usize);
        let mut marks = NodeMarks::new();

        for t in 1..=t_max {
            let out = greedy_max_coverage(&r1, &GreedyConfig::standard(k));
            let cov1 = out.coverage();
            // "Stare" only once the greedy coverage clears the Λ floor —
            // otherwise the influence estimate is too noisy to validate.
            if (cov1 as f64) >= lambda || t == t_max {
                if r2.len() < r1.len() {
                    let need = r1.len() - r2.len();
                    driver.generate_into(&mut r2, need);
                }
                let ub = opim_upper_bound(out.coverage_upper, r1.len() as u64, n, delta_iter);
                let cov2 = r2.coverage_of_with(&out.seeds, &mut marks);
                let lb = opim_lower_bound(cov2 as f64, r2.len() as u64, n, delta_iter);
                let est1 = n as f64 * cov1 as f64 / r1.len() as f64;
                let est2 = n as f64 * cov2 as f64 / r2.len() as f64;
                // Stare: the independent estimate must come within the
                // ε₁/ε₂ budget of the greedy-side estimate.
                let agree = est2 >= est1 / (1.0 + 2.0 * eps12);
                if (agree && lb / ub > target) || t == t_max {
                    let mut stats = driver.stats();
                    stats.phase1_rr = stats.rr_generated;
                    stats.lower_bound = lb;
                    stats.upper_bound = ub;
                    stats.elapsed = start.elapsed();
                    return Ok(ImResult {
                        seeds: out.seeds,
                        stats,
                    });
                }
            }
            let grow = r1.len();
            driver.generate_into(&mut r1, grow);
        }
        unreachable!("loop returns on the final iteration");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::{barabasi_albert, star_graph};
    use subsim_graph::WeightModel;

    fn opts(k: usize) -> ImOptions {
        ImOptions::new(k).epsilon(0.3).delta(0.05).seed(21)
    }

    #[test]
    fn star_hub_selected() {
        let g = star_graph(100, WeightModel::UniformIc { p: 0.6 });
        let res = Ssa::vanilla().run(&g, &opts(1)).unwrap();
        assert_eq!(res.seeds, vec![0]);
    }

    #[test]
    fn certifies_bounds_at_termination() {
        let g = barabasi_albert(400, 4, WeightModel::Wc, 22);
        let res = Ssa::vanilla().run(&g, &opts(5)).unwrap();
        assert!(res.stats.lower_bound > 0.0);
        assert!(res.stats.upper_bound >= res.stats.lower_bound);
    }

    #[test]
    fn sits_between_imm_and_opim_in_samples() {
        // The qualitative ordering Figure 1 shows: IMM >= SSA >= OPIM-C in
        // RR sets generated (allowing slack for adaptivity).
        let g = barabasi_albert(500, 4, WeightModel::Wc, 23);
        let o = ImOptions::new(10).epsilon(0.3).delta(0.05).seed(24);
        let imm = crate::algorithms::Imm::vanilla().run(&g, &o).unwrap();
        let ssa = Ssa::vanilla().run(&g, &o).unwrap();
        let opim = crate::algorithms::OpimC::vanilla().run(&g, &o).unwrap();
        assert!(
            imm.stats.rr_generated >= ssa.stats.rr_generated,
            "IMM {} < SSA {}",
            imm.stats.rr_generated,
            ssa.stats.rr_generated
        );
        assert!(
            ssa.stats.rr_generated >= opim.stats.rr_generated,
            "SSA {} < OPIM {}",
            ssa.stats.rr_generated,
            opim.stats.rr_generated
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = barabasi_albert(300, 3, WeightModel::Wc, 25);
        let a = Ssa::vanilla().run(&g, &opts(3)).unwrap();
        let b = Ssa::vanilla().run(&g, &opts(3)).unwrap();
        assert_eq!(a.seeds, b.seeds);
    }
}
