//! IMM (Tang, Shi, Xiao — SIGMOD 2015), martingale version.
//!
//! Two phases. *Sampling*: exponentially probe guesses `x = n/2^i` for
//! `OPT_k`; once the greedy coverage certifies `OPT_k >= x`, a lower bound
//! `LB` is fixed and the final sample size `θ = λ*/LB` follows.
//! *Selection*: top up the (reused, martingale-coupled) collection to `θ`
//! and run greedy. Guarantees `(1 - 1/e - ε)` with probability
//! `1 - n^-ℓ`; we derive `ℓ = ln(1/δ)/ln n` from the caller's `δ`.

use super::Driver;
use crate::bounds::ln_binomial;
use crate::coverage::{greedy_max_coverage, GreedyConfig};
use crate::error::ImError;
use crate::options::ImOptions;
use crate::result::ImResult;
use crate::ImAlgorithm;
use std::time::Instant;
use subsim_diffusion::{RrCollection, RrStrategy};
use subsim_graph::Graph;

/// IMM parameterized by the RR-generation strategy.
#[derive(Debug, Clone, Copy)]
pub struct Imm {
    /// How RR sets are generated.
    pub strategy: RrStrategy,
}

impl Imm {
    /// IMM with vanilla RR generation (the published algorithm).
    pub fn vanilla() -> Self {
        Imm {
            strategy: RrStrategy::VanillaIc,
        }
    }

    /// IMM accelerated by SUBSIM RR generation (paper Section 3.2: the
    /// new generator plugs into any RIS algorithm).
    pub fn subsim() -> Self {
        Imm {
            strategy: RrStrategy::SubsimIc,
        }
    }

    /// IMM with an arbitrary strategy.
    pub fn with_strategy(strategy: RrStrategy) -> Self {
        Imm { strategy }
    }
}

impl ImAlgorithm for Imm {
    fn name(&self) -> String {
        match self.strategy {
            RrStrategy::VanillaIc => "IMM".into(),
            s => format!("IMM({s:?})"),
        }
    }

    fn run(&self, g: &Graph, opts: &ImOptions) -> Result<ImResult, ImError> {
        opts.validate(g)?;
        let start = Instant::now();
        let (n, k, eps) = (g.n(), opts.k, opts.epsilon);
        let nf = n as f64;
        let delta = opts.effective_delta(g);
        // Failure probability n^-ℓ = δ, inflated so that both phases
        // jointly hold (IMM sets ℓ <- ℓ·(1 + ln 2 / ln n)).
        let ell = ((1.0 / delta).ln() / nf.ln()) * (1.0 + 2f64.ln() / nf.ln());
        let ln_cnk = ln_binomial(n as u64, k as u64);
        let frac = 1.0 - (-1.0f64).exp();

        // --- Sampling phase ---
        let eps_p = eps * 2f64.sqrt();
        let lambda_p =
            (2.0 + 2.0 * eps_p / 3.0) * (ln_cnk + ell * nf.ln() + nf.log2().max(1.0).ln()) * nf
                / (eps_p * eps_p);
        let mut driver = Driver::new(g, self.strategy, opts.seed);
        let mut rr = RrCollection::new(n);
        let mut lb = 1.0;
        let levels = (nf.log2().ceil() as i32 - 1).max(1);
        for i in 1..=levels {
            let x = nf / 2f64.powi(i);
            let theta_i = (lambda_p / x).ceil() as usize;
            if rr.len() < theta_i {
                let need = theta_i - rr.len();
                driver.generate_into(&mut rr, need);
            }
            let out = greedy_max_coverage(
                &rr,
                &GreedyConfig {
                    bound_terms: 0,
                    ..GreedyConfig::standard(k)
                },
            );
            let est = nf * out.coverage() as f64 / rr.len() as f64;
            if est >= (1.0 + eps_p) * x {
                lb = est / (1.0 + eps_p);
                break;
            }
        }

        // --- Node selection phase ---
        let alpha = (ell * nf.ln() + 2f64.ln()).sqrt();
        let beta = (frac * (ln_cnk + ell * nf.ln() + 2f64.ln())).sqrt();
        let lambda_star = 2.0 * nf * (frac * alpha + beta).powi(2) / (eps * eps);
        let theta = (lambda_star / lb).ceil() as usize;
        if rr.len() < theta {
            let need = theta - rr.len();
            driver.generate_into(&mut rr, need);
        }
        let out = greedy_max_coverage(
            &rr,
            &GreedyConfig {
                bound_terms: 0,
                ..GreedyConfig::standard(k)
            },
        );

        let mut stats = driver.stats();
        stats.phase1_rr = stats.rr_generated;
        stats.elapsed = start.elapsed();
        Ok(ImResult {
            seeds: out.seeds,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::{barabasi_albert, star_graph};
    use subsim_graph::WeightModel;

    /// Loose ε/δ keep the sample sizes test-friendly.
    fn opts(k: usize) -> ImOptions {
        ImOptions::new(k).epsilon(0.4).delta(0.1).seed(11)
    }

    #[test]
    fn star_hub_selected() {
        let g = star_graph(100, WeightModel::UniformIc { p: 0.6 });
        let res = Imm::vanilla().run(&g, &opts(1)).unwrap();
        assert_eq!(res.seeds, vec![0]);
        assert!(res.stats.rr_generated > 0);
    }

    #[test]
    fn subsim_variant_matches_quality() {
        let g = barabasi_albert(400, 4, WeightModel::Wc, 12);
        let a = Imm::vanilla().run(&g, &opts(5)).unwrap();
        let b = Imm::subsim().run(&g, &opts(5)).unwrap();
        assert_eq!(a.k(), 5);
        assert_eq!(b.k(), 5);
        // Seed overlap is expected but not guaranteed; both must pick
        // high-degree-ish nodes. Check coverage proxy: the top seed of
        // each should appear in the other's seed list or share degree
        // scale.
        let deg = |v: u32| g.out_degree(v);
        assert!(deg(a.seeds[0]) >= 4);
        assert!(deg(b.seeds[0]) >= 4);
    }

    #[test]
    fn imm_generates_more_rr_sets_than_needed_by_opim() {
        // The pessimistic union bound makes IMM sample far more than
        // OPIM-C on the same instance — the gap the paper's Figure 1
        // shows.
        let g = barabasi_albert(400, 4, WeightModel::Wc, 13);
        let o = ImOptions::new(10).epsilon(0.3).delta(0.05).seed(14);
        let imm = Imm::vanilla().run(&g, &o).unwrap();
        let opim = crate::algorithms::OpimC::vanilla().run(&g, &o).unwrap();
        assert!(
            imm.stats.rr_generated > opim.stats.rr_generated,
            "IMM {} vs OPIM-C {}",
            imm.stats.rr_generated,
            opim.stats.rr_generated
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = barabasi_albert(300, 3, WeightModel::Wc, 15);
        let a = Imm::vanilla().run(&g, &opts(3)).unwrap();
        let b = Imm::vanilla().run(&g, &opts(3)).unwrap();
        assert_eq!(a.seeds, b.seeds);
    }

    #[test]
    fn validates_options() {
        let g = star_graph(5, WeightModel::Wc);
        assert!(Imm::vanilla().run(&g, &ImOptions::new(9)).is_err());
    }
}
