//! Influence-maximization algorithms from *"Influence Maximization
//! Revisited: Efficient Reverse Reachable Set Generation with Bound
//! Tightened"* (Guo, Wang, Wei, Chen — SIGMOD 2020).
//!
//! Everything here returns a `(1 - 1/e - ε)`-approximate seed set with
//! probability at least `1 - δ` (except the Monte-Carlo greedy baseline,
//! whose guarantee is `1 - 1/e` up to estimation noise):
//!
//! | algorithm | struct | paper role |
//! |---|---|---|
//! | Monte-Carlo greedy | [`algorithms::McGreedy`] | Kempe et al. baseline, ground truth on small graphs |
//! | CELF | [`algorithms::Celf`] | lazy-forward accelerated MC greedy (Leskovec et al. 2007) |
//! | IMM | [`algorithms::Imm`] | Tang et al. 2015 baseline |
//! | TIM⁺ | [`algorithms::TimPlus`] | Tang et al. 2014 baseline |
//! | SSA / D-SSA | [`algorithms::Ssa`], [`algorithms::Dssa`] | Nguyen et al. 2016 baselines (stop-and-stare) |
//! | OPIM-C | [`algorithms::OpimC`] | Tang et al. 2018 baseline and SUBSIM's host |
//! | SUBSIM | [`algorithms::OpimC::subsim`] | OPIM-C + geometric-skip RR generation (Section 3) |
//! | HIST | [`algorithms::Hist`] | sentinel-set two-phase algorithm (Section 4) |
//!
//! All algorithms implement [`ImAlgorithm`] and accept any
//! [`subsim_diffusion::RrStrategy`], so IC (vanilla/SUBSIM/bucketed) and
//! LT variants come from one code path — exactly the modularity the paper
//! exploits ("we only modify the RR set generation algorithm").

#![warn(missing_docs)]

pub mod algorithms;
pub mod bounds;
pub mod certificate;
pub mod coverage;
pub mod error;
pub mod options;
pub mod pool;
pub mod result;
pub mod sentinel;

pub use algorithms::{Celf, Dssa, Hist, Imm, McGreedy, OpimC, Ssa, TimPlus};
pub use certificate::{certify_seed_set, certify_seed_set_auto, InfluenceCertificate};
pub use error::ImError;
pub use options::ImOptions;
pub use pool::{
    evaluate_pool, evaluate_pool_par, evaluate_pool_sharded, evaluate_pool_sharded_indexed,
    evaluate_pool_timed, evaluate_pool_timed_par, PoolEvaluation,
};
pub use result::{ImResult, RunStats};
pub use sentinel::{evaluate_pool_sentinel, evaluate_pool_sentinel_sharded, SentinelSet};

use subsim_graph::Graph;

/// One influence-maximization algorithm, runnable on any graph.
///
/// ```
/// use subsim_core::{ImAlgorithm, ImOptions, OpimC};
/// use subsim_graph::{generators, WeightModel};
///
/// let g = generators::star_graph(50, WeightModel::UniformIc { p: 0.5 });
/// let result = OpimC::subsim().run(&g, &ImOptions::new(1)).unwrap();
/// assert_eq!(result.seeds, vec![0]); // the hub dominates
/// ```
pub trait ImAlgorithm {
    /// Human-readable name used by the benchmark harness.
    fn name(&self) -> String;

    /// Selects a size-`opts.k` seed set.
    fn run(&self, g: &Graph, opts: &ImOptions) -> Result<ImResult, ImError>;
}

/// Commonly used items.
pub mod prelude {
    pub use crate::algorithms::{Celf, Dssa, Hist, Imm, McGreedy, OpimC, Ssa, TimPlus};
    pub use crate::certificate::{certify_seed_set, InfluenceCertificate};
    pub use crate::error::ImError;
    pub use crate::options::ImOptions;
    pub use crate::result::{ImResult, RunStats};
    pub use crate::ImAlgorithm;
}
