//! Structural graph fingerprints for snapshot validation.
//!
//! A snapshot of RR sets is only meaningful against the exact graph it was
//! sampled from: same node count, same edges, same activation
//! probabilities (the weight model is captured *through* the realized
//! per-edge probabilities, so two models that assign identical weights
//! hash identically — which is exactly when their RR distributions
//! coincide). The fingerprint is a 64-bit FNV-1a over `(n, m)` and every
//! `(u, v, p)` edge triple in CSR order.

use subsim_graph::Graph;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_u64(mut h: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A 64-bit structural fingerprint of `g`.
///
/// Deterministic across runs and platforms (CSR edge order is fixed by
/// construction; probabilities hash by IEEE-754 bit pattern).
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv_u64(h, g.n() as u64);
    h = fnv_u64(h, g.m() as u64);
    for (u, v, p) in g.edges() {
        h = fnv_u64(h, u as u64);
        h = fnv_u64(h, v as u64);
        h = fnv_u64(h, p.to_bits());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::{barabasi_albert, star_graph};
    use subsim_graph::WeightModel;

    #[test]
    fn stable_across_calls() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 11);
        assert_eq!(graph_fingerprint(&g), graph_fingerprint(&g));
        let same = barabasi_albert(200, 3, WeightModel::Wc, 11);
        assert_eq!(graph_fingerprint(&g), graph_fingerprint(&same));
    }

    #[test]
    fn sensitive_to_structure_and_weights() {
        let a = barabasi_albert(200, 3, WeightModel::Wc, 11);
        let other_seed = barabasi_albert(200, 3, WeightModel::Wc, 12);
        let other_model = barabasi_albert(200, 3, WeightModel::UniformIc { p: 0.1 }, 11);
        let other_size = barabasi_albert(201, 3, WeightModel::Wc, 11);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&other_seed));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&other_model));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&other_size));
    }

    #[test]
    fn distinguishes_small_fixtures() {
        let s3 = star_graph(3, WeightModel::Wc);
        let s4 = star_graph(4, WeightModel::Wc);
        assert_ne!(graph_fingerprint(&s3), graph_fingerprint(&s4));
    }
}
