//! The amortized RR-sketch index.

use crate::error::IndexError;
use crate::stats::{IndexCounters, QueryStats};
use std::time::Instant;
use subsim_core::bounds::{i_max, theta_max_opim, theta_zero};
use subsim_core::pool::evaluate_pool_par;
use subsim_core::sentinel::{evaluate_pool_sentinel, SentinelSet};
use subsim_core::ImOptions;
use subsim_diffusion::pool::{ChunkHook, WorkerPool};
use subsim_diffusion::{RrCollection, RrSampler, RrStrategy};
use subsim_graph::{Graph, NodeId};
use subsim_sketch::{evaluate_pool_sketched, SketchedPool, MAX_PRECISION, MIN_PRECISION};

/// Stream separator between the two pool halves: `R₂`'s chunk seeds are
/// derived from `seed ^ R2_STREAM` so the halves are independent samples.
///
/// Public so out-of-crate pool owners (the delta-repair engine) can
/// regenerate `R₂` chunks on the exact stream this index uses.
pub const R2_STREAM: u64 = 0xd2b7_4407_b1ce_6e93;

/// Chunks per half generated *plain* before the sentinel tier activates
/// (when [`IndexConfig::sentinels`] `> 0`).
///
/// The warmup prefix serves two purposes: it is the i.i.d. sample the
/// sentinel set is selected over (a hitting set needs untruncated sets to
/// hit), and it anchors determinism — a sentinel pool's content is a pure
/// function of `(config, size)` because the boundary is a constant, not a
/// query-order artifact.
pub const SENTINEL_WARMUP_CHUNKS: u64 = 4;

/// Sentinel tier state of one pool: the set `Z`, the chunk boundary where
/// truncation starts, and per-chunk hit counters for both halves.
///
/// Chunks `0..from_chunk` are plain (Algorithm 5 never ran); chunks at or
/// above `from_chunk` were generated with every traversal stopping at the
/// first `Z` member it visits. The hit vectors are indexed by chunk id
/// (length = chunk cursor, zero below `from_chunk`), so chunk-granular
/// delta repair can keep them consistent when it regenerates a chunk.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SentinelState {
    /// The sentinel set, in greedy pick order (order matters: queries
    /// with `k < |Z|` answer with the prefix `Z[..k]`).
    pub set: SentinelSet,
    /// First chunk generated under truncation.
    pub from_chunk: u64,
    /// Sentinel hits per `R₁` chunk, indexed by chunk id.
    pub chunk_hits_r1: Vec<u64>,
    /// Sentinel hits per `R₂` chunk, indexed by chunk id.
    pub chunk_hits_r2: Vec<u64>,
}

impl SentinelState {
    /// Total sentinel hits across both halves.
    pub fn total_hits(&self) -> u64 {
        self.chunk_hits_r1.iter().sum::<u64>() + self.chunk_hits_r2.iter().sum::<u64>()
    }

    /// Chunks per half generated under truncation so far.
    pub fn truncated_chunks(&self) -> u64 {
        (self.chunk_hits_r1.len() as u64).saturating_sub(self.from_chunk)
    }

    /// Fraction of truncated traversals that stopped at a sentinel
    /// (`0.0` before any truncated chunk exists). The testkit's oracle
    /// tier checks this against the exact stop rate `σ(Z)/n`.
    pub fn hit_rate(&self, chunk_size: usize) -> f64 {
        let sets = 2 * self.truncated_chunks() * chunk_size as u64;
        if sets == 0 {
            0.0
        } else {
            self.total_hits() as f64 / sets as f64
        }
    }

    /// Structural validity against a pool's `(n, chunks)`: boundary inside
    /// the cursor, one hit counter per chunk in each half, all sentinel
    /// nodes in range. Returns a human-readable reason on failure.
    pub fn validate(&self, n: usize, chunks: u64) -> Result<(), String> {
        if self.from_chunk > chunks {
            return Err(format!(
                "sentinel boundary {} is beyond the chunk cursor {chunks}",
                self.from_chunk
            ));
        }
        for (half, hits) in [("r1", &self.chunk_hits_r1), ("r2", &self.chunk_hits_r2)] {
            if hits.len() as u64 != chunks {
                return Err(format!(
                    "sentinel {half} hit counters cover {} chunks, cursor is {chunks}",
                    hits.len()
                ));
            }
        }
        if let Some(&v) = self.set.nodes().iter().find(|&&v| v as usize >= n) {
            return Err(format!("sentinel node {v} out of range for {n} nodes"));
        }
        Ok(())
    }
}

/// Construction-time parameters of an [`RrIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexConfig {
    /// RR-generation strategy the pool is sampled with.
    pub strategy: RrStrategy,
    /// Root of the deterministic chunk-seed stream.
    pub seed: u64,
    /// Worker threads for pool top-ups (pool *content* is independent of
    /// this — only wall-clock changes).
    pub threads: usize,
    /// Sets per generation chunk. Pool sizes are always a whole number of
    /// chunks, which is what makes the RNG cursor a single integer and
    /// top-ups order-independent.
    pub chunk_size: usize,
    /// Cap on arena node entries across both pool halves; growth past it
    /// fails with [`IndexError::MemoryBudget`] instead of eating all RAM.
    pub max_nodes: Option<usize>,
    /// Sentinel-set size `b` for the sentinel pool tier; `0` (the
    /// default) keeps the pool fully plain. When positive, the pool grows
    /// [`SENTINEL_WARMUP_CHUNKS`] plain chunks, selects `b` sentinels
    /// over them, and generates every later chunk under Algorithm 5
    /// truncation — warm queries re-certify the OPIM union bound through
    /// `subsim_core::sentinel`, keeping the full `(k, ε, δ)` guarantee.
    pub sentinels: usize,
    /// Sketched validation-pool tier: `0` (the default) keeps `R₂` an
    /// exact arena; a value in
    /// [`MIN_PRECISION`]`..=`[`MAX_PRECISION`] compresses `R₂`
    /// into per-node count-distinct sketches at that register precision
    /// (`m = 2^p` registers). Selection stays exact, the Eq. 1 bound is
    /// evaluated through `subsim_sketch::evaluate_pool_sketched` with
    /// conservative slack, and queries that fail *on slack* promote the
    /// precision (the error-adaptive ladder) by regenerating the
    /// deterministic `R₂` stream. Mutually exclusive with `sentinels`
    /// (truncated sets would poison the cardinality estimates).
    ///
    /// Promotion updates this field: it always names the precision of
    /// the live sketch.
    pub sketch: usize,
}

impl IndexConfig {
    /// Defaults: seed 0, single-threaded top-ups, 256-set chunks, no
    /// memory budget.
    pub fn new(strategy: RrStrategy) -> Self {
        IndexConfig {
            strategy,
            seed: 0,
            threads: 1,
            chunk_size: 256,
            max_nodes: None,
            sentinels: 0,
            sketch: 0,
        }
    }

    /// Sets the seed-stream root.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the top-up worker count.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        self.threads = threads;
        self
    }

    /// Sets the chunk size.
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunks must hold at least one set");
        self.chunk_size = chunk_size;
        self
    }

    /// Sets the node budget.
    pub fn max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = Some(max_nodes);
        self
    }

    /// Enables the sentinel tier with a sentinel set of size `b`
    /// (`0` disables it).
    pub fn sentinels(mut self, b: usize) -> Self {
        self.sentinels = b;
        self
    }

    /// Enables the sketched validation-pool tier at register precision
    /// `p` (`0` disables it).
    pub fn sketch(mut self, p: usize) -> Self {
        assert!(
            p == 0 || (MIN_PRECISION as usize..=MAX_PRECISION as usize).contains(&p),
            "sketch precision {p} outside {MIN_PRECISION}..={MAX_PRECISION}"
        );
        self.sketch = p;
        self
    }
}

/// Seeds plus the per-query record.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Selected seeds, in greedy pick order.
    pub seeds: Vec<NodeId>,
    /// What the query cost and certified.
    pub stats: QueryStats,
}

/// A long-lived, incrementally grown pool of RR sets over one fixed
/// `(graph, weights, strategy)` that answers repeated IM queries.
///
/// The pool holds two independent halves, exactly like OPIM-C's `R₁`/`R₂`:
/// greedy selection and the Eq. 2 upper bound read `R₁`; the Eq. 1 lower
/// bound reads `R₂`, which selection never touches. A query certifies
/// against the *current* pool first and only generates more sets
/// (doubling, up to Eq. 4's `θ_max`) when the certificate fails — so query
/// 1 pays roughly an OPIM-C run, and subsequent queries at comparable
/// `(k, ε)` reuse the warmed pool for near-free.
///
/// Growth is chunked and the chunk stream is deterministic (see
/// [`subsim_diffusion::parallel::par_generate_chunks`]): the pool content
/// is a pure function of `(seed, strategy, chunk_size, chunk count)`, so
/// query order, thread count, and snapshot round-trips never change what
/// any later query sees at a given pool size.
///
/// ```
/// use subsim_index::{IndexConfig, RrIndex};
/// use subsim_diffusion::RrStrategy;
/// use subsim_graph::{generators, WeightModel};
///
/// let g = generators::star_graph(50, WeightModel::UniformIc { p: 0.5 });
/// let mut index = RrIndex::new(&g, IndexConfig::new(RrStrategy::SubsimIc).seed(7));
/// let first = index.query(1, 0.1, 0.01).unwrap();
/// assert_eq!(first.seeds, vec![0]); // the hub dominates
/// let second = index.query(1, 0.1, 0.01).unwrap();
/// assert_eq!(second.stats.fresh_sets, 0); // fully served from the pool
/// ```
pub struct RrIndex<'g> {
    pub(crate) g: &'g Graph,
    pub(crate) config: IndexConfig,
    pub(crate) sampler: RrSampler<'g>,
    /// Selection half (greedy + Eq. 2).
    pub(crate) r1: RrCollection,
    /// Validation half (Eq. 1).
    pub(crate) r2: RrCollection,
    /// RNG cursor: complete chunks generated per half.
    pub(crate) chunks: u64,
    /// Sentinel tier state; `None` while the pool is fully plain (tier
    /// disabled, or still inside the warmup prefix).
    pub(crate) sentinel: Option<SentinelState>,
    /// Sketched validation pool; `Some` exactly when
    /// [`IndexConfig::sketch`] `> 0`, in which case `r2` stays empty and
    /// every generated `R₂` chunk is absorbed here instead.
    pub(crate) sketch: Option<SketchedPool>,
    pub(crate) counters: IndexCounters,
    /// Persistent generation workers, spawned on the first top-up and
    /// reused across growth rounds (rebuilt if `threads` changes).
    pub(crate) workers: Option<WorkerPool>,
    /// Fault-injection hook forwarded to the workers on every top-up.
    pub(crate) chunk_hook: Option<ChunkHook>,
}

impl std::fmt::Debug for RrIndex<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RrIndex")
            .field("config", &self.config)
            .field("chunks", &self.chunks)
            .field("r1_sets", &self.r1.len())
            .field("r2_sets", &self.r2.len())
            .finish_non_exhaustive()
    }
}

impl<'g> RrIndex<'g> {
    /// An empty index over `g`; the first query (or [`RrIndex::warm`])
    /// populates the pool.
    pub fn new(g: &'g Graph, config: IndexConfig) -> Self {
        assert!(config.threads > 0, "need at least one worker");
        assert!(config.chunk_size > 0, "chunks must hold at least one set");
        assert!(
            config.sketch == 0 || config.sentinels == 0,
            "sketch and sentinel tiers are mutually exclusive: truncated \
             sets would poison the count-distinct estimates"
        );
        RrIndex {
            g,
            config,
            sampler: RrSampler::new(g, config.strategy),
            r1: RrCollection::new(g.n()),
            r2: RrCollection::new(g.n()),
            chunks: 0,
            sentinel: None,
            sketch: (config.sketch > 0)
                .then(|| SketchedPool::new(g.n(), config.chunk_size, config.sketch as u8)),
            counters: IndexCounters::default(),
            workers: None,
            chunk_hook: None,
        }
    }

    /// Rebuilds an index from snapshot parts (pool halves must already be
    /// validated against `g` and `chunks`).
    pub(crate) fn from_parts(
        g: &'g Graph,
        config: IndexConfig,
        r1: RrCollection,
        r2: RrCollection,
        chunks: u64,
    ) -> Self {
        RrIndex {
            g,
            config,
            sampler: RrSampler::new(g, config.strategy),
            r1,
            r2,
            chunks,
            sentinel: None,
            sketch: None,
            counters: IndexCounters::default(),
            workers: None,
            chunk_hook: None,
        }
    }

    /// Installs (or clears) a fault-injection hook on the generation
    /// workers — see [`WorkerPool::set_chunk_hook`]. Test instrumentation;
    /// production code leaves it unset.
    #[doc(hidden)]
    pub fn set_chunk_hook(&mut self, hook: Option<ChunkHook>) {
        self.chunk_hook = hook;
        if let Some(workers) = &self.workers {
            workers.set_chunk_hook(self.chunk_hook.clone());
        }
    }

    /// Decomposes the index into `(graph, config, r1, r2, chunks,
    /// sentinel, sketch)`, dropping the sampler and lifetime counters —
    /// the conversion point into [`crate::ConcurrentRrIndex`].
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (
        &'g Graph,
        IndexConfig,
        RrCollection,
        RrCollection,
        u64,
        Option<SentinelState>,
        Option<SketchedPool>,
    ) {
        (
            self.g,
            self.config,
            self.r1,
            self.r2,
            self.chunks,
            self.sentinel,
            self.sketch,
        )
    }

    /// Rebuilds an index from externally held pool halves, validating the
    /// chunk accounting: both halves must be over `g` and hold exactly
    /// `chunks * config.chunk_size` sets.
    ///
    /// This is the seam for pool owners outside the borrow (the
    /// delta-repair engine hands its repaired halves to a transient
    /// `RrIndex` for querying and snapshotting).
    pub fn from_pool_parts(
        g: &'g Graph,
        config: IndexConfig,
        r1: RrCollection,
        r2: RrCollection,
        chunks: u64,
    ) -> Result<Self, IndexError> {
        let expect = chunks as usize * config.chunk_size;
        if r1.graph_n() != g.n() || r2.graph_n() != g.n() {
            return Err(IndexError::SnapshotMismatch {
                reason: format!(
                    "pool halves are over {}/{} nodes, graph has {}",
                    r1.graph_n(),
                    r2.graph_n(),
                    g.n()
                ),
            });
        }
        if r1.len() != expect || r2.len() != expect {
            return Err(IndexError::SnapshotMismatch {
                reason: format!(
                    "pool halves hold {}/{} sets, chunk cursor {} × chunk size {} requires {}",
                    r1.len(),
                    r2.len(),
                    chunks,
                    config.chunk_size,
                    expect
                ),
            });
        }
        Ok(Self::from_parts(g, config, r1, r2, chunks))
    }

    /// Decomposes the index into `(config, r1, r2, chunks)` — the inverse
    /// of [`RrIndex::from_pool_parts`] for callers that own the graph
    /// separately. A sketched index's `r2` is empty; take the sketch with
    /// [`RrIndex::take_sketch_state`] first.
    pub fn into_pool_parts(self) -> (IndexConfig, RrCollection, RrCollection, u64) {
        (self.config, self.r1, self.r2, self.chunks)
    }

    /// Rebuilds a *sketched* index from externally held parts: the exact
    /// selection half plus the sketched validation pool. Validates the
    /// chunk accounting on both (the sketch must cover exactly chunks
    /// `0..chunks` at the pool's chunk size).
    pub fn from_sketched_parts(
        g: &'g Graph,
        config: IndexConfig,
        r1: RrCollection,
        sketch: SketchedPool,
        chunks: u64,
    ) -> Result<Self, IndexError> {
        let expect = chunks as usize * config.chunk_size;
        if r1.graph_n() != g.n() {
            return Err(IndexError::SnapshotMismatch {
                reason: format!(
                    "selection pool is over {} nodes, graph has {}",
                    r1.graph_n(),
                    g.n()
                ),
            });
        }
        if r1.len() != expect {
            return Err(IndexError::SnapshotMismatch {
                reason: format!(
                    "selection pool holds {} sets, chunk cursor {} × chunk size {} requires {}",
                    r1.len(),
                    chunks,
                    config.chunk_size,
                    expect
                ),
            });
        }
        let mut config = config;
        config.sketch = sketch.precision() as usize;
        let mut index = Self::from_parts(g, config, r1, RrCollection::new(g.n()), chunks);
        index.set_sketch_state(Some(sketch))?;
        Ok(index)
    }

    /// The sentinel tier state, if active.
    pub fn sentinel_state(&self) -> Option<&SentinelState> {
        self.sentinel.as_ref()
    }

    /// Installs (or clears) externally held sentinel state — the seam for
    /// snapshot loading and the delta-repair engine. The state must be
    /// structurally consistent with the current pool
    /// ([`SentinelState::validate`]).
    pub fn set_sentinel_state(&mut self, state: Option<SentinelState>) -> Result<(), IndexError> {
        if let Some(st) = &state {
            st.validate(self.g.n(), self.chunks)
                .map_err(|reason| IndexError::SnapshotMismatch { reason })?;
        }
        self.sentinel = state;
        Ok(())
    }

    /// Removes and returns the sentinel tier state (the pool keeps its
    /// truncated chunks; callers doing this must regenerate them or
    /// reinstall a state before relying on plain-pool semantics).
    pub fn take_sentinel_state(&mut self) -> Option<SentinelState> {
        self.sentinel.take()
    }

    /// The sketched validation pool, if the sketch tier is active.
    pub fn sketch_state(&self) -> Option<&SketchedPool> {
        self.sketch.as_ref()
    }

    /// Installs (or clears) an externally held sketched validation pool —
    /// the seam for snapshot loading and the delta-repair engine. The
    /// pool must be structurally consistent with the index: same graph
    /// size and chunk size, covering exactly chunks `0..chunks`.
    pub fn set_sketch_state(&mut self, state: Option<SketchedPool>) -> Result<(), IndexError> {
        if let Some(sk) = &state {
            let mismatch = |reason: String| IndexError::SnapshotMismatch { reason };
            if sk.graph_n() != self.g.n() {
                return Err(mismatch(format!(
                    "sketch is over {} nodes, graph has {}",
                    sk.graph_n(),
                    self.g.n()
                )));
            }
            if sk.chunk_size() != self.config.chunk_size {
                return Err(mismatch(format!(
                    "sketch chunk size {} != index chunk size {}",
                    sk.chunk_size(),
                    self.config.chunk_size
                )));
            }
            if sk.num_chunks() as u64 != self.chunks
                || sk
                    .chunk_ids()
                    .last()
                    .is_some_and(|&last| last + 1 != self.chunks)
            {
                return Err(mismatch(format!(
                    "sketch covers {} chunks (last id {:?}), chunk cursor is {}",
                    sk.num_chunks(),
                    sk.chunk_ids().last(),
                    self.chunks
                )));
            }
            self.config.sketch = sk.precision() as usize;
        }
        self.sketch = state;
        Ok(())
    }

    /// Removes and returns the sketched validation pool (callers must
    /// reinstall one — or refill `r2` — before querying again).
    pub fn take_sketch_state(&mut self) -> Option<SketchedPool> {
        self.sketch.take()
    }

    /// The indexed graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The construction-time configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Refuses an index whose pool was generated under a different RR
    /// strategy than `expected`. The guard every snapshot-loading path
    /// calls before adopting a loaded pool: an LT snapshot served by an
    /// IC-configured server (or vice versa) would answer queries under
    /// the wrong diffusion model without any further error, so the
    /// disagreement must surface as a typed refusal at load time.
    pub fn ensure_strategy(&self, expected: RrStrategy) -> Result<(), IndexError> {
        if self.config.strategy == expected {
            return Ok(());
        }
        Err(IndexError::SnapshotMismatch {
            reason: format!(
                "snapshot pool was generated under {:?}, server is configured for {expected:?}",
                self.config.strategy
            ),
        })
    }

    /// Sets per pool half.
    pub fn pool_len(&self) -> usize {
        self.r1.len()
    }

    /// Arena node entries across both halves (what
    /// [`IndexConfig::max_nodes`] caps).
    pub fn total_nodes(&self) -> usize {
        self.r1.total_nodes() + self.r2.total_nodes()
    }

    /// The RNG cursor: complete chunks generated per half.
    pub fn chunk_cursor(&self) -> u64 {
        self.chunks
    }

    /// Resident bytes of the sketched validation pool (`0` when the
    /// index is exact), and the exact-arena bytes it displaces — the
    /// pair behind `IndexMetrics`' compression ratio.
    pub fn sketch_bytes(&self) -> (u64, u64) {
        self.sketch.as_ref().map_or((0, 0), |sk| {
            (sk.resident_bytes(), sk.displaced_exact_bytes())
        })
    }

    /// The selection half `R₁` (read-only).
    pub fn selection_pool(&self) -> &RrCollection {
        &self.r1
    }

    /// The validation half `R₂` (read-only).
    pub fn validation_pool(&self) -> &RrCollection {
        &self.r2
    }

    /// Lifetime counters.
    pub fn counters(&self) -> &IndexCounters {
        &self.counters
    }

    /// Changes the top-up worker count (pool content is unaffected). The
    /// persistent worker pool is re-spawned on the next top-up.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads > 0, "need at least one worker");
        if self.config.threads != threads {
            self.config.threads = threads;
            self.workers = None;
        }
    }

    /// Changes or clears the node budget.
    pub fn set_max_nodes(&mut self, max_nodes: Option<usize>) {
        self.config.max_nodes = max_nodes;
    }

    /// Pre-grows the pool to at least `sets` per half (rounded up to a
    /// whole number of chunks), e.g. to warm an index before serving.
    pub fn warm(&mut self, sets: usize) -> Result<(), IndexError> {
        self.ensure_pool(sets)?;
        Ok(())
    }

    /// Answers one IM query: `k` seeds at accuracy `ε` and failure
    /// probability `δ`, certified by the OPIM bounds over the pool.
    ///
    /// Runs greedy max-coverage + both bounds over the current pool; if
    /// the certified ratio beats `1 - 1/e - ε` the pool is returned as-is,
    /// otherwise the pool doubles (continuing the deterministic chunk
    /// stream) and the round repeats, up to Eq. 4's `θ_max` cap — at which
    /// point the guarantee holds by sample complexity, as in OPIM-C's
    /// final iteration. Each round's bounds use `δ/(3·i_max)` exactly as
    /// OPIM-C budgets its failure probability.
    pub fn query(&mut self, k: usize, epsilon: f64, delta: f64) -> Result<QueryAnswer, IndexError> {
        let opts = ImOptions::new(k).epsilon(epsilon).delta(delta);
        opts.validate(self.g)?;
        let start = Instant::now();
        let n = self.g.n();
        let target = 1.0 - (-1.0f64).exp() - epsilon;
        let theta_max = theta_max_opim(n, k, epsilon, delta);
        let theta0 = theta_zero(delta);
        let imax = i_max(theta_max, theta0);
        let delta_iter = delta / (3.0 * imax as f64);

        let pool_before = self.pool_len();
        let mut fresh = self.ensure_pool(theta0 as usize)?;
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            // Sentinel pools re-certify through the HIST-style round so
            // the answer keeps the full (k, ε, δ) guarantee; sketched
            // pools run the slack-adjusted round; plain pools run the
            // standard OPIM round. `slack_failed` is the error-adaptive
            // ladder trigger (sketched pools only): the certificate
            // failed because of sketch slack, not sample count.
            let (seeds, lower, upper, slack_failed) = if let Some(sk) = &self.sketch {
                let eval = evaluate_pool_sketched(
                    &self.r1,
                    sk,
                    k,
                    delta_iter,
                    delta_iter,
                    self.config.threads,
                );
                let slack = eval.failed_on_slack(target);
                (eval.seeds, eval.lower, eval.upper, slack)
            } else {
                let eval = match &self.sentinel {
                    Some(st) if !st.set.is_empty() => evaluate_pool_sentinel(
                        &self.r1,
                        &self.r2,
                        &st.set,
                        self.g,
                        k,
                        delta_iter,
                        delta_iter,
                        self.config.threads,
                    ),
                    _ => evaluate_pool_par(
                        &self.r1,
                        &self.r2,
                        k,
                        delta_iter,
                        delta_iter,
                        self.config.threads,
                    ),
                };
                (eval.seeds, eval.lower, eval.upper, false)
            };
            let certified = if upper <= 0.0 {
                false
            } else {
                lower / upper > target
            };
            if certified || self.pool_len() as f64 >= theta_max {
                let elapsed = start.elapsed();
                let stats = QueryStats {
                    k,
                    epsilon,
                    delta,
                    pool_before,
                    pool_after: self.pool_len(),
                    fresh_sets: fresh,
                    rounds,
                    lower_bound: lower,
                    upper_bound: upper,
                    target_ratio: target,
                    certified_by_bounds: certified,
                    elapsed,
                };
                self.counters.queries += 1;
                if certified {
                    self.counters.certified_queries += 1;
                }
                self.counters.sets_reused += stats.reused_sets() as u64;
                self.counters.sets_consumed += 2 * stats.pool_after as u64;
                self.counters.query_time += elapsed;
                return Ok(QueryAnswer { seeds, stats });
            }
            // Failing on slack means more samples cannot close the gap —
            // promote register precision instead (bounded by
            // MAX_PRECISION; past it, fall through to doubling and let
            // theta_max terminate the loop).
            if slack_failed && self.config.sketch < MAX_PRECISION as usize {
                fresh += self.promote_sketch()?;
                continue;
            }
            // len < theta_max here, so the target strictly grows the pool
            // (ensure_pool additionally rounds up to a chunk boundary).
            let next = self
                .pool_len()
                .saturating_mul(2)
                .min(theta_max.ceil() as usize);
            fresh += self.ensure_pool(next)?;
        }
    }

    /// Error-adaptive ladder step: regenerates the entire `R₂` chunk
    /// stream at the next register precision and swaps the sketch. Chunk
    /// content is a pure function of `(seed, chunk id)`, so the rebuilt
    /// sketch is exactly what an index configured at the higher precision
    /// from the start would hold. Returns the number of regenerated sets.
    fn promote_sketch(&mut self) -> Result<usize, IndexError> {
        let old = self.sketch.as_ref().expect("promotion without a sketch");
        let precision = old.precision() + 1;
        assert!(precision <= MAX_PRECISION, "ladder past MAX_PRECISION");
        let chunk = self.config.chunk_size;
        let threads = self.config.threads;
        let workers = self.workers.get_or_insert_with(|| WorkerPool::new(threads));
        let mut fresh = SketchedPool::new(self.g.n(), chunk, precision);
        let slice = (threads as u64) * 4;
        let mut start = 0u64;
        let mut regenerated = 0usize;
        while start < self.chunks {
            let end = self.chunks.min(start + slice);
            let b = workers.try_generate_chunks(
                &self.sampler,
                None,
                start..end,
                chunk,
                self.config.seed ^ R2_STREAM,
            )?;
            self.counters.rr_sets_generated += b.rr.len() as u64;
            self.counters.rr_nodes_generated += b.rr.total_nodes() as u64;
            self.counters.generation_cost += b.cost;
            regenerated += b.rr.len();
            fresh.absorb_batch(start, &b.rr);
            start = end;
        }
        self.config.sketch = precision as usize;
        self.sketch = Some(fresh);
        Ok(regenerated)
    }

    /// Grows both halves to at least `target_sets` each, continuing the
    /// chunk stream. Returns the number of freshly generated sets (both
    /// halves combined); `Ok(0)` if the pool was already large enough.
    fn ensure_pool(&mut self, target_sets: usize) -> Result<usize, IndexError> {
        let chunk = self.config.chunk_size;
        let needed_chunks = (target_sets.div_ceil(chunk)) as u64;
        if needed_chunks <= self.chunks {
            return Ok(0);
        }
        let threads = self.config.threads;
        // Spawn (or re-spawn after a threads change) the persistent
        // workers once; every later top-up reuses them.
        let workers = self.workers.get_or_insert_with(|| WorkerPool::new(threads));
        if self.chunk_hook.is_some() {
            workers.set_chunk_hook(self.chunk_hook.clone());
        }
        // Budget is re-checked every `slice` chunks so a single huge
        // top-up cannot blow past `max_nodes` unbounded.
        let slice = (threads as u64) * 4;
        let mut added = 0usize;
        while self.chunks < needed_chunks {
            if let Some(cap) = self.config.max_nodes {
                // Field-level sum (not `self.total_nodes()`) so the
                // borrow of the worker pool stays disjoint. A sketched
                // R₂ counts its resident bytes in 4-byte node-entry
                // equivalents, keeping the budget unit consistent.
                let in_use = self.r1.total_nodes()
                    + self.r2.total_nodes()
                    + self
                        .sketch
                        .as_ref()
                        .map_or(0, |sk| sk.resident_bytes() as usize / 4);
                if in_use >= cap {
                    return Err(IndexError::MemoryBudget {
                        max_nodes: cap,
                        in_use,
                        wanted_sets: needed_chunks as usize * chunk,
                    });
                }
            }
            // Crossing the plain warmup prefix activates the sentinel
            // tier: Z is selected once, over exactly the plain chunks
            // generated so far.
            if self.config.sentinels > 0
                && self.sentinel.is_none()
                && self.chunks >= SENTINEL_WARMUP_CHUNKS
            {
                self.sentinel = Some(SentinelState {
                    set: SentinelSet::select(&[&self.r1], self.g, self.config.sentinels),
                    from_chunk: self.chunks,
                    chunk_hits_r1: vec![0; self.chunks as usize],
                    chunk_hits_r2: vec![0; self.chunks as usize],
                });
            }
            let mut end = needed_chunks.min(self.chunks + slice);
            if self.config.sentinels > 0 && self.sentinel.is_none() {
                // Still inside the warmup prefix: stop this slice at the
                // boundary so the next iteration selects Z before any
                // truncated chunk is generated.
                end = end.min(SENTINEL_WARMUP_CHUNKS.max(self.chunks + 1));
            }
            let z = self
                .sentinel
                .as_ref()
                .filter(|st| !st.set.is_empty())
                .map(|st| st.set.nodes());
            let truncating = z.is_some();
            let b1 = workers.try_generate_chunks(
                &self.sampler,
                z,
                self.chunks..end,
                chunk,
                self.config.seed,
            )?;
            let b2 = workers.try_generate_chunks(
                &self.sampler,
                z,
                self.chunks..end,
                chunk,
                self.config.seed ^ R2_STREAM,
            )?;
            if let Some(st) = &mut self.sentinel {
                st.chunk_hits_r1.extend_from_slice(&b1.chunk_hits);
                st.chunk_hits_r2.extend_from_slice(&b2.chunk_hits);
            }
            self.counters.rr_sets_generated += (b1.rr.len() + b2.rr.len()) as u64;
            self.counters.rr_nodes_generated += (b1.rr.total_nodes() + b2.rr.total_nodes()) as u64;
            self.counters.generation_cost += b1.cost + b2.cost;
            self.counters.sentinel_hits += b1.sentinel_hits + b2.sentinel_hits;
            if truncating {
                self.counters.truncated_sets += (b1.rr.len() + b2.rr.len()) as u64;
                self.counters.truncated_nodes += (b1.rr.total_nodes() + b2.rr.total_nodes()) as u64;
            }
            added += b1.rr.len() + b2.rr.len();
            self.r1.extend_from(&b1.rr);
            if let Some(sk) = &mut self.sketch {
                sk.absorb_batch(self.chunks, &b2.rr);
            } else {
                self.r2.extend_from(&b2.rr);
            }
            self.chunks = end;
        }
        Ok(added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::{barabasi_albert, star_graph};
    use subsim_graph::WeightModel;

    fn config() -> IndexConfig {
        IndexConfig::new(RrStrategy::SubsimIc)
            .seed(5)
            .chunk_size(64)
    }

    #[test]
    fn first_query_populates_then_reuses() {
        let g = barabasi_albert(300, 4, WeightModel::Wc, 1);
        let mut index = RrIndex::new(&g, config());
        let a = index.query(5, 0.1, 0.01).unwrap();
        assert!(a.stats.fresh_sets > 0);
        assert_eq!(a.stats.pool_before, 0);
        assert!(a.stats.certified_by_bounds);
        let b = index.query(5, 0.1, 0.01).unwrap();
        assert_eq!(b.stats.fresh_sets, 0, "warm query regenerated sets");
        assert_eq!(a.seeds, b.seeds, "same pool must give same seeds");
        assert_eq!(index.counters().queries, 2);
        assert!(index.counters().cache_hit_ratio() > 0.0);
    }

    #[test]
    fn star_hub_selected_first() {
        let g = star_graph(50, WeightModel::UniformIc { p: 0.5 });
        let mut index = RrIndex::new(&g, config());
        let ans = index.query(1, 0.1, 0.02).unwrap();
        assert_eq!(ans.seeds, vec![0]);
        assert!(ans.stats.ratio() > ans.stats.target_ratio);
    }

    #[test]
    fn pool_is_pure_function_of_size() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 2);
        // Index A answers (k=2) then (k=8); index B answers (k=8) only.
        let mut a = RrIndex::new(&g, config());
        a.query(2, 0.1, 0.05).unwrap();
        a.query(8, 0.1, 0.05).unwrap();
        let mut b = RrIndex::new(&g, config());
        b.query(8, 0.1, 0.05).unwrap();
        // Equalize pool sizes, then the halves must be bit-identical.
        let max = a.pool_len().max(b.pool_len());
        a.warm(max).unwrap();
        b.warm(max).unwrap();
        assert_eq!(a.pool_len(), b.pool_len());
        for i in 0..a.pool_len() {
            assert_eq!(
                a.selection_pool().get(i),
                b.selection_pool().get(i),
                "r1 set {i}"
            );
            assert_eq!(
                a.validation_pool().get(i),
                b.validation_pool().get(i),
                "r2 set {i}"
            );
        }
    }

    #[test]
    fn halves_are_distinct_streams() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 3);
        let mut index = RrIndex::new(&g, config());
        index.warm(500).unwrap();
        let differs = (0..index.pool_len())
            .any(|i| index.selection_pool().get(i) != index.validation_pool().get(i));
        assert!(differs, "R1 and R2 must not be the same sample");
    }

    #[test]
    fn memory_budget_errors_instead_of_growing() {
        let g = barabasi_albert(300, 4, WeightModel::Wc, 4);
        let mut index = RrIndex::new(&g, config().max_nodes(200));
        // Tiny budget: the first top-up slice lands over it, the next
        // request must refuse.
        let err = index.query(10, 0.05, 0.001).unwrap_err();
        match err {
            IndexError::MemoryBudget {
                max_nodes, in_use, ..
            } => {
                assert_eq!(max_nodes, 200);
                assert!(in_use >= 200);
            }
            other => panic!("expected MemoryBudget, got {other:?}"),
        }
        // The index remains usable: lift the budget and retry.
        index.set_max_nodes(None);
        let ans = index.query(10, 0.1, 0.01).unwrap();
        assert_eq!(ans.seeds.len(), 10);
    }

    #[test]
    fn rejects_invalid_queries() {
        let g = star_graph(10, WeightModel::Wc);
        let mut index = RrIndex::new(&g, config());
        assert!(matches!(
            index.query(0, 0.1, 0.01),
            Err(IndexError::Options(_))
        ));
        assert!(matches!(
            index.query(2, 0.9, 0.01),
            Err(IndexError::Options(_))
        ));
        assert!(matches!(
            index.query(2, 0.1, 1.5),
            Err(IndexError::Options(_))
        ));
    }

    #[test]
    fn sentinel_tier_activates_after_warmup_and_truncates() {
        let g = barabasi_albert(300, 4, WeightModel::Wc, 7);
        let mut index = RrIndex::new(&g, config().sentinels(2));
        // Inside the warmup prefix: still plain.
        index.warm(SENTINEL_WARMUP_CHUNKS as usize * 64).unwrap();
        assert!(index.sentinel_state().is_none());
        assert_eq!(index.counters().truncated_sets, 0);
        // One chunk past it: Z selected over exactly the warmup prefix,
        // and every new chunk generated truncated.
        index
            .warm((SENTINEL_WARMUP_CHUNKS as usize + 4) * 64)
            .unwrap();
        let st = index.sentinel_state().expect("tier active");
        assert_eq!(st.set.len(), 2);
        assert_eq!(st.from_chunk, SENTINEL_WARMUP_CHUNKS);
        assert_eq!(st.chunk_hits_r1.len() as u64, index.chunk_cursor());
        assert_eq!(st.chunk_hits_r2.len() as u64, index.chunk_cursor());
        assert!(st.chunk_hits_r1[..SENTINEL_WARMUP_CHUNKS as usize]
            .iter()
            .all(|&h| h == 0));
        assert_eq!(
            index.counters().sentinel_hits,
            st.total_hits(),
            "lifetime counter and per-chunk vectors must agree"
        );
        assert_eq!(index.counters().truncated_sets, 8 * 64);
        // On a hub-heavy graph the hub sentinel absorbs traversals:
        // truncated sets must be smaller on average.
        assert!(index.counters().sentinel_hits > 0);
        assert!(index.counters().mean_rr_size_truncated() < index.counters().mean_rr_size_plain());
    }

    #[test]
    fn sentinel_pool_is_pure_function_of_size() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 8);
        let mut a = RrIndex::new(&g, config().sentinels(3));
        // A grows in dribs; B in one jump. Activation is pinned to the
        // warmup boundary, so content must match bit for bit.
        a.warm(80).unwrap();
        a.warm(300).unwrap();
        a.warm(640).unwrap();
        let mut b = RrIndex::new(&g, config().sentinels(3));
        b.warm(640).unwrap();
        assert_eq!(a.sentinel_state(), b.sentinel_state());
        assert_eq!(a.pool_len(), b.pool_len());
        for i in 0..a.pool_len() {
            assert_eq!(a.selection_pool().get(i), b.selection_pool().get(i));
            assert_eq!(a.validation_pool().get(i), b.validation_pool().get(i));
        }
    }

    #[test]
    fn sentinel_queries_certify_with_full_guarantee() {
        let g = barabasi_albert(300, 4, WeightModel::Wc, 9);
        let mut index = RrIndex::new(&g, config().sentinels(2));
        index
            .warm((SENTINEL_WARMUP_CHUNKS as usize + 8) * 64)
            .unwrap();
        assert!(index.sentinel_state().is_some());
        // k at and above |Z|: every answer re-certifies the union bound
        // and beats the target ratio.
        for k in [5usize, 2] {
            let ans = index.query(k, 0.1, 0.01).unwrap();
            assert_eq!(ans.seeds.len(), k, "k={k}");
            assert!(ans.stats.certified_by_bounds, "k={k}");
            assert!(ans.stats.ratio() > ans.stats.target_ratio, "k={k}");
        }
        // k below |Z|: the prefix answer's Eq. 1 is conservative (see
        // sentinel.rs docs), so only soundness is guaranteed, not that the
        // loose ratio beats the target.
        let ans = index.query(1, 0.1, 0.01).unwrap();
        assert_eq!(ans.seeds.len(), 1);
        assert!(ans.stats.lower_bound <= ans.stats.upper_bound);
        // k ≥ |Z|: the sentinels lead the seed set (Alg 8 keeps Z).
        let z = index.sentinel_state().unwrap().set.nodes().to_vec();
        let ans = index.query(5, 0.1, 0.01).unwrap();
        assert_eq!(&ans.seeds[..z.len()], z.as_slice());
    }

    #[test]
    fn sentinel_state_install_validates() {
        let g = barabasi_albert(100, 3, WeightModel::Wc, 10);
        let mut index = RrIndex::new(&g, config());
        index.warm(128).unwrap();
        let bad = SentinelState {
            set: SentinelSet::from_nodes(vec![0]),
            from_chunk: 99,
            chunk_hits_r1: vec![0; 2],
            chunk_hits_r2: vec![0; 2],
        };
        assert!(index.set_sentinel_state(Some(bad)).is_err());
        let good = SentinelState {
            set: SentinelSet::from_nodes(vec![0]),
            from_chunk: 2,
            chunk_hits_r1: vec![0; 2],
            chunk_hits_r2: vec![0; 2],
        };
        index.set_sentinel_state(Some(good.clone())).unwrap();
        assert_eq!(index.sentinel_state(), Some(&good));
        assert_eq!(index.take_sentinel_state(), Some(good));
        assert!(index.sentinel_state().is_none());
    }

    #[test]
    fn warm_rounds_to_chunks() {
        let g = barabasi_albert(100, 3, WeightModel::Wc, 6);
        let mut index = RrIndex::new(&g, config());
        index.warm(100).unwrap();
        assert_eq!(index.pool_len(), 128); // 2 chunks of 64
        assert_eq!(index.chunk_cursor(), 2);
        index.warm(50).unwrap(); // no shrink, no growth
        assert_eq!(index.pool_len(), 128);
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn sketch_and_sentinels_refuse_to_combine() {
        let g = star_graph(10, WeightModel::Wc);
        let _ = RrIndex::new(&g, config().sentinels(2).sketch(6));
    }

    #[test]
    fn sketched_pool_is_pure_function_of_size() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 11);
        // A grows in dribs; B in one jump. Sketch registers are a pure
        // function of pool content, so states must match bit for bit.
        let mut a = RrIndex::new(&g, config().sketch(6));
        a.warm(80).unwrap();
        a.warm(300).unwrap();
        a.warm(640).unwrap();
        let mut b = RrIndex::new(&g, config().sketch(6));
        b.warm(640).unwrap();
        assert_eq!(a.sketch_state(), b.sketch_state());
        assert_eq!(a.pool_len(), b.pool_len());
        assert_eq!(a.validation_pool().len(), 0, "sketched R2 stays empty");
        for i in 0..a.pool_len() {
            assert_eq!(a.selection_pool().get(i), b.selection_pool().get(i));
        }
        // And R1 is the same stream a plain index generates: sketching
        // never perturbs selection.
        let mut plain = RrIndex::new(&g, config());
        plain.warm(640).unwrap();
        for i in 0..plain.pool_len() {
            assert_eq!(a.selection_pool().get(i), plain.selection_pool().get(i));
        }
    }

    #[test]
    fn sketched_query_matches_exact_seeds_at_equal_pool() {
        let g = barabasi_albert(300, 4, WeightModel::Wc, 12);
        let mut exact = RrIndex::new(&g, config());
        let mut sk = RrIndex::new(&g, config().sketch(8));
        // Warm both far past the certification point so neither query
        // grows: identical R1 + deterministic greedy → identical seeds.
        exact.warm(4096).unwrap();
        sk.warm(4096).unwrap();
        let a = exact.query(5, 0.1, 0.01).unwrap();
        let b = sk.query(5, 0.1, 0.01).unwrap();
        assert!(a.stats.certified_by_bounds);
        assert!(b.stats.certified_by_bounds);
        assert_eq!(a.stats.fresh_sets, 0);
        assert_eq!(b.stats.fresh_sets, 0);
        assert_eq!(a.seeds, b.seeds);
        // Selection is shared, so the Eq. 2 upper bound is bit-identical;
        // only the validation-side lower bound differs (by sketch error).
        assert_eq!(a.stats.upper_bound, b.stats.upper_bound);
    }

    #[test]
    fn sketch_promotion_matches_fresh_higher_precision() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 13);
        let mut a = RrIndex::new(&g, config().sketch(5));
        a.warm(512).unwrap();
        let regenerated = a.promote_sketch().unwrap();
        assert_eq!(regenerated, 512);
        assert_eq!(a.config().sketch, 6);
        // Promotion rebuilds from the deterministic chunk stream: the
        // result is exactly what precision-6-from-the-start holds.
        let mut b = RrIndex::new(&g, config().sketch(6));
        b.warm(512).unwrap();
        assert_eq!(a.sketch_state(), b.sketch_state());
    }

    #[test]
    fn sketched_validation_is_resident_compressed() {
        let g = barabasi_albert(300, 4, WeightModel::Wc, 14);
        let mut sk = RrIndex::new(&g, config().chunk_size(1024).sketch(4));
        sk.warm(4096).unwrap();
        let (resident, displaced) = sk.sketch_bytes();
        assert!(resident > 0);
        assert!(
            resident < displaced,
            "sketch must be smaller than the arena it displaces: \
             {resident} vs {displaced}"
        );
        // The budget counts those resident bytes: a cap below the sketch
        // footprint refuses further growth.
        sk.set_max_nodes(Some(1));
        assert!(matches!(
            sk.warm(8192),
            Err(IndexError::MemoryBudget { .. })
        ));
    }
}
