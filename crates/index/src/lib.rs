//! `subsim-index` — an amortized RR-sketch index for multi-query
//! influence maximization.
//!
//! One-shot IM algorithms (IMM, OPIM-C, HIST) generate their RR sets,
//! answer a single `(k, ε, δ)` query, and throw the sketches away. In any
//! realistic serving scenario the graph is fixed while queries vary, and
//! RR sets are reusable across *all* of them: an RR set depends only on
//! the graph, the weight model, and the diffusion process — never on `k`
//! or `ε`. This crate keeps the pool alive.
//!
//! [`RrIndex`] owns two independently sampled halves of RR sets, mirroring
//! OPIM-C's `R₁`/`R₂` split, and answers each query by running greedy
//! max-coverage plus the OPIM lower/upper bounds over the *current* pool.
//! Only when the certificate fails does it generate more sets — doubling,
//! capped by the worst-case `θ_max` — so the first query pays roughly a
//! full OPIM-C run and later queries at comparable accuracy are answered
//! from the warmed pool in milliseconds.
//!
//! Three properties make the pool a real index rather than a cache:
//!
//! - **Determinism** — generation is chunked, every chunk's RNG is derived
//!   from `(seed, chunk number)` alone, and pool sizes are whole chunks.
//!   The pool content is a pure function of its size: query order and
//!   thread count cannot change what any query sees.
//! - **Persistence** — [`RrIndex::save`]/[`RrIndex::load`] snapshot the
//!   pool and its RNG cursor behind a graph fingerprint
//!   ([`graph_fingerprint`]); a loaded index continues the exact chunk
//!   stream, and loading against a different graph is refused.
//! - **Bounded memory** — an optional [`IndexConfig::max_nodes`] budget
//!   turns unbounded growth into a clean [`IndexError::MemoryBudget`],
//!   leaving the index serving whatever its current pool can certify.
//!
//! With [`IndexConfig::threads`] `> 1`, pool top-ups run on a persistent
//! work-stealing worker pool (spawned once, reused across growth rounds)
//! and the per-query selection phase parallelizes its preparation — the
//! inverted coverage index and initial counts — while the greedy loop
//! stays sequential. Both are output-invariant: thread count changes
//! wall-clock and nothing else, preserving the determinism contract
//! above bit for bit.
//!
//! Per-query costs surface in [`QueryStats`]; lifetime totals in
//! [`IndexCounters`]. Serving-side metrics (latency histograms, selection
//! and generation timings) live in [`IndexMetrics`].

#![warn(missing_docs)]

mod error;
mod fingerprint;
mod index;
mod snapshot;
mod stats;
mod sync;

pub use error::IndexError;
pub use fingerprint::graph_fingerprint;
pub use index::{
    IndexConfig, QueryAnswer, RrIndex, SentinelState, R2_STREAM, SENTINEL_WARMUP_CHUNKS,
};
pub use snapshot::{read_index, write_index};
pub use stats::{IndexCounters, QueryStats};
pub use sync::{
    quantile_ns, ConcurrentRrIndex, IndexMetrics, LatencyHistogram, MetricsSnapshot, PoolSnapshot,
    TenantCounters, TenantMetrics,
};
