//! Per-query records and cumulative observability counters.

use std::time::Duration;

/// What one [`crate::RrIndex::query`] call did and certified.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStats {
    /// Requested seed-set size.
    pub k: usize,
    /// Requested accuracy `ε`.
    pub epsilon: f64,
    /// Requested failure probability `δ`.
    pub delta: f64,
    /// Sets per pool half when the query arrived.
    pub pool_before: usize,
    /// Sets per pool half when the query finished.
    pub pool_after: usize,
    /// Sets generated *by this query* across both halves
    /// (`2 · (pool_after - pool_before)`).
    pub fresh_sets: usize,
    /// Certification rounds run (greedy + bound evaluations).
    pub rounds: u32,
    /// Eq. 1 lower bound on `𝕀(S)` at termination.
    pub lower_bound: f64,
    /// Eq. 2 upper bound on `𝕀(S^o_k)` at termination.
    pub upper_bound: f64,
    /// `1 - 1/e - ε`, what the ratio had to beat.
    pub target_ratio: f64,
    /// Whether the bound ratio beat the target (as opposed to the query
    /// terminating at the `θ_max` worst-case cap, where the guarantee
    /// comes from Eq. 4's sample-complexity argument instead).
    pub certified_by_bounds: bool,
    /// Wall-clock time of the query.
    pub elapsed: Duration,
}

impl QueryStats {
    /// The certified approximation ratio `𝕀⁻(S)/𝕀⁺(S^o_k)`.
    pub fn ratio(&self) -> f64 {
        if self.upper_bound <= 0.0 {
            0.0
        } else {
            self.lower_bound / self.upper_bound
        }
    }

    /// Sets served from the pre-existing pool, across both halves.
    pub fn reused_sets(&self) -> usize {
        2 * self.pool_before.min(self.pool_after)
    }
}

/// Cumulative counters over an index's lifetime (survive snapshots only as
/// far as the pool itself does — counters restart at load).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexCounters {
    /// Queries answered.
    pub queries: u64,
    /// Queries whose certificate beat the target ratio (vs. terminating at
    /// the `θ_max` cap).
    pub certified_queries: u64,
    /// RR sets generated since construction, both halves.
    pub rr_sets_generated: u64,
    /// Node entries generated since construction, both halves.
    pub rr_nodes_generated: u64,
    /// Generation cost proxy (see `subsim_diffusion::RrContext::cost`).
    pub generation_cost: u64,
    /// Sentinel hits recorded during generation, both halves (0 while the
    /// sentinel tier is inactive).
    pub sentinel_hits: u64,
    /// RR sets generated under sentinel truncation (a subset of
    /// `rr_sets_generated`).
    pub truncated_sets: u64,
    /// Node entries generated under sentinel truncation (a subset of
    /// `rr_nodes_generated`).
    pub truncated_nodes: u64,
    /// Σ over queries of sets served from the pre-existing pool.
    pub sets_reused: u64,
    /// Σ over queries of sets the query's final round consumed.
    pub sets_consumed: u64,
    /// Σ of query wall-clock times.
    pub query_time: Duration,
}

impl IndexCounters {
    /// Fraction of consumed sets that were already in the pool when their
    /// query arrived — 1.0 means fully warm (no generation at all).
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.sets_consumed == 0 {
            0.0
        } else {
            self.sets_reused as f64 / self.sets_consumed as f64
        }
    }

    /// Fraction of truncated traversals that stopped at a sentinel.
    pub fn sentinel_hit_rate(&self) -> f64 {
        if self.truncated_sets == 0 {
            0.0
        } else {
            self.sentinel_hits as f64 / self.truncated_sets as f64
        }
    }

    /// Mean nodes per *plain* RR set generated so far (0 when none).
    pub fn mean_rr_size_plain(&self) -> f64 {
        let sets = self.rr_sets_generated - self.truncated_sets;
        if sets == 0 {
            0.0
        } else {
            (self.rr_nodes_generated - self.truncated_nodes) as f64 / sets as f64
        }
    }

    /// Mean nodes per *truncated* RR set generated so far (0 when none) —
    /// the paper's headline memory lever; compare against
    /// [`IndexCounters::mean_rr_size_plain`].
    pub fn mean_rr_size_truncated(&self) -> f64 {
        if self.truncated_sets == 0 {
            0.0
        } else {
            self.truncated_nodes as f64 / self.truncated_sets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_reuse_math() {
        let s = QueryStats {
            k: 10,
            epsilon: 0.1,
            delta: 0.01,
            pool_before: 100,
            pool_after: 400,
            fresh_sets: 600,
            rounds: 3,
            lower_bound: 30.0,
            upper_bound: 40.0,
            target_ratio: 0.53,
            certified_by_bounds: true,
            elapsed: Duration::from_millis(5),
        };
        assert!((s.ratio() - 0.75).abs() < 1e-12);
        assert_eq!(s.reused_sets(), 200);
    }

    #[test]
    fn cache_hit_ratio_handles_empty() {
        assert_eq!(IndexCounters::default().cache_hit_ratio(), 0.0);
        let c = IndexCounters {
            sets_reused: 300,
            sets_consumed: 400,
            ..Default::default()
        };
        assert!((c.cache_hit_ratio() - 0.75).abs() < 1e-12);
    }
}
