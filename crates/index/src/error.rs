//! Error type for index construction, queries, and snapshots.

use std::fmt;
use subsim_core::ImError;
use subsim_diffusion::PoolError;

/// Errors produced by [`crate::RrIndex`].
#[derive(Debug)]
pub enum IndexError {
    /// The query parameters failed [`subsim_core::ImOptions`] validation.
    Options(ImError),
    /// Growing the pool would exceed the configured node budget. The index
    /// stays valid — already-stored sets keep serving queries whose
    /// certificate passes at the current pool size.
    MemoryBudget {
        /// Configured cap on arena node entries across both pool halves.
        max_nodes: usize,
        /// Node entries currently stored.
        in_use: usize,
        /// Pool size (sets per half) the failing query wanted to reach.
        wanted_sets: usize,
    },
    /// An I/O failure while reading or writing a snapshot.
    Io(std::io::Error),
    /// A snapshot that parsed but does not belong to this `(graph, weight
    /// model, strategy)` — or is internally inconsistent.
    SnapshotMismatch {
        /// What didn't line up.
        reason: String,
    },
    /// A generation worker panicked mid-batch. The partial batch was
    /// discarded, so the pool kept its pre-batch content and the index
    /// stays queryable at its current size.
    WorkerPanic,
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Options(e) => write!(f, "invalid query: {e}"),
            IndexError::MemoryBudget {
                max_nodes,
                in_use,
                wanted_sets,
            } => write!(
                f,
                "pool top-up to {wanted_sets} sets per half refused: \
                 {in_use} arena nodes in use, budget max_nodes={max_nodes}"
            ),
            IndexError::Io(e) => write!(f, "snapshot I/O: {e}"),
            IndexError::SnapshotMismatch { reason } => {
                write!(f, "snapshot rejected: {reason}")
            }
            IndexError::WorkerPanic => {
                write!(
                    f,
                    "a generation worker panicked; the batch was discarded \
                     and the pool kept its pre-batch content"
                )
            }
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Options(e) => Some(e),
            IndexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ImError> for IndexError {
    fn from(e: ImError) -> Self {
        IndexError::Options(e)
    }
}

impl From<std::io::Error> for IndexError {
    fn from(e: std::io::Error) -> Self {
        IndexError::Io(e)
    }
}

impl From<PoolError> for IndexError {
    fn from(e: PoolError) -> Self {
        match e {
            PoolError::WorkerPanicked => IndexError::WorkerPanic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = IndexError::MemoryBudget {
            max_nodes: 1000,
            in_use: 990,
            wanted_sets: 4096,
        };
        let msg = e.to_string();
        assert!(msg.contains("max_nodes=1000"), "{msg}");
        assert!(msg.contains("4096"), "{msg}");
        let e = IndexError::SnapshotMismatch {
            reason: "fingerprint differs".into(),
        };
        assert!(e.to_string().contains("fingerprint"), "{e}");
    }
}
