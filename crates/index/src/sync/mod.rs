//! Concurrent serving on top of [`RrIndex`]'s deterministic pool.
//!
//! [`ConcurrentRrIndex`] splits the index into an immutable, atomically
//! swappable [`PoolSnapshot`] (the two RR halves plus the chunk cursor,
//! held behind `Arc`) and a mutex-guarded writer that performs
//! chunk-deterministic top-ups off to the side. Query threads briefly take
//! a read lock only to clone the `Arc`, then run greedy + bounds entirely
//! on their private snapshot — no lock is held during certification, and a
//! snapshot can never be observed mid-growth (no torn reads by
//! construction).
//!
//! Determinism is inherited, not re-proven: growth continues the same
//! chunk stream as the sequential index (`chunk c` is always generated
//! from `chunk_seed(seed, c)`), so pool *content at any size* is a pure
//! function of `(seed, strategy, chunk_size, size)` regardless of how many
//! threads raced, which queries triggered growth, or how top-ups were
//! sliced. Concurrent interleavings may change how far the pool has grown
//! at a given moment — never what any prefix of it contains.
//!
//! Observability lives in [`IndexMetrics`]: relaxed atomic counters and a
//! log₂ latency histogram updated by query and writer threads without
//! locks, snapshottable as JSON for `--stats-out`.

mod metrics;

pub use metrics::{
    quantile_ns, IndexMetrics, LatencyHistogram, MetricsSnapshot, TenantCounters, TenantMetrics,
};

use crate::error::IndexError;
use crate::index::{
    IndexConfig, QueryAnswer, RrIndex, SentinelState, R2_STREAM, SENTINEL_WARMUP_CHUNKS,
};
use crate::stats::QueryStats;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;
use subsim_core::bounds::{i_max, theta_max_opim, theta_zero};
use subsim_core::pool::evaluate_pool_timed_par;
use subsim_core::sentinel::{evaluate_pool_sentinel, SentinelSet};
use subsim_core::ImOptions;
use subsim_diffusion::pool::WorkerPool;
use subsim_diffusion::{RrCollection, RrSampler};
use subsim_graph::Graph;
use subsim_sketch::{evaluate_pool_sketched, SketchedPool, MAX_PRECISION};

/// One immutable published state of the pool: both halves plus the RNG
/// cursor that produced them. Readers hold an `Arc` to it and never see
/// it change; the writer only ever publishes complete replacements.
#[derive(Debug)]
pub struct PoolSnapshot {
    r1: RrCollection,
    r2: RrCollection,
    chunks: u64,
    /// Sentinel tier state at publish time; immutable like the halves.
    sentinel: Option<SentinelState>,
    /// Sketched validation pool at publish time (`r2` is empty when
    /// present); immutable like the halves.
    sketch: Option<SketchedPool>,
}

impl PoolSnapshot {
    /// Sets per pool half.
    pub fn pool_len(&self) -> usize {
        self.r1.len()
    }

    /// The RNG cursor: complete chunks generated per half.
    pub fn chunk_cursor(&self) -> u64 {
        self.chunks
    }

    /// Arena node entries across both halves.
    pub fn total_nodes(&self) -> usize {
        self.r1.total_nodes() + self.r2.total_nodes()
    }

    /// The selection half `R₁` (read-only).
    pub fn selection_pool(&self) -> &RrCollection {
        &self.r1
    }

    /// The validation half `R₂` (read-only).
    pub fn validation_pool(&self) -> &RrCollection {
        &self.r2
    }

    /// The sentinel tier state at publish time, if active.
    pub fn sentinel_state(&self) -> Option<&SentinelState> {
        self.sentinel.as_ref()
    }

    /// The sketched validation pool at publish time, if active.
    pub fn sketch_state(&self) -> Option<&SketchedPool> {
        self.sketch.as_ref()
    }
}

/// A concurrently queryable [`RrIndex`]: shared `&self` queries from any
/// number of threads, with pool growth serialized through one writer and
/// published as immutable snapshots.
///
/// ```
/// use subsim_index::{ConcurrentRrIndex, IndexConfig};
/// use subsim_diffusion::RrStrategy;
/// use subsim_graph::{generators, WeightModel};
///
/// let g = generators::star_graph(50, WeightModel::UniformIc { p: 0.5 });
/// let index = ConcurrentRrIndex::new(&g, IndexConfig::new(RrStrategy::SubsimIc).seed(7));
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| {
///             let ans = index.query(1, 0.1, 0.01).unwrap();
///             assert_eq!(ans.seeds, vec![0]); // the hub dominates
///         });
///     }
/// });
/// assert_eq!(index.metrics().queries, 4);
/// ```
pub struct ConcurrentRrIndex<'g> {
    g: &'g Graph,
    config: IndexConfig,
    sampler: RrSampler<'g>,
    snapshot: RwLock<Arc<PoolSnapshot>>,
    /// Serializes growth and owns the persistent generation workers —
    /// spawned once at construction and reused across every top-up, so
    /// growth rounds never pay thread-spawn cost. All pool state lives in
    /// the published snapshot (the guard's critical section is the only
    /// place a successor snapshot is ever constructed).
    writer: Mutex<WorkerPool>,
    metrics: IndexMetrics,
}

impl std::fmt::Debug for ConcurrentRrIndex<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.load();
        f.debug_struct("ConcurrentRrIndex")
            .field("config", &self.config)
            .field("chunks", &snap.chunks)
            .field("pool_len", &snap.pool_len())
            .finish_non_exhaustive()
    }
}

impl<'g> ConcurrentRrIndex<'g> {
    /// An empty concurrent index over `g`; the first query (or
    /// [`ConcurrentRrIndex::warm`]) populates the pool.
    pub fn new(g: &'g Graph, config: IndexConfig) -> Self {
        Self::from_index(RrIndex::new(g, config))
    }

    /// Wraps a sequential index (possibly warmed or loaded from a
    /// snapshot file) for concurrent serving. The pool carries over
    /// unchanged; lifetime counters restart.
    pub fn from_index(index: RrIndex<'g>) -> Self {
        let (g, config, r1, r2, chunks, sentinel, sketch) = index.into_parts();
        ConcurrentRrIndex {
            g,
            config,
            sampler: RrSampler::new(g, config.strategy),
            snapshot: RwLock::new(Arc::new(PoolSnapshot {
                r1,
                r2,
                chunks,
                sentinel,
                sketch,
            })),
            writer: Mutex::new(WorkerPool::new(config.threads)),
            metrics: IndexMetrics::default(),
        }
    }

    /// Converts back into a sequential index over the current snapshot
    /// (e.g. to [`RrIndex::save`] it). Requires exclusive ownership, so no
    /// reader can be left holding a stale view.
    pub fn into_index(self) -> RrIndex<'g> {
        let snap = self.snapshot.into_inner().expect("snapshot lock poisoned");
        let snap = Arc::try_unwrap(snap).unwrap_or_else(|arc| PoolSnapshot {
            r1: arc.r1.clone(),
            r2: arc.r2.clone(),
            chunks: arc.chunks,
            sentinel: arc.sentinel.clone(),
            sketch: arc.sketch.clone(),
        });
        let mut index = RrIndex::from_parts(self.g, self.config, snap.r1, snap.r2, snap.chunks);
        index
            .set_sentinel_state(snap.sentinel)
            .expect("published snapshot carries sentinel state consistent with its pool");
        index
            .set_sketch_state(snap.sketch)
            .expect("published snapshot carries sketch state consistent with its pool");
        index
    }

    /// The indexed graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The construction-time configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The current published snapshot. The returned `Arc` is a stable
    /// view: its content never changes, even while the writer publishes
    /// successors.
    pub fn load(&self) -> Arc<PoolSnapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// A point-in-time copy of the serving metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Pre-grows the pool to at least `sets` per half (rounded up to a
    /// whole number of chunks), e.g. to warm an index before serving.
    pub fn warm(&self, sets: usize) -> Result<(), IndexError> {
        self.grow_to(sets)?;
        Ok(())
    }

    /// Answers one IM query: `k` seeds at accuracy `ε` and failure
    /// probability `δ`, certified by the OPIM bounds over a snapshot of
    /// the pool. Safe to call from any number of threads concurrently;
    /// behavior per query matches [`RrIndex::query`], with growth rounds
    /// delegated to the shared writer (a thread that finds the pool
    /// already grown past its target reuses it instead of generating).
    pub fn query(&self, k: usize, epsilon: f64, delta: f64) -> Result<QueryAnswer, IndexError> {
        let opts = ImOptions::new(k).epsilon(epsilon).delta(delta);
        opts.validate(self.g)?;
        let start = Instant::now();
        let n = self.g.n();
        let target = 1.0 - (-1.0f64).exp() - epsilon;
        let theta_max = theta_max_opim(n, k, epsilon, delta);
        let theta0 = theta_zero(delta);
        let imax = i_max(theta_max, theta0);
        let delta_iter = delta / (3.0 * imax as f64);

        let mut snap = self.load();
        let pool_before = snap.pool_len();
        let mut fresh = 0usize;
        if snap.pool_len() < theta0 as usize {
            let (grown, added) = self.grow_to(theta0 as usize)?;
            snap = grown;
            fresh += added;
        }
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            // Sentinel snapshots re-certify through the HIST-style round
            // so the answer keeps the full (k, ε, δ) guarantee; sketched
            // snapshots run the slack-adjusted round; plain snapshots run
            // the standard OPIM round.
            let (seeds, lower, upper, slack_failed) = if let Some(sk) = &snap.sketch {
                let t = Instant::now();
                let eval = evaluate_pool_sketched(
                    &snap.r1,
                    sk,
                    k,
                    delta_iter,
                    delta_iter,
                    self.config.threads,
                );
                self.metrics.record_selection(t.elapsed());
                let slack = eval.failed_on_slack(target);
                (eval.seeds, eval.lower, eval.upper, slack)
            } else {
                let (eval, cert_time) = match snap.sentinel.as_ref().filter(|st| !st.set.is_empty())
                {
                    Some(st) => {
                        let t = Instant::now();
                        let eval = evaluate_pool_sentinel(
                            &snap.r1,
                            &snap.r2,
                            &st.set,
                            self.g,
                            k,
                            delta_iter,
                            delta_iter,
                            self.config.threads,
                        );
                        (eval, t.elapsed())
                    }
                    None => evaluate_pool_timed_par(
                        &snap.r1,
                        &snap.r2,
                        k,
                        delta_iter,
                        delta_iter,
                        self.config.threads,
                    ),
                };
                self.metrics.record_selection(cert_time);
                (eval.seeds, eval.lower, eval.upper, false)
            };
            let certified = if upper <= 0.0 {
                false
            } else {
                lower / upper > target
            };
            if certified || snap.pool_len() as f64 >= theta_max {
                let elapsed = start.elapsed();
                let stats = QueryStats {
                    k,
                    epsilon,
                    delta,
                    pool_before,
                    pool_after: snap.pool_len(),
                    fresh_sets: fresh,
                    rounds,
                    lower_bound: lower,
                    upper_bound: upper,
                    target_ratio: target,
                    certified_by_bounds: certified,
                    elapsed,
                };
                self.metrics.record_query(&stats);
                return Ok(QueryAnswer { seeds, stats });
            }
            // Error-adaptive ladder, as in the sequential index: a round
            // that failed on sketch slack promotes register precision
            // instead of growing the pool.
            if slack_failed {
                let observed = snap.sketch.as_ref().map(|sk| sk.precision());
                if observed.is_some_and(|p| p < MAX_PRECISION) {
                    let (grown, added) = self.promote_sketch(observed.unwrap())?;
                    snap = grown;
                    fresh += added;
                    continue;
                }
            }
            let next = snap
                .pool_len()
                .saturating_mul(2)
                .min(theta_max.ceil() as usize);
            let (grown, added) = self.grow_to(next)?;
            snap = grown;
            fresh += added;
        }
    }

    /// Error-adaptive ladder step: regenerates the `R₂` chunk stream at
    /// the next register precision above `observed` and publishes the
    /// promoted snapshot, exactly as the sequential index does. If a
    /// racing thread already promoted past `observed`, the current
    /// snapshot is returned with no work done (the caller re-evaluates).
    fn promote_sketch(&self, observed: u8) -> Result<(Arc<PoolSnapshot>, usize), IndexError> {
        let workers = self.writer.lock().expect("writer lock poisoned");
        let base = self.load();
        let Some(old) = base.sketch.as_ref() else {
            return Ok((base, 0));
        };
        if old.precision() != observed {
            return Ok((base, 0));
        }
        let precision = observed + 1;
        let chunk = self.config.chunk_size;
        let slice = (self.config.threads as u64) * 4;
        let mut fresh = SketchedPool::new(self.g.n(), chunk, precision);
        let mut start = 0u64;
        let mut regenerated = 0usize;
        while start < base.chunks {
            let end = base.chunks.min(start + slice);
            let b = workers.try_generate_chunks(
                &self.sampler,
                None,
                start..end,
                chunk,
                self.config.seed ^ R2_STREAM,
            )?;
            self.metrics.record_generation(
                b.rr.len() as u64,
                b.rr.total_nodes() as u64,
                b.cost,
                b.elapsed,
            );
            regenerated += b.rr.len();
            fresh.absorb_batch(start, &b.rr);
            start = end;
        }
        let snap = Arc::new(PoolSnapshot {
            r1: base.r1.clone(),
            r2: base.r2.clone(),
            chunks: base.chunks,
            sentinel: base.sentinel.clone(),
            sketch: Some(fresh),
        });
        *self.snapshot.write().expect("snapshot lock poisoned") = Arc::clone(&snap);
        self.metrics
            .snapshot_publishes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.record_pool_gauges(&snap);
        Ok((snap, regenerated))
    }

    /// Refreshes the resident-memory gauges from a freshly published
    /// snapshot. Exact bytes use the sketch tier's accounting convention
    /// (4 bytes per arena node entry + 8 per set of offset overhead) so
    /// the compression ratio compares like with like.
    fn record_pool_gauges(&self, snap: &PoolSnapshot) {
        let exact = 4 * (snap.r1.total_nodes() + snap.r2.total_nodes()) as u64
            + 8 * (snap.r1.len() + snap.r2.len()) as u64;
        let (sketch, displaced) = snap.sketch.as_ref().map_or((0, 0), |sk| {
            (sk.resident_bytes(), sk.displaced_exact_bytes())
        });
        self.metrics.record_pool_bytes(exact, sketch, displaced);
    }

    /// Grows the pool to at least `target_sets` per half, continuing the
    /// deterministic chunk stream, and returns the snapshot to continue
    /// with plus how many sets this call freshly generated (both halves
    /// combined — `0` when another thread had already grown past the
    /// target).
    ///
    /// Only one thread generates at a time; on a [`IndexError::MemoryBudget`]
    /// failure any complete slices generated before the budget check are
    /// still published (matching the sequential index, which keeps partial
    /// progress when `ensure_pool` errors mid-growth).
    fn grow_to(&self, target_sets: usize) -> Result<(Arc<PoolSnapshot>, usize), IndexError> {
        let chunk = self.config.chunk_size;
        let needed_chunks = target_sets.div_ceil(chunk) as u64;
        {
            let snap = self.load();
            if snap.chunks >= needed_chunks {
                return Ok((snap, 0));
            }
        }
        let workers = self.writer.lock().expect("writer lock poisoned");
        // Re-check under the guard: the pool may have grown while this
        // thread waited for a predecessor writer.
        let base = self.load();
        if base.chunks >= needed_chunks {
            return Ok((base, 0));
        }

        let slice = (self.config.threads as u64) * 4;
        let mut r1 = base.r1.clone();
        let mut r2 = base.r2.clone();
        let mut chunks = base.chunks;
        let mut sentinel = base.sentinel.clone();
        let mut sketch = base.sketch.clone();
        let mut added = 0usize;
        let mut budget_err = None;
        while chunks < needed_chunks {
            if let Some(cap) = self.config.max_nodes {
                let in_use = r1.total_nodes()
                    + r2.total_nodes()
                    + sketch
                        .as_ref()
                        .map_or(0, |sk| sk.resident_bytes() as usize / 4);
                if in_use >= cap {
                    budget_err = Some(IndexError::MemoryBudget {
                        max_nodes: cap,
                        in_use,
                        wanted_sets: needed_chunks as usize * chunk,
                    });
                    break;
                }
            }
            // Crossing the plain warmup prefix activates the sentinel
            // tier, exactly as in the sequential `ensure_pool` — the
            // successor snapshot carries the new state.
            if self.config.sentinels > 0 && sentinel.is_none() && chunks >= SENTINEL_WARMUP_CHUNKS {
                sentinel = Some(SentinelState {
                    set: SentinelSet::select(&[&r1], self.g, self.config.sentinels),
                    from_chunk: chunks,
                    chunk_hits_r1: vec![0; chunks as usize],
                    chunk_hits_r2: vec![0; chunks as usize],
                });
            }
            let mut end = needed_chunks.min(chunks + slice);
            if self.config.sentinels > 0 && sentinel.is_none() {
                // Still inside the warmup prefix: stop this slice at the
                // boundary so the next iteration selects Z before any
                // truncated chunk is generated.
                end = end.min(SENTINEL_WARMUP_CHUNKS.max(chunks + 1));
            }
            let z = sentinel
                .as_ref()
                .filter(|st| !st.set.is_empty())
                .map(|st| st.set.nodes());
            let truncating = z.is_some();
            let b1 = workers.try_generate_chunks(
                &self.sampler,
                z,
                chunks..end,
                chunk,
                self.config.seed,
            )?;
            let b2 = workers.try_generate_chunks(
                &self.sampler,
                z,
                chunks..end,
                chunk,
                self.config.seed ^ R2_STREAM,
            )?;
            if let Some(st) = &mut sentinel {
                st.chunk_hits_r1.extend_from_slice(&b1.chunk_hits);
                st.chunk_hits_r2.extend_from_slice(&b2.chunk_hits);
            }
            let sets = (b1.rr.len() + b2.rr.len()) as u64;
            let nodes = (b1.rr.total_nodes() + b2.rr.total_nodes()) as u64;
            self.metrics
                .record_generation(sets, nodes, b1.cost + b2.cost, b1.elapsed + b2.elapsed);
            if truncating {
                self.metrics
                    .record_sentinel(b1.sentinel_hits + b2.sentinel_hits, sets, nodes);
            }
            added += b1.rr.len() + b2.rr.len();
            r1.extend_from(&b1.rr);
            if let Some(sk) = &mut sketch {
                sk.absorb_batch(chunks, &b2.rr);
            } else {
                r2.extend_from(&b2.rr);
            }
            chunks = end;
        }

        let snap = Arc::new(PoolSnapshot {
            r1,
            r2,
            chunks,
            sentinel,
            sketch,
        });
        if added > 0 {
            *self.snapshot.write().expect("snapshot lock poisoned") = Arc::clone(&snap);
            self.metrics
                .snapshot_publishes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.record_pool_gauges(&snap);
        }
        match budget_err {
            Some(err) => Err(err),
            None => Ok((snap, added)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_diffusion::RrStrategy;
    use subsim_graph::generators::{barabasi_albert, star_graph};
    use subsim_graph::WeightModel;

    fn config() -> IndexConfig {
        IndexConfig::new(RrStrategy::SubsimIc)
            .seed(5)
            .chunk_size(64)
    }

    #[test]
    fn matches_sequential_index_exactly_when_unraced() {
        let g = barabasi_albert(300, 4, WeightModel::Wc, 1);
        let mut seq = RrIndex::new(&g, config());
        let conc = ConcurrentRrIndex::new(&g, config());
        for (k, eps) in [(5usize, 0.1f64), (2, 0.2), (5, 0.1)] {
            let a = seq.query(k, eps, 0.01).unwrap();
            let b = conc.query(k, eps, 0.01).unwrap();
            assert_eq!(a.seeds, b.seeds, "k={k} eps={eps}");
            assert_eq!(a.stats.lower_bound, b.stats.lower_bound);
            assert_eq!(a.stats.upper_bound, b.stats.upper_bound);
            assert_eq!(a.stats.pool_after, b.stats.pool_after);
            assert_eq!(a.stats.fresh_sets, b.stats.fresh_sets);
        }
    }

    #[test]
    fn snapshot_is_stable_across_growth() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 2);
        let conc = ConcurrentRrIndex::new(&g, config());
        conc.warm(128).unwrap();
        let before = conc.load();
        let first: Vec<_> = (0..before.pool_len())
            .map(|i| before.selection_pool().get(i).to_vec())
            .collect();
        conc.warm(1024).unwrap();
        // The old Arc still shows exactly the old pool.
        assert_eq!(before.pool_len(), 128);
        for (i, rr) in first.iter().enumerate() {
            assert_eq!(before.selection_pool().get(i), rr.as_slice());
        }
        // And the new snapshot extends it, bit-identical on the prefix.
        let after = conc.load();
        assert!(after.pool_len() >= 1024);
        for (i, rr) in first.iter().enumerate() {
            assert_eq!(after.selection_pool().get(i), rr.as_slice(), "set {i}");
        }
    }

    #[test]
    fn from_and_into_index_round_trip() {
        let g = barabasi_albert(200, 3, WeightModel::Wc, 3);
        let mut seq = RrIndex::new(&g, config());
        seq.warm(256).unwrap();
        let conc = ConcurrentRrIndex::from_index(seq);
        conc.warm(512).unwrap();
        let back = conc.into_index();
        assert_eq!(back.pool_len(), 512);
        assert_eq!(back.chunk_cursor(), 8);
        // Still continues the same stream as a fresh sequential index.
        let mut fresh = RrIndex::new(&g, config());
        fresh.warm(512).unwrap();
        for i in 0..fresh.pool_len() {
            assert_eq!(back.selection_pool().get(i), fresh.selection_pool().get(i));
        }
    }

    #[test]
    fn budget_error_publishes_partial_progress() {
        let g = barabasi_albert(300, 4, WeightModel::Wc, 4);
        let conc = ConcurrentRrIndex::new(&g, config().max_nodes(200));
        let err = conc.query(10, 0.05, 0.001).unwrap_err();
        assert!(matches!(err, IndexError::MemoryBudget { .. }));
        // Partial growth was published, exactly like the sequential index
        // keeps partial progress.
        assert!(conc.load().pool_len() > 0);
        let mut seq = RrIndex::new(&g, config().max_nodes(200));
        seq.query(10, 0.05, 0.001).unwrap_err();
        assert_eq!(conc.load().pool_len(), seq.pool_len());
    }

    #[test]
    fn rejects_invalid_queries() {
        let g = star_graph(10, WeightModel::Wc);
        let conc = ConcurrentRrIndex::new(&g, config());
        assert!(matches!(
            conc.query(0, 0.1, 0.01),
            Err(IndexError::Options(_))
        ));
        assert!(matches!(
            conc.query(2, 0.9, 0.01),
            Err(IndexError::Options(_))
        ));
    }

    #[test]
    fn sentinel_growth_matches_sequential_index() {
        let g = barabasi_albert(300, 4, WeightModel::Wc, 6);
        let mut seq = RrIndex::new(&g, config().sentinels(2));
        let conc = ConcurrentRrIndex::new(&g, config().sentinels(2));
        seq.warm(640).unwrap();
        conc.warm(640).unwrap();
        let snap = conc.load();
        assert_eq!(snap.sentinel_state(), seq.sentinel_state());
        for i in 0..seq.pool_len() {
            assert_eq!(snap.selection_pool().get(i), seq.selection_pool().get(i));
            assert_eq!(snap.validation_pool().get(i), seq.validation_pool().get(i));
        }
        // Warm queries answer identically (same pool, same sentinel-aware
        // certification), and the concurrent side records sentinel metrics.
        let a = seq.query(5, 0.1, 0.01).unwrap();
        let b = conc.query(5, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.stats.lower_bound, b.stats.lower_bound);
        assert_eq!(a.stats.upper_bound, b.stats.upper_bound);
        let m = conc.metrics();
        assert!(m.truncated_sets_generated > 0);
        assert!(m.sentinel_hits > 0);
        assert!(m.mean_rr_size_truncated < m.mean_rr_size_plain);
        // Round-tripping back out keeps the sentinel state.
        let back = conc.into_index();
        assert_eq!(back.sentinel_state(), seq.sentinel_state());
    }

    #[test]
    fn sketched_growth_and_queries_match_sequential_index() {
        let g = barabasi_albert(300, 4, WeightModel::Wc, 7);
        let mut seq = RrIndex::new(&g, config().sketch(6));
        let conc = ConcurrentRrIndex::new(&g, config().sketch(6));
        seq.warm(640).unwrap();
        conc.warm(640).unwrap();
        let snap = conc.load();
        assert_eq!(snap.sketch_state(), seq.sketch_state());
        assert_eq!(snap.validation_pool().len(), 0);
        for i in 0..seq.pool_len() {
            assert_eq!(snap.selection_pool().get(i), seq.selection_pool().get(i));
        }
        drop(snap);
        // Warm queries answer identically: same pool, same slack-adjusted
        // certificate, same ladder decisions.
        let a = seq.query(5, 0.1, 0.01).unwrap();
        let b = conc.query(5, 0.1, 0.01).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.stats.lower_bound, b.stats.lower_bound);
        assert_eq!(a.stats.upper_bound, b.stats.upper_bound);
        assert_eq!(a.stats.pool_after, b.stats.pool_after);
        assert_eq!(a.stats.fresh_sets, b.stats.fresh_sets);
        // The memory gauges see the sketched tier.
        let m = conc.metrics();
        assert!(m.sketch_pool_bytes > 0);
        assert!(m.sketch_displaced_bytes > 0);
        assert!(m.sketch_compression > 0.0);
        // Round-tripping back out keeps the sketch state — including a
        // possible ladder promotion, on which both stacks must agree.
        let back = conc.into_index();
        assert_eq!(back.sketch_state(), seq.sketch_state());
        assert_eq!(back.config().sketch, seq.config().sketch);
    }

    #[test]
    fn metrics_track_queries_and_publishes() {
        let g = barabasi_albert(300, 4, WeightModel::Wc, 5);
        let conc = ConcurrentRrIndex::new(&g, config());
        conc.query(5, 0.1, 0.01).unwrap();
        conc.query(5, 0.1, 0.01).unwrap();
        let m = conc.metrics();
        assert_eq!(m.queries, 2);
        assert!(m.snapshot_publishes >= 1);
        assert!(m.exact_pool_bytes > 0);
        assert_eq!(m.sketch_pool_bytes, 0, "sketch tier off → gauge stays 0");
        assert_eq!(m.sketch_compression, 0.0);
        assert!(m.fresh_sets > 0);
        assert!(m.reused_sets > 0, "second query must reuse the pool");
        assert!(m.cache_hit_ratio > 0.0);
        assert!(m.latency_p50_ns > 0);
        assert!(m.rr_sets_generated as usize == 2 * conc.load().pool_len());
    }
}
