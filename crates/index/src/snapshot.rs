//! Versioned snapshot persistence for [`RrIndex`].
//!
//! Layout (little-endian), a header over two standard RR-collection blobs
//! (the `SUBSIMRR` format of `subsim_diffusion::serialize`):
//!
//! ```text
//! magic "SUBSIMIX" | version u32
//! graph fingerprint u64 | strategy u8 | seed u64
//! chunk_size u64 | chunks u64
//! sentinel flag u8 (v3+); if 1:
//!   from_chunk u64 | z_len u64 | z: u32 × z_len
//!   chunk_hits_r1: u64 × chunks | chunk_hits_r2: u64 × chunks
//! sketch flag u8 (v4+); if 1:
//!   SUBSIMSK block (subsim_sketch::SketchedPool canonical form)
//! r1: blob_len u64 | SUBSIMRR bytes
//! r2: blob_len u64 | SUBSIMRR bytes (0 sets when the sketch flag is 1)
//! checksum u64 (FNV-1a over every preceding byte)
//! ```
//!
//! Loading re-fingerprints the *provided* graph and refuses a snapshot
//! whose fingerprint, strategy stream, or internal set counts disagree —
//! a warmed pool is only sound against the exact graph and RNG stream
//! that produced it. The trailing checksum closes the remaining gap:
//! fields the structural checks cannot validate (the stored seed, bytes
//! inside the RR arenas) would otherwise load *silently wrong*, changing
//! the pool's identity without any error. Version 2 of the format makes
//! every single-byte corruption a typed [`IndexError::SnapshotMismatch`].
//! Version 3 adds the sentinel block: a sentinel pool's truncated chunks
//! are only certifiable *through* its set `Z`, so persisting the pool
//! without `Z` would silently change query semantics — a corrupt or
//! missing sentinel block must therefore be a typed refusal, never a
//! fallback to plain-pool answers. Version 4 adds the sketch block: a
//! sketched pool persists its per-chunk count-distinct registers instead
//! of an `R₂` arena, and a corrupt sketch block is likewise a typed
//! refusal — never a silent fallback to exact validation (which the
//! snapshot does not even contain). Version-2 and version-3 snapshots
//! still load.

use crate::error::IndexError;
use crate::fingerprint::graph_fingerprint;
use crate::index::{IndexConfig, RrIndex, SentinelState};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;
use subsim_core::sentinel::SentinelSet;
use subsim_diffusion::serialize::{read_rr_collection, write_rr_collection};
use subsim_diffusion::RrStrategy;
use subsim_graph::Graph;
use subsim_sketch::SketchedPool;

const MAGIC: &[u8; 8] = b"SUBSIMIX";
const VERSION: u32 = 4;
/// Oldest version still loadable (plain pools only — the sentinel block
/// did not exist yet).
const MIN_VERSION: u32 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hashes every byte that passes through on its way to `inner`, so the
/// writer can append a checksum without buffering the whole snapshot.
struct HashingWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash = fnv1a(self.hash, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The read-side twin: hashes every byte handed to the parser, so the
/// trailer comparison covers exactly the bytes the parser consumed.
struct HashingReader<R: Read> {
    inner: R,
    hash: u64,
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash = fnv1a(self.hash, &buf[..n]);
        Ok(n)
    }
}

fn strategy_code(s: RrStrategy) -> u8 {
    match s {
        RrStrategy::VanillaIc => 0,
        RrStrategy::SubsimIc => 1,
        RrStrategy::SubsimBucketIc => 2,
        RrStrategy::Lt => 3,
    }
}

fn strategy_from_code(code: u8) -> Option<RrStrategy> {
    match code {
        0 => Some(RrStrategy::VanillaIc),
        1 => Some(RrStrategy::SubsimIc),
        2 => Some(RrStrategy::SubsimBucketIc),
        3 => Some(RrStrategy::Lt),
        _ => None,
    }
}

fn mismatch(reason: impl Into<String>) -> IndexError {
    IndexError::SnapshotMismatch {
        reason: reason.into(),
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes `index`'s pool and RNG cursor to `w`.
pub fn write_index<W: Write>(index: &RrIndex<'_>, w: W) -> Result<(), IndexError> {
    let mut w = HashingWriter {
        inner: io::BufWriter::new(w),
        hash: FNV_OFFSET,
    };
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&graph_fingerprint(index.graph()).to_le_bytes())?;
    w.write_all(&[strategy_code(index.config().strategy)])?;
    w.write_all(&index.config().seed.to_le_bytes())?;
    w.write_all(&(index.config().chunk_size as u64).to_le_bytes())?;
    w.write_all(&index.chunk_cursor().to_le_bytes())?;
    match index.sentinel_state() {
        Some(st) => {
            w.write_all(&[1u8])?;
            w.write_all(&st.from_chunk.to_le_bytes())?;
            w.write_all(&(st.set.len() as u64).to_le_bytes())?;
            for &v in st.set.nodes() {
                w.write_all(&v.to_le_bytes())?;
            }
            for hits in [&st.chunk_hits_r1, &st.chunk_hits_r2] {
                for &h in hits {
                    w.write_all(&h.to_le_bytes())?;
                }
            }
        }
        None => w.write_all(&[0u8])?,
    }
    match index.sketch_state() {
        Some(sk) => {
            w.write_all(&[1u8])?;
            sk.write_to(&mut w)?;
        }
        None => w.write_all(&[0u8])?,
    }
    // For a sketched index `validation_pool()` is the empty collection —
    // the r2 blob below carries 0 sets and the sketch block above is the
    // only persisted validation tier.
    for rr in [index.selection_pool(), index.validation_pool()] {
        let mut blob = Vec::new();
        write_rr_collection(rr, &mut blob)?;
        w.write_all(&(blob.len() as u64).to_le_bytes())?;
        w.write_all(&blob)?;
    }
    // The trailer goes through `inner` directly: the checksum covers
    // every byte before it, not itself.
    let digest = w.hash;
    w.inner.write_all(&digest.to_le_bytes())?;
    w.inner.flush()?;
    Ok(())
}

/// Reads an index previously written by [`write_index`], re-binding it to
/// `g` after verifying the fingerprint.
///
/// The restored config carries the snapshot's `strategy`, `seed`, and
/// `chunk_size` (they define the pool's identity); `threads` resets to 1
/// and `max_nodes` to unlimited — adjust via [`RrIndex::set_threads`] /
/// [`RrIndex::set_max_nodes`]. Counters restart at zero.
pub fn read_index<'g, R: Read>(g: &'g Graph, r: R) -> Result<RrIndex<'g>, IndexError> {
    let mut r = HashingReader {
        inner: io::BufReader::new(r),
        hash: FNV_OFFSET,
    };
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(mismatch("not a subsim-index snapshot"));
    }
    let version = read_u32(&mut r)?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(mismatch(format!(
            "unsupported snapshot version {version} (this build reads {MIN_VERSION}..={VERSION})"
        )));
    }
    let fingerprint = read_u64(&mut r)?;
    let expected = graph_fingerprint(g);
    if fingerprint != expected {
        return Err(mismatch(format!(
            "graph fingerprint {fingerprint:#018x} does not match the \
             provided graph ({expected:#018x}) — wrong graph or weights"
        )));
    }
    let mut code = [0u8; 1];
    r.read_exact(&mut code)?;
    let strategy = strategy_from_code(code[0])
        .ok_or_else(|| mismatch(format!("unknown RR strategy code {}", code[0])))?;
    let seed = read_u64(&mut r)?;
    let chunk_size = read_u64(&mut r)? as usize;
    if chunk_size == 0 {
        return Err(mismatch("zero chunk size"));
    }
    let chunks = read_u64(&mut r)?;
    let expected_sets = chunks
        .checked_mul(chunk_size as u64)
        .ok_or_else(|| mismatch("set count overflows"))?;

    let sentinel = if version >= 3 {
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        match flag[0] {
            0 => None,
            1 => {
                let from_chunk = read_u64(&mut r)?;
                if from_chunk > chunks {
                    return Err(mismatch(format!(
                        "sentinel boundary {from_chunk} is beyond the chunk cursor {chunks}"
                    )));
                }
                let z_len = read_u64(&mut r)?;
                if z_len == 0 || z_len > g.n() as u64 {
                    return Err(mismatch(format!(
                        "sentinel set of {z_len} nodes is impossible for {} nodes",
                        g.n()
                    )));
                }
                let mut z = Vec::with_capacity(z_len as usize);
                for _ in 0..z_len {
                    let v = read_u32(&mut r)?;
                    if v as usize >= g.n() {
                        return Err(mismatch(format!(
                            "sentinel node {v} out of range for {} nodes",
                            g.n()
                        )));
                    }
                    z.push(v);
                }
                let mut halves_hits = [Vec::new(), Vec::new()];
                for hits in &mut halves_hits {
                    // Element-wise reads (no capacity hint from the
                    // untrusted `chunks`): a corrupt cursor errors at EOF
                    // instead of a giant allocation.
                    for _ in 0..chunks {
                        hits.push(read_u64(&mut r)?);
                    }
                }
                let [chunk_hits_r1, chunk_hits_r2] = halves_hits;
                let set = SentinelSet::from_nodes(z.clone());
                if set.len() as u64 != z_len {
                    return Err(mismatch("sentinel set holds duplicate nodes"));
                }
                Some(SentinelState {
                    set,
                    from_chunk,
                    chunk_hits_r1,
                    chunk_hits_r2,
                })
            }
            other => return Err(mismatch(format!("unknown sentinel flag {other}"))),
        }
    } else {
        None
    };

    let sketch = if version >= 4 {
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        match flag[0] {
            0 => None,
            1 => {
                // The sketch block validates its own structure; any
                // refusal is a typed mismatch — a snapshot flagged as
                // sketched carries no exact R₂ to fall back to.
                let sk = SketchedPool::read_from(&mut r).map_err(|e| match e.kind() {
                    io::ErrorKind::InvalidData => mismatch(format!("sketch block: {e}")),
                    io::ErrorKind::UnexpectedEof => mismatch("truncated sketch block"),
                    _ => IndexError::from(e),
                })?;
                if sk.graph_n() != g.n() {
                    return Err(mismatch(format!(
                        "sketch is over {} nodes, graph has {}",
                        sk.graph_n(),
                        g.n()
                    )));
                }
                if sk.chunk_size() != chunk_size {
                    return Err(mismatch(format!(
                        "sketch chunk size {} disagrees with header chunk size {chunk_size}",
                        sk.chunk_size()
                    )));
                }
                if sk.num_chunks() as u64 != chunks {
                    return Err(mismatch(format!(
                        "sketch covers {} chunks, RNG cursor implies {chunks}",
                        sk.num_chunks()
                    )));
                }
                Some(sk)
            }
            other => return Err(mismatch(format!("unknown sketch flag {other}"))),
        }
    } else {
        None
    };
    if sentinel.is_some() && sketch.is_some() {
        return Err(mismatch(
            "snapshot carries both a sentinel and a sketch tier — they are mutually exclusive",
        ));
    }

    // A sketched snapshot persists validation only as registers: its r2
    // blob must hold exactly 0 sets.
    let r2_sets = if sketch.is_some() { 0 } else { expected_sets };
    let mut halves = Vec::with_capacity(2);
    for (half, want) in [("r1", expected_sets), ("r2", r2_sets)] {
        let blob_len = read_u64(&mut r)?;
        // Growing lazily via `take` + `read_to_end` means a corrupt length
        // errors after reading only what actually exists (cf. serialize.rs).
        let mut blob = Vec::new();
        r.by_ref().take(blob_len).read_to_end(&mut blob)?;
        if blob.len() as u64 != blob_len {
            return Err(mismatch(format!("truncated {half} blob")));
        }
        let rr = read_rr_collection(blob.as_slice())?;
        if rr.graph_n() != g.n() {
            return Err(mismatch(format!(
                "{half} stores sets over {} nodes, graph has {}",
                rr.graph_n(),
                g.n()
            )));
        }
        if rr.len() as u64 != want {
            return Err(mismatch(format!(
                "{half} holds {} sets, snapshot layout implies {want}",
                rr.len()
            )));
        }
        halves.push(rr);
    }
    // Everything parsed structurally; now the trailer must match the
    // hash of the bytes actually consumed. This is what catches
    // corruption in fields with no structural redundancy (the seed, a
    // node id inside an arena) before they become silent wrong answers.
    let digest = r.hash;
    let mut trailer = [0u8; 8];
    r.inner.read_exact(&mut trailer)?;
    if u64::from_le_bytes(trailer) != digest {
        return Err(mismatch("checksum mismatch — snapshot bytes are corrupt"));
    }
    let r2 = halves.pop().expect("two halves read");
    let r1 = halves.pop().expect("two halves read");

    let config = IndexConfig {
        strategy,
        seed,
        threads: 1,
        chunk_size,
        max_nodes: None,
        // Restoring `sentinels` from the persisted set keeps growth
        // truncating on the same Z; plain snapshots stay plain.
        sentinels: sentinel.as_ref().map_or(0, |st| st.set.len()),
        // `set_sketch_state` below restores the live precision.
        sketch: 0,
    };
    let mut index = RrIndex::from_parts(g, config, r1, r2, chunks);
    index.set_sentinel_state(sentinel)?;
    index.set_sketch_state(sketch)?;
    Ok(index)
}

impl<'g> RrIndex<'g> {
    /// Writes the pool + RNG cursor to `w` ([`write_index`]).
    pub fn save<W: Write>(&self, w: W) -> Result<(), IndexError> {
        write_index(self, w)
    }

    /// Writes the snapshot to a file.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> Result<(), IndexError> {
        self.save(File::create(path)?)
    }

    /// Reads a snapshot from `r`, bound to `g` ([`read_index`]).
    pub fn load<R: Read>(g: &'g Graph, r: R) -> Result<Self, IndexError> {
        read_index(g, r)
    }

    /// Reads a snapshot from a file.
    pub fn load_from_path<P: AsRef<Path>>(g: &'g Graph, path: P) -> Result<Self, IndexError> {
        Self::load(g, File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::barabasi_albert;
    use subsim_graph::WeightModel;

    fn warmed_index(g: &Graph) -> RrIndex<'_> {
        let mut index = RrIndex::new(
            g,
            IndexConfig::new(RrStrategy::SubsimIc)
                .seed(9)
                .chunk_size(32),
        );
        index.warm(200).unwrap();
        index
    }

    #[test]
    fn roundtrip_preserves_pool_and_cursor() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 41);
        let index = warmed_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let back = RrIndex::load(&g, buf.as_slice()).unwrap();
        assert_eq!(back.pool_len(), index.pool_len());
        assert_eq!(back.chunk_cursor(), index.chunk_cursor());
        assert_eq!(back.config().seed, 9);
        assert_eq!(back.config().chunk_size, 32);
        for i in 0..index.pool_len() {
            assert_eq!(back.selection_pool().get(i), index.selection_pool().get(i));
            assert_eq!(
                back.validation_pool().get(i),
                index.validation_pool().get(i)
            );
        }
    }

    #[test]
    fn loaded_index_continues_the_same_stream() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 42);
        let mut fresh = warmed_index(&g);
        let mut buf = Vec::new();
        fresh.save(&mut buf).unwrap();
        let mut loaded = RrIndex::load(&g, buf.as_slice()).unwrap();
        // Growing both must produce identical continuations.
        fresh.warm(500).unwrap();
        loaded.warm(500).unwrap();
        assert_eq!(fresh.pool_len(), loaded.pool_len());
        for i in 0..fresh.pool_len() {
            assert_eq!(
                fresh.selection_pool().get(i),
                loaded.selection_pool().get(i)
            );
        }
    }

    #[test]
    fn rejects_wrong_graph() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 43);
        let index = warmed_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let other = barabasi_albert(150, 3, WeightModel::Wc, 44);
        let err = RrIndex::load(&other, buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, IndexError::SnapshotMismatch { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn rejects_corrupt_bytes() {
        let g = barabasi_albert(120, 3, WeightModel::Wc, 45);
        let index = warmed_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(RrIndex::load(&g, bad.as_slice()).is_err());
        // Truncation at every quarter.
        for cut in [buf.len() / 4, buf.len() / 2, buf.len() - 3] {
            let mut bad = buf.clone();
            bad.truncate(cut);
            assert!(RrIndex::load(&g, bad.as_slice()).is_err(), "cut at {cut}");
        }
        // Corrupt strategy code (byte 20: after magic + version + fingerprint).
        let mut bad = buf.clone();
        bad[20] = 0x7f;
        assert!(RrIndex::load(&g, bad.as_slice()).is_err());
    }

    #[test]
    fn flipped_strategy_byte_never_swaps_the_model_silently() {
        // A *valid but different* strategy code with a refreshed trailer
        // parses fine — the pool bytes carry no per-set strategy tag. The
        // loaded config then claims the wrong diffusion model, which is
        // exactly what `ensure_strategy` (the guard every serving loader
        // calls against its configured strategy) must turn into a typed
        // refusal rather than a silent model swap.
        let g = barabasi_albert(120, 3, WeightModel::Wc, 46);
        let index = warmed_index(&g); // SubsimIc, code 1
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let mut flipped = buf.clone();
        flipped[20] = 3; // RrStrategy::Lt
        refresh_trailer(&mut flipped);
        let loaded = RrIndex::load(&g, flipped.as_slice()).unwrap();
        assert_eq!(loaded.config().strategy, RrStrategy::Lt);
        let err = loaded
            .ensure_strategy(RrStrategy::SubsimIc)
            .expect_err("an LT-stamped pool must not serve an IC server");
        assert!(
            matches!(err, IndexError::SnapshotMismatch { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("Lt"), "{err}");
        // The untampered snapshot passes its own guard.
        let clean = RrIndex::load(&g, buf.as_slice()).unwrap();
        clean.ensure_strategy(RrStrategy::SubsimIc).unwrap();
    }

    fn sentinel_index(g: &Graph) -> RrIndex<'_> {
        let mut index = RrIndex::new(
            g,
            IndexConfig::new(RrStrategy::SubsimIc)
                .seed(9)
                .chunk_size(32)
                .sentinels(2),
        );
        // Past the warmup prefix: the tier activates and truncated
        // chunks exist.
        index.warm(320).unwrap();
        assert!(index.sentinel_state().is_some());
        index
    }

    /// Recomputes the FNV trailer after a test poked the bytes, so the
    /// *structural* sentinel checks are exercised (not just the checksum).
    fn refresh_trailer(buf: &mut [u8]) {
        let body = buf.len() - 8;
        let digest = fnv1a(FNV_OFFSET, &buf[..body]);
        buf[body..].copy_from_slice(&digest.to_le_bytes());
    }

    /// Byte offset of the sentinel flag: magic + version + fingerprint +
    /// strategy + seed + chunk_size + chunks.
    const SENTINEL_FLAG_AT: usize = 8 + 4 + 8 + 1 + 8 + 8 + 8;
    /// Byte offset of the sketch flag when the sentinel flag is 0 (the
    /// two tiers are mutually exclusive, so this holds for every
    /// sketched snapshot).
    const SKETCH_FLAG_AT: usize = SENTINEL_FLAG_AT + 1;

    #[test]
    fn sentinel_state_round_trips_and_continues_truncating() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 47);
        let mut index = sentinel_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let mut back = RrIndex::load(&g, buf.as_slice()).unwrap();
        assert_eq!(back.sentinel_state(), index.sentinel_state());
        assert_eq!(back.config().sentinels, 2);
        // Growth continues the same truncated stream bit for bit.
        index.warm(640).unwrap();
        back.warm(640).unwrap();
        assert_eq!(back.sentinel_state(), index.sentinel_state());
        for i in 0..index.pool_len() {
            assert_eq!(back.selection_pool().get(i), index.selection_pool().get(i));
            assert_eq!(
                back.validation_pool().get(i),
                index.validation_pool().get(i)
            );
        }
    }

    #[test]
    fn plain_snapshot_loads_without_sentinel() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 48);
        let index = warmed_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        assert_eq!(buf[SENTINEL_FLAG_AT], 0);
        let back = RrIndex::load(&g, buf.as_slice()).unwrap();
        assert!(back.sentinel_state().is_none());
        assert_eq!(back.config().sentinels, 0);
    }

    #[test]
    fn version_2_snapshot_still_loads() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 49);
        let index = warmed_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        // A v2 snapshot is the v4 bytes minus the (zero) sentinel and
        // sketch flags, with the version field rewound.
        let mut old = buf.clone();
        old.remove(SENTINEL_FLAG_AT); // sentinel flag
        old.remove(SENTINEL_FLAG_AT); // sketch flag (shifted down one)
        old[8..12].copy_from_slice(&2u32.to_le_bytes());
        refresh_trailer(&mut old);
        let back = RrIndex::load(&g, old.as_slice()).unwrap();
        assert!(back.sentinel_state().is_none());
        assert_eq!(back.pool_len(), index.pool_len());
    }

    #[test]
    fn version_3_snapshot_still_loads() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 49);
        let index = warmed_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        // A v3 snapshot is the v4 bytes minus the (zero) sketch flag.
        let mut old = buf.clone();
        old.remove(SKETCH_FLAG_AT);
        old[8..12].copy_from_slice(&3u32.to_le_bytes());
        refresh_trailer(&mut old);
        let back = RrIndex::load(&g, old.as_slice()).unwrap();
        assert!(back.sketch_state().is_none());
        assert_eq!(back.pool_len(), index.pool_len());
    }

    #[test]
    fn version_error_names_the_supported_range() {
        let g = barabasi_albert(120, 3, WeightModel::Wc, 51);
        let index = warmed_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        refresh_trailer(&mut bad);
        let err = RrIndex::load(&g, bad.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("{MIN_VERSION}..={VERSION}")),
            "version error should name the supported range: {msg}"
        );
    }

    #[test]
    fn corrupt_sentinel_block_is_a_typed_mismatch() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 50);
        let index = sentinel_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        assert_eq!(buf[SENTINEL_FLAG_AT], 1);

        // Flipped byte inside the block: the checksum refuses it.
        let mut bad = buf.clone();
        bad[SENTINEL_FLAG_AT + 12] ^= 0x10;
        let err = RrIndex::load(&g, bad.as_slice()).unwrap_err();
        assert!(
            matches!(err, IndexError::SnapshotMismatch { .. }),
            "{err:?}"
        );

        // Structurally impossible fields fail typed even with a valid
        // checksum — never a silent fallback to a plain pool.
        let mut bad = buf.clone();
        bad[SENTINEL_FLAG_AT + 1..SENTINEL_FLAG_AT + 9].copy_from_slice(&u64::MAX.to_le_bytes()); // from_chunk
        refresh_trailer(&mut bad);
        let err = RrIndex::load(&g, bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("sentinel boundary"), "{err}");

        let mut bad = buf.clone();
        bad[SENTINEL_FLAG_AT + 9..SENTINEL_FLAG_AT + 17].copy_from_slice(&u64::MAX.to_le_bytes()); // z_len
        refresh_trailer(&mut bad);
        let err = RrIndex::load(&g, bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("sentinel set"), "{err}");

        let mut bad = buf.clone();
        bad[SENTINEL_FLAG_AT + 17..SENTINEL_FLAG_AT + 21].copy_from_slice(&u32::MAX.to_le_bytes()); // first sentinel node
        refresh_trailer(&mut bad);
        let err = RrIndex::load(&g, bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");

        let mut bad = buf.clone();
        bad[SENTINEL_FLAG_AT] = 7; // unknown flag
        refresh_trailer(&mut bad);
        let err = RrIndex::load(&g, bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("sentinel flag"), "{err}");
    }

    fn sketched_index(g: &Graph) -> RrIndex<'_> {
        let mut index = RrIndex::new(
            g,
            IndexConfig::new(RrStrategy::SubsimIc)
                .seed(9)
                .chunk_size(32)
                .sketch(6),
        );
        index.warm(320).unwrap();
        assert!(index.sketch_state().is_some());
        index
    }

    #[test]
    fn sketched_snapshot_round_trips_and_continues_the_stream() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 52);
        let mut index = sketched_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        assert_eq!(buf[SENTINEL_FLAG_AT], 0);
        assert_eq!(buf[SKETCH_FLAG_AT], 1);
        let mut back = RrIndex::load(&g, buf.as_slice()).unwrap();
        assert_eq!(back.sketch_state(), index.sketch_state());
        assert_eq!(back.config().sketch, 6);
        assert_eq!(back.validation_pool().len(), 0);
        // Growth continues the same sketched stream bit for bit.
        index.warm(640).unwrap();
        back.warm(640).unwrap();
        assert_eq!(back.sketch_state(), index.sketch_state());
        assert_eq!(back.pool_len(), index.pool_len());
        for i in 0..index.pool_len() {
            assert_eq!(back.selection_pool().get(i), index.selection_pool().get(i));
        }
    }

    #[test]
    fn corrupt_sketch_block_is_a_typed_mismatch() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 53);
        let index = sketched_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        assert_eq!(buf[SKETCH_FLAG_AT], 1);
        // Block layout after the flag: SUBSIMSK magic(8) precision(1)
        // chunk_size(8) graph_n(8) count(8) | per-chunk records.
        let block = SKETCH_FLAG_AT + 1;

        // Flipped byte inside the block: the checksum refuses it.
        let mut bad = buf.clone();
        bad[block + 40] ^= 0x10;
        let err = RrIndex::load(&g, bad.as_slice()).unwrap_err();
        assert!(
            matches!(err, IndexError::SnapshotMismatch { .. }),
            "{err:?}"
        );

        // Structurally impossible fields fail typed even with a valid
        // checksum — never a silent fallback to exact validation (the
        // snapshot holds no exact R₂ at all).
        let mut bad = buf.clone();
        bad[block + 8] = 63; // precision outside MIN..=MAX
        refresh_trailer(&mut bad);
        let err = RrIndex::load(&g, bad.as_slice()).unwrap_err();
        assert!(
            matches!(err, IndexError::SnapshotMismatch { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("precision"), "{err}");

        // A sketch whose chunk size disagrees with the header is refused.
        let mut bad = buf.clone();
        bad[block + 9..block + 17].copy_from_slice(&64u64.to_le_bytes());
        refresh_trailer(&mut bad);
        let err = RrIndex::load(&g, bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("chunk size"), "{err}");

        // Unknown flag value.
        let mut bad = buf.clone();
        bad[SKETCH_FLAG_AT] = 7;
        refresh_trailer(&mut bad);
        let err = RrIndex::load(&g, bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("sketch flag"), "{err}");

        // Truncation mid-block.
        let mut bad = buf.clone();
        bad.truncate(block + 20);
        let err = RrIndex::load(&g, bad.as_slice()).unwrap_err();
        assert!(
            matches!(err, IndexError::SnapshotMismatch { .. } | IndexError::Io(_)),
            "{err:?}"
        );
    }

    #[test]
    fn checksum_catches_structurally_valid_corruption() {
        let g = barabasi_albert(120, 3, WeightModel::Wc, 46);
        let index = warmed_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        // Bytes 21..29 hold the stored RNG seed: no structural check can
        // reject a flipped seed bit, and before format v2 it loaded
        // silently with a different pool identity.
        let mut bad = buf.clone();
        bad[22] ^= 0x40;
        let err = RrIndex::load(&g, bad.as_slice()).unwrap_err();
        assert!(
            matches!(err, IndexError::SnapshotMismatch { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("checksum"), "{err}");
        // Same for a byte deep inside an RR arena.
        let mut bad = buf.clone();
        let mid = buf.len() - 16;
        bad[mid] ^= 0x01;
        assert!(RrIndex::load(&g, bad.as_slice()).is_err(), "arena byte");
        // A corrupt trailer itself is also a mismatch, not a pass.
        let mut bad = buf.clone();
        let last = buf.len() - 1;
        bad[last] ^= 0x01;
        assert!(RrIndex::load(&g, bad.as_slice()).is_err(), "trailer byte");
    }
}
