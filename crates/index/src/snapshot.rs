//! Versioned snapshot persistence for [`RrIndex`].
//!
//! Layout (little-endian), a header over two standard RR-collection blobs
//! (the `SUBSIMRR` format of `subsim_diffusion::serialize`):
//!
//! ```text
//! magic "SUBSIMIX" | version u32
//! graph fingerprint u64 | strategy u8 | seed u64
//! chunk_size u64 | chunks u64
//! r1: blob_len u64 | SUBSIMRR bytes
//! r2: blob_len u64 | SUBSIMRR bytes
//! ```
//!
//! Loading re-fingerprints the *provided* graph and refuses a snapshot
//! whose fingerprint, strategy stream, or internal set counts disagree —
//! a warmed pool is only sound against the exact graph and RNG stream
//! that produced it.

use crate::error::IndexError;
use crate::fingerprint::graph_fingerprint;
use crate::index::{IndexConfig, RrIndex};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;
use subsim_diffusion::serialize::{read_rr_collection, write_rr_collection};
use subsim_diffusion::RrStrategy;
use subsim_graph::Graph;

const MAGIC: &[u8; 8] = b"SUBSIMIX";
const VERSION: u32 = 1;

fn strategy_code(s: RrStrategy) -> u8 {
    match s {
        RrStrategy::VanillaIc => 0,
        RrStrategy::SubsimIc => 1,
        RrStrategy::SubsimBucketIc => 2,
        RrStrategy::Lt => 3,
    }
}

fn strategy_from_code(code: u8) -> Option<RrStrategy> {
    match code {
        0 => Some(RrStrategy::VanillaIc),
        1 => Some(RrStrategy::SubsimIc),
        2 => Some(RrStrategy::SubsimBucketIc),
        3 => Some(RrStrategy::Lt),
        _ => None,
    }
}

fn mismatch(reason: impl Into<String>) -> IndexError {
    IndexError::SnapshotMismatch {
        reason: reason.into(),
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes `index`'s pool and RNG cursor to `w`.
pub fn write_index<W: Write>(index: &RrIndex<'_>, w: W) -> Result<(), IndexError> {
    let mut w = io::BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&graph_fingerprint(index.graph()).to_le_bytes())?;
    w.write_all(&[strategy_code(index.config().strategy)])?;
    w.write_all(&index.config().seed.to_le_bytes())?;
    w.write_all(&(index.config().chunk_size as u64).to_le_bytes())?;
    w.write_all(&index.chunk_cursor().to_le_bytes())?;
    for rr in [index.selection_pool(), index.validation_pool()] {
        let mut blob = Vec::new();
        write_rr_collection(rr, &mut blob)?;
        w.write_all(&(blob.len() as u64).to_le_bytes())?;
        w.write_all(&blob)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads an index previously written by [`write_index`], re-binding it to
/// `g` after verifying the fingerprint.
///
/// The restored config carries the snapshot's `strategy`, `seed`, and
/// `chunk_size` (they define the pool's identity); `threads` resets to 1
/// and `max_nodes` to unlimited — adjust via [`RrIndex::set_threads`] /
/// [`RrIndex::set_max_nodes`]. Counters restart at zero.
pub fn read_index<'g, R: Read>(g: &'g Graph, r: R) -> Result<RrIndex<'g>, IndexError> {
    let mut r = io::BufReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(mismatch("not a subsim-index snapshot"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(mismatch(format!("unsupported snapshot version {version}")));
    }
    let fingerprint = read_u64(&mut r)?;
    let expected = graph_fingerprint(g);
    if fingerprint != expected {
        return Err(mismatch(format!(
            "graph fingerprint {fingerprint:#018x} does not match the \
             provided graph ({expected:#018x}) — wrong graph or weights"
        )));
    }
    let mut code = [0u8; 1];
    r.read_exact(&mut code)?;
    let strategy = strategy_from_code(code[0])
        .ok_or_else(|| mismatch(format!("unknown RR strategy code {}", code[0])))?;
    let seed = read_u64(&mut r)?;
    let chunk_size = read_u64(&mut r)? as usize;
    if chunk_size == 0 {
        return Err(mismatch("zero chunk size"));
    }
    let chunks = read_u64(&mut r)?;
    let expected_sets = chunks
        .checked_mul(chunk_size as u64)
        .ok_or_else(|| mismatch("set count overflows"))?;

    let mut halves = Vec::with_capacity(2);
    for half in ["r1", "r2"] {
        let blob_len = read_u64(&mut r)?;
        // Growing lazily via `take` + `read_to_end` means a corrupt length
        // errors after reading only what actually exists (cf. serialize.rs).
        let mut blob = Vec::new();
        r.by_ref().take(blob_len).read_to_end(&mut blob)?;
        if blob.len() as u64 != blob_len {
            return Err(mismatch(format!("truncated {half} blob")));
        }
        let rr = read_rr_collection(blob.as_slice())?;
        if rr.graph_n() != g.n() {
            return Err(mismatch(format!(
                "{half} stores sets over {} nodes, graph has {}",
                rr.graph_n(),
                g.n()
            )));
        }
        if rr.len() as u64 != expected_sets {
            return Err(mismatch(format!(
                "{half} holds {} sets, RNG cursor implies {expected_sets}",
                rr.len()
            )));
        }
        halves.push(rr);
    }
    let r2 = halves.pop().expect("two halves read");
    let r1 = halves.pop().expect("two halves read");

    let config = IndexConfig {
        strategy,
        seed,
        threads: 1,
        chunk_size,
        max_nodes: None,
    };
    Ok(RrIndex::from_parts(g, config, r1, r2, chunks))
}

impl<'g> RrIndex<'g> {
    /// Writes the pool + RNG cursor to `w` ([`write_index`]).
    pub fn save<W: Write>(&self, w: W) -> Result<(), IndexError> {
        write_index(self, w)
    }

    /// Writes the snapshot to a file.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> Result<(), IndexError> {
        self.save(File::create(path)?)
    }

    /// Reads a snapshot from `r`, bound to `g` ([`read_index`]).
    pub fn load<R: Read>(g: &'g Graph, r: R) -> Result<Self, IndexError> {
        read_index(g, r)
    }

    /// Reads a snapshot from a file.
    pub fn load_from_path<P: AsRef<Path>>(g: &'g Graph, path: P) -> Result<Self, IndexError> {
        Self::load(g, File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::barabasi_albert;
    use subsim_graph::WeightModel;

    fn warmed_index(g: &Graph) -> RrIndex<'_> {
        let mut index = RrIndex::new(
            g,
            IndexConfig::new(RrStrategy::SubsimIc)
                .seed(9)
                .chunk_size(32),
        );
        index.warm(200).unwrap();
        index
    }

    #[test]
    fn roundtrip_preserves_pool_and_cursor() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 41);
        let index = warmed_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let back = RrIndex::load(&g, buf.as_slice()).unwrap();
        assert_eq!(back.pool_len(), index.pool_len());
        assert_eq!(back.chunk_cursor(), index.chunk_cursor());
        assert_eq!(back.config().seed, 9);
        assert_eq!(back.config().chunk_size, 32);
        for i in 0..index.pool_len() {
            assert_eq!(back.selection_pool().get(i), index.selection_pool().get(i));
            assert_eq!(
                back.validation_pool().get(i),
                index.validation_pool().get(i)
            );
        }
    }

    #[test]
    fn loaded_index_continues_the_same_stream() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 42);
        let mut fresh = warmed_index(&g);
        let mut buf = Vec::new();
        fresh.save(&mut buf).unwrap();
        let mut loaded = RrIndex::load(&g, buf.as_slice()).unwrap();
        // Growing both must produce identical continuations.
        fresh.warm(500).unwrap();
        loaded.warm(500).unwrap();
        assert_eq!(fresh.pool_len(), loaded.pool_len());
        for i in 0..fresh.pool_len() {
            assert_eq!(
                fresh.selection_pool().get(i),
                loaded.selection_pool().get(i)
            );
        }
    }

    #[test]
    fn rejects_wrong_graph() {
        let g = barabasi_albert(150, 3, WeightModel::Wc, 43);
        let index = warmed_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let other = barabasi_albert(150, 3, WeightModel::Wc, 44);
        let err = RrIndex::load(&other, buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, IndexError::SnapshotMismatch { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn rejects_corrupt_bytes() {
        let g = barabasi_albert(120, 3, WeightModel::Wc, 45);
        let index = warmed_index(&g);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(RrIndex::load(&g, bad.as_slice()).is_err());
        // Truncation at every quarter.
        for cut in [buf.len() / 4, buf.len() / 2, buf.len() - 3] {
            let mut bad = buf.clone();
            bad.truncate(cut);
            assert!(RrIndex::load(&g, bad.as_slice()).is_err(), "cut at {cut}");
        }
        // Corrupt strategy code (byte 20: after magic + version + fingerprint).
        let mut bad = buf.clone();
        bad[20] = 0x7f;
        assert!(RrIndex::load(&g, bad.as_slice()).is_err());
    }
}
