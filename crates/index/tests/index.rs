//! Integration properties of the RR-sketch index: query answers must be
//! exactly reproducible from the pool the index exposes, pool growth must
//! be order-independent, and snapshots must round-trip or be refused.

use proptest::prelude::*;
use subsim_core::bounds::{i_max, opim_lower_bound, theta_max_opim, theta_zero};
use subsim_core::coverage::{greedy_max_coverage, GreedyConfig};
use subsim_diffusion::RrStrategy;
use subsim_graph::generators::barabasi_albert;
use subsim_graph::WeightModel;
use subsim_index::{graph_fingerprint, IndexConfig, IndexError, RrIndex};

/// Loose accuracy keeps pools small enough for proptest throughput.
const DELTA: f64 = 0.1;

fn config(seed: u64) -> IndexConfig {
    IndexConfig::new(RrStrategy::SubsimIc)
        .seed(seed)
        .chunk_size(64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A query's certificate is not opaque: rebuilding the per-round δ
    /// budget from `(k, ε, δ)` and re-running greedy + the Eq. 1 bound
    /// over the exposed pool halves reproduces the reported seeds and
    /// lower bound exactly.
    #[test]
    fn query_lower_bound_is_recomputable_from_the_pool(
        n in 60usize..200,
        k in 1usize..8,
        eps in 0.25f64..0.45,
        seed in 0u64..1000,
    ) {
        let g = barabasi_albert(n, 3, WeightModel::Wc, seed);
        let mut index = RrIndex::new(&g, config(seed ^ 0xabc));
        let ans = index.query(k, eps, DELTA).unwrap();

        // The same δ budget the query used, rebuilt from first principles.
        let theta_max = theta_max_opim(g.n(), k, eps, DELTA);
        let delta_iter = DELTA / (3.0 * i_max(theta_max, theta_zero(DELTA)) as f64);

        let direct = greedy_max_coverage(index.selection_pool(), &GreedyConfig::standard(k));
        prop_assert_eq!(&direct.seeds, &ans.seeds, "greedy over R1 must reproduce the answer");

        let cov = index.validation_pool().coverage_of(&ans.seeds);
        let lb = opim_lower_bound(cov as f64, index.pool_len() as u64, g.n(), delta_iter);
        prop_assert_eq!(lb, ans.stats.lower_bound);
        prop_assert!(ans.stats.lower_bound <= ans.stats.upper_bound + 1e-9);
        if ans.stats.certified_by_bounds {
            prop_assert!(ans.stats.ratio() > ans.stats.target_ratio);
        }
    }

    /// Query order never changes the pool: any two query sequences that
    /// end at the same pool size hold bit-identical RR sets, so a repeated
    /// query returns the same seeds no matter what ran in between.
    #[test]
    fn topup_ordering_is_deterministic(
        n in 60usize..160,
        k1 in 1usize..6,
        k2 in 1usize..6,
        seed in 0u64..1000,
    ) {
        let g = barabasi_albert(n, 3, WeightModel::Wc, seed);
        let mut a = RrIndex::new(&g, config(seed));
        let mut b = RrIndex::new(&g, config(seed));
        a.query(k1, 0.3, DELTA).unwrap();
        a.query(k2, 0.3, DELTA).unwrap();
        b.query(k2, 0.3, DELTA).unwrap();
        let target = a.pool_len().max(b.pool_len());
        a.warm(target).unwrap();
        b.warm(target).unwrap();
        prop_assert_eq!(a.pool_len(), b.pool_len());
        for i in 0..a.pool_len() {
            prop_assert_eq!(a.selection_pool().get(i), b.selection_pool().get(i));
            prop_assert_eq!(a.validation_pool().get(i), b.validation_pool().get(i));
        }
        let ans_a = a.query(k2, 0.3, DELTA).unwrap();
        let ans_b = b.query(k2, 0.3, DELTA).unwrap();
        prop_assert_eq!(ans_a.seeds, ans_b.seeds);
    }

    /// save → load → query answers exactly like the index that never
    /// left memory.
    #[test]
    fn snapshot_roundtrip_reproduces_answers(
        n in 60usize..160,
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let g = barabasi_albert(n, 3, WeightModel::Wc, seed);
        let mut original = RrIndex::new(&g, config(seed ^ 0x51a));
        let before = original.query(k, 0.3, DELTA).unwrap();

        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        let mut restored = RrIndex::load(&g, buf.as_slice()).unwrap();
        prop_assert_eq!(restored.pool_len(), original.pool_len());

        let after = restored.query(k, 0.3, DELTA).unwrap();
        prop_assert_eq!(&after.seeds, &before.seeds);
        prop_assert_eq!(after.stats.fresh_sets, 0, "warm snapshot must not regenerate");
        prop_assert_eq!(after.stats.lower_bound, before.stats.lower_bound);
        prop_assert_eq!(after.stats.upper_bound, before.stats.upper_bound);
    }

    /// Any strict truncation of a snapshot is rejected with an error —
    /// never a panic, never a silently shorter pool.
    #[test]
    fn truncated_snapshots_are_rejected(
        cut_fraction in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let g = barabasi_albert(80, 3, WeightModel::Wc, seed);
        let mut index = RrIndex::new(&g, config(seed));
        index.warm(150).unwrap();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let cut = ((buf.len() - 1) as f64 * cut_fraction) as usize;
        buf.truncate(cut);
        prop_assert!(RrIndex::load(&g, buf.as_slice()).is_err(), "cut at {}", cut);
    }
}

#[test]
fn snapshot_refuses_mismatched_graph_and_reports_fingerprint() {
    let g = barabasi_albert(100, 3, WeightModel::Wc, 7);
    let mut index = RrIndex::new(&g, config(7));
    index.warm(200).unwrap();
    let mut buf = Vec::new();
    index.save(&mut buf).unwrap();

    // Same node count, different edges: only the fingerprint can tell.
    let other = barabasi_albert(100, 3, WeightModel::Wc, 8);
    assert_ne!(graph_fingerprint(&g), graph_fingerprint(&other));
    let err = RrIndex::load(&other, buf.as_slice()).unwrap_err();
    assert!(
        matches!(err, IndexError::SnapshotMismatch { .. }),
        "{err:?}"
    );

    // Same edges, different weight model: also refused.
    let reweighted = barabasi_albert(100, 3, WeightModel::UniformIc { p: 0.05 }, 7);
    let err = RrIndex::load(&reweighted, buf.as_slice()).unwrap_err();
    assert!(
        matches!(err, IndexError::SnapshotMismatch { .. }),
        "{err:?}"
    );

    // The right graph still loads.
    assert!(RrIndex::load(&g, buf.as_slice()).is_ok());
}
