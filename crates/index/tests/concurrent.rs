//! Concurrency battery for [`ConcurrentRrIndex`]: stress tests that race
//! readers against the writer, and property tests that pin the concurrent
//! path to the sequential index's deterministic pool.
//!
//! The load-bearing invariant throughout: pool *content at any size* is a
//! pure function of `(seed, strategy, chunk_size, size)`. Interleavings
//! may change how far the pool has grown when a given query certifies —
//! never what any prefix contains — so every concurrent answer must be
//! reproducible by a sequential index warmed to that answer's pool size.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use subsim_diffusion::{RrCollection, RrStrategy};
use subsim_graph::generators::barabasi_albert;
use subsim_graph::WeightModel;
use subsim_index::{ConcurrentRrIndex, IndexConfig, QueryAnswer, RrIndex};

fn config(seed: u64, chunk_size: usize) -> IndexConfig {
    IndexConfig::new(RrStrategy::SubsimIc)
        .seed(seed)
        .chunk_size(chunk_size)
}

fn assert_collections_identical(a: &RrCollection, b: &RrCollection, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: set counts differ");
    for i in 0..a.len() {
        assert_eq!(a.get(i), b.get(i), "{what}: set {i} differs");
    }
}

/// Both halves of the concurrent index must equal a sequential index
/// warmed to the same size, byte for byte.
fn assert_matches_sequential(conc: &ConcurrentRrIndex<'_>) {
    let snap = conc.load();
    let mut seq = RrIndex::new(conc.graph(), *conc.config());
    seq.warm(snap.pool_len()).unwrap();
    assert_eq!(seq.pool_len(), snap.pool_len(), "warm landed off-ladder");
    assert_collections_identical(seq.selection_pool(), snap.selection_pool(), "r1");
    assert_collections_identical(seq.validation_pool(), snap.validation_pool(), "r2");
}

/// A concurrent answer must be exactly reproducible by a sequential index
/// warmed to the answer's final pool size: same seeds, same certificate.
fn assert_answer_reproducible(seq: &mut RrIndex<'_>, ans: &QueryAnswer, delta: f64, context: &str) {
    assert!(
        seq.pool_len() <= ans.stats.pool_after,
        "{context}: sort answers by pool size"
    );
    seq.warm(ans.stats.pool_after).unwrap();
    assert_eq!(
        seq.pool_len(),
        ans.stats.pool_after,
        "{context}: off-ladder pool"
    );
    let replay = seq
        .query(ans.stats.k, ans.stats.epsilon, delta)
        .expect("replay query failed");
    assert_eq!(replay.seeds, ans.seeds, "{context}: seeds diverge");
    assert_eq!(
        replay.stats.lower_bound, ans.stats.lower_bound,
        "{context}: Eq.1 lower bound diverges"
    );
    assert_eq!(
        replay.stats.upper_bound, ans.stats.upper_bound,
        "{context}: Eq.2 upper bound diverges"
    );
    assert_eq!(
        replay.stats.pool_after, ans.stats.pool_after,
        "{context}: replay grew"
    );
    assert_eq!(replay.stats.fresh_sets, 0, "{context}: replay generated");
}

/// Readers spin over snapshots while the writer forces repeated top-ups:
/// no reader may ever observe a torn pool (halves out of step, size off
/// the chunk grid), chunk cursors must grow monotonically per reader, and
/// every previously seen set must persist bit-identically in later
/// snapshots. The final pool must match a single-threaded index exactly.
#[test]
fn stress_readers_never_observe_torn_or_mutated_state() {
    let g = barabasi_albert(300, 4, WeightModel::Wc, 21);
    let chunk_size = 32;
    let index = ConcurrentRrIndex::new(&g, config(22, chunk_size));
    index.warm(chunk_size).unwrap(); // non-empty starting point
    let stop = AtomicBool::new(false);
    let growth_seen = AtomicU64::new(0);
    let reader_loads = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for reader in 0..4 {
            let (index, stop, growth_seen) = (&index, &stop, &growth_seen);
            let reader_loads = &reader_loads;
            scope.spawn(move || {
                let mut prev: Arc<_> = index.load();
                let mut iterations = 0u64;
                while !stop.load(Ordering::Relaxed) || iterations == 0 {
                    iterations += 1;
                    reader_loads.fetch_add(1, Ordering::Relaxed);
                    let snap = index.load();
                    // Never torn: halves in step, size on the chunk grid.
                    assert_eq!(
                        snap.selection_pool().len(),
                        snap.validation_pool().len(),
                        "reader {reader}: halves out of step"
                    );
                    assert_eq!(
                        snap.pool_len() as u64,
                        snap.chunk_cursor() * chunk_size as u64,
                        "reader {reader}: size off the chunk grid"
                    );
                    // Monotone growth from this reader's viewpoint.
                    assert!(
                        snap.chunk_cursor() >= prev.chunk_cursor(),
                        "reader {reader}: cursor went backwards"
                    );
                    if snap.chunk_cursor() > prev.chunk_cursor() {
                        growth_seen.fetch_add(1, Ordering::Relaxed);
                    }
                    // Prefix stability: sets observed earlier never change.
                    let overlap = prev.pool_len();
                    for probe in [0, overlap / 2, overlap - 1] {
                        assert_eq!(
                            snap.selection_pool().get(probe),
                            prev.selection_pool().get(probe),
                            "reader {reader}: r1 set {probe} mutated"
                        );
                        assert_eq!(
                            snap.validation_pool().get(probe),
                            prev.validation_pool().get(probe),
                            "reader {reader}: r2 set {probe} mutated"
                        );
                    }
                    prev = snap;
                }
            });
        }
        // The writer: force a run of doublings while readers watch. Each
        // publish waits for reader progress before the next doubling — a
        // fast generation kernel can otherwise finish every top-up inside
        // one scheduler quantum on a small host, leaving the readers with
        // nothing to race against.
        let mut target = 2 * chunk_size;
        while target <= 128 * chunk_size {
            index.warm(target).unwrap();
            // A load that *starts* after this point sees the new snapshot;
            // readers bump the counter right before each load, so waiting
            // for a fresh bump guarantees at least one such load per
            // doubling.
            let published = reader_loads.load(Ordering::Relaxed);
            while reader_loads.load(Ordering::Relaxed) == published {
                std::thread::yield_now();
            }
            target *= 2;
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        growth_seen.load(Ordering::Relaxed) > 0,
        "no reader ever observed a snapshot publish — stress raced nothing"
    );
    assert_eq!(index.load().pool_len(), 128 * chunk_size);
    assert_matches_sequential(&index);
}

/// The acceptance bar of this layer: a warm index serves at least four
/// query threads with bit-identical proofs — every thread gets the same
/// seeds and the same Eq. 1 / Eq. 2 certificate, with zero generation.
#[test]
fn warm_index_serves_four_plus_threads_bit_identically() {
    let g = barabasi_albert(400, 4, WeightModel::Wc, 23);
    let index = ConcurrentRrIndex::new(&g, config(24, 64));
    let (k, eps, delta) = (5, 0.1, 0.01);
    let reference = index.query(k, eps, delta).unwrap(); // cold: grows the pool

    let answers: Vec<QueryAnswer> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(|| index.query(k, eps, delta).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, ans) in answers.iter().enumerate() {
        assert_eq!(ans.seeds, reference.seeds, "thread {i}: seeds diverge");
        assert_eq!(
            ans.stats.lower_bound, reference.stats.lower_bound,
            "thread {i}: lower bound diverges"
        );
        assert_eq!(
            ans.stats.upper_bound, reference.stats.upper_bound,
            "thread {i}: upper bound diverges"
        );
        assert_eq!(ans.stats.fresh_sets, 0, "thread {i}: warm query generated");
        assert_eq!(ans.stats.pool_after, reference.stats.pool_after);
    }
    let m = index.metrics();
    assert_eq!(m.queries, 9);
    assert_eq!(m.fresh_sets, reference.stats.fresh_sets as u64);
}

/// Heterogeneous queries race each other through cold growth; whatever
/// interleaving happened, the final pool and every individual certificate
/// must be reproducible sequentially.
#[test]
fn racing_cold_queries_stay_reproducible() {
    let g = barabasi_albert(300, 4, WeightModel::Wc, 25);
    let delta = 0.01;
    let index = ConcurrentRrIndex::new(&g, config(26, 64));
    let queries = [
        (1usize, 0.15f64),
        (3, 0.1),
        (5, 0.12),
        (2, 0.2),
        (8, 0.1),
        (4, 0.15),
    ];

    let mut answers: Vec<QueryAnswer> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|&(k, eps)| {
                let index = &index;
                scope.spawn(move || index.query(k, eps, delta).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_matches_sequential(&index);
    let mut seq = RrIndex::new(&g, config(26, 64));
    answers.sort_by_key(|a| a.stats.pool_after);
    for ans in &answers {
        let context = format!("k={} eps={}", ans.stats.k, ans.stats.epsilon);
        assert_answer_reproducible(&mut seq, ans, delta, &context);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random interleavings: arbitrary thread counts, chunk sizes, seeds,
    /// and query mixes. Every concurrent answer replays identically on a
    /// sequential index, and the final pool is the sequential pool.
    #[test]
    fn random_interleavings_match_sequential(
        seed in 0u64..1000,
        chunk_exp in 4usize..7, // chunk sizes 16, 32, 64
        threads in 2usize..5,
        queries in prop::collection::vec((1usize..8, prop_oneof![Just(0.1f64), Just(0.15), Just(0.2)]), 2..7),
    ) {
        let g = barabasi_albert(150, 3, WeightModel::Wc, seed ^ 0xabcd);
        let delta = 0.02;
        let cfg = config(seed, 1 << chunk_exp);
        let index = ConcurrentRrIndex::new(&g, cfg);

        // Round-robin the query list over `threads` workers.
        let mut answers: Vec<QueryAnswer> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let queries = &queries;
                    let index = &index;
                    scope.spawn(move || {
                        queries
                            .iter()
                            .skip(w)
                            .step_by(threads)
                            .map(|&(k, eps)| index.query(k, eps, delta).unwrap())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });

        // Final pool == sequential pool of the same size.
        let snap = index.load();
        let mut seq = RrIndex::new(&g, cfg);
        seq.warm(snap.pool_len()).unwrap();
        prop_assert_eq!(seq.pool_len(), snap.pool_len());
        for i in 0..seq.pool_len() {
            prop_assert_eq!(seq.selection_pool().get(i), snap.selection_pool().get(i));
            prop_assert_eq!(seq.validation_pool().get(i), snap.validation_pool().get(i));
        }

        // Every answer replays identically at its own pool size.
        let mut replayer = RrIndex::new(&g, cfg);
        answers.sort_by_key(|a| a.stats.pool_after);
        for ans in &answers {
            replayer.warm(ans.stats.pool_after).unwrap();
            prop_assert_eq!(replayer.pool_len(), ans.stats.pool_after);
            let replay = replayer.query(ans.stats.k, ans.stats.epsilon, delta).unwrap();
            prop_assert_eq!(&replay.seeds, &ans.seeds);
            prop_assert_eq!(replay.stats.lower_bound, ans.stats.lower_bound);
            prop_assert_eq!(replay.stats.upper_bound, ans.stats.upper_bound);
            prop_assert_eq!(replay.stats.fresh_sets, 0);
        }
    }

    /// With a single worker issuing queries in order, the concurrent index
    /// is the sequential index: identical answers including growth
    /// accounting (`pool_before`, `fresh_sets`, rounds).
    #[test]
    fn single_worker_equals_sequential_exactly(
        seed in 0u64..1000,
        queries in prop::collection::vec((1usize..6, prop_oneof![Just(0.1f64), Just(0.2)]), 1..5),
    ) {
        let g = barabasi_albert(120, 3, WeightModel::Wc, seed ^ 0x1234);
        let delta = 0.02;
        let cfg = config(seed, 32);
        let mut seq = RrIndex::new(&g, cfg);
        let conc = ConcurrentRrIndex::new(&g, cfg);
        for &(k, eps) in &queries {
            let a = seq.query(k, eps, delta).unwrap();
            let b = conc.query(k, eps, delta).unwrap();
            prop_assert_eq!(&a.seeds, &b.seeds);
            prop_assert_eq!(a.stats.pool_before, b.stats.pool_before);
            prop_assert_eq!(a.stats.pool_after, b.stats.pool_after);
            prop_assert_eq!(a.stats.fresh_sets, b.stats.fresh_sets);
            prop_assert_eq!(a.stats.rounds, b.stats.rounds);
            prop_assert_eq!(a.stats.lower_bound, b.stats.lower_bound);
            prop_assert_eq!(a.stats.upper_bound, b.stats.upper_bound);
            prop_assert_eq!(a.stats.certified_by_bounds, b.stats.certified_by_bounds);
        }
    }
}
