//! The Linear Threshold battery: every LT sampler path χ²-tested
//! against the exact per-step law, LT algorithm runs and index queries
//! certified against the exact LT live-edge oracle, and the full
//! serving stack model-checked under `RrStrategy::Lt`.
//!
//! The step law is hand-derivable — node `v` keeps in-edge `(u, v)`
//! with probability `p(u, v)` and none with `1 - Σ p` — so the
//! conformance tests pin the alias-table path, the linear-scan oracle,
//! and both traversal kernels (scalar and flat-frontier) to the same
//! finite distribution. Whole-walk distributions and the
//! `(1 - 1/e - ε)` certificate are judged against the mixed-radix
//! world enumeration in [`ExactLtOracle`], not against another LT
//! sampler. All seeds are fixed — a pass is a pass forever.

use subsim_core::{ImAlgorithm, ImOptions, ImResult, OpimC};
use subsim_diffusion::{rr_influence, RrContext, RrSampler, RrStrategy};
use subsim_graph::generators::{barabasi_albert, complete_graph, path_graph, star_graph};
use subsim_graph::lt::sample_in_neighbor_linear;
use subsim_graph::{Graph, GraphBuilder, LtIndex, WeightModel};
use subsim_index::{IndexConfig, RrIndex};
use subsim_testkit::{
    check_seed_lt, check_seed_lt_sentinel, check_seed_lt_sketch, check_seed_sharded_lt,
    check_seed_sharded_lt_sketch, chi_square_critical, chi_square_stat, hoeffding_half_width,
    merge_small_bins, ExactLtOracle,
};

const SAMPLES: usize = 30_000;

fn uniform(p: f64) -> WeightModel {
    WeightModel::UniformIc { p }
}

/// 7 spokes point at node 0 with skewed weights summing to 0.9, so the
/// reverse step from 0 engages the alias table and keeps a real
/// no-in-neighbor arm (probability 0.1).
const FAN_PROBS: [f64; 7] = [0.04, 0.07, 0.1, 0.14, 0.18, 0.22, 0.15];

fn weighted_fan_in() -> Graph {
    let mut b = GraphBuilder::new(8);
    for (i, &p) in FAN_PROBS.iter().enumerate() {
        b = b.add_weighted_edge(i as u32 + 1, 0, p);
    }
    b.build().unwrap()
}

/// The 6-node heterogeneous fixture shared with the IC oracle battery;
/// under LT its 216 live-edge worlds enumerate exactly, and node 5's
/// in-weights sum past 1, exercising the clamped arm end to end.
fn weighted_fixture() -> Graph {
    GraphBuilder::new(6)
        .add_weighted_edge(0, 1, 0.8)
        .add_weighted_edge(0, 2, 0.15)
        .add_weighted_edge(1, 2, 0.5)
        .add_weighted_edge(1, 3, 0.05)
        .add_weighted_edge(2, 3, 0.6)
        .add_weighted_edge(3, 4, 0.35)
        .add_weighted_edge(4, 5, 0.9)
        .add_weighted_edge(5, 0, 0.25)
        .add_weighted_edge(2, 5, 0.45)
        .build()
        .unwrap()
}

/// χ²-tests observed counts against expected probabilities (α = 0.001),
/// merging bins below an expected count of 5.
fn assert_fits(label: &str, observed: &[u64], expected_probs: &[f64]) {
    let total: u64 = observed.iter().sum();
    let expected: Vec<f64> = expected_probs.iter().map(|p| p * total as f64).collect();
    let (obs, exp) = merge_small_bins(observed, &expected, 5.0);
    assert!(obs.len() >= 2, "{label}: degenerate binning {obs:?}");
    let stat = chi_square_stat(&obs, &exp);
    let critical = chi_square_critical(obs.len() - 1);
    assert!(
        stat <= critical,
        "{label}: χ² = {stat:.2} exceeds critical {critical} (df {}); \
         observed {obs:?} expected {exp:?}",
        obs.len() - 1
    );
}

/// The exact one-step law from node 0 of [`weighted_fan_in`]: spokes
/// `1..=7` with their edge weights, plus the none arm at `1 - Σ p`.
fn fan_in_step_probs() -> Vec<f64> {
    let mut probs = FAN_PROBS.to_vec();
    probs.push(1.0 - FAN_PROBS.iter().sum::<f64>());
    probs
}

/// Satellite: the LT reverse step, drawn through the per-node alias
/// table, matches the per-edge weights — including the no-in-neighbor
/// arm at probability `1 - Σ p`.
#[test]
fn alias_step_distribution_matches_edge_weights() {
    let g = weighted_fan_in();
    let idx = LtIndex::new(&g);
    let mut rng = subsim_sampling::rng_from_seed(0x17A5);
    let mut counts = vec![0u64; 8];
    for _ in 0..SAMPLES {
        match idx.sample_in_neighbor(&g, &mut rng, 0) {
            Some(u) => counts[u as usize - 1] += 1,
            None => counts[7] += 1,
        }
    }
    assert_fits("lt-step/alias", &counts, &fan_in_step_probs());
}

/// The index-free linear-scan oracle draws the same step law.
#[test]
fn linear_scan_step_distribution_matches_edge_weights() {
    let g = weighted_fan_in();
    let mut rng = subsim_sampling::rng_from_seed(0x11EA);
    let mut counts = vec![0u64; 8];
    for _ in 0..SAMPLES {
        match sample_in_neighbor_linear(&g, &mut rng, 0) {
            Some(u) => counts[u as usize - 1] += 1,
            None => counts[7] += 1,
        }
    }
    assert_fits("lt-step/linear", &counts, &fan_in_step_probs());
}

/// Whole-walk form of the same check through both traversal kernels:
/// rooted at node 0, the RR set is `{0, u}` with probability `p(u, 0)`
/// and `{0}` otherwise, so the first step's law is read straight off
/// the generated sets — scalar walk and flat-frontier chain kernel
/// alike.
#[test]
fn both_kernels_draw_the_exact_step_law_from_a_fixed_root() {
    let g = weighted_fan_in();
    let expected = fan_in_step_probs();
    let kernels = [
        ("scalar", RrSampler::scalar(&g, RrStrategy::Lt)),
        ("frontier", RrSampler::new(&g, RrStrategy::Lt)),
    ];
    for (label, sampler) in &kernels {
        if *label == "frontier" {
            assert!(sampler.uses_frontier(), "LT must build a chain kernel");
        }
        let mut ctx = RrContext::new(g.n());
        let mut rng = subsim_sampling::rng_from_seed(0xFA2);
        let mut counts = vec![0u64; 8];
        for _ in 0..SAMPLES {
            let size = sampler.generate_from(&mut ctx, &mut rng, 0);
            if size == 1 {
                counts[7] += 1;
            } else {
                counts[ctx.last()[1] as usize - 1] += 1;
            }
        }
        assert_fits(&format!("lt-step/{label}"), &counts, &expected);
    }
}

/// Uniform in-weights bypass the alias table (the `gen_range` arm); the
/// step must still be uniform over in-neighbors with the correct
/// none-probability.
#[test]
fn uniform_weight_step_is_uniform_over_in_neighbors() {
    // 4 spokes into node 0 at p = 0.2 each: Σ = 0.8, none arm 0.2.
    let g = GraphBuilder::new(5)
        .edges([(1, 0), (2, 0), (3, 0), (4, 0)])
        .weights(uniform(0.2))
        .build()
        .unwrap();
    let idx = LtIndex::new(&g);
    assert!(idx.table(0).is_none(), "uniform weights must skip tables");
    let mut rng = subsim_sampling::rng_from_seed(0x5EED);
    let mut counts = vec![0u64; 5];
    for _ in 0..SAMPLES {
        match idx.sample_in_neighbor(&g, &mut rng, 0) {
            Some(u) => counts[u as usize - 1] += 1,
            None => counts[4] += 1,
        }
    }
    assert_fits("lt-step/uniform", &counts, &[0.2, 0.2, 0.2, 0.2, 0.2]);
}

/// Whole-distribution conformance against the mixed-radix enumeration:
/// root uniformity and the full RR-size law, for the scalar and
/// frontier kernels alike.
#[test]
fn lt_rr_distributions_match_the_exact_oracle() {
    let g = weighted_fixture();
    let oracle = ExactLtOracle::new(&g);
    assert_eq!(oracle.worlds(), 216);
    let expected_size = oracle.rr_size_distribution();
    let uniform_root = vec![1.0 / g.n() as f64; g.n()];
    let kernels = [
        ("scalar", RrSampler::scalar(&g, RrStrategy::Lt)),
        ("frontier", RrSampler::new(&g, RrStrategy::Lt)),
    ];
    for (label, sampler) in &kernels {
        let mut ctx = RrContext::new(g.n());
        let mut rng = subsim_sampling::rng_from_seed(0xD1CE);
        let mut roots = vec![0u64; g.n()];
        let mut sizes = vec![0u64; g.n()];
        for _ in 0..SAMPLES {
            let size = sampler.generate(&mut ctx, &mut rng);
            roots[ctx.last()[0] as usize] += 1;
            sizes[size - 1] += 1;
        }
        assert_fits(&format!("lt-dist/{label}/root"), &roots, &uniform_root);
        assert_fits(&format!("lt-dist/{label}/size"), &sizes, &expected_size);
    }
}

/// The LT debug-tier shapes (all within the world-enumeration budget).
fn shapes() -> Vec<(&'static str, Graph)> {
    vec![
        ("star", star_graph(8, uniform(0.3))),
        ("path", path_graph(7, uniform(0.6))),
        ("complete", complete_graph(4, uniform(0.2))),
        ("weighted", weighted_fixture()),
    ]
}

/// LT spread estimates from the RR sampler land inside the
/// Hoeffding-certified interval around the exact LT truth.
#[test]
fn lt_rr_spread_estimates_match_truth_within_certified_width() {
    let count = 20_000;
    let delta = 1e-6;
    for (name, g) in shapes() {
        let oracle = ExactLtOracle::new(&g);
        let width = hoeffding_half_width(g.n() as f64, delta, count);
        let seed_sets: [&[u32]; 3] = [&[0], &[1], &[0, g.n() as u32 - 1]];
        for seeds in seed_sets {
            let truth = oracle.influence(seeds);
            let est = rr_influence(&g, seeds, RrStrategy::Lt, count, 97);
            assert!(
                (est - truth).abs() <= width,
                "{name} seeds {seeds:?}: estimate {est} vs truth {truth} (width {width})"
            );
        }
    }
}

/// Asserts an LT algorithm result clears the paper's guarantee against
/// the brute-forced LT optimum, with its certified bounds bracketing
/// what they claim.
fn assert_lt_guarantee(
    label: &str,
    oracle: &ExactLtOracle,
    result: &ImResult,
    k: usize,
    epsilon: f64,
) {
    let spread = oracle.influence(&result.seeds);
    let (_, opt) = oracle.exact_opt(k);
    let floor = (1.0 - 1.0 / std::f64::consts::E - epsilon) * opt;
    assert_eq!(result.seeds.len(), k, "{label}: wrong seed count");
    assert!(
        spread >= floor - 1e-9,
        "{label}: spread {spread} below the (1-1/e-ε) floor {floor} (OPT {opt})"
    );
    if result.stats.upper_bound > 0.0 {
        assert!(
            result.stats.upper_bound >= opt - 1e-9,
            "{label}: certified upper bound {} below OPT {opt}",
            result.stats.upper_bound
        );
        assert!(
            result.stats.lower_bound <= spread + 1e-9,
            "{label}: certified lower bound {} above true spread {spread}",
            result.stats.lower_bound
        );
    }
}

/// Tentpole acceptance: the LT OPIM-C run clears `(1 - 1/e - ε)` against
/// the exact LT oracle's brute-forced OPT on every shape.
#[test]
fn lt_opimc_clears_the_guarantee_on_every_shape() {
    let opts = ImOptions::new(2).epsilon(0.1).delta(0.01).seed(19);
    for (name, g) in shapes() {
        let oracle = ExactLtOracle::new(&g);
        let result = OpimC::lt().run(&g, &opts).unwrap();
        assert_lt_guarantee(&format!("opimc-lt/{name}"), &oracle, &result, 2, 0.1);
    }
}

/// The serving index under `RrStrategy::Lt` answers with seed sets that
/// clear the same floor — the certificate holds through the pool, not
/// just the one-shot algorithm.
#[test]
fn lt_index_queries_clear_the_guarantee_against_the_oracle() {
    for (name, g) in shapes() {
        let oracle = ExactLtOracle::new(&g);
        let mut index = RrIndex::new(&g, IndexConfig::new(RrStrategy::Lt).seed(7).chunk_size(32));
        for k in [1usize, 2] {
            let ans = index.query(k, 0.1, 0.01).unwrap();
            let spread = oracle.influence(&ans.seeds);
            let (_, opt) = oracle.exact_opt(k);
            let floor = (1.0 - 1.0 / std::f64::consts::E - 0.1) * opt;
            assert!(
                spread >= floor - 1e-9,
                "index-lt/{name} k={k}: spread {spread} below floor {floor} (OPT {opt})"
            );
            assert!(
                ans.stats.upper_bound >= opt - 1e-9,
                "index-lt/{name} k={k}: upper bound {} below OPT {opt}",
                ans.stats.upper_bound
            );
        }
    }
}

fn sim_graph() -> Graph {
    // Trivalency weights store per-edge, so serving-stack LT generation
    // runs through the alias arm of the chain kernel, not just gen_range.
    barabasi_albert(48, 2, WeightModel::Trivalency, 17)
}

/// The concurrent LT serving stack replays every scripted session
/// exactly as the sequential LT model does.
#[test]
fn lt_serving_matches_sequential_model_across_seeds() {
    let g = sim_graph();
    for seed in 0..6 {
        check_seed_lt(&g, seed, 40).unwrap();
    }
}

/// Chunk-ownership sharding under LT: byte-identical sessions for every
/// shard count.
#[test]
fn lt_sharded_serving_matches_model() {
    let g = sim_graph();
    for shards in [2usize, 3] {
        for seed in [5u64, 23] {
            check_seed_sharded_lt(&g, seed, 40, shards).unwrap();
        }
    }
}

/// Sentinel-truncated LT chains through growth, repair, and refresh.
#[test]
fn lt_sentinel_serving_matches_model() {
    let g = sim_graph();
    for seed in 0..3 {
        check_seed_lt_sentinel(&g, seed, 30).unwrap();
    }
}

/// HLL-sketched validation pools under LT, concurrent and sharded.
#[test]
fn lt_sketch_serving_matches_model() {
    let g = sim_graph();
    for seed in 0..3 {
        check_seed_lt_sketch(&g, seed, 30).unwrap();
    }
    check_seed_sharded_lt_sketch(&g, 5, 30, 3).unwrap();
}

/// Release-tier: wider LT seed sweep plus a uniform-weight (Wc) graph
/// where the chain kernel runs its `gen_range`-only arm.
#[test]
#[ignore = "wide LT sim sweep; run in release (see TESTING.md)"]
fn heavy_lt_serving_sweep() {
    let g = sim_graph();
    for seed in 0..32 {
        check_seed_lt(&g, seed, 60).unwrap();
    }
    for shards in [2usize, 3, 4] {
        for seed in 0..8 {
            check_seed_sharded_lt(&g, seed, 50, shards).unwrap();
        }
    }
    let uniform_g = barabasi_albert(48, 2, WeightModel::Wc, 19);
    for seed in 0..8 {
        check_seed_lt(&uniform_g, seed, 50).unwrap();
        check_seed_lt_sketch(&uniform_g, seed, 40).unwrap();
    }
}
