//! Sketch-tier conformance: the count-distinct serving path checked
//! against ground truth and against the exact pool as oracle.
//!
//! The sketched validation tier trades the exact `R₂` arena for
//! per-node HLL count-distinct registers; its certificate subtracts a
//! `2σ` slack so it stays `(ε, δ)`-sound, but nothing in the unit tests
//! of the sketch crate pins the *system* behavior. This battery does:
//!
//! - **Certificate conformance** — on graphs small enough to enumerate
//!   every live-edge world, seed sets served through the sketched
//!   certificate must clear the same `(1 - 1/e - ε)` floor against the
//!   brute-forced `OPT_k` as exact pools, with certified bounds
//!   bracketing truth.
//! - **Exact path as oracle** — at matched pool sizes the sketched and
//!   exact indexes select identical seed sets (selection is exact in
//!   both; only validation is sketched), and the sketch's union
//!   cardinality estimates stay within the standard-error envelope of
//!   the exact coverage counts.
//! - **Simulation lockstep** — the scripted serving simulator runs the
//!   sketched tier through the concurrent and N-shard stacks against
//!   the sequential sketched model, byte for byte, shards ∈ {1,2,3,5}.
//! - **Corruption injection** — a persisted v4 sketch block damaged in
//!   any probed byte must surface as a typed
//!   [`IndexError::SnapshotMismatch`] (or typed I/O failure), never
//!   load as a silently-plain or silently-wrong pool.

use subsim_delta::DeltaIndex;
use subsim_diffusion::RrStrategy;
use subsim_graph::generators::{barabasi_albert, complete_graph};
use subsim_graph::{Graph, GraphBuilder, NodeId, WeightModel};
use subsim_index::{read_index, write_index, IndexConfig, IndexError, RrIndex};
use subsim_testkit::{
    check_seed_sharded_sketch, check_seed_sketch, ExactOracle, Fault, FaultyReader,
};

fn uniform(p: f64) -> WeightModel {
    WeightModel::UniformIc { p }
}

/// Star with heterogeneous hub→leaf probabilities (shared with the
/// sentinel battery): the hub dominates influence, so small seed sets
/// have meaningfully different spreads.
fn weighted_star() -> Graph {
    let probs = [0.15, 0.2, 0.35, 0.5, 0.6, 0.7, 0.9];
    let mut b = GraphBuilder::new(8);
    for (i, &p) in probs.iter().enumerate() {
        b = b.add_weighted_edge(0, i as u32 + 1, p);
    }
    b.build().unwrap()
}

fn config(sketch: usize) -> IndexConfig {
    IndexConfig::new(RrStrategy::SubsimIc)
        .seed(13)
        .chunk_size(16)
        .threads(2)
        .sketch(sketch)
}

const WARM_SETS: usize = 16 * 12;

/// Sketched answers clear the same `(ε, δ)` certificate as exact pools,
/// judged against the brute-forced optimum: spread above the paper's
/// floor, certified bounds bracketing truth. The sketch slack may delay
/// certification (more samples), never unsound bounds.
#[test]
fn sketched_seed_sets_meet_the_plain_certificate_against_opt() {
    let shapes: Vec<(&str, Graph)> = vec![
        ("complete5", complete_graph(5, uniform(0.3))),
        ("weighted-star", weighted_star()),
    ];
    let (k, epsilon, delta) = (2usize, 0.1, 0.01);
    for (name, g) in shapes {
        let oracle = ExactOracle::new(&g);
        let (_, opt) = oracle.exact_opt(k);
        let floor = (1.0 - 1.0 / std::f64::consts::E - epsilon) * opt;
        for sketch in [0usize, 6] {
            let mut index = RrIndex::new(&g, config(sketch));
            index.warm(WARM_SETS).unwrap();
            if sketch > 0 {
                assert!(
                    index.sketch_state().is_some(),
                    "{name}: sketch tier inactive"
                );
            }
            let ans = index.query(k, epsilon, delta).unwrap();
            let label = format!("{name}/sketch={sketch}");
            assert!(
                ans.stats.certified_by_bounds,
                "{label}: query did not certify"
            );
            let spread = oracle.influence(&ans.seeds);
            assert!(
                spread >= floor - 1e-9,
                "{label}: spread {spread} below the (1-1/e-ε) floor {floor} (OPT {opt})"
            );
            assert!(
                ans.stats.lower_bound <= spread + 1e-9,
                "{label}: certified lower bound {} above true spread {spread}",
                ans.stats.lower_bound
            );
            assert!(
                ans.stats.upper_bound >= opt - 1e-9,
                "{label}: certified upper bound {} below OPT {opt}",
                ans.stats.upper_bound
            );
        }
    }
}

/// At matched pool sizes the sketched index selects exactly the seed
/// sets the exact index does: selection is exact in both tiers, and the
/// conservative sketch certificate must not perturb it.
#[test]
fn sketched_and_exact_paths_select_identical_seeds() {
    let g = barabasi_albert(150, 3, WeightModel::Wc, 71);
    let base = IndexConfig::new(RrStrategy::SubsimIc)
        .seed(17)
        .chunk_size(32)
        .threads(2);
    let mut exact = DeltaIndex::new(g.clone(), base).unwrap();
    let mut sketched = DeltaIndex::new(g.clone(), base.sketch(8)).unwrap();
    // Warm far past the certification threshold so neither path grows
    // during the queries — seed selection is then compared at identical
    // pool sizes, where it must be bit-identical (selection is exact in
    // both tiers).
    exact.warm(1280).unwrap();
    sketched.warm(1280).unwrap();
    for k in [1usize, 3, 5, 8] {
        let a = exact.query(k, 0.15, 0.01).unwrap();
        let b = sketched.query(k, 0.15, 0.01).unwrap();
        assert_eq!(
            a.stats.pool_after, b.stats.pool_after,
            "k={k}: pools diverged — the comparison needs a bigger warm"
        );
        assert_eq!(a.seeds, b.seeds, "k={k}: seed sets diverge");
    }
}

/// The sketch's union count-distinct estimates track the exact coverage
/// counts of the displaced `R₂` arena within the HLL standard-error
/// envelope (`σ = 1.04/√2^p`, checked at `4σ` with a fixed seed — no
/// flake budget).
#[test]
fn sketch_union_estimates_track_exact_coverage() {
    let g = barabasi_albert(150, 3, WeightModel::Wc, 73);
    let base = IndexConfig::new(RrStrategy::SubsimIc)
        .seed(19)
        .chunk_size(32)
        .threads(2);
    let precision = 8usize;
    let mut exact = DeltaIndex::new(g.clone(), base).unwrap();
    let mut sketched = DeltaIndex::new(g.clone(), base.sketch(precision)).unwrap();
    exact.warm(640).unwrap();
    sketched.warm(640).unwrap();
    // No queries on either index: a failed certificate would grow one
    // pool past the other and skew the comparison baseline.
    let r2 = exact.validation_pool();
    let sk = sketched.sketch_state().expect("sketch tier active");
    assert_eq!(r2.len(), sk.len_sets(), "pools must be the same size");
    let sigma = 1.04 / ((1u64 << precision) as f64).sqrt();

    let coverage = |seeds: &[NodeId]| -> usize {
        r2.iter()
            .filter(|set| set.iter().any(|v| seeds.contains(v)))
            .count()
    };
    let hub = (0..g.n() as u32).max_by_key(|&v| g.in_degree(v)).unwrap();
    let mut by_degree: Vec<NodeId> = (0..g.n() as u32).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.in_degree(v)));
    let probes: Vec<Vec<NodeId>> = vec![vec![hub], vec![0, 1, 2], by_degree[..4].to_vec()];
    for seeds in probes {
        let truth = coverage(&seeds) as f64;
        assert!(truth > 0.0, "degenerate probe {seeds:?}");
        let est = sk.estimate_union(&seeds);
        let rel = (est - truth).abs() / truth;
        assert!(
            rel <= 4.0 * sigma,
            "seeds {seeds:?}: estimate {est:.1} vs exact coverage {truth} \
             (relative error {rel:.4} > 4σ = {:.4})",
            4.0 * sigma
        );
    }
}

/// The scripted serving simulator stays in lockstep through the real
/// concurrent stack with the sketch tier active.
#[test]
fn sketched_sim_concurrent_matches_sequential_model() {
    let g = barabasi_albert(60, 3, WeightModel::Wc, 91);
    for seed in [1u64, 2] {
        check_seed_sketch(&g, seed, 18).unwrap();
    }
}

/// N-shard sketched serving is the same pure function of the script as
/// the sequential sketched model, for every shard count.
#[test]
fn sketched_sim_sharded_matches_sequential_model() {
    let g = barabasi_albert(60, 3, WeightModel::Wc, 93);
    for shards in [1usize, 2, 3, 5] {
        check_seed_sharded_sketch(&g, 5, 18, shards).unwrap();
    }
}

/// Every probed byte of the persisted v4 sketch block is protected:
/// flipping it fails the load with a typed error — never a silent
/// fallback to a plain pool, never a wrong sketch.
#[test]
fn corrupt_persisted_sketch_block_fails_typed_never_plain() {
    let g = weighted_star();
    let mut index = RrIndex::new(&g, config(6));
    index.warm(WARM_SETS).unwrap();
    let want = index.sketch_state().expect("sketch tier active").clone();
    let mut bytes = Vec::new();
    write_index(&index, &mut bytes).unwrap();

    // Probe spread across the file: header region, mid-file (inside the
    // sketch registers), near the end, and the FNV trailer itself.
    let len = bytes.len();
    let offsets = [len / 3, len / 2, 2 * len / 3, len - 12, len - 1];
    for offset in offsets {
        let reader = FaultyReader::new(bytes.clone(), Fault::CorruptByte { offset, xor: 0x20 });
        let err = read_index(&g, reader)
            .expect_err(&format!("corruption at byte {offset} must be detected"));
        assert!(
            matches!(err, IndexError::SnapshotMismatch { .. } | IndexError::Io(_)),
            "corruption at {offset}: unexpected error {err:?}"
        );
    }
    // Truncation inside the sketch block is equally typed: a v4 snapshot
    // may not quietly degrade to a plain pool.
    let reader = FaultyReader::new(bytes.clone(), Fault::TruncateAt(len / 2));
    let err = read_index(&g, reader).expect_err("truncated sketch block must fail");
    assert!(
        matches!(err, IndexError::Io(_) | IndexError::SnapshotMismatch { .. }),
        "unexpected error {err:?}"
    );
    // Control arm: clean bytes round-trip the full sketch state.
    let mut loaded = read_index(&g, FaultyReader::new(bytes, Fault::None)).unwrap();
    assert_eq!(
        loaded.sketch_state(),
        Some(&want),
        "clean reload must restore the sketch register-for-register"
    );
    loaded.query(2, 0.1, 0.01).unwrap();
}
