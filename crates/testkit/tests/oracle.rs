//! The ground-truth battery: RR-based estimators and full IM algorithm
//! runs judged against the exact live-edge-world oracle.
//!
//! Every assertion here compares workspace output to a *finite-sum*
//! truth, not to another sampler: the oracle enumerates all `2^m`
//! worlds, so a shared bug between two estimators cannot hide. Spread
//! estimates must land inside a Hoeffding-certified interval around
//! truth; algorithm seed sets must clear the paper's `(1 - 1/e - ε)`
//! floor against the brute-forced optimum; certified bounds must
//! bracket the truth they claim to bracket. All seeds are fixed —
//! a pass is a pass forever.
//!
//! Debug-suite graphs keep `m <= 12` (4096 worlds); the `#[ignore]`d
//! heavy check pushes to the 2^20-world enumeration limit and belongs
//! in the release-mode oracle CI job (see TESTING.md).

use subsim_core::{Hist, ImAlgorithm, ImOptions, ImResult, OpimC};
use subsim_diffusion::{rr_influence, RrStrategy};
use subsim_graph::generators::{complete_graph, path_graph, star_graph};
use subsim_graph::{Graph, GraphBuilder, WeightModel};
use subsim_testkit::{hoeffding_half_width, mc_certified, ExactOracle};

const IC_STRATEGIES: [RrStrategy; 3] = [
    RrStrategy::VanillaIc,
    RrStrategy::SubsimIc,
    RrStrategy::SubsimBucketIc,
];

fn uniform(p: f64) -> WeightModel {
    WeightModel::UniformIc { p }
}

/// A 6-node graph with heterogeneous per-edge probabilities (m = 9), so
/// the sorted-probing and bucket-sampler code paths actually engage.
fn weighted_fixture() -> Graph {
    GraphBuilder::new(6)
        .add_weighted_edge(0, 1, 0.8)
        .add_weighted_edge(0, 2, 0.15)
        .add_weighted_edge(1, 2, 0.5)
        .add_weighted_edge(1, 3, 0.05)
        .add_weighted_edge(2, 3, 0.6)
        .add_weighted_edge(3, 4, 0.35)
        .add_weighted_edge(4, 5, 0.9)
        .add_weighted_edge(5, 0, 0.25)
        .add_weighted_edge(2, 5, 0.45)
        .build()
        .unwrap()
}

/// The debug-tier shapes: name, graph, and the seed sets whose spread
/// the estimator checks probe.
fn shapes() -> Vec<(&'static str, Graph)> {
    vec![
        ("star", star_graph(8, uniform(0.3))),
        ("path", path_graph(7, uniform(0.6))),
        ("complete", complete_graph(4, uniform(0.2))),
        ("weighted", weighted_fixture()),
    ]
}

#[test]
fn rr_spread_estimates_match_truth_within_certified_width() {
    // 20k RR sets, δ = 1e-6: the certified half-width is n·0.0186, and
    // a miss at a fixed seed would mean the estimator is biased (or we
    // hit the 1-in-a-million honest miss — a new seed distinguishes).
    let count = 20_000;
    let delta = 1e-6;
    for (name, g) in shapes() {
        let oracle = ExactOracle::new(&g);
        let width = hoeffding_half_width(g.n() as f64, delta, count);
        let seed_sets: [&[u32]; 3] = [&[0], &[1], &[0, g.n() as u32 - 1]];
        for seeds in seed_sets {
            let truth = oracle.influence(seeds);
            for strategy in IC_STRATEGIES {
                let est = rr_influence(&g, seeds, strategy, count, 97);
                assert!(
                    (est - truth).abs() <= width,
                    "{name}/{strategy:?} seeds {seeds:?}: estimate {est} vs \
                     truth {truth} (width {width})"
                );
            }
        }
    }
}

#[test]
fn mc_oracle_path_agrees_with_enumeration() {
    // The Monte-Carlo fallback (used past the enumeration limit) must
    // cover the exact truth at its own certificate.
    for (name, g) in shapes() {
        let oracle = ExactOracle::new(&g);
        let truth = oracle.influence(&[0]);
        let est = mc_certified(&g, &[0], 6_000, 131, 1e-6);
        assert!(
            est.covers(truth),
            "{name}: MC {} ± {} misses exact {truth}",
            est.estimate,
            est.half_width
        );
    }
}

/// Asserts one algorithm result clears the paper's guarantee against
/// the brute-forced optimum, and that its certified bounds (when
/// reported) bracket what they claim.
fn assert_guarantee(label: &str, oracle: &ExactOracle, result: &ImResult, k: usize, epsilon: f64) {
    let spread = oracle.influence(&result.seeds);
    let (_, opt) = oracle.exact_opt(k);
    let floor = (1.0 - 1.0 / std::f64::consts::E - epsilon) * opt;
    assert_eq!(result.seeds.len(), k, "{label}: wrong seed count");
    assert!(
        spread >= floor - 1e-9,
        "{label}: spread {spread} below the (1-1/e-ε) floor {floor} (OPT {opt})"
    );
    if result.stats.upper_bound > 0.0 {
        assert!(
            result.stats.upper_bound >= opt - 1e-9,
            "{label}: certified upper bound {} below OPT {opt}",
            result.stats.upper_bound
        );
        assert!(
            result.stats.lower_bound <= spread + 1e-9,
            "{label}: certified lower bound {} above true spread {spread}",
            result.stats.lower_bound
        );
    }
}

#[test]
fn hist_clears_the_guarantee_on_every_shape_and_strategy() {
    let opts = ImOptions::new(2).epsilon(0.1).delta(0.01).seed(7);
    for (name, g) in shapes() {
        let oracle = ExactOracle::new(&g);
        for strategy in IC_STRATEGIES {
            let result = Hist::with_strategy(strategy).run(&g, &opts).unwrap();
            assert_guarantee(
                &format!("hist/{name}/{strategy:?}"),
                &oracle,
                &result,
                2,
                0.1,
            );
        }
    }
}

#[test]
fn opimc_clears_the_guarantee_on_every_shape_and_strategy() {
    let opts = ImOptions::new(2).epsilon(0.1).delta(0.01).seed(19);
    for (name, g) in shapes() {
        let oracle = ExactOracle::new(&g);
        for strategy in IC_STRATEGIES {
            let result = OpimC::with_strategy(strategy).run(&g, &opts).unwrap();
            assert_guarantee(
                &format!("opimc/{name}/{strategy:?}"),
                &oracle,
                &result,
                2,
                0.1,
            );
        }
    }
}

#[test]
fn brute_force_opt_dominates_every_greedy_pick() {
    // Sanity on the oracle itself: OPT_k majorizes the spread of every
    // single algorithm output and is monotone in k.
    let g = weighted_fixture();
    let oracle = ExactOracle::new(&g);
    let (_, opt1) = oracle.exact_opt(1);
    let (_, opt2) = oracle.exact_opt(2);
    let (_, opt3) = oracle.exact_opt(3);
    assert!(opt1 <= opt2 + 1e-12 && opt2 <= opt3 + 1e-12);
    let result = Hist::with_subsim()
        .run(&g, &ImOptions::new(2).seed(3))
        .unwrap();
    assert!(oracle.influence(&result.seeds) <= opt2 + 1e-9);
}

/// Release-tier: a 2^20-world enumeration (the documented limit) with
/// the full strategy sweep. ~1M worlds × reach closures is too slow for
/// the debug tier; the oracle CI job runs it with `--release
/// --include-ignored`.
#[test]
#[ignore = "2^20-world enumeration; run in release (see TESTING.md)"]
fn heavy_complete_graph_at_the_enumeration_limit() {
    let g = complete_graph(5, uniform(0.15)); // m = 20
    let oracle = ExactOracle::new(&g);
    assert_eq!(oracle.worlds(), 1 << 20);
    let count = 40_000;
    let width = hoeffding_half_width(g.n() as f64, 1e-6, count);
    let truth = oracle.influence(&[0, 1]);
    for strategy in IC_STRATEGIES {
        let est = rr_influence(&g, &[0, 1], strategy, count, 23);
        assert!(
            (est - truth).abs() <= width,
            "{strategy:?}: {est} vs {truth} (width {width})"
        );
    }
    let opts = ImOptions::new(2).epsilon(0.1).delta(0.01).seed(29);
    for strategy in IC_STRATEGIES {
        let result = Hist::with_strategy(strategy).run(&g, &opts).unwrap();
        assert_guarantee(&format!("heavy/{strategy:?}"), &oracle, &result, 2, 0.1);
    }
}
