//! The fault-injection battery: every injected fault class must surface
//! as a **typed** error — never a panic across the API boundary, never a
//! poisoned lock, never a silently wrong answer — and the index must
//! answer subsequent queries correctly, bit-identical to a twin that
//! never saw the fault.
//!
//! Fault levers (see `subsim_testkit::fault`):
//! - [`FaultyReader`] injects truncation, byte corruption, and hard
//!   mid-stream I/O errors into snapshot loading and the serving loop's
//!   input.
//! - the worker-pool chunk hooks (forwarded by `RrIndex`,
//!   `DeltaIndex`, and `ConcurrentDeltaIndex` as `set_chunk_hook`)
//!   panic inside generation workers, exercising the
//!   catch-unwind / batch-discard path under real thread pools.

use subsim_delta::{
    serve_queries, ConcurrentDeltaIndex, DeltaError, GraphDelta, NullSink, ServeEvent, ServeSink,
};
use subsim_diffusion::RrStrategy;
use subsim_graph::generators::barabasi_albert;
use subsim_graph::{Graph, WeightModel};
use subsim_index::{read_index, write_index, IndexConfig, IndexError, RrIndex};
use subsim_testkit::{panic_on_chunk, panic_on_chunk_id, Fault, FaultyReader};

fn graph() -> Graph {
    barabasi_albert(120, 3, WeightModel::Wc, 7)
}

fn config() -> IndexConfig {
    IndexConfig::new(RrStrategy::SubsimIc)
        .seed(3)
        .chunk_size(64)
        .threads(3)
}

/// A warmed index serialized to bytes, plus its graph.
fn snapshot_bytes() -> (Graph, Vec<u8>) {
    let g = graph();
    let mut index = RrIndex::new(&g, config());
    index.warm(256).unwrap();
    let mut bytes = Vec::new();
    write_index(&index, &mut bytes).unwrap();
    (g, bytes)
}

#[test]
fn truncated_snapshots_fail_typed_at_every_prefix_length() {
    let (g, bytes) = snapshot_bytes();
    // Sweep truncation points across the whole layout: header, config,
    // pool lengths, and mid-arena. Every one must produce a typed error.
    for at in [0, 4, 7, 8, 12, 20, 29, 45, bytes.len() / 2, bytes.len() - 1] {
        let reader = FaultyReader::new(bytes.clone(), Fault::TruncateAt(at));
        let err = read_index(&g, reader).expect_err("truncated snapshot must fail");
        assert!(
            matches!(err, IndexError::Io(_) | IndexError::SnapshotMismatch { .. }),
            "truncation at {at}: unexpected error {err:?}"
        );
    }
    // The control arm: untouched bytes load and serve.
    let mut loaded = read_index(&g, FaultyReader::new(bytes, Fault::None)).unwrap();
    assert!(loaded.query(5, 0.2, 0.05).is_ok());
}

#[test]
fn corrupt_snapshot_bytes_fail_typed_not_wrong() {
    let (g, bytes) = snapshot_bytes();
    // Flip one byte in each structural region: magic, format version,
    // graph fingerprint, strategy code, and seed. All must be *detected*
    // (typed error) — a silent wrong answer is the failure mode this
    // guards against.
    for offset in [0, 9, 13, 20, 22] {
        let reader = FaultyReader::new(bytes.clone(), Fault::CorruptByte { offset, xor: 0x40 });
        let err = read_index(&g, reader)
            .expect_err(&format!("corruption at byte {offset} must be detected"));
        assert!(
            matches!(err, IndexError::SnapshotMismatch { .. } | IndexError::Io(_)),
            "corruption at {offset}: unexpected error {err:?}"
        );
    }
}

#[test]
fn mid_stream_io_error_is_typed() {
    let (g, bytes) = snapshot_bytes();
    let at = bytes.len() / 3;
    let err = read_index(&g, FaultyReader::new(bytes, Fault::ErrorAt(at))).unwrap_err();
    match err {
        IndexError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset),
        other => panic!("expected Io, got {other:?}"),
    }
}

#[test]
fn failed_load_leaves_the_live_index_untouched() {
    let (g, bytes) = snapshot_bytes();
    let mut live = RrIndex::new(&g, config());
    let before = live.query(5, 0.2, 0.05).unwrap().seeds;
    for fault in [
        Fault::TruncateAt(10),
        Fault::ErrorAt(40),
        Fault::CorruptByte { offset: 3, xor: 1 },
    ] {
        assert!(read_index(&g, FaultyReader::new(bytes.clone(), fault)).is_err());
    }
    assert_eq!(
        live.query(5, 0.2, 0.05).unwrap().seeds,
        before,
        "failed snapshot loads must not disturb a live index"
    );
}

#[test]
fn worker_panic_in_rr_index_is_typed_and_recoverable() {
    let g = graph();
    let mut faulted = RrIndex::new(&g, config());
    faulted.set_chunk_hook(Some(panic_on_chunk()));
    let err = faulted.query(5, 0.2, 0.05).unwrap_err();
    assert!(matches!(err, IndexError::WorkerPanic), "got {err:?}");
    // Repeated faults stay typed (workers and locks survived the first).
    assert!(matches!(
        faulted.query(5, 0.2, 0.05).unwrap_err(),
        IndexError::WorkerPanic
    ));
    faulted.set_chunk_hook(None);
    let recovered = faulted.query(5, 0.2, 0.05).unwrap();
    // Bit-identical to a twin that never faulted: the discarded partial
    // batches left no trace in the pool.
    let mut clean = RrIndex::new(&g, config());
    assert_eq!(recovered.seeds, clean.query(5, 0.2, 0.05).unwrap().seeds);
}

#[test]
fn single_chunk_fault_discards_the_whole_batch() {
    let g = graph();
    let mut index = RrIndex::new(&g, config());
    index.warm(128).unwrap();
    let before = index.pool_len();
    index.set_chunk_hook(Some(panic_on_chunk_id(3)));
    assert!(matches!(
        index.warm(512).unwrap_err(),
        IndexError::WorkerPanic
    ));
    assert_eq!(
        index.pool_len(),
        before,
        "a faulted batch must not publish partial chunks"
    );
    index.set_chunk_hook(None);
    index.warm(512).unwrap();
    let mut clean = RrIndex::new(&g, config());
    clean.warm(512).unwrap();
    assert_eq!(
        index.query(5, 0.2, 0.05).unwrap().seeds,
        clean.query(5, 0.2, 0.05).unwrap().seeds,
        "recovered pool must be bit-identical to a never-faulted twin"
    );
}

#[test]
fn worker_panic_mid_delta_apply_keeps_version_and_answers() {
    let g = graph();
    let index = ConcurrentDeltaIndex::new(g.clone(), config()).unwrap();
    index.warm(256).unwrap();
    let before = index.query(5, 0.2, 0.05).unwrap().seeds;
    let version_before = index.version();

    let mut delta = GraphDelta::new();
    delta.push(GraphDelta::parse_line("~ 0 1 0.5").unwrap().unwrap());
    index.set_chunk_hook(Some(panic_on_chunk()));
    let err = index.apply_delta(&delta).unwrap_err();
    assert!(
        matches!(err, DeltaError::Index(IndexError::WorkerPanic)),
        "got {err:?}"
    );
    assert_eq!(
        index.version(),
        version_before,
        "graph version must not run ahead of a failed repair"
    );
    assert_eq!(
        index.query(5, 0.2, 0.05).unwrap().seeds,
        before,
        "the pre-fault snapshot keeps serving"
    );

    // Recovery: hook off, the same delta applies, and the result matches
    // a twin that never saw the fault.
    index.set_chunk_hook(None);
    index.apply_delta(&delta).unwrap();
    assert_eq!(index.version(), version_before + 1);
    let twin = ConcurrentDeltaIndex::new(g, config()).unwrap();
    twin.warm(256).unwrap();
    twin.apply_delta(&delta).unwrap();
    assert_eq!(
        index.query(5, 0.2, 0.05).unwrap().seeds,
        twin.query(5, 0.2, 0.05).unwrap().seeds,
        "post-recovery pool must equal the never-faulted twin's"
    );
}

/// Event recorder for serving-loop assertions.
#[derive(Default)]
struct Recorder(std::sync::Mutex<Vec<ServeEvent>>);

impl ServeSink for Recorder {
    fn event(&self, event: ServeEvent) {
        self.0.lock().unwrap().push(event);
    }
}

#[test]
fn serving_survives_mid_stream_input_failure() {
    let index = ConcurrentDeltaIndex::new(graph(), config()).unwrap();
    // One good query, then the connection dies mid-line.
    let input = b"3 0.2\ndelta ~ 0 1 0.4\n3 0.2".to_vec();
    let reader = std::io::BufReader::new(FaultyReader::new(input, Fault::ErrorAt(22)));
    let mut out = Vec::new();
    let rec = Recorder::default();
    let shutdown = serve_queries(&index, 0.05, 2, reader, &mut out, &rec).unwrap();
    assert!(!shutdown);
    let events = rec.0.into_inner().unwrap();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ServeEvent::InputError { .. })),
        "the dropped stream must surface as a typed event: {events:?}"
    );
    // The session ended, but the index is untouched: a fresh session on
    // the same index serves normally.
    let mut out2 = Vec::new();
    serve_queries(&index, 0.05, 2, &b"3 0.2\n"[..], &mut out2, &NullSink).unwrap();
    assert_eq!(
        String::from_utf8(out2).unwrap().lines().count(),
        1,
        "index must keep serving after a dropped session"
    );
}

#[test]
fn fault_storm_session_keeps_serving_and_stays_consistent() {
    // Everything at once: a malformed query, a bogus delta op, and a
    // stale pin interleaved with valid traffic. The session must produce
    // exactly the valid answers, every failure typed.
    let g = graph();
    let index = ConcurrentDeltaIndex::new(g.clone(), config()).unwrap();
    index.warm(256).unwrap();

    let rec = Recorder::default();
    let mut out = Vec::new();
    let input = "3 0.2\n\
                 not a query\n\
                 delta nope nope\n\
                 delta ~ 0 1 0.4\n\
                 3 0.2 @0\n\
                 3 0.2 @1\n\
                 3 0.2\n";
    serve_queries(&index, 0.05, 2, input.as_bytes(), &mut out, &rec).unwrap();

    let answers: Vec<String> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(answers.len(), 3, "three valid queries answer");
    let events = rec.0.into_inner().unwrap();
    let failures = events
        .iter()
        .filter(|e| matches!(e, ServeEvent::LineFailed { .. }))
        .count();
    assert_eq!(failures, 3, "malformed, bogus delta, stale pin: {events:?}");
    assert_eq!(index.version(), 1);

    // Consistency: the surviving index answers exactly like a clean twin
    // that applied the same delta with no faults around it.
    let twin = ConcurrentDeltaIndex::new(g, config()).unwrap();
    twin.warm(256).unwrap();
    let mut delta = GraphDelta::new();
    delta.push(GraphDelta::parse_line("~ 0 1 0.4").unwrap().unwrap());
    twin.apply_delta(&delta).unwrap();
    assert_eq!(
        index.query(3, 0.2, 0.05).unwrap().seeds,
        twin.query(3, 0.2, 0.05).unwrap().seeds
    );
}
