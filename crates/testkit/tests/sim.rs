//! The deterministic serving simulator: seeded schedules of interleaved
//! queries, version pins, and graph deltas drive the real concurrent
//! serving stack and are model-checked against the sequential
//! [`subsim_delta::DeltaIndex`]. A failure here prints the offending
//! `u64` seed, and `check_seed` replays it bit-identically — the
//! FoundationDB-style loop: explore schedules randomly, reproduce
//! deterministically.

use subsim_graph::generators::barabasi_albert;
use subsim_graph::{Graph, WeightModel};
use subsim_testkit::{check_seed, generate_script, run_concurrent, run_sequential_model};

fn sim_graph() -> Graph {
    barabasi_albert(48, 2, WeightModel::Wc, 17)
}

#[test]
fn same_seed_replays_bit_identically() {
    let g = sim_graph();
    let script = generate_script(&g, 11, 40);
    let a = run_concurrent(&g, &script);
    let b = run_concurrent(&g, &script);
    assert_eq!(a, b, "two runs of one script must match exactly");
}

#[test]
fn concurrent_stack_matches_sequential_model_across_seeds() {
    // The core simulation claim, swept over schedules: for every seed,
    // the concurrent serving stack and the sequential model agree on
    // every record (answers, repair acks, stale pins, malformed lines).
    let g = sim_graph();
    for seed in 0..8 {
        check_seed(&g, seed, 40).unwrap();
    }
}

#[test]
fn schedules_exercise_stale_pins_and_repairs() {
    // The sweep is only meaningful if the schedules actually hit the
    // interesting transitions; assert the generated sessions contain
    // answered queries, applied deltas, AND typed stale-pin failures.
    let g = sim_graph();
    let mut saw_ok = false;
    let mut saw_applied = false;
    let mut saw_stale = false;
    let mut saw_malformed = false;
    for seed in 0..8 {
        let script = generate_script(&g, seed, 40);
        let outcome = run_concurrent(&g, &script);
        for r in &outcome.records {
            saw_ok |= r.starts_with("ok ");
            saw_applied |= r.starts_with("applied v");
            saw_stale |= r.starts_with("stale ");
            saw_malformed |= r == "malformed" || r == "rejected-parse";
        }
    }
    assert!(saw_ok, "no query answered across the sweep");
    assert!(saw_applied, "no delta applied across the sweep");
    assert!(saw_stale, "no stale pin hit across the sweep");
    assert!(saw_malformed, "no malformed line hit across the sweep");
}

#[test]
fn version_advances_exactly_with_applied_deltas() {
    let g = sim_graph();
    let script = generate_script(&g, 5, 60);
    let outcome = run_concurrent(&g, &script);
    let applied = outcome
        .records
        .iter()
        .filter(|r| r.starts_with("applied v"))
        .count() as u64;
    assert_eq!(
        outcome.final_version, applied,
        "every applied delta bumps the version exactly once"
    );
    // And the model agrees on the final version too.
    assert_eq!(
        run_sequential_model(&g, &script).final_version,
        outcome.final_version
    );
}

/// Release-tier: a wide seed sweep with longer sessions. The debug tier
/// keeps 8 seeds × 40 steps; CI's testkit job runs this with
/// `--release --include-ignored` (see TESTING.md).
#[test]
#[ignore = "wide seed sweep; run in release (see TESTING.md)"]
fn heavy_seed_sweep() {
    let g = sim_graph();
    for seed in 0..64 {
        check_seed(&g, seed, 120).unwrap();
    }
}

#[test]
fn sharded_serving_matches_sequential_model() {
    // The PR-6 model check: an N-shard serving session over the same
    // script is byte-identical to the sequential model, for several
    // shard counts and schedule seeds.
    let g = sim_graph();
    for shards in [2usize, 3, 4] {
        for seed in [5u64, 23] {
            subsim_testkit::check_seed_sharded(&g, seed, 40, shards)
                .unwrap_or_else(|e| panic!("shards={shards}: {e}"));
        }
    }
}

#[test]
fn sentinel_serving_matches_sequential_model() {
    // The sentinel-tier model check: with truncated pools active from
    // the first line, the concurrent stack (sentinel-aware growth,
    // fixed-Z repair, stale refresh) still matches the sequential
    // sentinel model byte for byte.
    let g = sim_graph();
    for seed in 0..4 {
        subsim_testkit::check_seed_sentinel(&g, seed, 40).unwrap();
    }
}

#[test]
fn sentinel_sharded_serving_matches_sequential_model() {
    let g = sim_graph();
    for shards in [2usize, 3] {
        for seed in [5u64, 23] {
            subsim_testkit::check_seed_sharded_sentinel(&g, seed, 40, shards)
                .unwrap_or_else(|e| panic!("shards={shards}: {e}"));
        }
    }
}

#[test]
fn sentinel_schedules_exercise_refreshes() {
    // The sentinel sweep must actually hit the interesting transition:
    // at least one scripted delta lands on a sentinel endpoint and
    // forces a Z refresh (witnessed by both stacks staying in lockstep
    // across it — here we just assert refreshes occur in the sweep).
    let g = sim_graph();
    let mut saw_applied = false;
    for seed in 0..4 {
        let script = subsim_testkit::generate_script(&g, seed, 40);
        let outcome = subsim_testkit::run_concurrent_sentinel(&g, &script);
        saw_applied |= outcome.records.iter().any(|r| r.starts_with("applied v"));
    }
    assert!(saw_applied, "no delta applied across the sentinel sweep");
}

/// Release-tier sentinel sweep (CI testkit job, `--include-ignored`).
#[test]
#[ignore = "wide seed sweep; run in release (see TESTING.md)"]
fn heavy_sentinel_seed_sweep() {
    let g = sim_graph();
    for seed in 0..24 {
        subsim_testkit::check_seed_sentinel(&g, seed, 80).unwrap();
    }
    for shards in [2usize, 3, 4] {
        for seed in 0..8 {
            subsim_testkit::check_seed_sharded_sentinel(&g, seed, 80, shards)
                .unwrap_or_else(|e| panic!("shards={shards}: {e}"));
        }
    }
}
