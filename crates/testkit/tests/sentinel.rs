//! Sentinel-tier conformance: the stopped-RR serving path checked
//! against ground truth.
//!
//! The sentinel tier (HIST Alg 5/7 wired into the index stack) is
//! certified *statistically*, not by bit-equality with plain pools, so
//! its referee must be independent of RR sampling entirely:
//!
//! - **Certificate conformance** — on graphs small enough to enumerate
//!   every live-edge world, seed sets served from sentinel-truncated
//!   pools must clear the same `(1 - 1/e - ε)` floor against the
//!   brute-forced `OPT_k` as plain pools, with their certified bounds
//!   bracketing truth.
//! - **Stop-rate physics** — a truncated traversal records a hit
//!   exactly when the full RR set would intersect the sentinel set `Z`,
//!   which happens with probability `σ(Z)/n` (the standard RR-coverage
//!   identity). The recorded per-chunk hit counters are therefore
//!   Binomial(chunk, σ(Z)/n) draws; a χ² test at α = 0.001 against the
//!   oracle-computed `σ(Z)` pins the bookkeeping to physics with a
//!   fixed seed (no flake budget).
//! - **Corruption injection** — a persisted sentinel block that is
//!   damaged in any byte must surface as a typed
//!   [`IndexError::SnapshotMismatch`], never load as a silently-plain
//!   (or silently-wrong) pool.

use subsim_diffusion::RrStrategy;
use subsim_graph::generators::complete_graph;
use subsim_graph::{Graph, GraphBuilder, WeightModel};
use subsim_index::{read_index, write_index, IndexConfig, IndexError, RrIndex, SentinelState};
use subsim_testkit::{
    chi_square_critical, chi_square_stat, merge_small_bins, ExactOracle, Fault, FaultyReader,
};

fn uniform(p: f64) -> WeightModel {
    WeightModel::UniformIc { p }
}

/// Star with heterogeneous hub→leaf probabilities: the hub dominates
/// influence, so a 1–2 node sentinel set has a meaningful stop rate.
fn weighted_star() -> Graph {
    let probs = [0.15, 0.2, 0.35, 0.5, 0.6, 0.7, 0.9];
    let mut b = GraphBuilder::new(8);
    for (i, &p) in probs.iter().enumerate() {
        b = b.add_weighted_edge(0, i as u32 + 1, p);
    }
    b.build().unwrap()
}

fn config(sentinels: usize) -> IndexConfig {
    IndexConfig::new(RrStrategy::SubsimIc)
        .seed(13)
        .chunk_size(16)
        .threads(2)
        .sentinels(sentinels)
}

/// Warm target: past the 4-chunk warmup prefix with a truncated tail.
const WARM_SETS: usize = 16 * 12;

/// Sentinel-pool answers clear the same `(ε, δ)` certificate as plain
/// pools, judged against the brute-forced optimum: spread above the
/// paper's floor, certified bounds bracketing truth.
#[test]
fn sentinel_seed_sets_meet_the_plain_certificate_against_opt() {
    let shapes: Vec<(&str, Graph)> = vec![
        ("complete5", complete_graph(5, uniform(0.3))),
        ("weighted-star", weighted_star()),
    ];
    let (k, epsilon, delta) = (2usize, 0.1, 0.01);
    for (name, g) in shapes {
        let oracle = ExactOracle::new(&g);
        let (_, opt) = oracle.exact_opt(k);
        let floor = (1.0 - 1.0 / std::f64::consts::E - epsilon) * opt;
        for sentinels in [0usize, 2] {
            let mut index = RrIndex::new(&g, config(sentinels));
            index.warm(WARM_SETS).unwrap();
            if sentinels > 0 {
                let st = index.sentinel_state().expect("sentinel tier active");
                assert!(!st.set.is_empty(), "{name}: empty sentinel set selected");
            }
            let ans = index.query(k, epsilon, delta).unwrap();
            let label = format!("{name}/sentinels={sentinels}");
            assert!(
                ans.stats.certified_by_bounds,
                "{label}: query did not certify"
            );
            let spread = oracle.influence(&ans.seeds);
            assert!(
                spread >= floor - 1e-9,
                "{label}: spread {spread} below the (1-1/e-ε) floor {floor} (OPT {opt})"
            );
            assert!(
                ans.stats.lower_bound <= spread + 1e-9,
                "{label}: certified lower bound {} above true spread {spread}",
                ans.stats.lower_bound
            );
            assert!(
                ans.stats.upper_bound >= opt - 1e-9,
                "{label}: certified upper bound {} below OPT {opt}",
                ans.stats.upper_bound
            );
        }
    }
}

/// Binomial pmf by the multiplicative recurrence (exact enough for
/// χ² expectations at chunk sizes this small).
fn binomial_pmf(n: usize, p: f64) -> Vec<f64> {
    let mut pmf = vec![0.0; n + 1];
    pmf[0] = (1.0 - p).powi(n as i32);
    for h in 1..=n {
        pmf[h] = pmf[h - 1] * ((n - h + 1) as f64 / h as f64) * (p / (1.0 - p));
    }
    pmf
}

/// The recorded per-chunk sentinel-hit counters follow
/// Binomial(chunk, σ(Z)/n) with `σ(Z)` from the exact oracle: the Alg 5
/// wrapper records a hit iff the full RR set would contain a sentinel.
#[test]
fn sentinel_hit_counts_match_oracle_stop_rate() {
    let g = weighted_star();
    let oracle = ExactOracle::new(&g);
    let chunk = 16usize;
    // 4 warmup chunks + 300 truncated chunks per half = 600 samples.
    let mut index = RrIndex::new(&g, config(2));
    index.warm(chunk * (4 + 300)).unwrap();
    let st = index.sentinel_state().expect("sentinel tier active");
    let z = st.set.nodes();
    let p = oracle.influence(z) / g.n() as f64;
    assert!(p > 0.0 && p < 1.0, "degenerate stop rate {p}");

    let from = st.from_chunk as usize;
    let mut observed = vec![0u64; chunk + 1];
    for half in [&st.chunk_hits_r1, &st.chunk_hits_r2] {
        assert!(
            half[..from].iter().all(|&h| h == 0),
            "warmup chunks must record no hits"
        );
        for &h in &half[from..] {
            assert!(h as usize <= chunk, "hit count {h} exceeds chunk size");
            observed[h as usize] += 1;
        }
    }
    let total: u64 = observed.iter().sum();
    assert_eq!(total, 600, "300 truncated chunks per half");
    let expected: Vec<f64> = binomial_pmf(chunk, p)
        .iter()
        .map(|q| q * total as f64)
        .collect();
    let (obs, exp) = merge_small_bins(&observed, &expected, 5.0);
    assert!(obs.len() >= 2, "degenerate binning {obs:?}");
    let stat = chi_square_stat(&obs, &exp);
    let critical = chi_square_critical(obs.len() - 1);
    assert!(
        stat <= critical,
        "hit counts: χ² = {stat:.2} exceeds critical {critical} (df {}); \
         stop rate σ(Z)/n = {p:.4}, observed {obs:?} expected {exp:?}",
        obs.len() - 1
    );
}

/// Structurally corrupt in-memory sentinel state is refused with a
/// typed [`IndexError::SnapshotMismatch`] — installing it must never
/// half-succeed.
#[test]
fn corrupt_sentinel_state_is_rejected_typed() {
    let g = weighted_star();
    let mut index = RrIndex::new(&g, config(2));
    index.warm(WARM_SETS).unwrap();
    let good = index
        .sentinel_state()
        .expect("sentinel tier active")
        .clone();

    let mut out_of_range = good.clone();
    out_of_range.set = subsim_core::SentinelSet::from_nodes(vec![g.n() as u32]);
    let mut short_hits = good.clone();
    short_hits.chunk_hits_r1.pop();
    let mut bad_boundary = good.clone();
    bad_boundary.from_chunk = good.chunk_hits_r1.len() as u64 + 1;

    for (label, bad) in [
        ("node out of range", out_of_range),
        ("short hit vector", short_hits),
        ("boundary past cursor", bad_boundary),
    ] {
        let err = index
            .set_sentinel_state(Some(bad))
            .expect_err(&format!("{label} must be refused"));
        assert!(
            matches!(err, IndexError::SnapshotMismatch { .. }),
            "{label}: unexpected error {err:?}"
        );
    }
    // The refusals left the index serving with its original state.
    let st = index.sentinel_state().expect("original state survives");
    assert_eq!(st.set.nodes(), good.set.nodes());
    // The untouched export re-installs cleanly, and the index serves.
    index.set_sentinel_state(Some(good)).unwrap();
    index.query(2, 0.1, 0.01).unwrap();
}

/// Every byte of the persisted sentinel block is protected: flipping
/// any of them fails the load with a typed error — never a silent
/// fallback to a plain pool, never a wrong sentinel state.
#[test]
fn corrupt_persisted_sentinel_block_fails_typed_never_plain() {
    let g = weighted_star();
    let mut index = RrIndex::new(&g, config(2));
    index.warm(WARM_SETS).unwrap();
    let st = index
        .sentinel_state()
        .expect("sentinel tier active")
        .clone();
    let mut bytes = Vec::new();
    write_index(&index, &mut bytes).unwrap();

    // Layout tail: flag u8, from_chunk u64, z_len u64, z u32×|Z|,
    // hits u64×chunks×2, then the 8-byte FNV trailer.
    let chunks = st.chunk_hits_r1.len();
    let block = 1 + 8 + 8 + 4 * st.set.len() + 16 * chunks;
    let start = bytes.len() - 8 - block;
    // One probe per block region: flag, boundary, |Z|, the set itself,
    // both hit arrays, and the trailer.
    let offsets = [
        start,
        start + 1,
        start + 9,
        start + 17,
        start + 17 + 4 * st.set.len(),
        bytes.len() - 12,
        bytes.len() - 1,
    ];
    for offset in offsets {
        let reader = FaultyReader::new(bytes.clone(), Fault::CorruptByte { offset, xor: 0x20 });
        let err = read_index(&g, reader)
            .expect_err(&format!("corruption at byte {offset} must be detected"));
        assert!(
            matches!(err, IndexError::SnapshotMismatch { .. } | IndexError::Io(_)),
            "corruption at {offset}: unexpected error {err:?}"
        );
    }
    // Truncation that drops exactly the sentinel block is equally typed:
    // a v3 snapshot may not quietly degrade to a plain pool.
    let reader = FaultyReader::new(bytes.clone(), Fault::TruncateAt(start));
    let err = read_index(&g, reader).expect_err("missing sentinel block must fail");
    assert!(
        matches!(err, IndexError::Io(_) | IndexError::SnapshotMismatch { .. }),
        "unexpected error {err:?}"
    );
    // Control arm: clean bytes round-trip the full sentinel state.
    let mut loaded = read_index(&g, FaultyReader::new(bytes, Fault::None)).unwrap();
    let got = loaded.sentinel_state().expect("sentinel state reloaded");
    assert_eq!(got.set.nodes(), st.set.nodes());
    assert_eq!(got.from_chunk, st.from_chunk);
    assert_eq!(got.chunk_hits_r1, st.chunk_hits_r1);
    assert_eq!(got.chunk_hits_r2, st.chunk_hits_r2);
    loaded.query(2, 0.1, 0.01).unwrap();
}

/// `SentinelState` round-trips through its public validation: the state
/// an index exports is exactly the state another index accepts.
#[test]
fn exported_sentinel_state_installs_on_a_fresh_pool() {
    let g = weighted_star();
    let mut a = RrIndex::new(&g, config(2));
    a.warm(WARM_SETS).unwrap();
    let st: SentinelState = a.sentinel_state().unwrap().clone();
    let mut b = RrIndex::new(&g, config(2));
    b.warm(WARM_SETS).unwrap();
    // Same config + same size → the two indexes selected the same state
    // independently; installing the export is a no-op by value.
    let prev = b.sentinel_state().unwrap().clone();
    assert_eq!(prev.set.nodes(), st.set.nodes());
    b.set_sentinel_state(Some(st)).unwrap();
    b.query(2, 0.1, 0.01).unwrap();
}
