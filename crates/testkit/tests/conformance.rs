//! Statistical conformance: the empirical RR root-node and size
//! distributions of every IC sampler path, χ²-tested against exact
//! expectations on star, path, and complete graphs.
//!
//! Each sampler path gets its own physics check:
//!
//! - naive Bernoulli (`VanillaIc`, per-edge coin flips),
//! - geometric skip (`SubsimIc` on uniform in-probabilities),
//! - sorted probing (`SubsimIc` on heterogeneous per-edge weights),
//! - bucket jumping (`SubsimBucketIc` on heterogeneous weights).
//!
//! Expectations come from hand-derived closed forms where they are
//! short (star, path) and from the exact world-enumeration oracle
//! otherwise (complete, weighted star) — either way a finite sum, not
//! another sampler. Tests draw a fixed-seed sample, bin it, and reject
//! at α = 0.001 with hardcoded critical values: a seed that passes
//! passes forever, so there is no flake budget, yet a biased sampler
//! (wrong skip distribution, mis-sorted probing, a lost root) fails by
//! orders of magnitude.

use rand::Rng as _;
use subsim_diffusion::{RrContext, RrSampler, RrStrategy};
use subsim_graph::generators::{complete_graph, path_graph, star_graph};
use subsim_graph::{Graph, GraphBuilder, WeightModel};
use subsim_testkit::{chi_square_critical, chi_square_stat, merge_small_bins, ExactOracle};

const SAMPLES: usize = 30_000;

fn uniform(p: f64) -> WeightModel {
    WeightModel::UniformIc { p }
}

/// Star with heterogeneous hub→leaf probabilities (engages the sorted
/// and bucket sampler paths, which uniform weights bypass).
fn weighted_star() -> Graph {
    let probs = [0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9];
    let mut b = GraphBuilder::new(8);
    for (i, &p) in probs.iter().enumerate() {
        b = b.add_weighted_edge(0, i as u32 + 1, p);
    }
    b.build().unwrap()
}

/// Draws `SAMPLES` RR sets and returns `(root_counts, size_counts)`
/// (`size_counts[s - 1]` is the number of sets of size `s`).
fn sample(g: &Graph, strategy: RrStrategy, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let sampler = RrSampler::new(g, strategy);
    let mut ctx = RrContext::new(g.n());
    let mut rng = subsim_sampling::rng_from_seed(seed);
    let mut roots = vec![0u64; g.n()];
    let mut sizes = vec![0u64; g.n()];
    for _ in 0..SAMPLES {
        let size = sampler.generate(&mut ctx, &mut rng);
        roots[ctx.last()[0] as usize] += 1; // the root is pushed first
        sizes[size - 1] += 1;
    }
    (roots, sizes)
}

/// χ²-tests observed counts against expected probabilities (α = 0.001),
/// merging bins below an expected count of 5.
fn assert_fits(label: &str, observed: &[u64], expected_probs: &[f64]) {
    let total: u64 = observed.iter().sum();
    let expected: Vec<f64> = expected_probs.iter().map(|p| p * total as f64).collect();
    let (obs, exp) = merge_small_bins(observed, &expected, 5.0);
    assert!(obs.len() >= 2, "{label}: degenerate binning {obs:?}");
    let stat = chi_square_stat(&obs, &exp);
    let critical = chi_square_critical(obs.len() - 1);
    assert!(
        stat <= critical,
        "{label}: χ² = {stat:.2} exceeds critical {critical} (df {}); \
         observed {obs:?} expected {exp:?}",
        obs.len() - 1
    );
}

/// Closed-form star size distribution: the hub's RR set is always
/// `{hub}`; leaf `i`'s is `{leaf}` or `{leaf, hub}` with the edge
/// probability. `P(1) = (1 + Σ(1-p_i))/n`, `P(2) = Σ p_i / n`.
fn star_size_dist(g: &Graph) -> Vec<f64> {
    let n = g.n() as f64;
    let p_sum: f64 = g.edges().map(|(_, _, p)| p).sum();
    let mut dist = vec![0.0; g.n()];
    dist[0] = (1.0 + (n - 1.0) - p_sum) / n;
    dist[1] = p_sum / n;
    dist
}

/// Closed-form path size distribution for `0 -> 1 -> ... -> n-1` with
/// uniform `p`: the RR set of root `r` extends backwards by a geometric
/// run truncated at depth `r`.
fn path_size_dist(n: usize, p: f64) -> Vec<f64> {
    let mut dist = vec![0.0; n];
    for r in 0..n {
        for j in 1..=r {
            dist[j - 1] += p.powi(j as i32 - 1) * (1.0 - p) / n as f64;
        }
        dist[r] += p.powi(r as i32) / n as f64;
    }
    dist
}

/// The four sampler paths with the graph class that engages each.
fn sampler_matrix() -> Vec<(&'static str, RrStrategy, bool)> {
    // (label, strategy, needs_per_edge_weights)
    vec![
        ("naive-bernoulli", RrStrategy::VanillaIc, false),
        ("geometric-skip", RrStrategy::SubsimIc, false),
        ("sorted-probing", RrStrategy::SubsimIc, true),
        ("bucket-jump", RrStrategy::SubsimBucketIc, true),
    ]
}

#[test]
fn star_distributions_match_closed_form() {
    let uniform_star = star_graph(8, uniform(0.3));
    let per_edge_star = weighted_star();
    let n = uniform_star.n();
    let uniform_root = vec![1.0 / n as f64; n];
    for (label, strategy, per_edge) in sampler_matrix() {
        let g = if per_edge {
            &per_edge_star
        } else {
            &uniform_star
        };
        let (roots, sizes) = sample(g, strategy, 0xA11CE);
        assert_fits(&format!("star/{label}/root"), &roots, &uniform_root);
        assert_fits(&format!("star/{label}/size"), &sizes, &star_size_dist(g));
    }
}

#[test]
fn path_distributions_match_closed_form() {
    let n = 7;
    let p = 0.6;
    let g = path_graph(n, uniform(p));
    let expected_size = path_size_dist(n, p);
    let uniform_root = vec![1.0 / n as f64; n];
    // The path has uniform in-probabilities (in-degree <= 1), so the
    // naive and geometric-skip paths apply.
    for strategy in [RrStrategy::VanillaIc, RrStrategy::SubsimIc] {
        let (roots, sizes) = sample(&g, strategy, 0xBEE);
        assert_fits(&format!("path/{strategy:?}/root"), &roots, &uniform_root);
        assert_fits(&format!("path/{strategy:?}/size"), &sizes, &expected_size);
    }
}

#[test]
fn complete_graph_distributions_match_oracle() {
    // No short closed form here: the exact distribution comes from the
    // 2^12-world enumeration instead.
    let uniform_complete = complete_graph(4, uniform(0.2));
    let per_edge_complete = {
        let mut b = GraphBuilder::new(4);
        let mut p = 0.05;
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    b = b.add_weighted_edge(u, v, p);
                    p += 0.06;
                }
            }
        }
        b.build().unwrap()
    };
    for (label, strategy, per_edge) in sampler_matrix() {
        let g = if per_edge {
            &per_edge_complete
        } else {
            &uniform_complete
        };
        let oracle = ExactOracle::new(g);
        let n = g.n();
        let uniform_root = vec![1.0 / n as f64; n];
        let (roots, sizes) = sample(g, strategy, 0xC0FFEE);
        assert_fits(&format!("complete/{label}/root"), &roots, &uniform_root);
        assert_fits(
            &format!("complete/{label}/size"),
            &sizes,
            &oracle.rr_size_distribution(),
        );
    }
}

#[test]
fn chi_square_detects_a_deliberately_biased_sampler() {
    // Negative control: feed the star test a sampler whose root draw is
    // skewed (always node 0) and check the χ² machinery rejects it —
    // guarding against a vacuously-passing harness.
    let g = star_graph(8, uniform(0.3));
    let sampler = RrSampler::new(&g, RrStrategy::SubsimIc);
    let mut ctx = RrContext::new(g.n());
    let mut rng = subsim_sampling::rng_from_seed(1);
    let mut roots = vec![0u64; g.n()];
    for _ in 0..SAMPLES {
        // A "sampler" that ignores root uniformity.
        let root = if rng.gen::<f64>() < 0.5 {
            0
        } else {
            ctx.last().first().copied().unwrap_or(0)
        };
        sampler.generate_from(&mut ctx, &mut rng, root);
        roots[ctx.last()[0] as usize] += 1;
    }
    let total: u64 = roots.iter().sum();
    let expected: Vec<f64> = vec![total as f64 / g.n() as f64; g.n()];
    let (obs, exp) = merge_small_bins(&roots, &expected, 5.0);
    let stat = chi_square_stat(&obs, &exp);
    assert!(
        stat > chi_square_critical(obs.len() - 1) * 10.0,
        "biased root draw must fail decisively, got χ² = {stat:.2}"
    );
}

#[test]
fn all_ic_strategies_agree_with_each_other_on_sizes() {
    // Differential closure: on a per-edge graph all three IC strategies
    // sample the same distribution, so their size histograms must be
    // mutually χ²-compatible with the oracle's exact law.
    let g = weighted_star();
    let oracle = ExactOracle::new(&g);
    let expected = oracle.rr_size_distribution();
    for strategy in [
        RrStrategy::VanillaIc,
        RrStrategy::SubsimIc,
        RrStrategy::SubsimBucketIc,
    ] {
        let (_, sizes) = sample(&g, strategy, 0xD15C0);
        assert_fits(&format!("agreement/{strategy:?}"), &sizes, &expected);
    }
}
