//! Exact ground truth for influence maximization under Linear Threshold.
//!
//! LT has its own live-edge characterization (Kempe et al. 2003): every
//! node `v` independently keeps **at most one** incoming live edge —
//! edge `(u, v)` with probability `p(u, v)`, and none with probability
//! `1 - Σ p`. The spread of a seed set is the expected number of nodes
//! reachable from it over live edges, exactly as in IC, but the world
//! distribution is a product over *nodes*, not edges: with in-degrees
//! `d_v` there are `Π (d_v + 1)` worlds. [`ExactLtOracle`] enumerates
//! them all in mixed radix and feeds the resulting ensemble into the
//! same closed-form queries the IC oracle answers, so the serving stack
//! and the `(1 - 1/e - ε)` certificate can be judged against LT *truth*
//! rather than against another LT sampler that might share its bug.
//!
//! The enumeration mirrors the sampler's clamping: when `Σ p > 1` the
//! reverse step fires with probability `min(Σ p, 1)` and picks neighbor
//! `i` conditionally with `p_i / Σ p`, so the unconditional choice
//! probability here is `p_i · min(Σ p, 1) / Σ p` and the none-choice
//! gets `1 - min(Σ p, 1)`. For well-formed LT weights (`Σ p <= 1`) this
//! reduces to `p_i` and `1 - Σ p` exactly.

use crate::oracle::{reach_closure, CertifiedEstimate, Ensemble, NodeMask, World};
use crate::stats::hoeffding_half_width;
use subsim_diffusion::{mc_influence, CascadeModel};
use subsim_graph::{Graph, InProbs, NodeId};

/// Enumeration limit: `Π (d_in + 1)` worlds must stay tractable. `2^20`
/// is ~1M worlds — release-mode territory, same budget as the IC
/// oracle's `MAX_ORACLE_EDGES`.
pub const MAX_LT_ORACLE_WORLDS: u64 = 1 << 20;

/// An exact LT influence oracle over all `Π (d_in + 1)` live-edge worlds.
pub struct ExactLtOracle {
    ens: Ensemble,
}

/// One node's live-edge lottery: its in-neighbors with their
/// unconditional choice probabilities, plus the leftover none-probability.
struct Lottery {
    nbrs: Vec<NodeId>,
    probs: Vec<f64>,
    none: f64,
}

fn lottery(g: &Graph, v: NodeId) -> Lottery {
    let nbrs = g.in_neighbors(v).to_vec();
    let raw: Vec<f64> = match g.in_probs(v) {
        InProbs::Uniform(p) => vec![p; nbrs.len()],
        InProbs::PerEdge(ps) => ps.to_vec(),
    };
    let sum: f64 = raw.iter().sum();
    let fire = sum.min(1.0);
    // Match the sampler: step fires with min(Σp, 1), then conditions on
    // p_i / Σp; unconditional per-edge probability is p_i · fire / sum.
    let scale = if sum > 0.0 { fire / sum } else { 0.0 };
    Lottery {
        nbrs,
        probs: raw.iter().map(|p| p * scale).collect(),
        none: 1.0 - fire,
    }
}

impl ExactLtOracle {
    /// Enumerates every LT live-edge world of `g`.
    ///
    /// # Panics
    ///
    /// If `Π (d_in + 1)` exceeds [`MAX_LT_ORACLE_WORLDS`] or `g` has more
    /// than 16 nodes (the bitmask width).
    pub fn new(g: &Graph) -> Self {
        let n = g.n();
        assert!(n <= NodeMask::BITS as usize, "oracle handles <= 16 nodes");
        let lotteries: Vec<Lottery> = (0..n as NodeId).map(|v| lottery(g, v)).collect();
        let world_count = lotteries
            .iter()
            .try_fold(1u64, |acc, l| {
                acc.checked_mul(l.nbrs.len() as u64 + 1)
                    .filter(|&c| c <= MAX_LT_ORACLE_WORLDS)
            })
            .unwrap_or_else(|| {
                panic!("LT world product is past the enumeration limit of {MAX_LT_ORACLE_WORLDS}")
            });

        // Mixed-radix odometer over per-node choices: digit v ranges over
        // 0..=d_in(v), where 0 means "no live in-edge" and digit c >= 1
        // keeps edge (nbrs[c - 1] -> v).
        let mut worlds = Vec::with_capacity(world_count as usize);
        let mut digits = vec![0usize; n];
        let mut out = vec![0 as NodeMask; n];
        loop {
            out.iter_mut().for_each(|o| *o = 0);
            let mut prob = 1.0f64;
            for (v, (&c, l)) in digits.iter().zip(&lotteries).enumerate() {
                if c == 0 {
                    prob *= l.none;
                } else {
                    prob *= l.probs[c - 1];
                    out[l.nbrs[c - 1] as usize] |= 1 << v;
                }
            }
            // Zero-probability worlds (e.g. the none-choice of a clamped
            // node) still carry correct reach masks; keeping them is
            // harmless and keeps the odometer uniform.
            let reach_from = reach_closure(&out, n);
            worlds.push(World { prob, reach_from });

            let mut v = 0;
            loop {
                if v == n {
                    debug_assert_eq!(worlds.len() as u64, world_count);
                    return ExactLtOracle {
                        ens: Ensemble { n, worlds },
                    };
                }
                digits[v] += 1;
                if digits[v] <= lotteries[v].nbrs.len() {
                    break;
                }
                digits[v] = 0;
                v += 1;
            }
        }
    }

    /// Node count of the underlying graph.
    pub fn n(&self) -> usize {
        self.ens.n
    }

    /// World count (`Π (d_in + 1)`).
    pub fn worlds(&self) -> usize {
        self.ens.worlds.len()
    }

    /// Exact LT influence spread `𝕀(S)` of a seed set.
    pub fn influence(&self, seeds: &[NodeId]) -> f64 {
        self.ens.influence(seeds)
    }

    /// Exact LT optimum `OPT_k` by brute force over all `C(n, k)` seed
    /// sets; returns `(best_seeds, best_spread)`.
    pub fn exact_opt(&self, k: usize) -> (Vec<NodeId>, f64) {
        self.ens.exact_opt(k)
    }

    /// Exact distribution of the LT RR-set size for a uniformly random
    /// root: entry `s - 1` is `P(|RR| = s)`, for `s` in `1..=n`.
    pub fn rr_size_distribution(&self) -> Vec<f64> {
        self.ens.rr_size_distribution()
    }

    /// Exact per-node LT RR membership probabilities: entry `v` is
    /// `P(v ∈ RR)` for a uniformly random root.
    pub fn rr_membership(&self) -> Vec<f64> {
        self.ens.rr_membership()
    }
}

/// Monte-Carlo spread of `seeds` under LT with `runs` forward
/// simulations, certified by a Hoeffding bound (spread is bounded in
/// `[0, n]`). The fallback oracle for graphs past the enumeration limit.
pub fn mc_certified_lt(
    g: &Graph,
    seeds: &[NodeId],
    runs: usize,
    seed: u64,
    delta: f64,
) -> CertifiedEstimate {
    CertifiedEstimate {
        estimate: mc_influence(g, seeds, CascadeModel::Lt, runs, seed),
        half_width: hoeffding_half_width(g.n() as f64, delta, runs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::path_graph;
    use subsim_graph::{GraphBuilder, WeightModel};

    /// 4 nodes point at node 0 with skewed custom weights summing to 0.8.
    fn fan_in() -> Graph {
        GraphBuilder::new(5)
            .add_weighted_edge(1, 0, 0.4)
            .add_weighted_edge(2, 0, 0.2)
            .add_weighted_edge(3, 0, 0.15)
            .add_weighted_edge(4, 0, 0.05)
            .build()
            .unwrap()
    }

    #[test]
    fn single_node_no_edges() {
        let g = GraphBuilder::new(1).build().unwrap();
        let o = ExactLtOracle::new(&g);
        assert_eq!(o.worlds(), 1);
        assert_eq!(o.influence(&[0]), 1.0);
        assert_eq!(o.rr_size_distribution(), vec![1.0]);
    }

    #[test]
    fn two_node_edge_in_closed_form() {
        // 0 -> 1 with p = 0.3: node 1 keeps the edge w.p. 0.3, so
        // I({0}) = 1 + 0.3 and I({1}) = 1 — identical to IC on one edge.
        let g = GraphBuilder::new(2)
            .add_weighted_edge(0, 1, 0.3)
            .build()
            .unwrap();
        let o = ExactLtOracle::new(&g);
        assert_eq!(o.worlds(), 2);
        assert!((o.influence(&[0]) - 1.3).abs() < 1e-12);
        assert!((o.influence(&[1]) - 1.0).abs() < 1e-12);
        let (best, opt) = o.exact_opt(1);
        assert_eq!(best, vec![0]);
        assert!((opt - 1.3).abs() < 1e-12);
    }

    #[test]
    fn fan_in_spread_matches_edge_weights() {
        // Node 0 keeps exactly one of its four in-edges (or none, w.p.
        // 0.2), so I({u}) = 1 + p(u, 0) for each spoke u.
        let g = fan_in();
        let o = ExactLtOracle::new(&g);
        assert_eq!(o.worlds(), 5);
        for (u, p) in [(1u32, 0.4), (2, 0.2), (3, 0.15), (4, 0.05)] {
            assert!((o.influence(&[u]) - (1.0 + p)).abs() < 1e-12, "seed {u}");
        }
        assert!((o.influence(&[0]) - 1.0).abs() < 1e-12);
        let (best, opt) = o.exact_opt(1);
        assert_eq!(best, vec![1]);
        assert!((opt - 1.4).abs() < 1e-12);
        // Two seeds: spoke influences only overlap at node 0, and 0's
        // live edge can come from at most one of them.
        let (best2, opt2) = o.exact_opt(2);
        assert_eq!(best2, vec![1, 2]);
        assert!((opt2 - (2.0 + 0.4 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn path_spread_is_geometric() {
        // 0 -> 1 -> ... -> 5, each node keeps its single in-edge w.p. p:
        // I({0}) = sum p^i — same closed form as IC on a path.
        let p = 0.5;
        let g = path_graph(6, WeightModel::UniformIc { p });
        let o = ExactLtOracle::new(&g);
        assert_eq!(o.worlds(), 1 << 5);
        let expected: f64 = (0..6).map(|i| p.powi(i)).sum();
        assert!((o.influence(&[0]) - expected).abs() < 1e-9);
    }

    #[test]
    fn lt_weights_make_in_edges_exhaustive() {
        // WeightModel::Lt assigns 1/d_in, so Σp = 1: some in-edge is
        // always live and the none-branch has probability zero.
        let g = GraphBuilder::new(4)
            .edges([(1, 0), (2, 0), (3, 0)])
            .weights(WeightModel::Lt)
            .build()
            .unwrap();
        let o = ExactLtOracle::new(&g);
        // Each spoke's influence: itself + node 0 w.p. 1/3.
        for u in 1..4u32 {
            assert!((o.influence(&[u]) - (1.0 + 1.0 / 3.0)).abs() < 1e-12);
        }
        // Node 0 is reached from *some* spoke in every world.
        let member = o.rr_membership();
        let spoke_sum: f64 = member[1..].iter().sum();
        assert!((spoke_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamped_sums_match_sampler_semantics() {
        // Σp = 1.4 > 1: the reverse step always fires and the choice is
        // renormalized to p_i / Σp, so I({1}) = 1 + 0.8/1.4.
        let g = GraphBuilder::new(3)
            .add_weighted_edge(1, 0, 0.8)
            .add_weighted_edge(2, 0, 0.6)
            .build()
            .unwrap();
        let o = ExactLtOracle::new(&g);
        assert!((o.influence(&[1]) - (1.0 + 0.8 / 1.4)).abs() < 1e-12);
        assert!((o.influence(&[2]) - (1.0 + 0.6 / 1.4)).abs() < 1e-12);
        // The none-world exists in the odometer but carries probability 0.
        let total: f64 = o.rr_size_distribution().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distributions_are_normalized() {
        let g = fan_in();
        let o = ExactLtOracle::new(&g);
        let dist = o.rr_size_distribution();
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        let mean_size: f64 = dist
            .iter()
            .enumerate()
            .map(|(i, p)| (i + 1) as f64 * p)
            .sum();
        let member_sum: f64 = o.rr_membership().iter().sum();
        assert!((mean_size - member_sum).abs() < 1e-9);
    }

    #[test]
    fn mc_certificate_covers_exact_truth() {
        let g = fan_in();
        let o = ExactLtOracle::new(&g);
        let truth = o.influence(&[1]);
        let est = mc_certified_lt(&g, &[1], 4_000, 13, 1e-6);
        assert!(
            est.covers(truth),
            "estimate {} ± {} misses truth {truth}",
            est.estimate,
            est.half_width
        );
    }

    #[test]
    #[should_panic(expected = "enumeration limit")]
    fn oversized_graph_is_rejected() {
        // 11 nodes all pointing at each other: node in-degrees of 10
        // give 11^11 > 2^20 worlds.
        let mut b = GraphBuilder::new(11);
        for u in 0..11u32 {
            for v in 0..11u32 {
                if u != v {
                    b = b.add_weighted_edge(u, v, 0.05);
                }
            }
        }
        ExactLtOracle::new(&b.build().unwrap());
    }
}
