//! Exact ground truth for influence maximization on tiny graphs.
//!
//! Under the independent-cascade model the graph induces a distribution
//! over **live-edge worlds**: each edge `e` is independently live with
//! its probability `p_e`, and the spread of a seed set `S` is the
//! expected number of nodes reachable from `S` over live edges (Kempe et
//! al. 2003). With `m` edges there are exactly `2^m` worlds, so for
//! `m <= MAX_ORACLE_EDGES` the expectation is a *finite sum*, not an
//! estimate: [`ExactOracle`] enumerates every world once, stores each
//! node's forward-reachable set as a bitmask, and answers influence
//! queries, the optimal seed set, and the exact RR-set size distribution
//! with zero statistical error.
//!
//! This is the referee the rest of the workspace is judged against:
//! an RR-based estimator, a greedy selection, or a full algorithm run
//! can be checked against truth instead of against another sampler that
//! might share its bug. Graphs past the enumeration limit fall back to
//! [`mc_certified`], a Monte-Carlo estimate carrying a Hoeffding
//! half-width so the comparison tolerance is *certified*, not eyeballed.

use crate::stats::hoeffding_half_width;
use subsim_diffusion::{mc_influence, CascadeModel};
use subsim_graph::{Graph, NodeId};

/// Enumeration limit: `2^m` worlds must stay tractable. 20 edges is
/// ~1M worlds — release-mode territory; debug-mode suites should stay
/// around 12–14 edges.
pub const MAX_ORACLE_EDGES: usize = 20;

/// Node-set bitmask; the oracles handle up to 16 nodes.
pub(crate) type NodeMask = u16;

/// One live-edge world: its probability and, per node, the set of nodes
/// reachable from it over live edges (itself included).
pub(crate) struct World {
    pub(crate) prob: f64,
    pub(crate) reach_from: Vec<NodeMask>,
}

/// Forward-reachability closure per node over the live out-masks:
/// expand a frontier mask until it stops growing (at most `n` rounds).
/// Shared by the IC world enumeration here and the LT live-edge
/// enumeration in [`crate::lt_oracle`].
pub(crate) fn reach_closure(out: &[NodeMask], n: usize) -> Vec<NodeMask> {
    (0..n)
        .map(|s| {
            let mut mask: NodeMask = 1 << s;
            loop {
                let mut next = mask;
                let mut bits = mask;
                while bits != 0 {
                    let u = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    next |= out[u];
                }
                if next == mask {
                    break mask;
                }
                mask = next;
            }
        })
        .collect()
}

/// A finite ensemble of live-edge worlds with the influence queries every
/// exact oracle answers from it. The IC oracle enumerates `2^m` worlds
/// (one per edge subset); the LT oracle enumerates `Π (d_in + 1)` worlds
/// (one per product of per-node in-edge choices) — both end up here,
/// because once the worlds and their probabilities are materialized the
/// queries are model-agnostic finite sums.
pub(crate) struct Ensemble {
    pub(crate) n: usize,
    pub(crate) worlds: Vec<World>,
}

impl Ensemble {
    pub(crate) fn influence(&self, seeds: &[NodeId]) -> f64 {
        self.worlds
            .iter()
            .map(|w| {
                let mut mask: NodeMask = 0;
                for &s in seeds {
                    mask |= w.reach_from[s as usize];
                }
                w.prob * mask.count_ones() as f64
            })
            .sum()
    }

    pub(crate) fn exact_opt(&self, k: usize) -> (Vec<NodeId>, f64) {
        assert!(k >= 1 && k <= self.n, "k={k} outside 1..={}", self.n);
        let mut best_spread = f64::NEG_INFINITY;
        let mut best: Vec<NodeId> = Vec::new();
        let mut seeds: Vec<NodeId> = (0..k as NodeId).collect();
        loop {
            let spread = self.influence(&seeds);
            if spread > best_spread {
                best_spread = spread;
                best = seeds.clone();
            }
            // Next k-combination of 0..n in lexicographic order.
            let n = self.n as NodeId;
            let mut i = k;
            loop {
                if i == 0 {
                    return (best, best_spread);
                }
                i -= 1;
                if seeds[i] < n - (k - i) as NodeId {
                    seeds[i] += 1;
                    for j in i + 1..k {
                        seeds[j] = seeds[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    pub(crate) fn rr_size_distribution(&self) -> Vec<f64> {
        let mut dist = vec![0.0f64; self.n];
        let uniform = 1.0 / self.n as f64;
        for w in &self.worlds {
            for r in 0..self.n {
                let size = w
                    .reach_from
                    .iter()
                    .filter(|&&mask| mask >> r & 1 == 1)
                    .count();
                debug_assert!(size >= 1, "a root always reaches itself");
                dist[size - 1] += w.prob * uniform;
            }
        }
        dist
    }

    pub(crate) fn rr_membership(&self) -> Vec<f64> {
        let mut p = vec![0.0f64; self.n];
        let uniform = 1.0 / self.n as f64;
        for w in &self.worlds {
            for (u, &mask) in w.reach_from.iter().enumerate() {
                // u belongs to the RR set of every root it reaches.
                p[u] += w.prob * uniform * mask.count_ones() as f64;
            }
        }
        p
    }
}

/// An exact influence oracle over all `2^m` live-edge worlds of a graph.
pub struct ExactOracle {
    ens: Ensemble,
}

impl ExactOracle {
    /// Enumerates every live-edge world of `g`.
    ///
    /// # Panics
    ///
    /// If `g` has more than [`MAX_ORACLE_EDGES`] edges or more than 16
    /// nodes (the bitmask width).
    pub fn new(g: &Graph) -> Self {
        let n = g.n();
        let m = g.m();
        assert!(n <= NodeMask::BITS as usize, "oracle handles <= 16 nodes");
        assert!(
            m <= MAX_ORACLE_EDGES,
            "2^{m} worlds is past the enumeration limit of 2^{MAX_ORACLE_EDGES}"
        );
        let edges: Vec<(NodeId, NodeId, f64)> = g.edges().collect();
        let mut worlds = Vec::with_capacity(1usize << m);
        let mut out = vec![0 as NodeMask; n];
        for w in 0u64..(1u64 << m) {
            out.iter_mut().for_each(|o| *o = 0);
            let mut prob = 1.0f64;
            for (i, &(u, v, p)) in edges.iter().enumerate() {
                if w >> i & 1 == 1 {
                    out[u as usize] |= 1 << v;
                    prob *= p;
                } else {
                    prob *= 1.0 - p;
                }
            }
            let reach_from = reach_closure(&out, n);
            worlds.push(World { prob, reach_from });
        }
        ExactOracle {
            ens: Ensemble { n, worlds },
        }
    }

    /// Node count of the underlying graph.
    pub fn n(&self) -> usize {
        self.ens.n
    }

    /// World count (`2^m`).
    pub fn worlds(&self) -> usize {
        self.ens.worlds.len()
    }

    /// Exact influence spread `𝕀(S)` of a seed set: the expected number
    /// of nodes reachable from `S` over the live-edge distribution.
    pub fn influence(&self, seeds: &[NodeId]) -> f64 {
        self.ens.influence(seeds)
    }

    /// Exact optimum `OPT_k = max_{|S| = k} 𝕀(S)` by brute force over
    /// all `C(n, k)` seed sets; returns `(best_seeds, best_spread)`.
    pub fn exact_opt(&self, k: usize) -> (Vec<NodeId>, f64) {
        self.ens.exact_opt(k)
    }

    /// Exact distribution of the RR-set size for a uniformly random root:
    /// entry `s - 1` is `P(|RR| = s)`, for `s` in `1..=n`.
    ///
    /// The RR set of root `r` in world `w` is the set of nodes whose
    /// forward reach contains `r`, so its size is the count of nodes `u`
    /// with `r ∈ reach_from(u)` — a column sum of the reach matrix.
    pub fn rr_size_distribution(&self) -> Vec<f64> {
        self.ens.rr_size_distribution()
    }

    /// Exact per-node RR membership probabilities: entry `v` is
    /// `P(v ∈ RR)` for a uniformly random root.
    pub fn rr_membership(&self) -> Vec<f64> {
        self.ens.rr_membership()
    }
}

/// A Monte-Carlo influence estimate with a Hoeffding certificate: with
/// probability at least `1 - delta` the true spread lies within
/// `half_width` of `estimate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CertifiedEstimate {
    /// The empirical mean spread.
    pub estimate: f64,
    /// The certified half-width at confidence `1 - delta`.
    pub half_width: f64,
}

impl CertifiedEstimate {
    /// Whether `truth` is inside the certified interval.
    pub fn covers(&self, truth: f64) -> bool {
        (truth - self.estimate).abs() <= self.half_width
    }
}

/// Monte-Carlo spread of `seeds` under IC with `runs` forward
/// simulations, certified by a Hoeffding bound (spread is bounded in
/// `[0, n]`). The fallback oracle for graphs past [`MAX_ORACLE_EDGES`].
pub fn mc_certified(
    g: &Graph,
    seeds: &[NodeId],
    runs: usize,
    seed: u64,
    delta: f64,
) -> CertifiedEstimate {
    CertifiedEstimate {
        estimate: mc_influence(g, seeds, CascadeModel::Ic, runs, seed),
        half_width: hoeffding_half_width(g.n() as f64, delta, runs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsim_graph::generators::{path_graph, star_graph};
    use subsim_graph::{GraphBuilder, WeightModel};

    fn uniform(p: f64) -> WeightModel {
        WeightModel::UniformIc { p }
    }

    #[test]
    fn single_node_no_edges() {
        let g = GraphBuilder::new(1).build().unwrap();
        let o = ExactOracle::new(&g);
        assert_eq!(o.worlds(), 1);
        assert_eq!(o.influence(&[0]), 1.0);
        assert_eq!(o.rr_size_distribution(), vec![1.0]);
    }

    #[test]
    fn two_node_edge_in_closed_form() {
        // 0 -> 1 with p = 0.3: I({0}) = 1 + 0.3, I({1}) = 1.
        let g = GraphBuilder::new(2)
            .add_weighted_edge(0, 1, 0.3)
            .build()
            .unwrap();
        let o = ExactOracle::new(&g);
        assert!((o.influence(&[0]) - 1.3).abs() < 1e-12);
        assert!((o.influence(&[1]) - 1.0).abs() < 1e-12);
        let (best, opt) = o.exact_opt(1);
        assert_eq!(best, vec![0]);
        assert!((opt - 1.3).abs() < 1e-12);
        // RR sizes: root 0 -> {0}; root 1 -> {1} w.p. 0.7, {0,1} w.p. 0.3.
        let dist = o.rr_size_distribution();
        assert!((dist[0] - (1.0 + 0.7) / 2.0).abs() < 1e-12);
        assert!((dist[1] - 0.3 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn star_spread_matches_closed_form() {
        // Hub -> each of 7 leaves with p: I({hub}) = 1 + 7p.
        let p = 0.25;
        let g = star_graph(8, uniform(p));
        let o = ExactOracle::new(&g);
        assert!((o.influence(&[0]) - (1.0 + 7.0 * p)).abs() < 1e-9);
        let (best, opt) = o.exact_opt(1);
        assert_eq!(best, vec![0]);
        assert!((opt - (1.0 + 7.0 * p)).abs() < 1e-9);
        // Size distribution: hub root -> size 1; leaf root -> size 2 w.p. p.
        let dist = o.rr_size_distribution();
        assert!((dist[0] - (1.0 + 7.0 * (1.0 - p)) / 8.0).abs() < 1e-9);
        assert!((dist[1] - 7.0 * p / 8.0).abs() < 1e-9);
    }

    #[test]
    fn path_spread_matches_geometric_sum() {
        // 0 -> 1 -> ... -> 5 with p: I({0}) = sum p^i for i in 0..6.
        let p = 0.5;
        let g = path_graph(6, uniform(p));
        let o = ExactOracle::new(&g);
        let expected: f64 = (0..6).map(|i| p.powi(i)).sum();
        assert!((o.influence(&[0]) - expected).abs() < 1e-9);
    }

    #[test]
    fn influence_is_monotone_and_submodular_on_random_worlds() {
        // Spot-check the two structural properties on a small dense graph.
        let g = subsim_graph::generators::complete_graph(4, uniform(0.2));
        let o = ExactOracle::new(&g);
        let f = |s: &[NodeId]| o.influence(s);
        assert!(f(&[0, 1]) >= f(&[0]) - 1e-12, "monotone");
        let gain_small = f(&[0, 2]) - f(&[0]);
        let gain_large = f(&[0, 1, 2]) - f(&[0, 1]);
        assert!(gain_large <= gain_small + 1e-12, "submodular");
    }

    #[test]
    fn distributions_are_normalized() {
        let g = star_graph(6, uniform(0.4));
        let o = ExactOracle::new(&g);
        let total: f64 = o.rr_size_distribution().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Membership: sum over nodes = expected RR size.
        let mean_size: f64 = o
            .rr_size_distribution()
            .iter()
            .enumerate()
            .map(|(i, p)| (i + 1) as f64 * p)
            .sum();
        let member_sum: f64 = o.rr_membership().iter().sum();
        assert!((mean_size - member_sum).abs() < 1e-9);
    }

    #[test]
    fn mc_certificate_covers_exact_truth() {
        let g = star_graph(8, uniform(0.3));
        let o = ExactOracle::new(&g);
        let truth = o.influence(&[0]);
        let est = mc_certified(&g, &[0], 4_000, 11, 1e-6);
        assert!(
            est.covers(truth),
            "estimate {} ± {} misses truth {truth}",
            est.estimate,
            est.half_width
        );
    }

    #[test]
    #[should_panic(expected = "enumeration limit")]
    fn oversized_graph_is_rejected() {
        let g = subsim_graph::generators::complete_graph(6, uniform(0.1));
        ExactOracle::new(&g); // 30 edges
    }
}
