//! Statistics supporting the conformance and oracle suites: Pearson's
//! χ² goodness-of-fit with a hardcoded critical-value table, and
//! Hoeffding half-widths for Monte-Carlo certificates.
//!
//! The critical values are compile-time constants (α = 0.001, the level
//! every seeded conformance test uses) instead of a runtime inverse-CDF:
//! the suites must stay dependency-free, and a fixed level keeps the
//! accept/reject decision auditable. α = 0.001 with fixed seeds means a
//! passing seed keeps passing forever — there is no flake budget.

/// Upper critical values of the χ² distribution at α = 0.001 for
/// 1..=30 degrees of freedom (`CHI2_CRITICAL_001[df - 1]`).
const CHI2_CRITICAL_001: [f64; 30] = [
    10.828, 13.816, 16.266, 18.467, 20.515, 22.458, 24.322, 26.124, 27.877, 29.588, 31.264, 32.909,
    34.528, 36.123, 37.697, 39.252, 40.790, 42.312, 43.820, 45.315, 46.797, 48.268, 49.728, 51.179,
    52.620, 54.052, 55.476, 56.892, 58.301, 59.703,
];

/// The α = 0.001 upper critical value for `df` degrees of freedom.
///
/// # Panics
///
/// If `df` is 0 or above 30 (merge bins first — a conformance test with
/// more than 31 cells is binning too finely for its sample size).
pub fn chi_square_critical(df: usize) -> f64 {
    assert!(
        (1..=CHI2_CRITICAL_001.len()).contains(&df),
        "df={df} outside the hardcoded table (1..=30); merge bins"
    );
    CHI2_CRITICAL_001[df - 1]
}

/// Pearson's statistic `Σ (O - E)² / E` over parallel observed /
/// expected-count slices.
///
/// # Panics
///
/// If the slices differ in length, any expected count is below 5 (the
/// classical validity floor — merge small bins with
/// [`merge_small_bins`] first), or the totals disagree by more than one
/// count (the expectation must be normalized to the sample size).
pub fn chi_square_stat(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "cell count mismatch");
    let o_total: u64 = observed.iter().sum();
    let e_total: f64 = expected.iter().sum();
    assert!(
        (o_total as f64 - e_total).abs() <= 1.0,
        "totals disagree: observed {o_total}, expected {e_total:.3}"
    );
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            assert!(e >= 5.0, "expected count {e:.3} below 5; merge bins");
            let d = o as f64 - e;
            d * d / e
        })
        .sum()
}

/// Folds adjacent cells until every expected count reaches `min_expected`
/// (trailing remainder folds backwards into the last kept cell). Returns
/// the merged `(observed, expected)` pair; cell order is preserved.
pub fn merge_small_bins(
    observed: &[u64],
    expected: &[f64],
    min_expected: f64,
) -> (Vec<u64>, Vec<f64>) {
    assert_eq!(observed.len(), expected.len(), "cell count mismatch");
    let mut obs = Vec::new();
    let mut exp = Vec::new();
    let mut acc_o = 0u64;
    let mut acc_e = 0.0f64;
    for (&o, &e) in observed.iter().zip(expected) {
        acc_o += o;
        acc_e += e;
        if acc_e >= min_expected {
            obs.push(acc_o);
            exp.push(acc_e);
            acc_o = 0;
            acc_e = 0.0;
        }
    }
    if acc_e > 0.0 || acc_o > 0 {
        match exp.last_mut() {
            Some(last_e) => {
                *last_e += acc_e;
                *obs.last_mut().expect("obs and exp push together") += acc_o;
            }
            None => {
                obs.push(acc_o);
                exp.push(acc_e);
            }
        }
    }
    (obs, exp)
}

/// Hoeffding half-width for the mean of `runs` i.i.d. samples bounded in
/// an interval of length `range`: with probability at least `1 - delta`,
/// the empirical mean is within this distance of the true mean.
///
/// For influence spread the natural range is `n` (spread lies in
/// `[0, n]`), giving the certificate the oracle's Monte-Carlo path
/// attaches to its estimates.
pub fn hoeffding_half_width(range: f64, delta: f64, runs: usize) -> f64 {
    assert!(runs > 0, "a certificate needs at least one sample");
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
    range * ((2.0 / delta).ln() / (2.0 * runs as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_values_are_monotone() {
        for df in 2..=30 {
            assert!(chi_square_critical(df) > chi_square_critical(df - 1));
        }
    }

    #[test]
    fn perfect_fit_scores_zero() {
        let obs = [10u64, 20, 30];
        let exp = [10.0, 20.0, 30.0];
        assert_eq!(chi_square_stat(&obs, &exp), 0.0);
    }

    #[test]
    fn gross_misfit_exceeds_critical() {
        let obs = [60u64, 0, 0];
        let exp = [20.0, 20.0, 20.0];
        assert!(chi_square_stat(&obs, &exp) > chi_square_critical(2));
    }

    #[test]
    #[should_panic(expected = "below 5")]
    fn tiny_expected_counts_are_rejected() {
        chi_square_stat(&[1, 1], &[1.0, 1.0]);
    }

    #[test]
    fn merging_reaches_the_floor() {
        let obs = [1u64, 2, 3, 100, 1];
        let exp = [1.0, 2.0, 3.0, 100.0, 1.0];
        let (mo, me) = merge_small_bins(&obs, &exp, 5.0);
        assert_eq!(mo.iter().sum::<u64>(), 107);
        assert!((me.iter().sum::<f64>() - 107.0).abs() < 1e-9);
        assert!(me.iter().all(|&e| e >= 5.0), "{me:?}");
        let _ = chi_square_stat(&mo, &me);
    }

    #[test]
    fn hoeffding_width_shrinks_with_runs() {
        let w1 = hoeffding_half_width(10.0, 0.01, 1_000);
        let w2 = hoeffding_half_width(10.0, 0.01, 4_000);
        assert!((w1 / w2 - 2.0).abs() < 1e-9, "4x runs halves the width");
    }
}
