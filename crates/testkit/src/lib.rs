//! `subsim-testkit` — ground truth, determinism, and fault injection for
//! the subsim workspace.
//!
//! Every layer below this crate is tested against *itself*: unit tests
//! pin refactors to previous behavior, property tests pin invariants,
//! differential tests pin one implementation to another. None of that
//! catches a bug both sides share. This crate closes the loop with three
//! independent referees:
//!
//! - [`oracle`] — an **exact influence oracle**: on graphs small enough
//!   to enumerate every live-edge world (`2^m` of them), influence
//!   spread, the optimal seed set, and the full RR-set size distribution
//!   are computed in closed form. RR-based estimates, greedy seed
//!   quality, and the paper's `(1 - 1/e - ε)` guarantee are then checked
//!   against *truth*, not against another sampler. A Monte-Carlo path
//!   with Hoeffding-certified half-widths covers graphs past the
//!   enumeration limit.
//! - [`lt_oracle`] — the same referee for **Linear Threshold**: LT's
//!   live-edge worlds are a product over per-node in-edge choices
//!   (`Π (d_in + 1)` of them), enumerated in mixed radix and answered
//!   through the shared world-ensemble queries, with an LT Monte-Carlo
//!   certificate as the fallback.
//! - [`sim`] — a **deterministic serving simulator**: a single `u64`
//!   seed generates a whole serving session (interleaved queries,
//!   version-pinned queries, and graph deltas), drives the real
//!   concurrent serving path with it, and replays the same session
//!   against the sequential model index. Any divergence reproduces
//!   bit-identically from the printed seed.
//! - [`fault`] — **fault injection**: a byte-level faulty reader for
//!   snapshot I/O plus the worker-pool chunk hooks let tests inject
//!   truncation, corruption, mid-stream I/O errors, and worker panics,
//!   asserting every fault surfaces as a *typed* error with the index
//!   still answering queries correctly afterwards.
//! - [`stats`] — the supporting statistics: χ² goodness-of-fit with a
//!   hardcoded critical-value table (no runtime chi-square inversion)
//!   and Hoeffding half-widths, used by the conformance suites.
//!
//! The heavy batteries live in this crate's `tests/` directory; see
//! `TESTING.md` at the workspace root for the tier map and how to run
//! them.

#![warn(missing_docs)]

pub mod fault;
pub mod lt_oracle;
pub mod oracle;
pub mod sim;
pub mod stats;

pub use fault::{panic_on_chunk, panic_on_chunk_id, Fault, FaultyReader};
pub use lt_oracle::{mc_certified_lt, ExactLtOracle, MAX_LT_ORACLE_WORLDS};
pub use oracle::{mc_certified, CertifiedEstimate, ExactOracle, MAX_ORACLE_EDGES};
pub use sim::{
    check_seed, check_seed_lt, check_seed_lt_sentinel, check_seed_lt_sketch, check_seed_sentinel,
    check_seed_sharded, check_seed_sharded_lt, check_seed_sharded_lt_sketch,
    check_seed_sharded_sentinel, check_seed_sharded_sketch, check_seed_sketch, generate_script,
    run_concurrent, run_concurrent_lt, run_concurrent_sentinel, run_concurrent_sketch,
    run_sequential_model, run_sequential_model_lt, run_sequential_model_sentinel,
    run_sequential_model_sketch, run_sharded, run_sharded_lt, run_sharded_sentinel,
    run_sharded_sketch, SimOutcome, SimStep,
};
pub use stats::{chi_square_critical, chi_square_stat, hoeffding_half_width, merge_small_bins};
